"""Step-level recovery: the (step x fault kind x retry policy) matrix.

Covers the tentpole acceptance scenarios end to end:

* a transient disk fault mid-step-4 on one node completes via retry with
  the correct sorted output, the retry charged to the simulated clock
  and surfaced in the metrics report;
* a node killed at the step-3 barrier completes in degraded mode, with
  the 2x load-balance bound re-checked against the survivor-rescaled
  perf vector.

Fault positions are *computed*, not guessed: a fault-free probe run
records each node's I/O and message counters at every step barrier, and
the faults are armed to land inside the targeted step.
"""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.faults import (
    DiskFault,
    DiskFaultError,
    FaultInjector,
    FaultPlan,
    MessageFault,
    NetworkFaultError,
    NodeKill,
    NodeKilledError,
    RetryPolicy,
)
from repro.metrics.report import fault_table

PERF = PerfVector([1, 2, 1])
SPEEDS = [1.0, 2.0, 1.0]
CONFIG = PSRSConfig(block_items=32, message_items=128)
STEPS = ["1:local-sort", "2:pivots", "3:partition", "4:redistribute", "5:final-merge"]


def _cluster() -> Cluster:
    return Cluster(heterogeneous_cluster(SPEEDS, memory_items=512))


def _data(seed: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 2**32, size=PERF.nearest_exact(600), dtype=np.uint32
    )


@pytest.fixture(scope="module")
def probe():
    """Fault-free run annotated with per-step boundary counters.

    ``probe["io"][rank]`` maps step name -> that node's cumulative block
    I/Os at the step's start; ``probe["msgs"]`` likewise for network
    messages; ``end`` keys hold the totals after the sort.  The diff of
    consecutive boundaries locates any step in I/O- or message-count
    space, which is the coordinate system fault arms count in.
    """
    cluster = _cluster()
    marks_io: dict[int, dict[str, int]] = {r: {} for r in range(cluster.p)}
    marks_msgs: dict[str, int] = {}

    def observer(name: str) -> None:
        for r in range(cluster.p):
            marks_io[r][name] = cluster.nodes[r].disk.stats.block_ios
        marks_msgs[name] = cluster.network.messages_sent

    cluster.step_observers.append(observer)
    res = sort_array(cluster, PERF, _data(), CONFIG)
    for r in range(cluster.p):
        marks_io[r]["end"] = cluster.nodes[r].disk.stats.block_ios
    marks_msgs["end"] = cluster.network.messages_sent
    return {"io": marks_io, "msgs": marks_msgs, "elapsed": res.elapsed}


def _io_window(probe, rank: int, step: str) -> tuple[int, int]:
    """[start, stop) of ``rank``'s block-I/O counter inside ``step``."""
    marks = probe["io"][rank]
    keys = STEPS + ["end"]
    i = keys.index(step)
    return marks[step], marks[keys[i + 1]]


def _msg_window(probe, step: str) -> tuple[int, int]:
    keys = STEPS + ["end"]
    i = keys.index(step)
    return probe["msgs"][step], probe["msgs"][keys[i + 1]]


# -- transient faults x steps x retry policies -------------------------------


@pytest.mark.parametrize("step", STEPS)
@pytest.mark.parametrize(
    "policy",
    [
        RetryPolicy(max_attempts=2, backoff=0.05),
        RetryPolicy(max_attempts=3, backoff=0.01, backoff_factor=3.0),
    ],
    ids=["attempts2", "attempts3"],
)
class TestTransientDiskFaultMatrix:
    def test_retry_completes_and_charges_clock(self, probe, step, policy):
        rank = 1
        lo, hi = _io_window(probe, rank, step)
        if hi <= lo:
            pytest.skip(f"node {rank} performs no I/O in {step}")
        data = _data()
        cluster = _cluster()
        plan = FaultPlan(
            disk_faults=[DiskFault(node=rank, after_ios=(lo + hi) // 2, count=1)]
        )
        res = sort_array(cluster, PERF, data, CONFIG, faults=plan, retry=policy)
        assert np.array_equal(res.to_array(), np.sort(data))
        assert res.faults.disk_faults == 1
        assert res.faults.retries.get(step) == 1
        assert res.faults.backoff_time == pytest.approx(policy.delay(1))
        # The retry (backoff + re-done work) costs simulated wall time.
        assert res.elapsed >= probe["elapsed"] + res.faults.backoff_time
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_no_retry_policy_propagates(self, probe, step, policy):
        rank = 1
        lo, hi = _io_window(probe, rank, step)
        if hi <= lo:
            pytest.skip(f"node {rank} performs no I/O in {step}")
        cluster = _cluster()
        plan = FaultPlan(
            disk_faults=[DiskFault(node=rank, after_ios=(lo + hi) // 2, count=1)]
        )
        with pytest.raises(DiskFaultError):
            sort_array(cluster, PERF, _data(), CONFIG, faults=plan)  # no retry=
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0


@pytest.mark.parametrize("step", ["2:pivots", "4:redistribute"])
class TestTransientNetworkFaultMatrix:
    def test_hard_message_failure_retried(self, probe, step):
        lo, hi = _msg_window(probe, step)
        assert hi > lo, f"no messages in {step}"
        data = _data()
        cluster = _cluster()
        plan = FaultPlan(
            message_faults=[MessageFault(fail_after=(lo + hi) // 2, count=1)]
        )
        res = sort_array(
            cluster, PERF, data, CONFIG,
            faults=plan, retry=RetryPolicy(max_attempts=2, backoff=0.02),
        )
        assert np.array_equal(res.to_array(), np.sort(data))
        assert res.faults.network_faults == 1
        assert res.faults.retries.get(step) == 1
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_without_retry_propagates(self, probe, step):
        lo, hi = _msg_window(probe, step)
        cluster = _cluster()
        plan = FaultPlan(
            message_faults=[MessageFault(fail_after=(lo + hi) // 2, count=1)]
        )
        with pytest.raises(NetworkFaultError):
            sort_array(cluster, PERF, _data(), CONFIG, faults=plan)
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0


class TestRetryAccounting:
    def test_exponential_backoff_accumulates_exactly(self, probe):
        """count=2: both faulted I/Os fire (the second may land in the
        same attempt's cleanup flush), the sort still completes, and
        backoff_time is exactly the policy's schedule for the observed
        retries — all of it charged to the simulated clock."""
        rank = 1
        lo, hi = _io_window(probe, rank, "3:partition")
        policy = RetryPolicy(max_attempts=3, backoff=0.04, backoff_factor=2.0)
        data = _data()
        cluster = _cluster()
        plan = FaultPlan(
            disk_faults=[DiskFault(node=rank, after_ios=(lo + hi) // 2, count=2)]
        )
        res = sort_array(cluster, PERF, data, CONFIG, faults=plan, retry=policy)
        assert np.array_equal(res.to_array(), np.sort(data))
        assert res.faults.disk_faults == 2
        n_retries = res.faults.retries["3:partition"]
        assert 1 <= n_retries <= 2
        expected = sum(policy.delay(i) for i in range(1, n_retries + 1))
        assert res.faults.backoff_time == pytest.approx(expected)
        assert res.elapsed >= probe["elapsed"] + expected

    def test_attempts_exhausted_raises(self, probe):
        """A fault outlasting the retry budget propagates after charging
        every backoff."""
        rank = 1
        lo, hi = _io_window(probe, rank, "3:partition")
        cluster = _cluster()
        plan = FaultPlan(
            disk_faults=[DiskFault(node=rank, after_ios=(lo + hi) // 2, count=None)]
        )
        with pytest.raises(DiskFaultError):
            sort_array(
                cluster, PERF, _data(), CONFIG,
                faults=plan, retry=RetryPolicy(max_attempts=3, backoff=0.01),
            )
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_counters_surface_in_report_table(self, probe):
        rank = 1
        lo, hi = _io_window(probe, rank, "3:partition")
        cluster = _cluster()
        plan = FaultPlan(
            disk_faults=[DiskFault(node=rank, after_ios=(lo + hi) // 2, count=1)]
        )
        res = sort_array(
            cluster, PERF, _data(), CONFIG,
            faults=plan, retry=RetryPolicy(max_attempts=2, backoff=0.05),
        )
        text = fault_table(res.faults).render()
        assert "retries[3:partition]" in text
        assert "disk faults" in text
        assert "backoff charged (s)" in text

    def test_fault_free_table_is_banner_only(self):
        from repro.faults import FaultCounters

        text = fault_table(FaultCounters()).render()
        assert "no faults injected" in text


# -- node kills x steps: degraded mode ---------------------------------------


@pytest.mark.parametrize("step", [2, 3, 4, 5])
@pytest.mark.parametrize("victim", [0, 1, 2])
class TestDegradedModeMatrix:
    def test_kill_completes_on_survivors(self, step, victim):
        data = _data()
        cluster = _cluster()
        plan = FaultPlan(node_kills=[NodeKill(node=victim, step=step)])
        res = sort_array(cluster, PERF, data, CONFIG, faults=plan)
        assert np.array_equal(res.to_array(), np.sort(data))
        survivors = [r for r in range(PERF.p) if r != victim]
        assert res.active_ranks == survivors
        assert res.faults.degraded
        assert res.faults.dead_nodes == [victim]
        assert res.perf == PERF.subset(survivors)
        # The 2x bound holds against the survivor-rescaled shares.
        assert res.s_max <= 2.0 + 1e-9
        assert len(res.outputs) == len(survivors)
        # Outputs live on survivor disks only.
        for rank, out in zip(res.active_ranks, res.outputs):
            assert out.disk is cluster.nodes[rank].disk
        assert not cluster.nodes[victim].alive
        assert cluster.nodes[victim].failed_at.startswith(f"{step}:")
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_degraded_trace_includes_salvage(self, step, victim):
        cluster = _cluster()
        plan = FaultPlan(node_kills=[NodeKill(node=victim, step=step)])
        res = sort_array(cluster, PERF, _data(), CONFIG, faults=plan)
        assert "recover:salvage" in res.step_times
        assert "recover:remerge" in res.step_times


class TestKillEdgeCases:
    def test_step1_kill_is_unrecoverable(self):
        cluster = _cluster()
        plan = FaultPlan(node_kills=[NodeKill(node=1, step=1)])
        with pytest.raises(NodeKilledError) as exc_info:
            sort_array(cluster, PERF, _data(), CONFIG, faults=plan)
        assert exc_info.value.rank == 1 and exc_info.value.step == 1
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_kill_without_recovery_propagates(self):
        """An externally installed injector without recovery enabled on the
        sort: the kill propagates instead of degrading."""
        cluster = _cluster()
        injector = FaultInjector(
            FaultPlan(node_kills=[NodeKill(node=2, step=3)])
        ).install(cluster)
        try:
            with pytest.raises(NodeKilledError):
                sort_array(cluster, PERF, _data(), CONFIG)
        finally:
            injector.uninstall()
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_two_kills_two_degradations(self):
        """Two victims at different steps: two successive degradations,
        finishing on the single remaining node."""
        data = _data()
        cluster = _cluster()
        plan = FaultPlan(
            node_kills=[NodeKill(node=0, step=2), NodeKill(node=2, step=4)]
        )
        res = sort_array(cluster, PERF, data, CONFIG, faults=plan)
        assert np.array_equal(res.to_array(), np.sort(data))
        assert res.active_ranks == [1]
        assert sorted(res.faults.dead_nodes) == [0, 2]
        assert res.faults.node_kills == 2
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_degraded_combined_with_transient_retry(self):
        """A kill and a transient disk fault in one plan: retry handles
        the transient, degraded mode handles the kill."""
        data = _data()
        cluster = _cluster()
        plan = FaultPlan(
            disk_faults=[DiskFault(node=1, after_ios=40, count=1)],
            node_kills=[NodeKill(node=2, step=4)],
        )
        res = sort_array(
            cluster, PERF, data, CONFIG,
            faults=plan, retry=RetryPolicy(max_attempts=3, backoff=0.01),
        )
        assert np.array_equal(res.to_array(), np.sort(data))
        assert res.faults.degraded and res.faults.disk_faults >= 1
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0


# -- the tentpole demo scenarios (paper cluster flavour) ----------------------


class TestAcceptanceScenarios:
    PERF4 = PerfVector([1, 1, 4, 4])
    SPEEDS4 = [1.0, 1.0, 4.0, 4.0]
    CFG4 = PSRSConfig(block_items=64, message_items=512)

    def _probe4(self, data):
        cluster = Cluster(heterogeneous_cluster(self.SPEEDS4, memory_items=1024))
        marks: dict[str, int] = {}

        def observer(name: str) -> None:
            marks[name] = cluster.nodes[1].disk.stats.block_ios

        cluster.step_observers.append(observer)
        sort_array(cluster, self.PERF4, data, self.CFG4)
        marks["end"] = cluster.nodes[1].disk.stats.block_ios
        return marks

    def test_disk_failure_mid_step4_completes_via_retry(self):
        data = np.random.default_rng(11).integers(
            0, 2**32, size=self.PERF4.nearest_exact(4000), dtype=np.uint32
        )
        marks = self._probe4(data)
        lo, hi = marks["4:redistribute"], marks["5:final-merge"]
        assert hi > lo, "node 1 must do I/O during redistribution"
        cluster = Cluster(heterogeneous_cluster(self.SPEEDS4, memory_items=1024))
        plan = FaultPlan(
            disk_faults=[DiskFault(node=1, after_ios=(lo + hi) // 2, count=1)]
        )
        res = sort_array(
            cluster, self.PERF4, data, self.CFG4,
            faults=plan, retry=RetryPolicy(max_attempts=3, backoff=0.05),
        )
        assert np.array_equal(res.to_array(), np.sort(data))
        assert res.faults.disk_faults == 1
        assert res.faults.retries == {"4:redistribute": 1}
        assert res.faults.backoff_time == pytest.approx(0.05)
        assert not res.faults.degraded
        text = fault_table(res.faults).render()
        assert "retries[4:redistribute]" in text
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_node_killed_step3_completes_degraded(self):
        data = np.random.default_rng(12).integers(
            0, 2**32, size=self.PERF4.nearest_exact(4000), dtype=np.uint32
        )
        cluster = Cluster(heterogeneous_cluster(self.SPEEDS4, memory_items=1024))
        plan = FaultPlan(node_kills=[NodeKill(node=2, step=3)])
        res = sort_array(cluster, self.PERF4, data, self.CFG4, faults=plan)
        assert np.array_equal(res.to_array(), np.sort(data))
        assert res.faults.degraded
        assert res.active_ranks == [0, 1, 3]
        assert res.perf == self.PERF4.subset([0, 1, 3])
        # Load balance bound over the survivors' rescaled shares.
        for received, optimal in zip(res.received_sizes, res.optimal_sizes):
            assert received <= 2.0 * optimal + 1e-9
        assert res.s_max <= 2.0
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0
