"""Key-width generality: every engine on 16/32/64-bit, signed/unsigned keys."""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.extsort.balanced import balanced_merge_sort
from repro.extsort.distribution import distribution_sort
from repro.extsort.polyphase import polyphase_sort
from repro.pdm.memory import MemoryManager
from repro.workloads.records import verify_sorted_permutation

from tests.conftest import file_from_array, make_disk

DTYPES = [np.uint16, np.int16, np.uint32, np.int32, np.uint64, np.int64]


def _data(dtype, n=600, seed=3):
    info = np.iinfo(dtype)
    rng = np.random.default_rng(seed)
    return rng.integers(info.min, int(info.max) + 1, size=n, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
class TestSequentialEnginesDtypes:
    def test_polyphase(self, dtype):
        disk, mem = make_disk(), MemoryManager(64)
        data = _data(dtype)
        src = file_from_array(data, disk, B=8, mem=mem, dtype=dtype)
        res = polyphase_sort(src, disk, mem, n_tapes=4)
        assert res.output.dtype == np.dtype(dtype)
        verify_sorted_permutation(data, res.output.to_array())

    def test_balanced(self, dtype):
        disk, mem = make_disk(), MemoryManager(64)
        data = _data(dtype)
        src = file_from_array(data, disk, B=8, mem=mem, dtype=dtype)
        res = balanced_merge_sort(src, disk, mem)
        verify_sorted_permutation(data, res.output.to_array())

    def test_distribution(self, dtype):
        disk, mem = make_disk(), MemoryManager(64)
        data = _data(dtype)
        src = file_from_array(data, disk, B=8, mem=mem, dtype=dtype)
        res = distribution_sort(src, disk, mem)
        verify_sorted_permutation(data, res.output.to_array())


@pytest.mark.parametrize("dtype", [np.int32, np.uint64, np.int64])
def test_full_psrs_pipeline_dtypes(dtype):
    """Signed and 64-bit keys through Algorithm 1 (network bytes scale
    with itemsize; partitioning must respect signed order)."""
    perf = PerfVector([1, 2])
    n = perf.nearest_exact(4_000)
    data = _data(dtype, n=n, seed=9)
    cluster = Cluster(heterogeneous_cluster([1.0, 2.0], memory_items=1024))
    res = sort_array(
        cluster, perf, data, PSRSConfig(block_items=128, message_items=512)
    )
    out = res.to_array()
    assert out.dtype == np.dtype(dtype)
    verify_sorted_permutation(data, out)
    if np.issubdtype(np.dtype(dtype), np.signedinteger):
        assert out[0] < 0 < out[-1]  # full signed range actually exercised


def test_network_bytes_track_itemsize():
    perf = PerfVector([1, 1])
    n = perf.nearest_exact(4_000)
    byte_counts = {}
    for dtype in (np.uint32, np.uint64):
        data = _data(dtype, n=n, seed=2)
        cluster = Cluster(heterogeneous_cluster([1.0, 1.0], memory_items=1024))
        res = sort_array(
            cluster, perf, data, PSRSConfig(block_items=128, message_items=512)
        )
        byte_counts[np.dtype(dtype).itemsize] = res.network_bytes
    assert byte_counts[8] > 1.7 * byte_counts[4]
