"""Direct property tests of the eight benchmark generators.

The fuzzer's determinism guarantee rests on the workload layer being a
pure function of ``(benchmark, n, seed, dtype)`` — these tests pin that
contract (and each distribution's shape) independently of the sort
pipeline that usually consumes the arrays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import BENCHMARKS, generate, make_benchmark
from repro.workloads.records import SUPPORTED_KEY_DTYPES

ALL_IDS = sorted(BENCHMARKS)
ALL_NAMES = [BENCHMARKS[i].name for i in ALL_IDS]

bench_ids = st.sampled_from(ALL_IDS)
sizes = st.integers(min_value=1, max_value=4096)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
dtypes = st.sampled_from([np.dtype(d) for d in SUPPORTED_KEY_DTYPES])


@given(which=bench_ids, n=sizes, seed=seeds, dtype=dtypes)
@settings(max_examples=60)
def test_same_inputs_same_array(which, n, seed, dtype):
    a = make_benchmark(which, n, seed=seed, dtype=dtype)
    b = make_benchmark(which, n, seed=seed, dtype=dtype)
    assert a.dtype == dtype and a.size == n
    np.testing.assert_array_equal(a, b)


@given(which=bench_ids, n=st.integers(min_value=64, max_value=2048), seed=seeds)
def test_different_seeds_differ(which, n, seed):
    a = make_benchmark(which, n, seed=seed)
    b = make_benchmark(which, n, seed=seed + 1)
    # every generator draws from its rng, so a seed change must show
    # (n >= 64 makes an accidental full collision astronomically unlikely)
    assert not np.array_equal(a, b)


@given(which=bench_ids, n=sizes, seed=seeds, dtype=dtypes)
@settings(max_examples=40)
def test_name_and_id_agree(which, n, seed, dtype):
    by_id = make_benchmark(which, n, seed=seed, dtype=dtype)
    by_name = make_benchmark(BENCHMARKS[which].name, n, seed=seed, dtype=dtype)
    np.testing.assert_array_equal(by_id, by_name)


@given(n=st.integers(min_value=16, max_value=8192), seed=seeds, dtype=dtypes)
@settings(max_examples=40)
def test_zipf_distinct_count(n, seed, dtype):
    out = make_benchmark("zipf", n, seed=seed, dtype=dtype)
    distinct = np.unique(out).size
    # the spec promises ~sqrt(n) distinct values (the drawn value table
    # can collide or not all be sampled, so the bound is one-sided)
    assert 1 <= distinct <= max(2, int(np.sqrt(max(n, 4))))


@given(n=st.integers(min_value=1, max_value=8192), seed=seeds, dtype=dtypes)
@settings(max_examples=40)
def test_all_equal_has_one_key(n, seed, dtype):
    out = make_benchmark("all_equal", n, seed=seed, dtype=dtype)
    assert np.unique(out).size == 1


@given(n=st.integers(min_value=2, max_value=4096), seed=seeds)
def test_sorted_and_reverse_are_monotone(n, seed):
    asc = make_benchmark("sorted", n, seed=seed)
    desc = make_benchmark("reverse", n, seed=seed)
    assert np.all(np.diff(asc.astype(np.int64)) >= 0)
    assert np.all(np.diff(desc.astype(np.int64)) <= 0)
    # reverse is exactly sorted flipped (same seed, same draws)
    np.testing.assert_array_equal(desc, asc[::-1])


@pytest.mark.parametrize("which", ALL_IDS, ids=ALL_NAMES)
def test_zero_items_is_legal(which):
    out = make_benchmark(which, 0)
    assert out.size == 0 and out.dtype == np.uint32


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        make_benchmark("no_such_workload", 16)
    with pytest.raises(KeyError):
        make_benchmark(99, 16)
    with pytest.raises(ValueError):
        make_benchmark(0, -1)


def test_generate_alias_matches():
    np.testing.assert_array_equal(
        generate("uniform", 128, seed=7), make_benchmark(0, 128, seed=7)
    )
