"""Tests for the balanced merge sort and distribution sort baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extsort.balanced import balanced_merge_sort
from repro.extsort.distribution import distribution_sort
from repro.extsort.polyphase import polyphase_sort
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark
from repro.workloads.records import is_sorted, verify_permutation

from tests.conftest import file_from_array, make_disk


def _setup(arr, B=8, capacity=48):
    disk = make_disk()
    mem = MemoryManager(capacity=capacity)
    src = file_from_array(np.asarray(arr, dtype=np.uint32), disk, B=B, mem=mem)
    return disk, mem, src


class TestBalancedMergeSort:
    def test_sorts_random(self, rng):
        data = rng.integers(0, 2**31, 800)
        disk, mem, src = _setup(data)
        res = balanced_merge_sort(src, disk, mem)
        assert is_sorted(res.output.to_array())
        assert verify_permutation(data, res.output.to_array())
        assert mem.in_use == 0

    def test_empty(self):
        disk, mem, src = _setup([])
        res = balanced_merge_sort(src, disk, mem)
        assert res.n_items == 0

    def test_pass_count(self, rng):
        data = rng.integers(0, 2**31, 1000)
        disk, mem, src = _setup(data, capacity=40)  # load 32 -> 32 runs, k=4
        res = balanced_merge_sort(src, disk, mem, merge_order=4)
        assert res.n_initial_runs == 32
        assert res.n_passes == 3  # ceil(log4(32)) = 3

    def test_explicit_order_too_big_rejected(self, rng):
        disk, mem, src = _setup(rng.integers(0, 9, 100), capacity=40)
        with pytest.raises(ValueError, match="needs"):
            balanced_merge_sort(src, disk, mem, merge_order=10)

    def test_order_below_two_rejected(self, rng):
        disk, mem, src = _setup(rng.integers(0, 9, 100))
        with pytest.raises(ValueError, match="merge order"):
            balanced_merge_sort(src, disk, mem, merge_order=1)

    def test_binary_merge(self, rng):
        data = rng.integers(0, 2**31, 300)
        disk, mem, src = _setup(data)
        res = balanced_merge_sort(src, disk, mem, merge_order=2)
        assert verify_permutation(data, res.output.to_array())

    def test_more_io_than_polyphase_same_arity(self, rng):
        """Polyphase's point: fewer item I/Os than a balanced sort of the
        same arity because phases don't move every run."""
        data = rng.integers(0, 2**31, 4000).astype(np.uint32)

        disk_b, mem_b, src_b = _setup(data, B=8, capacity=40)
        base_b = disk_b.stats.item_ios
        balanced_merge_sort(src_b, disk_b, mem_b, merge_order=3)
        io_balanced = disk_b.stats.item_ios - base_b

        disk_p, mem_p, src_p = _setup(data, B=8, capacity=40)
        base_p = disk_p.stats.item_ios
        polyphase_sort(src_p, disk_p, mem_p, n_tapes=4)
        io_polyphase = disk_p.stats.item_ios - base_p

        assert io_polyphase < io_balanced


class TestDistributionSort:
    def test_sorts_random(self, rng):
        data = rng.integers(0, 2**31, 800)
        disk, mem, src = _setup(data)
        res = distribution_sort(src, disk, mem)
        assert is_sorted(res.output.to_array())
        assert verify_permutation(data, res.output.to_array())
        assert mem.in_use == 0

    def test_empty(self):
        disk, mem, src = _setup([])
        res = distribution_sort(src, disk, mem)
        assert res.n_items == 0

    def test_in_core_base_case(self, rng):
        data = rng.integers(0, 99, 30)
        disk, mem, src = _setup(data, capacity=64)
        res = distribution_sort(src, disk, mem)
        assert res.max_depth == 0
        assert is_sorted(res.output.to_array())

    def test_all_equal_keys_terminate(self):
        # A single duplicated key defeats splitters; the constant-bucket
        # path must terminate without infinite recursion.
        data = np.full(600, 42)
        disk, mem, src = _setup(data)
        res = distribution_sort(src, disk, mem)
        np.testing.assert_array_equal(res.output.to_array(), data)

    def test_two_values_terminate(self, rng):
        data = rng.choice([3, 9], size=700).astype(np.uint32)
        disk, mem, src = _setup(data)
        res = distribution_sort(src, disk, mem)
        assert is_sorted(res.output.to_array())
        assert verify_permutation(data, res.output.to_array())

    def test_fanout_too_big_rejected(self, rng):
        disk, mem, src = _setup(rng.integers(0, 9, 100), capacity=40)
        with pytest.raises(ValueError, match="fanout"):
            distribution_sort(src, disk, mem, fanout=8)

    def test_budget_too_small_rejected(self, rng):
        disk, mem, src = _setup(rng.integers(0, 9, 100), capacity=24)
        with pytest.raises(ValueError, match="too small"):
            distribution_sort(src, disk, mem)

    def test_source_left_intact(self, rng):
        data = rng.integers(0, 2**31, 500).astype(np.uint32)
        disk, mem, src = _setup(data)
        distribution_sort(src, disk, mem)
        np.testing.assert_array_equal(src.to_array(), data)

    @pytest.mark.parametrize("bench", [0, 2, 3, 5, 7])
    def test_adversarial_benchmarks(self, bench):
        data = make_benchmark(bench, 600, seed=bench)
        disk, mem, src = _setup(data)
        res = distribution_sort(src, disk, mem)
        assert is_sorted(res.output.to_array())
        assert verify_permutation(data, res.output.to_array())


@settings(max_examples=20, deadline=None)
@given(data=st.lists(st.integers(0, 2**32 - 1), max_size=400))
def test_property_three_engines_agree(data):
    expected = np.sort(np.asarray(data, dtype=np.uint32))

    disk, mem, src = _setup(data, B=4, capacity=32)
    np.testing.assert_array_equal(
        balanced_merge_sort(src, disk, mem).output.to_array(), expected
    )
    disk, mem, src = _setup(data, B=4, capacity=32)
    np.testing.assert_array_equal(
        distribution_sort(src, disk, mem).output.to_array(), expected
    )
    disk, mem, src = _setup(data, B=4, capacity=32)
    np.testing.assert_array_equal(
        polyphase_sort(src, disk, mem, n_tapes=4).output.to_array(), expected
    )
