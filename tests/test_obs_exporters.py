"""Tests for the JSONL, Chrome-trace, and Prometheus exporters."""

import json
import pathlib
import pytest

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.obs.events import (
    BarrierWait,
    BlockRead,
    BlockWrite,
    FaultInjected,
    MemRelease,
    MemReserve,
    NetTransfer,
    Retry,
    StepBegin,
    StepEnd,
)
from repro.obs.exporters import (
    read_jsonl,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads.generators import make_benchmark

DATA_DIR = pathlib.Path(__file__).parent / "data"


def hand_built_events():
    """A tiny, fixed event stream exercising every exporter branch."""
    return [
        StepBegin(t=0.0, node=0, step="1:local-sort"),
        StepBegin(t=0.0, node=1, step="1:local-sort"),
        BlockRead(t=0.2, node=0, step="1:local-sort", disk="node0.disk",
                  n_items=256, itemsize=4, cost=0.2),
        MemReserve(t=0.2, node=0, step="1:local-sort", n_items=256, in_use=256),
        BlockWrite(t=0.5, node=0, step="1:local-sort", disk="node0.disk",
                   n_items=256, itemsize=4, cost=0.3),
        MemRelease(t=0.5, node=0, step="1:local-sort", n_items=256, in_use=0),
        StepEnd(t=0.6, node=0, step="1:local-sort", duration=0.6),
        StepEnd(t=1.0, node=1, step="1:local-sort", duration=1.0),
        BarrierWait(t=1.0, node=0, step="1:local-sort", wait=0.4),
        BarrierWait(t=1.0, node=1, step="1:local-sort", wait=0.0),
        NetTransfer(t=1.3, node=0, step="4:redistribute", src=0, dst=1,
                    nbytes=1024, duration=0.3),
        FaultInjected(t=1.4, node=1, step="4:redistribute", category="disk",
                      detail="node1.disk read io#7"),
        Retry(t=1.5, node=-1, step="4:redistribute", attempt=1, backoff=0.05),
    ]


class TestChromeTraceGolden:
    def test_matches_golden_file(self):
        """Byte-stable export: key order, µs conversion, track layout."""
        got = to_chrome_trace(hand_built_events(), node_names={0: "n0", 1: "n1"})
        golden = json.loads((DATA_DIR / "chrome_trace_golden.json").read_text())
        assert got == golden

    def test_span_ts_monotonic_and_start_adjusted(self):
        trace = to_chrome_trace(hand_built_events())
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        ts = [e["ts"] for e in spans]
        assert ts == sorted(ts)
        # StepEnd(t=0.6, duration=0.6) -> span starts at t=0.
        step0 = next(e for e in spans if e["name"] == "1:local-sort" and e["pid"] == 0)
        assert step0["ts"] == 0.0 and step0["dur"] == 0.6 * 1e6

    def test_cluster_events_get_cluster_pid(self):
        trace = to_chrome_trace(hand_built_events())
        retry = next(
            e for e in trace["traceEvents"] if e["name"] == "retry:4:redistribute"
        )
        assert retry["pid"] == 10_000
        proc_names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert proc_names[10_000] == "cluster"

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "t.trace.json"
        write_chrome_trace(str(path), hand_built_events())
        loaded = json.loads(path.read_text())
        assert loaded == to_chrome_trace(hand_built_events())


class TestJSONL:
    def test_roundtrip_with_meta(self, tmp_path):
        path = tmp_path / "e.jsonl"
        events = hand_built_events()
        write_jsonl(str(path), events, meta={"n_items": 512, "perf": [1, 1]})
        meta, back = read_jsonl(str(path))
        assert meta == {"n_items": 512, "perf": [1, 1]}
        assert back == events

    def test_roundtrip_without_meta(self, tmp_path):
        path = tmp_path / "e.jsonl"
        write_jsonl(str(path), hand_built_events())
        meta, back = read_jsonl(str(path))
        assert meta is None
        assert back == hand_built_events()


class TestPrometheus:
    def test_counters_and_format(self):
        text = to_prometheus(hand_built_events())
        lines = text.splitlines()
        assert '# TYPE repro_blocks_read_total counter' in lines
        assert 'repro_blocks_read_total{disk="node0.disk",node="0"} 1' in lines
        assert 'repro_items_write_total{disk="node0.disk",node="0"} 256' in lines
        assert 'repro_net_bytes_total{dst="1",src="0"} 1024' in lines
        assert 'repro_mem_in_use_peak_items{node="0"} 256' in lines
        assert 'repro_faults_total{category="disk"} 1' in lines
        assert 'repro_retries_total{step="4:redistribute"} 1' in lines
        # Metric families are emitted sorted and only once.
        names = [ln.split("{")[0] for ln in lines if ln and not ln.startswith("#")]
        assert names == sorted(names)


class TestRealRunTrace:
    @pytest.mark.parametrize("kernel", ["event", "lockstep"])
    def test_sorted_run_has_five_step_spans_per_node(self, kernel):
        perf = PerfVector([1, 1, 4, 4])
        n = perf.nearest_exact(16_000)
        data = make_benchmark(0, n, seed=0)
        cluster = Cluster(
            heterogeneous_cluster([1.0, 1.0, 4.0, 4.0], memory_items=2048),
            kernel=kernel,
        )
        cluster.bus.set_level("io")
        sort_array(
            cluster, perf, data, PSRSConfig(block_items=256, message_items=2048)
        )
        trace = to_chrome_trace(cluster.bus.events)
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        ts = [e["ts"] for e in spans]
        assert ts == sorted(ts)
        for rank in range(4):
            steps = [
                e for e in spans if e["pid"] == rank and e.get("cat") == "step"
            ]
            assert len(steps) >= 5
        assert all(e["dur"] >= 0 for e in spans)
