"""Hypothesis stateful tests on the storage machinery's invariants.

Drives random interleavings of writers, cursors and memory reservations
and checks the global invariants: accounting balances, files stay
compactly packed, cursors deliver exactly their range in order.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.extsort.multiway import RunCursor, RunRef
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager


class StorageMachine(RuleBasedStateMachine):
    """Random writer/cursor/file interleavings on one disk."""

    B = 8

    @initialize()
    def setup(self):
        self.disk = SimDisk(DiskParams(seek_time=1e-5, bandwidth=1e9))
        self.mem = MemoryManager.unlimited()
        self.files: list[BlockFile] = []
        self.expected: list[list[int]] = []  # mirror of each file's items
        self.writers: list[tuple[int, BlockWriter]] = []
        self.cursors: list[tuple[int, RunCursor, list[int]]] = []

    # -- rules ---------------------------------------------------------------

    @rule()
    def new_file(self):
        self.files.append(BlockFile(self.disk, self.B))
        self.expected.append([])

    @precondition(lambda self: self.files)
    @rule(data=st.data())
    def open_writer(self, data):
        idx = data.draw(st.integers(0, len(self.files) - 1))
        # Only one writer per file, and only while no cursor reads it and
        # the file is compactly packed (not ended by another writer).
        if any(i == idx for i, _ in self.writers):
            return
        f = self.files[idx]
        if f.n_blocks and f.inspect_block(f.n_blocks - 1).size < self.B:
            return
        self.writers.append((idx, BlockWriter(f, self.mem)))

    @precondition(lambda self: self.writers)
    @rule(data=st.data(), items=st.lists(st.integers(0, 2**32 - 1), max_size=30))
    def write_items(self, data, items):
        wi = data.draw(st.integers(0, len(self.writers) - 1))
        idx, w = self.writers[wi]
        w.write(np.asarray(items, dtype=np.uint32))
        self.expected[idx].extend(int(x) & 0xFFFFFFFF for x in items)

    @precondition(lambda self: self.writers)
    @rule(data=st.data())
    def close_writer(self, data):
        wi = data.draw(st.integers(0, len(self.writers) - 1))
        _idx, w = self.writers.pop(wi)
        w.close()

    @precondition(lambda self: self.files)
    @rule(data=st.data())
    def open_cursor(self, data):
        idx = data.draw(st.integers(0, len(self.files) - 1))
        if any(i == idx for i, _ in self.writers):
            return  # don't read files mid-write
        f = self.files[idx]
        if f.n_items == 0:
            return
        lo = data.draw(st.integers(0, f.n_items - 1))
        hi = data.draw(st.integers(lo, f.n_items))
        ref = RunRef(f, lo, hi)
        self.cursors.append((idx, RunCursor(ref, self.mem), self.expected[idx][lo:hi]))

    @precondition(lambda self: self.cursors)
    @rule(data=st.data(), n=st.integers(1, 20))
    def advance_cursor(self, data, n):
        ci = data.draw(st.integers(0, len(self.cursors) - 1))
        idx, cur, remaining = self.cursors[ci]
        if cur.exhausted:
            self.cursors.pop(ci)
            return
        got = cur.take_upto(n)
        assert list(got) == remaining[: got.size]
        self.cursors[ci] = (idx, cur, remaining[got.size :])

    @precondition(lambda self: self.cursors)
    @rule(data=st.data())
    def drop_cursor(self, data):
        ci = data.draw(st.integers(0, len(self.cursors) - 1))
        _, cur, _ = self.cursors.pop(ci)
        cur.drop()

    # -- invariants ------------------------------------------------------------

    @invariant()
    def files_match_mirror(self):
        for f, exp in zip(self.files, self.expected):
            # Items the writers have flushed are a prefix of the mirror.
            flushed = f.to_array()
            assert list(flushed) == exp[: flushed.size]

    @invariant()
    def compact_packing(self):
        for f in self.files:
            for b in range(max(0, f.n_blocks - 1)):
                assert f.inspect_block(b).size == self.B

    @invariant()
    def accounting_is_bounded(self):
        # Every open writer holds exactly B; cursors hold at most B each.
        lower = len(self.writers) * self.B
        upper = lower + len(self.cursors) * self.B
        assert lower <= self.mem.in_use <= upper

    def teardown(self):
        for _, w in self.writers:
            w.close()
        for _, cur, _ in self.cursors:
            cur.drop()
        assert self.mem.in_use == 0


TestStorageMachine = StorageMachine.TestCase
TestStorageMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
