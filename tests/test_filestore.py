"""Tests for real-file-backed block files and the spill store."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm.blockfile import BlockWriter
from repro.pdm.filestore import DiskBackedBlockFile, FileStore
from repro.pdm.memory import MemoryManager

from tests.conftest import make_disk


class TestDiskBackedBlockFile:
    def test_roundtrip(self, tmp_path, disk):
        f = DiskBackedBlockFile(disk, B=8, directory=str(tmp_path))
        mem = MemoryManager.unlimited()
        data = np.arange(100, dtype=np.uint32)
        with BlockWriter(f, mem) as w:
            w.write(data)
        np.testing.assert_array_equal(f.to_array(), data)
        assert f.n_blocks == 13

    def test_payload_really_on_host_fs(self, tmp_path, disk):
        f = DiskBackedBlockFile(disk, B=8, directory=str(tmp_path))
        with BlockWriter(f, MemoryManager.unlimited()) as w:
            w.write(np.arange(64, dtype=np.uint32))
        assert os.path.getsize(f.path) == 64 * 4

    def test_read_block_matches_memory_variant(self, tmp_path, disk):
        data = np.random.default_rng(0).integers(0, 2**32, 77).astype(np.uint32)
        f = DiskBackedBlockFile(disk, B=16, directory=str(tmp_path))
        with BlockWriter(f, MemoryManager.unlimited()) as w:
            w.write(data)
        np.testing.assert_array_equal(f.read_block(2), data[32:48])
        np.testing.assert_array_equal(f.read_block(4), data[64:77])

    def test_charges_disk_like_memory_variant(self, tmp_path):
        disk = make_disk()
        f = DiskBackedBlockFile(disk, B=8, directory=str(tmp_path))
        f.append_block(np.arange(8))
        f.read_block(0)
        assert disk.stats.blocks_written == 1
        assert disk.stats.blocks_read == 1

    def test_clear_truncates(self, tmp_path, disk):
        f = DiskBackedBlockFile(disk, B=8, directory=str(tmp_path))
        f.append_block(np.arange(8))
        f.clear()
        assert f.n_items == 0
        assert os.path.getsize(f.path) == 0

    def test_out_of_range_read(self, tmp_path, disk):
        f = DiskBackedBlockFile(disk, B=8, directory=str(tmp_path))
        with pytest.raises(IndexError):
            f.read_block(0)

    def test_delete(self, tmp_path, disk):
        f = DiskBackedBlockFile(disk, B=8, directory=str(tmp_path))
        f.append_block(np.arange(4))
        path = f.path
        f.delete()
        assert not os.path.exists(path)

    def test_partial_block_invariant_kept(self, tmp_path, disk):
        f = DiskBackedBlockFile(disk, B=8, directory=str(tmp_path))
        f.append_block(np.arange(3))
        with pytest.raises(ValueError, match="partial block"):
            f.append_block(np.arange(8))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 2**32 - 1), max_size=150))
    def test_property_roundtrip(self, items):
        disk = make_disk()
        with FileStore() as store:
            f = store.create(disk, B=7)
            with BlockWriter(f, MemoryManager.unlimited()) as w:
                w.write(np.asarray(items, dtype=np.uint32))
            np.testing.assert_array_equal(
                f.to_array(), np.asarray(items, dtype=np.uint32)
            )


class TestFileStore:
    def test_creates_distinct_files(self, disk):
        with FileStore() as store:
            a = store.create(disk, B=8)
            b = store.create(disk, B=8)
            assert a.path != b.path
            assert store.files_created == 2

    def test_cleanup_removes_directory(self, disk):
        store = FileStore()
        store.create(disk, B=8).append_block(np.arange(4))
        d = store.directory
        store.cleanup()
        assert not os.path.isdir(d)

    def test_explicit_directory_not_removed(self, tmp_path, disk):
        d = str(tmp_path / "spill")
        store = FileStore(directory=d)
        store.create(disk, B=8)
        store.cleanup()
        assert os.path.isdir(d)  # caller-owned directory is kept

    def test_bytes_on_disk(self, disk):
        with FileStore() as store:
            f = store.create(disk, B=8)
            f.append_block(np.arange(8, dtype=np.uint32))
            assert store.bytes_on_disk() == 32


class TestFactoryIntegration:
    def test_polyphase_spills_to_real_files(self, rng):
        """Install the store on a disk: every intermediate file (runs,
        tapes, output) lives on the host filesystem."""
        from repro.extsort.polyphase import polyphase_sort
        from repro.workloads.records import verify_sorted_permutation

        disk = make_disk()
        with FileStore() as store:
            disk.file_factory = store.create
            mem = MemoryManager(capacity=64)
            data = rng.integers(0, 2**31, 600).astype(np.uint32)
            src = store.create(disk, B=8)
            with BlockWriter(src, mem) as w:
                w.write(data)
            res = polyphase_sort(src, disk, mem, n_tapes=4)
            assert isinstance(res.output, DiskBackedBlockFile)
            verify_sorted_permutation(data, res.output.to_array())
            assert store.files_created > 4  # runs + tapes + source

    def test_full_psrs_on_file_backed_cluster(self):
        """End-to-end Algorithm 1 with every node spilling to real files."""
        from repro.cluster.machine import Cluster, heterogeneous_cluster
        from repro.core.external_psrs import PSRSConfig, sort_array
        from repro.core.perf import PerfVector
        from repro.workloads.generators import make_benchmark
        from repro.workloads.records import verify_sorted_permutation

        perf = PerfVector([1, 3])
        n = perf.nearest_exact(4_000)
        data = make_benchmark(0, n, seed=0)
        cluster = Cluster(heterogeneous_cluster([1.0, 3.0], memory_items=512))
        with FileStore() as store:
            for node in cluster.nodes:
                node.disk.file_factory = store.create
            res = sort_array(
                cluster, perf, data, PSRSConfig(block_items=64, message_items=256)
            )
            verify_sorted_permutation(data, res.to_array())
            assert all(isinstance(f, DiskBackedBlockFile) for f in res.outputs)
