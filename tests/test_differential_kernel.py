"""Differential harness: the event kernel is equivalent to lockstep.

The two execution kernels (:mod:`repro.cluster.kernel`) may differ only
in *timing*.  Every timing-free observable must be bit-identical across
them:

* the sorted output (compared as a sha256 of the output bytes),
* the per-(step, node) block/item I/O counters,
* the oracle verdicts — sanitizers, sorted-permutation verification and
  the paper-bounds auditor (status, violation key, worst ratio).

The harness drives both kernels through
:class:`~repro.fuzz.executor.ScenarioExecutor` (the fuzzer's oracle
stack) over three scenario sources: the checked-in fuzz corpus, a
hand-picked grid of corner scenarios (perf vectors up to p=16, skewed /
near-sorted / duplicate-heavy workloads, node kills at every step 2-5),
and a hypothesis-generated sweep of the scenario envelope.

A golden-trace leg closes the loop with the observability stack: a
{1,1,4,4} external_psrs run recorded under the *event* kernel must still
conform to the statically extracted ``protocol-external_psrs`` schema —
barrier removal may not reorder or invent network traffic.
"""

from __future__ import annotations

import glob
import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.flow import load_project
from repro.analysis.protocol import extract_schema
from repro.faults.plan import FaultPlan, NodeKill
from repro.fuzz.engine import load_case
from repro.fuzz.executor import RunOutcome, ScenarioExecutor
from repro.fuzz.scenario import Scenario

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "fuzz_corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.jsonl")))

pytestmark = pytest.mark.no_sanitizers  # the executor installs its own


def run_both(scenario: Scenario) -> tuple[RunOutcome, RunOutcome]:
    ev = ScenarioExecutor(collect_coverage=False, kernel="event").run(scenario)
    ls = ScenarioExecutor(collect_coverage=False, kernel="lockstep").run(scenario)
    return ev, ls


def assert_equivalent(ev: RunOutcome, ls: RunOutcome) -> None:
    """Everything timing-free must match exactly."""
    assert ev.status == ls.status
    assert ev.n_sorted == ls.n_sorted
    assert ev.output_digest == ls.output_digest
    assert ev.io_counters == ls.io_counters
    ev_key = ev.violation.key() if ev.violation else None
    ls_key = ls.violation.key() if ls.violation else None
    assert ev_key == ls_key
    # The audit bounds are pure item counts, so the worst ratio is a
    # deterministic function of the (identical) counters.
    assert ev.worst_ratio == ls.worst_ratio
    # No silent skips: a finished fault-free run must carry a digest.
    if ev.status == "ok":
        assert ev.output_digest


class TestCorpusDifferential:
    """Every checked-in fuzz case runs identically under both kernels."""

    @pytest.mark.parametrize(
        "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
    )
    def test_corpus_case(self, path):
        scenario = load_case(path).scenario
        ev, ls = run_both(scenario)
        assert_equivalent(ev, ls)

    def test_corpus_is_not_empty(self):
        assert len(CORPUS) >= 4


# Hand-picked corners: wide perf vectors (p up to 16), the skewed /
# near-sorted / duplicate-heavy workloads, and kills at every step the
# fault space covers (2-5), on fast and slow victims.
GRID = [
    Scenario(n_items=4096, perf=(1,) * 16, memory_items=512,
             block_items=64, message_items=128),
    Scenario(benchmark="zipf", n_items=8192, perf=(8, 4, 2, 1, 1, 1, 1, 1)),
    Scenario(benchmark="nearly_sorted", n_items=4096, perf=(1, 2, 3, 4, 5)),
    Scenario(benchmark="all_equal", n_items=4096, perf=(1, 1),
             memory_items=192, block_items=64, message_items=256),
    Scenario(benchmark="reverse", n_items=2048, perf=(2, 1), dtype="uint64"),
    Scenario(benchmark="staggered", n_items=4096, perf=(1, 1, 4, 4),
             dtype="int32"),
] + [
    Scenario(
        n_items=4096,
        perf=(1, 1, 4, 4),
        fault_plan=FaultPlan(node_kills=(NodeKill(node=victim, step=step),)),
        retries=3,
    )
    for step in (2, 3, 4, 5)
    for victim in (0, 3)
]


class TestGridDifferential:
    @pytest.mark.parametrize(
        "scenario", GRID,
        ids=[
            f"{s.benchmark}-p{s.p}-{s.dtype}"
            + (f"-kill{s.fault_plan.node_kills[0].node}"
               f"s{s.fault_plan.node_kills[0].step}" if s.fault_plan else "")
            for s in GRID
        ],
    )
    def test_grid_case(self, scenario):
        ev, ls = run_both(scenario.validate())
        assert_equivalent(ev, ls)


@st.composite
def scenarios(draw) -> Scenario:
    """Envelope-respecting scenarios, sized for a sub-second run each."""
    p = draw(st.integers(min_value=1, max_value=16))
    perf = tuple(
        draw(st.lists(st.integers(1, 8), min_size=p, max_size=p))
    )
    block = draw(st.sampled_from([16, 32, 64]))
    mem_blocks = draw(st.integers(min_value=3, max_value=8))
    fault = None
    retries = None
    if p >= 2 and draw(st.booleans()):
        fault = FaultPlan(
            node_kills=(
                NodeKill(
                    node=draw(st.integers(0, p - 1)),
                    step=draw(st.integers(2, 5)),
                ),
            )
        )
        retries = draw(st.integers(1, 4))
    return Scenario(
        benchmark=draw(
            st.sampled_from(
                ["uniform", "zipf", "nearly_sorted", "all_equal", "sorted",
                 "reverse", "staggered"]
            )
        ),
        n_items=draw(st.integers(min_value=64, max_value=2048)),
        dtype=draw(st.sampled_from(["uint16", "uint32", "int32", "uint64"])),
        perf=perf,
        memory_items=mem_blocks * block,
        block_items=block,
        message_items=draw(st.sampled_from([32, 128, 1024])),
        pivot_method=draw(st.sampled_from(["regular", "random", "quantile"])),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        fault_plan=fault,
        retries=retries,
    ).validate()


class TestHypothesisDifferential:
    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(scenario=scenarios())
    def test_random_scenarios(self, scenario):
        ev, ls = run_both(scenario)
        assert_equivalent(ev, ls)


class TestGoldenTraceConformance:
    """Event-kernel runs still satisfy the extracted protocol schema."""

    @pytest.fixture(scope="class")
    def psrs_schema(self):
        project = load_project([Path(repro.__file__).parent])
        return extract_schema(project, "external_psrs")

    def test_event_kernel_run_conforms(self, psrs_schema, tmp_path):
        import numpy as np

        from repro.cluster.machine import Cluster, heterogeneous_cluster
        from repro.core.external_psrs import PSRSConfig, sort_array
        from repro.core.perf import PerfVector
        from repro.obs.conformance import check_conformance
        from repro.obs.exporters import read_jsonl, write_jsonl
        from repro.workloads.generators import make_benchmark

        perf = PerfVector([1, 1, 4, 4])
        n = perf.nearest_exact(2**14)
        data = make_benchmark(0, n, seed=0)
        cluster = Cluster(
            heterogeneous_cluster([1.0, 1.0, 4.0, 4.0], memory_items=1024),
            kernel="event",
        )
        cluster.bus.set_level("io")
        res = sort_array(cluster, perf, data, PSRSConfig(block_items=256,
                                                         message_items=2048))
        assert np.array_equal(res.to_array(), np.sort(data))
        # Round-trip through the JSONL recording format, as `repro audit`
        # consumes it, then validate against the extracted schema.
        run = tmp_path / "run.jsonl"
        write_jsonl(str(run), cluster.bus.events, {"kernel": "event"})
        _, events = read_jsonl(str(run))
        report = check_conformance(psrs_schema, events)
        assert report.ok, report.table().render()
        checked = {r.step for r in report.rows if r.enforced}
        assert {"2:pivots", "4:redistribute"} <= checked
