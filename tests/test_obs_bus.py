"""Tests for the telemetry bus, its views, and the IOStats/Trace fixes."""

import pytest

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.cluster.trace import Trace
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.obs.bus import LEVELS, TelemetryBus
from repro.obs.events import (
    BlockRead,
    BlockWrite,
    FaultInjected,
    MemReserve,
    NetTransfer,
    StepBegin,
    StepEnd,
    event_from_dict,
)
from repro.pdm.stats import IOStats
from repro.workloads.generators import make_benchmark


def _run(n=16_000, level="io", **cfg):
    perf = PerfVector([1, 1, 4, 4])
    n = perf.nearest_exact(n)
    data = make_benchmark(0, n, seed=0)
    cluster = Cluster(heterogeneous_cluster([1.0, 1.0, 4.0, 4.0], memory_items=2048))
    cluster.bus.set_level(level)
    res = sort_array(
        cluster, perf, data, PSRSConfig(block_items=256, message_items=2048, **cfg)
    )
    return cluster, res


class TestBusBasics:
    def test_levels_are_ordered_and_gate_io(self):
        bus = TelemetryBus()
        assert bus.level == "steps"
        assert not bus.captures_io and not bus.captures_memory
        bus.set_level("io")
        assert bus.captures_io and not bus.captures_memory
        bus.set_level("full")
        assert bus.captures_io and bus.captures_memory
        assert LEVELS == ("steps", "io", "full")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown capture level"):
            TelemetryBus(level="everything")

    def test_step_scope_nests_and_unwinds_on_error(self):
        bus = TelemetryBus()
        assert bus.current_step == ""
        with bus.step_scope("outer"):
            assert bus.current_step == "outer"
            with bus.step_scope("inner"):
                assert bus.current_step == "inner"
            assert bus.current_step == "outer"
        with pytest.raises(RuntimeError):
            with bus.step_scope("raising"):
                raise RuntimeError("boom")
        assert bus.current_step == ""

    def test_io_events_suppressed_below_io_level(self):
        bus = TelemetryBus(level="steps")
        bus.record_block_io(
            "read", disk="d", node=0, t=0.0, n_items=4, itemsize=4, cost=0.1
        )
        bus.record_net_transfer(src=0, dst=1, t_end=0.0, nbytes=8, duration=0.1)
        assert bus.events == []
        bus.record_fault("disk", node=0, t=0.0)  # faults always recorded
        assert len(bus.events) == 1 and isinstance(bus.events[0], FaultInjected)

    def test_subscribers_see_events_live(self):
        bus = TelemetryBus(level="io")
        seen = []
        bus.subscribe(seen.append)
        bus.record_step_begin("s", 0, 0.0)
        bus.record_block_io(
            "write", disk="d", node=0, t=1.0, n_items=4, itemsize=4, cost=0.1
        )
        assert [type(e) for e in seen] == [StepBegin, BlockWrite]
        bus.unsubscribe(seen.append)
        bus.record_step_begin("s2", 0, 2.0)
        assert len(seen) == 2

    def test_clear_keeps_level_drops_events_and_trace(self):
        bus = TelemetryBus(level="full")
        bus.record_step_begin("s", 0, 0.0)
        bus.record_step_end("s", 0, 0.0, 1.0)
        old_trace = bus.trace
        bus.clear()
        assert bus.level == "full"
        assert bus.events == []
        assert bus.trace is not old_trace and bus.trace.events == []

    def test_event_roundtrip_through_dict(self):
        e = BlockRead(
            t=1.5, node=2, step="1:local-sort", disk="d0", n_items=256,
            itemsize=4, cost=0.01,
        )
        assert event_from_dict(e.to_dict()) == e
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "bogus"})
        with pytest.raises(ValueError, match="missing field"):
            event_from_dict({"kind": "block_read", "t": 0.0})


class TestClusterWiring:
    def test_steps_level_records_only_step_events(self):
        cluster, _ = _run(level="steps")
        kinds = {type(e) for e in cluster.bus.events}
        assert StepEnd in kinds
        assert BlockRead not in kinds and NetTransfer not in kinds

    def test_io_level_records_block_and_net_events(self):
        cluster, res = _run(level="io")
        reads = [e for e in cluster.bus.events if isinstance(e, BlockRead)]
        writes = [e for e in cluster.bus.events if isinstance(e, BlockWrite)]
        xfers = [e for e in cluster.bus.events if isinstance(e, NetTransfer)]
        # Event stream and IOStats counters agree exactly.
        assert len(reads) == res.io.blocks_read
        assert len(writes) == res.io.blocks_written
        assert sum(e.n_items for e in reads) == res.io.items_read
        assert sum(e.n_items for e in writes) == res.io.items_written
        assert len(xfers) == res.network_messages
        assert sum(e.nbytes for e in xfers) == res.network_bytes

    def test_full_level_adds_memory_events(self):
        cluster, _ = _run(n=4_000, level="full")
        assert any(isinstance(e, MemReserve) for e in cluster.bus.events)

    def test_every_io_event_attributed_to_a_step(self):
        cluster, _ = _run(level="io")
        for e in cluster.bus.events:
            if isinstance(e, (BlockRead, BlockWrite)):
                assert e.step != ""

    def test_trace_property_is_bus_view(self):
        cluster, _ = _run(level="steps")
        assert cluster.trace is cluster.bus.trace
        assert set(cluster.trace.steps()) >= {
            "1:local-sort", "2:pivots", "3:partition",
            "4:redistribute", "5:final-merge",
        }

    def test_labels_view_matches_step_io(self):
        cluster, res = _run(level="steps")  # labels work at every level
        merged = IOStats.merge([node.disk.stats for node in cluster.nodes])
        assert merged.labels
        for step, io in res.step_io.items():
            assert merged.labels.get(step, 0) == io.block_ios

    def test_reset_clears_bus(self):
        cluster, _ = _run(n=4_000, level="io")
        assert cluster.bus.events
        cluster.reset()
        assert cluster.bus.events == []
        assert cluster.trace.events == []
        assert cluster.bus.level == "io"


class TestIOStatsFixes:
    def test_merge_accumulates_without_snapshots(self, monkeypatch):
        """merge(N stats) must do O(N) work: no per-element snapshot/add."""
        calls = {"snapshot": 0, "add": 0}
        orig_snapshot = IOStats.snapshot
        orig_add = IOStats.__add__

        def counting_snapshot(self):
            calls["snapshot"] += 1
            return orig_snapshot(self)

        def counting_add(self, other):
            calls["add"] += 1
            return orig_add(self, other)

        monkeypatch.setattr(IOStats, "snapshot", counting_snapshot)
        monkeypatch.setattr(IOStats, "__add__", counting_add)
        stats = []
        for i in range(50):
            s = IOStats()
            s.record_read(256, 0.01)
            s.bump(f"step{i % 3}")
            stats.append(s)
        out = IOStats.merge(stats)
        assert calls == {"snapshot": 0, "add": 0}
        assert out.blocks_read == 50 and out.items_read == 50 * 256
        assert sum(out.labels.values()) == 50

    def test_merge_equals_repeated_add(self):
        a, b, c = IOStats(), IOStats(), IOStats()
        a.record_read(10, 0.1)
        b.record_write(20, 0.2)
        b.bump("x", 3)
        c.record_read(5, 0.05)
        c.bump("x")
        c.bump("y")
        assert IOStats.merge([a, b, c]) == a + b + c

    def test_str_includes_labels(self):
        s = IOStats()
        s.record_read(256, 0.01)
        s.bump("2:pivots")
        s.bump("1:local-sort", 2)
        text = str(s)
        assert "labels{1:local-sort: 2, 2:pivots: 1}" in text
        assert "labels" not in str(IOStats())


class TestTraceIndex:
    def _trace(self):
        t = Trace()
        t.record("a", 0, 0.0, 1.0)
        t.record("a", 1, 0.0, 2.0)
        t.record("b", 0, 2.0, 5.0)
        return t

    def test_for_step_and_steps(self):
        t = self._trace()
        assert t.steps() == ["a", "b"]
        assert [e.node for e in t.for_step("a")] == [0, 1]
        assert t.for_step("missing") == []

    def test_indexed_queries_match_events(self):
        t = self._trace()
        assert t.step_duration("a") == pytest.approx(2.0)
        assert t.node_busy("a", 0) == pytest.approx(1.0)
        assert t.node_busy("a", 1) == pytest.approx(2.0)
        assert t.node_busy("b", 0) == pytest.approx(3.0)
        assert t.imbalance("a") == pytest.approx(2.0 / 1.5)
        assert t.summary() == {"a": pytest.approx(2.0), "b": pytest.approx(3.0)}

    def test_post_init_indexes_preexisting_events(self):
        t = self._trace()
        t2 = Trace(events=list(t.events))
        assert t2.steps() == t.steps()
        assert t2.step_duration("b") == t.step_duration("b")

    def test_extend_maintains_index(self):
        t = self._trace()
        t2 = Trace()
        t2.extend(t.events)
        t2.record("c", 0, 5.0, 6.0)
        assert t2.steps() == ["a", "b", "c"]
        assert t2.node_busy("c", 0) == pytest.approx(1.0)
        assert t2.step_duration("a") == pytest.approx(2.0)
