"""Integration tests for Algorithm 1 (external heterogeneous PSRS)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import (
    Cluster,
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
)
from repro.core.external_psrs import PSRSConfig, distribute_array, sort_array
from repro.core.perf import PerfVector
from repro.core.theory import load_balance_bound, max_duplicate_count
from repro.workloads.generators import make_benchmark
from repro.workloads.records import is_sorted, verify_sorted_permutation


def _run(perf_vals, n, seed=0, speeds=None, memory=4096, benchmark=0,
         kernel="event", **cfg_kw):
    perf = PerfVector(perf_vals)
    n = perf.nearest_exact(n)
    speeds = speeds if speeds is not None else [float(v) for v in perf_vals]
    cluster = Cluster(heterogeneous_cluster(speeds, memory_items=memory), kernel=kernel)
    data = make_benchmark(benchmark, n, seed=seed)
    cfg = PSRSConfig(block_items=cfg_kw.pop("block_items", 128),
                     message_items=cfg_kw.pop("message_items", 1024), **cfg_kw)
    res = sort_array(cluster, perf, data, cfg)
    return data[: res.n_items], res, cluster


class TestCorrectness:
    def test_sorted_permutation_heterogeneous(self):
        data, res, _ = _run([1, 1, 4, 4], 20_000)
        verify_sorted_permutation(data, res.to_array())

    def test_sorted_permutation_homogeneous(self):
        data, res, _ = _run([1, 1, 1, 1], 20_000)
        verify_sorted_permutation(data, res.to_array())

    def test_node_outputs_are_ordered_ranges(self):
        _, res, _ = _run([1, 2, 3], 9_000)
        prev_max = None
        for f in res.outputs:
            arr = f.to_array()
            assert is_sorted(arr)
            if arr.size and prev_max is not None:
                assert arr[0] >= prev_max
            if arr.size:
                prev_max = arr[-1]

    def test_single_node_cluster(self):
        data, res, _ = _run([1], 3_000)
        verify_sorted_permutation(data, res.to_array())

    def test_two_nodes(self):
        data, res, _ = _run([1, 3], 8_000)
        verify_sorted_permutation(data, res.to_array())

    @pytest.mark.parametrize("bench", list(range(8)))
    def test_all_benchmarks(self, bench):
        data, res, _ = _run([1, 1, 2, 2], 6_000, benchmark=bench)
        verify_sorted_permutation(data, res.to_array())

    def test_zero_copy_partitions_same_result(self):
        data1, res1, _ = _run([1, 2], 6_000, materialize_partitions=True)
        data2, res2, _ = _run([1, 2], 6_000, materialize_partitions=False)
        np.testing.assert_array_equal(res1.to_array(), res2.to_array())

    def test_random_pivot_method(self):
        data, res, _ = _run([1, 1, 2], 6_000, pivot_method="random")
        verify_sorted_permutation(data, res.to_array())

    def test_replacement_run_policy(self):
        data, res, _ = _run([1, 2], 4_000, run_policy="replacement")
        verify_sorted_permutation(data, res.to_array())

    def test_itemwise_engine(self):
        data, res, _ = _run([1, 2], 3_000, engine="itemwise")
        verify_sorted_permutation(data, res.to_array())


class TestLoadBalance:
    def test_smax_near_one_uniform(self):
        _, res, _ = _run([1, 1, 4, 4], 40_000)
        assert res.s_max < 1.15  # paper Table 3: 1.094

    def test_homogeneous_smax_tighter(self):
        _, res, _ = _run([1, 1, 1, 1], 40_000)
        assert res.s_max < 1.08  # paper Table 3: 1.0027

    def test_psrs_theorem_bound_holds(self):
        data, res, _ = _run([1, 2, 5], 24_000)
        d = max_duplicate_count(data)
        for i, received in enumerate(res.received_sizes):
            assert received <= load_balance_bound(res.n_items, res.perf, i, d) + res.perf.p

    def test_theorem_holds_under_heavy_duplicates(self):
        data, res, _ = _run([1, 1, 2], 8_000, benchmark=2)  # zipf
        d = max_duplicate_count(data)
        for i, received in enumerate(res.received_sizes):
            assert received <= load_balance_bound(res.n_items, res.perf, i, d) + res.perf.p

    def test_received_sizes_sum_to_n(self):
        _, res, _ = _run([2, 3, 5], 20_000)
        assert sum(res.received_sizes) == res.n_items


class TestCostModel:
    def test_elapsed_positive_and_steps_recorded(self):
        _, res, _ = _run([1, 2], 6_000)
        assert res.elapsed > 0
        assert set(res.step_times) == {
            "1:local-sort",
            "2:pivots",
            "3:partition",
            "4:redistribute",
            "5:final-merge",
        }

    def test_local_sort_dominates(self):
        """The paper's premise: the sort is I/O-bound in steps 1/5, not
        communication-bound.

        Pinned to the lockstep kernel: the paper's per-step times are
        barrier-to-barrier BSP intervals, and under the event kernel a
        step's span also absorbs the clock drift of whichever node
        reaches its first rendezvous last.
        """
        _, res, _ = _run([1, 1, 1, 1], 40_000, message_items=8192,
                         kernel="lockstep")
        comm_heavy = res.step_times["2:pivots"]
        assert res.step_times["1:local-sort"] > 5 * comm_heavy

    def test_hetero_aware_beats_homogeneous_on_loaded_cluster(self):
        """Table 3's central comparison, at reduced scale.

        Lockstep kernel: the paper's 1.96x ratio is measured between
        barrier-delimited runs; overlap-aware scheduling narrows it (the
        misassigned run hides more of its imbalance), which is the event
        kernel's point, not a regression of this claim.
        """
        n = PerfVector([1, 1, 4, 4]).nearest_exact(40_000)
        data = make_benchmark(0, n, seed=3)
        times = {}
        for vals in ((1, 1, 1, 1), (4, 4, 1, 1)):
            cluster = Cluster(paper_cluster(memory_items=4096), kernel="lockstep")
            res = sort_array(
                cluster,
                PerfVector(list(vals)),
                data,
                PSRSConfig(block_items=128, message_items=1024),
            )
            verify_sorted_permutation(data, res.to_array())
            times[vals] = res.elapsed
        ratio = times[(1, 1, 1, 1)] / times[(4, 4, 1, 1)]
        assert 1.5 < ratio < 3.0  # paper: 303.94 / 155.41 = 1.96

    def test_myrinet_close_to_ethernet(self):
        """Table 3: the algorithm is communication-light, so a 10x faster
        network buys almost nothing."""
        from repro.cluster.network import MYRINET

        n = PerfVector([4, 4, 1, 1]).nearest_exact(30_000)
        data = make_benchmark(0, n, seed=5)
        times = []
        for link_spec in (paper_cluster(memory_items=4096),
                          paper_cluster(memory_items=4096, link=MYRINET)):
            # Lockstep: the paper's network comparison is BSP-delimited;
            # under the event kernel transfer waits overlap with disk
            # service, shifting the (still small) network share.
            cluster = Cluster(link_spec, kernel="lockstep")
            res = sort_array(
                cluster,
                PerfVector([4, 4, 1, 1]),
                data,
                PSRSConfig(block_items=128, message_items=8192),
            )
            times.append(res.elapsed)
        assert times[1] <= times[0]  # Myrinet never slower
        assert times[1] > 0.9 * times[0]  # ...but barely better (paper: equal)

    def test_memory_budget_never_violated(self):
        _, res, cluster = _run([1, 2], 8_000, memory=1024)
        for node in cluster.nodes:
            assert node.mem.in_use == 0
            assert node.mem.high_water <= 1024

    def test_io_counters_populated(self):
        _, res, _ = _run([1, 2], 6_000)
        assert res.io.blocks_read > 0
        assert res.io.blocks_written > 0
        assert res.network_messages > 0


class TestValidation:
    def test_perf_size_mismatch(self):
        cluster = Cluster(homogeneous_cluster(2))
        data = make_benchmark(0, 100)
        with pytest.raises(ValueError, match="perf has"):
            from repro.core.external_psrs import sort_distributed

            files = distribute_array(cluster, PerfVector([1, 1]), data, 32)
            sort_distributed(cluster, PerfVector([1, 1, 1]), files)

    def test_input_count_mismatch(self):
        from repro.core.external_psrs import sort_distributed

        cluster = Cluster(homogeneous_cluster(2))
        data = make_benchmark(0, 100)
        files = distribute_array(cluster, PerfVector([1, 1]), data, 32)
        with pytest.raises(ValueError, match="input files"):
            sort_distributed(cluster, PerfVector([1, 1]), files[:1])

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            PSRSConfig(block_items=0)
        with pytest.raises(ValueError):
            PSRSConfig(message_items=0)
        with pytest.raises(ValueError):
            PSRSConfig(pivot_method="bogus")
        with pytest.raises(ValueError):
            PSRSConfig(oversample=0)

    def test_distribute_array_portions(self):
        perf = PerfVector([1, 3])
        cluster = Cluster(homogeneous_cluster(2))
        data = make_benchmark(0, 400)
        files = distribute_array(cluster, perf, data, 32)
        assert [f.n_items for f in files] == [100, 300]
        assert cluster.elapsed() == 0.0  # untimed by default


@settings(max_examples=10, deadline=None)
@given(
    vals=st.lists(st.integers(1, 4), min_size=1, max_size=4),
    bench=st.integers(0, 7),
    seed=st.integers(0, 99),
)
def test_property_external_psrs_sorts_everything(vals, bench, seed):
    data, res, cluster = _run(vals, 3_000, seed=seed, benchmark=bench)
    verify_sorted_permutation(data, res.to_array())
    for node in cluster.nodes:
        assert node.mem.in_use == 0
