"""Tests for SimDisk charging, IOStats and BlockFile invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pdm.blockfile import BlockFile, BlockReader, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryBudgetError, MemoryManager
from repro.pdm.stats import IOStats

from tests.conftest import file_from_array, make_disk


class TestDiskParams:
    def test_access_cost(self):
        p = DiskParams(seek_time=0.01, bandwidth=100.0)
        assert p.access_cost(50) == pytest.approx(0.01 + 0.5)

    def test_rejects_negative_seek(self):
        with pytest.raises(ValueError):
            DiskParams(seek_time=-1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            DiskParams(bandwidth=0.0)


class TestSimDisk:
    def test_charges_observer(self):
        seen = []
        d = SimDisk(DiskParams(seek_time=1.0, bandwidth=4.0), observer=seen.append)
        d.charge_write(2, itemsize=4)  # 1 + 8/4 = 3 s
        assert seen == [pytest.approx(3.0)]

    def test_slowdown_scales_cost(self):
        d1 = SimDisk(DiskParams(seek_time=1.0, bandwidth=4.0), slowdown=1.0)
        d4 = SimDisk(DiskParams(seek_time=1.0, bandwidth=4.0), slowdown=4.0)
        assert d4.charge_read(2, 4) == pytest.approx(4 * d1.charge_read(2, 4))

    def test_counters(self):
        d = make_disk()
        d.charge_read(8, 4)
        d.charge_write(5, 4)
        assert d.stats.blocks_read == 1
        assert d.stats.blocks_written == 1
        assert d.stats.items_read == 8
        assert d.stats.items_written == 5
        assert d.stats.block_ios == 2

    def test_unique_file_names(self):
        d = make_disk()
        names = {d.next_file_name() for _ in range(100)}
        assert len(names) == 100


class TestIOStats:
    def test_add_and_sub(self):
        a = IOStats(blocks_read=3, items_read=24, busy_time=1.0)
        b = IOStats(blocks_written=2, items_written=10, busy_time=0.5)
        c = a + b
        assert c.blocks_read == 3 and c.blocks_written == 2
        assert (c - a).blocks_written == 2
        assert c.busy_time == pytest.approx(1.5)

    def test_merge(self):
        parts = [IOStats(blocks_read=i) for i in range(5)]
        assert IOStats.merge(parts).blocks_read == 10

    def test_labels_roundtrip(self):
        s = IOStats()
        s.bump("phase1", 3)
        s.bump("phase1")
        t = s.snapshot()
        s.bump("phase2")
        assert t.labels == {"phase1": 4}
        assert (s - t).labels == {"phase2": 1}

    def test_reset(self):
        s = IOStats(blocks_read=5)
        s.reset()
        assert s.block_ios == 0


class TestBlockFile:
    def test_roundtrip(self, disk):
        f = file_from_array(np.arange(100, dtype=np.uint32), disk, B=8)
        assert f.n_items == 100
        assert f.n_blocks == 13  # 12 full + 1 partial of 4
        np.testing.assert_array_equal(f.to_array(), np.arange(100))

    def test_append_oversized_block_rejected(self, disk):
        f = BlockFile(disk, B=8)
        with pytest.raises(ValueError, match="exceeds B"):
            f.append_block(np.arange(9))

    def test_append_after_partial_rejected(self, disk):
        f = BlockFile(disk, B=8)
        f.append_block(np.arange(3))
        with pytest.raises(ValueError, match="partial block"):
            f.append_block(np.arange(8))

    def test_append_empty_is_noop(self, disk):
        f = BlockFile(disk, B=8)
        f.append_block(np.empty(0, dtype=np.uint32))
        assert f.n_blocks == 0
        assert disk.stats.block_ios == 0

    def test_read_block_charges(self, disk):
        f = file_from_array(np.arange(16, dtype=np.uint32), disk, B=8)
        before = disk.stats.blocks_read
        blk = f.read_block(1)
        np.testing.assert_array_equal(blk, np.arange(8, 16))
        assert disk.stats.blocks_read == before + 1

    def test_inspect_is_free(self, disk):
        f = file_from_array(np.arange(16, dtype=np.uint32), disk, B=8)
        before = disk.stats.block_ios
        f.inspect_block(0)
        f.to_array()
        assert disk.stats.block_ios == before

    def test_blocks_detached_from_caller_buffer(self, disk):
        f = BlockFile(disk, B=4)
        buf = np.arange(4, dtype=np.uint32)
        f.append_block(buf)
        buf[:] = 99
        np.testing.assert_array_equal(f.inspect_block(0), np.arange(4))

    def test_clear(self, disk):
        f = file_from_array(np.arange(16, dtype=np.uint32), disk, B=8)
        f.clear()
        assert f.n_items == 0 and f.n_blocks == 0

    def test_rejects_2d_block(self, disk):
        f = BlockFile(disk, B=8)
        with pytest.raises(ValueError, match="1-D"):
            f.append_block(np.zeros((2, 2)))


class TestBlockWriter:
    def test_packs_compactly(self, disk):
        mem = MemoryManager.unlimited()
        f = BlockFile(disk, B=8)
        with BlockWriter(f, mem) as w:
            for chunk in (np.arange(5), np.arange(5), np.arange(3)):
                w.write(chunk)
        assert f.n_items == 13
        assert [f.inspect_block(i).size for i in range(f.n_blocks)] == [8, 5]

    def test_write_one(self, disk):
        mem = MemoryManager.unlimited()
        f = BlockFile(disk, B=4)
        with BlockWriter(f, mem) as w:
            for i in range(6):
                w.write_one(i)
        np.testing.assert_array_equal(f.to_array(), np.arange(6))

    def test_holds_one_block_of_memory(self, disk):
        mem = MemoryManager(capacity=16)
        f = BlockFile(disk, B=8)
        w = BlockWriter(f, mem)
        assert mem.in_use == 8
        w.close()
        assert mem.in_use == 0

    def test_write_after_close_rejected(self, disk):
        mem = MemoryManager.unlimited()
        f = BlockFile(disk, B=8)
        w = BlockWriter(f, mem)
        w.close()
        with pytest.raises(ValueError, match="closed"):
            w.write(np.arange(3))

    def test_double_close_ok(self, disk):
        mem = MemoryManager(capacity=16)
        w = BlockWriter(BlockFile(disk, B=8), mem)
        w.close()
        w.close()
        assert mem.in_use == 0

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=200))
    def test_roundtrip_any_items(self, items):
        disk = make_disk()
        mem = MemoryManager.unlimited()
        f = BlockFile(disk, B=7)
        with BlockWriter(f, mem) as w:
            w.write(np.asarray(items, dtype=np.uint32))
        np.testing.assert_array_equal(f.to_array(), np.asarray(items, dtype=np.uint32))


class TestBlockReader:
    def test_iterates_blocks_in_order(self, disk):
        f = file_from_array(np.arange(20, dtype=np.uint32), disk, B=8)
        mem = MemoryManager(capacity=16)
        got = np.concatenate(list(BlockReader(f, mem)))
        np.testing.assert_array_equal(got, np.arange(20))
        assert mem.in_use == 0

    def test_range_reader(self, disk):
        f = file_from_array(np.arange(32, dtype=np.uint32), disk, B=8)
        mem = MemoryManager.unlimited()
        got = np.concatenate(list(BlockReader(f, mem, start=1, stop=3)))
        np.testing.assert_array_equal(got, np.arange(8, 24))

    def test_invalid_range_rejected(self, disk):
        f = file_from_array(np.arange(16, dtype=np.uint32), disk, B=8)
        with pytest.raises(ValueError, match="invalid block range"):
            BlockReader(f, MemoryManager.unlimited(), start=1, stop=5)

    def test_read_all_respects_budget(self, disk):
        f = file_from_array(np.arange(64, dtype=np.uint32), disk, B=8)
        mem = MemoryManager(capacity=32)
        with pytest.raises(MemoryBudgetError):
            BlockReader(f, mem).read_all()

    def test_read_all(self, disk):
        f = file_from_array(np.arange(20, dtype=np.uint32), disk, B=8)
        got = BlockReader(f, MemoryManager(capacity=32)).read_all()
        np.testing.assert_array_equal(got, np.arange(20))
