"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.analysis.sanitizers import install_sanitizers, uninstall_sanitizers
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager

# Hypothesis budgets: "default" keeps the tier-1 run fast; "nightly" is
# the large-budget sweep CI runs on a schedule (HYPOTHESIS_PROFILE=nightly).
settings.register_profile("default", max_examples=25, deadline=None)
settings.register_profile(
    "nightly", max_examples=300, deadline=None, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    rep = outcome.get_result()
    setattr(item, f"rep_{rep.when}", rep)


@pytest.fixture(autouse=True)
def _repro_sanitizers(request):
    """Run every test under the runtime sanitizers (suite-wide).

    Opt out per test with ``@pytest.mark.no_sanitizers`` (for tests that
    deliberately violate an invariant) or suite-wide with
    ``REPRO_SANITIZERS=0``.  The end-of-test leak check only fires when
    the test body passed — a failing test legitimately leaves
    reservations behind.
    """
    if os.environ.get("REPRO_SANITIZERS", "1") == "0" or request.node.get_closest_marker(
        "no_sanitizers"
    ):
        yield
        return
    san = install_sanitizers()
    try:
        yield
        rep = getattr(request.node, "rep_call", None)
        if rep is not None and rep.passed:
            san.assert_no_leaks()
    finally:
        uninstall_sanitizers(san)


def make_disk(name: str = "d0", seek: float = 1e-3, bw: float = 50e6) -> SimDisk:
    return SimDisk(DiskParams(seek_time=seek, bandwidth=bw), name=name)


def file_from_array(
    arr: np.ndarray,
    disk: SimDisk,
    B: int,
    mem: MemoryManager | None = None,
    dtype=np.uint32,
) -> BlockFile:
    """Write ``arr`` to a fresh BlockFile (charging the disk)."""
    f = BlockFile(disk, B, dtype, name=disk.next_file_name("in"))
    m = mem if mem is not None else MemoryManager.unlimited()
    with BlockWriter(f, m) as w:
        w.write(np.asarray(arr, dtype=dtype))
    return f


@pytest.fixture
def disk() -> SimDisk:
    return make_disk()


@pytest.fixture
def mem_unlimited() -> MemoryManager:
    return MemoryManager.unlimited()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
