"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager


def make_disk(name: str = "d0", seek: float = 1e-3, bw: float = 50e6) -> SimDisk:
    return SimDisk(DiskParams(seek_time=seek, bandwidth=bw), name=name)


def file_from_array(
    arr: np.ndarray,
    disk: SimDisk,
    B: int,
    mem: MemoryManager | None = None,
    dtype=np.uint32,
) -> BlockFile:
    """Write ``arr`` to a fresh BlockFile (charging the disk)."""
    f = BlockFile(disk, B, dtype, name=disk.next_file_name("in"))
    m = mem if mem is not None else MemoryManager.unlimited()
    with BlockWriter(f, m) as w:
        w.write(np.asarray(arr, dtype=dtype))
    return f


@pytest.fixture
def disk() -> SimDisk:
    return make_disk()


@pytest.fixture
def mem_unlimited() -> MemoryManager:
    return MemoryManager.unlimited()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
