"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager

# Hypothesis budgets: "default" keeps the tier-1 run fast; "nightly" is
# the large-budget sweep CI runs on a schedule (HYPOTHESIS_PROFILE=nightly).
settings.register_profile("default", max_examples=25, deadline=None)
settings.register_profile(
    "nightly", max_examples=300, deadline=None, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def make_disk(name: str = "d0", seek: float = 1e-3, bw: float = 50e6) -> SimDisk:
    return SimDisk(DiskParams(seek_time=seek, bandwidth=bw), name=name)


def file_from_array(
    arr: np.ndarray,
    disk: SimDisk,
    B: int,
    mem: MemoryManager | None = None,
    dtype=np.uint32,
) -> BlockFile:
    """Write ``arr`` to a fresh BlockFile (charging the disk)."""
    f = BlockFile(disk, B, dtype, name=disk.next_file_name("in"))
    m = mem if mem is not None else MemoryManager.unlimited()
    with BlockWriter(f, m) as w:
        w.write(np.asarray(arr, dtype=dtype))
    return f


@pytest.fixture
def disk() -> SimDisk:
    return make_disk()


@pytest.fixture
def mem_unlimited() -> MemoryManager:
    return MemoryManager.unlimited()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
