"""Smoke tests: every shipped example must run clean as a subprocess."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_metrics():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    out = proc.stdout
    assert "S(max)" in out
    assert "simulated time" in out
