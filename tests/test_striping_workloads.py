"""Tests for D-disk striping and the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm.striping import StripedFile
from repro.workloads.generators import BENCHMARKS, make_benchmark
from repro.workloads.records import (
    checksum,
    is_sorted,
    key_dtype,
    verify_permutation,
    verify_sorted_permutation,
)

from tests.conftest import make_disk


class TestStripedFile:
    def _make(self, D=4, B=8):
        disks = [make_disk(name=f"d{i}") for i in range(D)]
        return StripedFile(disks, B=B), disks

    def test_round_robin_placement(self):
        sf, disks = self._make(D=4)
        sf.append_stripe([np.full(8, i) for i in range(4)])
        sf.append_stripe([np.full(8, 4 + i) for i in range(4)])
        for d in disks:
            assert d.stats.blocks_written == 2
        np.testing.assert_array_equal(
            sf.to_array(), np.repeat(np.arange(8), 8)
        )

    def test_stripe_time_is_max_not_sum(self):
        sf, disks = self._make(D=4)
        t = sf.append_stripe([np.arange(8) for _ in range(4)])
        # One parallel write of 4 blocks costs ~1 block time, not 4.
        single = disks[0].params.access_cost(8 * 4)
        assert t == pytest.approx(single)

    def test_read_stripe_roundtrip(self):
        sf, _ = self._make(D=3)
        data = np.arange(50, dtype=np.uint32)
        blocks = [data[i : i + 8] for i in range(0, 50, 8)]
        for i in range(0, len(blocks), 3):
            sf.append_stripe(blocks[i : i + 3])
        got = []
        for stripe, t in sf.iter_stripes():
            assert t > 0
            got.extend(np.concatenate(stripe).tolist())
        np.testing.assert_array_equal(got, data)

    def test_out_of_range_stripe(self):
        sf, _ = self._make()
        with pytest.raises(IndexError):
            sf.read_stripe(0)

    def test_oversized_stripe_rejected(self):
        sf, _ = self._make(D=2)
        with pytest.raises(ValueError):
            sf.append_stripe([np.arange(8)] * 3)

    def test_needs_a_disk(self):
        with pytest.raises(ValueError):
            StripedFile([], B=8)

    def test_aggregate_stats(self):
        sf, _ = self._make(D=2)
        sf.append_stripe([np.arange(8), np.arange(8)])
        assert sf.stats().blocks_written == 2
        assert sf.stats().items_written == 16

    def test_parallelism_speedup_vs_single_disk(self):
        """PDM Fig. 1(a): the same data on D disks takes ~1/D the time."""
        data = [np.arange(8, dtype=np.uint32) for _ in range(16)]
        sf1, _ = self._make(D=1)
        t1 = sum(sf1.append_stripe([b]) for b in data)
        sf4, _ = self._make(D=4)
        t4 = sum(sf4.append_stripe(data[i : i + 4]) for i in range(0, 16, 4))
        assert t4 == pytest.approx(t1 / 4)


class TestWorkloads:
    def test_eight_benchmarks_registered(self):
        assert sorted(BENCHMARKS) == list(range(8))

    @pytest.mark.parametrize("bench", list(range(8)))
    def test_size_and_dtype(self, bench):
        out = make_benchmark(bench, 257, seed=1)
        assert out.size == 257
        assert out.dtype == np.uint32

    def test_deterministic_in_seed(self):
        a = make_benchmark(0, 100, seed=7)
        b = make_benchmark(0, 100, seed=7)
        c = make_benchmark(0, 100, seed=8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_by_name(self):
        np.testing.assert_array_equal(
            make_benchmark("uniform", 50, seed=3), make_benchmark(0, 50, seed=3)
        )

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            make_benchmark(42, 10)
        with pytest.raises(KeyError):
            make_benchmark("nope", 10)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            make_benchmark(0, -1)

    def test_sorted_is_sorted(self):
        assert is_sorted(make_benchmark("sorted", 500))

    def test_reverse_is_reverse_sorted(self):
        arr = make_benchmark("reverse", 500)
        assert is_sorted(arr[::-1])

    def test_all_equal_has_one_value(self):
        assert np.unique(make_benchmark("all_equal", 300)).size == 1

    def test_zipf_has_heavy_duplicates(self):
        arr = make_benchmark("zipf", 10_000, seed=2)
        assert np.unique(arr).size < arr.size // 10

    def test_int64_dtype(self):
        arr = make_benchmark(0, 100, dtype=np.int64)
        assert arr.dtype == np.int64


class TestRecords:
    def test_key_dtype_accepts_supported(self):
        assert key_dtype(np.uint32) == np.dtype(np.uint32)
        assert key_dtype("int64") == np.dtype(np.int64)

    def test_key_dtype_rejects_float(self):
        with pytest.raises(TypeError, match="unsupported"):
            key_dtype(np.float64)

    def test_is_sorted(self):
        assert is_sorted([1, 2, 2, 3])
        assert not is_sorted([2, 1])
        assert is_sorted([])

    def test_verify_permutation(self):
        assert verify_permutation([3, 1, 2], [1, 2, 3])
        assert not verify_permutation([1, 2, 2], [1, 2, 3])
        assert not verify_permutation([1, 2], [1, 2, 3])

    def test_verify_sorted_permutation_errors(self):
        with pytest.raises(AssertionError, match="not sorted"):
            verify_sorted_permutation([1, 2], [2, 1])
        with pytest.raises(AssertionError, match="size mismatch"):
            verify_sorted_permutation([1, 2], [1])
        with pytest.raises(AssertionError, match="not a permutation"):
            verify_sorted_permutation([1, 2], [1, 3])
        verify_sorted_permutation([2, 1], [1, 2])  # happy path

    def test_checksum_order_independent(self, rng):
        arr = rng.integers(0, 2**32, 500).astype(np.uint32)
        shuffled = arr.copy()
        rng.shuffle(shuffled)
        assert checksum(arr) == checksum(shuffled)

    def test_checksum_multiplicity_sensitive(self):
        assert checksum(np.array([5, 5, 7])) != checksum(np.array([5, 7, 7]))

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 2**32 - 1), max_size=100))
    def test_checksum_verify_agrees_with_exact(self, items):
        arr = np.asarray(items, dtype=np.uint32)
        out = np.sort(arr)
        verify_sorted_permutation(arr, out, exact=False)
