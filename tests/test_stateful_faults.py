"""Hypothesis stateful test: the PDM layer under injected disk faults.

Random interleavings of BlockFile writers, run cursors and fault
arming/disarming on one disk.  The invariants the machine enforces are
the fault subsystem's core guarantees:

* **atomic block I/O** — a faulted write leaves the file unchanged (no
  phantom blocks), a faulted read charges nothing;
* **consistent IOStats** — ``stats.faults`` counts exactly the observed
  typed errors, and the block/item counters never move on a faulted op;
* **balanced memory** — reservations stay bounded while open and return
  to zero at teardown, no matter where a fault interrupted an operation.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.extsort.multiway import RunCursor, RunRef
from repro.faults import DiskFault, DiskFaultError, install_disk_faults
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager


class FaultyStorageMachine(RuleBasedStateMachine):
    """Writer/cursor interleavings with faults armed and disarmed live."""

    B = 8

    @initialize()
    def setup(self):
        self.disk = SimDisk(DiskParams(seek_time=1e-5, bandwidth=1e9))
        self.mem = MemoryManager.unlimited()
        self.files: list[BlockFile] = []
        self.expected: list[list[int]] = []  # mirror of each file's items
        self.writers: list[tuple[int, BlockWriter]] = []
        self.cursors: list[tuple[int, RunCursor, list[int]]] = []
        self.observed_faults = 0  # typed errors we caught

    # -- fault arming --------------------------------------------------------

    @rule(after_ios=st.integers(0, 40), count=st.integers(1, 3))
    def arm_fault(self, after_ios, count):
        """(Re)arm the disk: the k-th I/O from now will fault."""
        install_disk_faults(
            self.disk, [DiskFault(after_ios=after_ios, count=count)]
        )

    @rule()
    def disarm(self):
        self.disk.fault_hook = None

    # -- file / writer rules -------------------------------------------------

    @rule()
    def new_file(self):
        self.files.append(BlockFile(self.disk, self.B))
        self.expected.append([])

    @precondition(lambda self: self.files)
    @rule(data=st.data())
    def open_writer(self, data):
        idx = data.draw(st.integers(0, len(self.files) - 1))
        if any(i == idx for i, _ in self.writers):
            return  # one writer per file
        f = self.files[idx]
        if f.n_blocks and f.inspect_block(f.n_blocks - 1).size < self.B:
            return  # compact packing: can't append after a partial block
        self.writers.append((idx, BlockWriter(f, self.mem)))

    @precondition(lambda self: self.writers)
    @rule(data=st.data(), items=st.lists(st.integers(0, 2**32 - 1), max_size=30))
    def write_items(self, data, items):
        wi = data.draw(st.integers(0, len(self.writers) - 1))
        idx, w = self.writers[wi]
        try:
            w.write(np.asarray(items, dtype=np.uint32))
        except DiskFaultError:
            self.observed_faults += 1
            # The interrupted stream is useless: abandon the writer (no
            # flush — flushing could fault again) and resync the mirror
            # to what actually reached the disk.
            self.writers.pop(wi)
            w.abandon()
            self.expected[idx] = [int(x) for x in self.files[idx].to_array()]
        else:
            self.expected[idx].extend(int(x) & 0xFFFFFFFF for x in items)

    @precondition(lambda self: self.writers)
    @rule(data=st.data())
    def close_writer(self, data):
        wi = data.draw(st.integers(0, len(self.writers) - 1))
        idx, w = self.writers.pop(wi)
        try:
            w.close()
        except DiskFaultError:
            self.observed_faults += 1
            # The final flush faulted: buffered tail items never landed.
            self.expected[idx] = [int(x) for x in self.files[idx].to_array()]

    # -- cursor rules ----------------------------------------------------------

    @precondition(lambda self: self.files)
    @rule(data=st.data())
    def open_cursor(self, data):
        idx = data.draw(st.integers(0, len(self.files) - 1))
        if any(i == idx for i, _ in self.writers):
            return  # don't read files mid-write
        f = self.files[idx]
        if f.n_items == 0:
            return
        lo = data.draw(st.integers(0, f.n_items - 1))
        hi = data.draw(st.integers(lo, f.n_items))
        ref = RunRef(f, lo, hi)
        self.cursors.append((idx, RunCursor(ref, self.mem), self.expected[idx][lo:hi]))

    @precondition(lambda self: self.cursors)
    @rule(data=st.data(), n=st.integers(1, 20))
    def advance_cursor(self, data, n):
        ci = data.draw(st.integers(0, len(self.cursors) - 1))
        idx, cur, remaining = self.cursors[ci]
        if cur.exhausted:
            self.cursors.pop(ci)
            return
        before = self.disk.stats.snapshot()
        try:
            got = cur.take_upto(n)
        except DiskFaultError:
            self.observed_faults += 1
            # A faulted read charges nothing and buffers nothing.
            after = self.disk.stats.snapshot()
            assert after.blocks_read == before.blocks_read
            assert after.items_read == before.items_read
            self.cursors.pop(ci)
            cur.drop()
        else:
            assert list(got) == remaining[: got.size]
            self.cursors[ci] = (idx, cur, remaining[got.size :])

    @precondition(lambda self: self.cursors)
    @rule(data=st.data())
    def drop_cursor(self, data):
        ci = data.draw(st.integers(0, len(self.cursors) - 1))
        _, cur, _ = self.cursors.pop(ci)
        cur.drop()

    # -- invariants ------------------------------------------------------------

    @invariant()
    def files_match_mirror(self):
        for f, exp in zip(self.files, self.expected):
            flushed = f.to_array()
            assert list(flushed) == exp[: flushed.size]

    @invariant()
    def no_phantom_blocks(self):
        """Atomicity: every stored block was a charged, successful write,
        so sizes are compact regardless of where faults interrupted."""
        for f in self.files:
            for b in range(max(0, f.n_blocks - 1)):
                assert f.inspect_block(b).size == self.B
            assert f.n_items == sum(
                f.inspect_block(b).size for b in range(f.n_blocks)
            )

    @invariant()
    def fault_counter_matches_observed(self):
        assert self.disk.stats.faults == self.observed_faults

    @invariant()
    def accounting_is_bounded(self):
        lower = len(self.writers) * self.B
        upper = lower + len(self.cursors) * self.B
        assert lower <= self.mem.in_use <= upper

    def teardown(self):
        self.disk.fault_hook = None  # heal: teardown flushes must succeed
        for _, w in self.writers:
            w.close()
        for _, cur, _ in self.cursors:
            cur.drop()
        assert self.mem.in_use == 0


TestFaultyStorageMachine = FaultyStorageMachine.TestCase
TestFaultyStorageMachine.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
