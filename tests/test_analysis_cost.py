"""The symbolic I/O-cost certifier: REP301..REP306 plus certification.

Four layers of assurance, mirroring the subpackage:

* the symbolic algebra (:mod:`repro.analysis.cost.sym`): hypothesis
  properties that ``simplify`` and the JSON round-trip never change an
  expression's value over the sampled model domain;
* the abstract interpreter: golden rendered expressions for every step
  of all five registered algorithms (non-TOP everywhere — the
  acceptance bar), pinned so a derivation change is a visible diff;
* the rules: one bad fixture per code (each fires the code under
  test), a clean counterpart, and the self-check that the real tree is
  REP301..REP306-clean against the checked-in cost baseline;
* certification: unit cells, the recorded ``BENCH_sort.json`` audit
  blocks, and a fault-free fuzz-corpus replay all satisfy
  measured <= derived(static).
"""

from __future__ import annotations

import json
import math
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.cost import (
    COST_BASELINE_NAME,
    COST_RULES,
    COST_RULES_BY_CODE,
    analyze_cost,
    analyze_cost_source,
    baseline_payload,
    certify_bench,
    certify_cells,
    certify_corpus,
    derive_costs,
    get_cost_rules,
    node_env,
)
from repro.analysis.cost.rules import BoundRegressionRule
from repro.analysis.cost.sym import (
    SYMBOLS,
    BitLen,
    Ceil,
    Const,
    Div,
    Expr,
    MergeLevels,
    MergePasses,
    Sym,
    Top,
    add,
    ceil,
    dominates,
    emax,
    emin,
    find_tops,
    from_dict,
    mul,
    sample_envs,
    simplify,
)
from repro.analysis.engine import AnalysisError
from repro.analysis.flow import load_project
from repro.analysis.flow.project import Project
from repro.obs.audit import RunMeta

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent
ENTRY_PATH = "repro/core/external_psrs.py"


@pytest.fixture(scope="module")
def project() -> Project:
    return load_project([Path(repro.__file__).parent])


def check(source: str, rules=None, path: str = ENTRY_PATH):
    return analyze_cost_source(textwrap.dedent(source), path, rules=rules)


def codes(report) -> list[str]:
    return [f.rule for f in report.findings]


# -- the registry contract ---------------------------------------------------


def test_registry_covers_rep301_to_306() -> None:
    assert [r.code for r in COST_RULES] == [
        "REP301", "REP302", "REP303", "REP304", "REP305", "REP306",
    ]
    assert set(COST_RULES_BY_CODE) == {r.code for r in COST_RULES}
    for rule in COST_RULES:
        assert rule.summary and rule.rationale and rule.fix_hint
        assert rule.scope == ("core/",)


def test_get_cost_rules_selection_and_unknown() -> None:
    only = get_cost_rules(["rep303"])
    assert [r.code for r in only] == ["REP303"]
    with pytest.raises(AnalysisError):
        get_cost_rules(["REP999"])


# -- hypothesis: the algebra is sound ---------------------------------------

_ENVS = sample_envs()[::17]  # a spread of the grid, kept fast


def _exprs() -> st.SearchStrategy[Expr]:
    leaves = st.one_of(
        st.floats(min_value=0.0, max_value=64.0).map(Const),
        st.sampled_from(SYMBOLS).map(Sym),
    )

    def extend(children: st.SearchStrategy[Expr]) -> st.SearchStrategy[Expr]:
        pair = st.tuples(children, children)
        return st.one_of(
            pair.map(lambda ab: add(ab[0], ab[1])),
            pair.map(lambda ab: mul(ab[0], ab[1])),
            pair.map(lambda ab: emax(ab[0], ab[1])),
            pair.map(lambda ab: emin(ab[0], ab[1])),
            children.map(ceil),
            # positive denominators only: the model's divisors (B, p, G)
            # are all >= 1, and Div does not guard zero
            st.tuples(children, st.sampled_from(("B", "p", "G"))).map(
                lambda ad: Div(ad[0], Sym(ad[1]))
            ),
            children.map(BitLen),
            children.map(MergePasses),
            children.map(MergeLevels),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def _agree(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=80, deadline=None)
@given(expr=_exprs())
def test_simplify_preserves_value(expr: Expr) -> None:
    simplified = simplify(expr)
    for env in _ENVS:
        assert _agree(expr.eval(env), simplified.eval(env)), (
            f"{expr.render()} -> {simplified.render()} diverges at {env}"
        )


@settings(max_examples=60, deadline=None)
@given(expr=_exprs())
def test_json_round_trip_preserves_value(expr: Expr) -> None:
    back = from_dict(json.loads(json.dumps(expr.to_dict())))
    for env in _ENVS:
        assert _agree(expr.eval(env), back.eval(env))


def test_dominates_reflexive_and_witness() -> None:
    e = add(mul(Const(2.0), Sym("l")), Sym("d"))
    assert dominates(e, e) is None
    assert dominates(e, add(e, Const(1.0))) is None
    witness = dominates(add(e, Const(1.0)), e)
    assert witness is not None and "l" in witness


def test_top_poisons_and_is_found() -> None:
    t = Top("unknown payload")
    assert math.isinf(t.eval(sample_envs()[0]))
    assert find_tops(add(Sym("l"), t)) == [t]
    assert find_tops(Sym("l")) == []


# -- the interpreter: golden derivations over the real tree ------------------

GOLDEN = {
    "dewitt": {
        "1:splitters": "max(min(ceil(l/B), max(ceil(max(c*(p + -1)*g, 1)/B), 1))*B, 0)",
        "2:route": "(ceil(l/B)*B + r)",
        "3:merge-runs": "(1.3*max(2*r*(1 + passes(r)), 2*r*max(1, levels((ceil(r/max(1, min(cm, (M + -2*B)/p))) + p)))) + (ceil(r/max(1, min(cm, (M + -2*B)/p))) + p)*B)",
    },
    "external_psrs": {
        "1:local-sort": "1.3*max(2*l*(passes(l) + 1), 4*l)",
        "2:pivots": "c*(p + -1)*g*B",
        "3:partition": "((p + -1)*(bitlen(max(ceil(l/B), 1)) + 1)*B + 2*l + (p + -1)*B)",
        "4:redistribute": "(l + 2*l + d + p*B)",
        "5:final-merge": "(1.3*max(2*(2*l + d)*(passes((2*l + d)) + 1), 2*(2*l + d)*max(levels(p), 1)) + p*B)",
        "recover:remerge": "(1.3*max(2*n*(1 + passes(n)), 2*n*max(1, levels(2))) + 2*B)",
        "recover:salvage": "(2*l + 2*B)",
    },
    "hyperquicksort": {
        "1:local-sort": "0",
        "level-*": "0",
    },
    "in_core_psrs": {
        "1:local-sort": "0",
        "2:pivots": "0",
        "3:partition": "0",
        "4:exchange": "0",
        "5:merge": "0",
    },
    "overpartition": {
        "1:sample-pivots": "0",
        "2:bucketize": "0",
        "3:assign": "0",
        "4:exchange": "0",
        "5:sort-buckets": "0",
    },
}


def test_golden_derived_expressions(project: Project) -> None:
    derived = derive_costs(project)
    assert set(derived) == set(GOLDEN)
    rendered = {
        algo: {name: sc.expr.render() for name, sc in costs.steps.items()}
        for algo, costs in derived.items()
    }
    assert rendered == GOLDEN


def test_every_step_of_every_algorithm_is_bounded(project: Project) -> None:
    """The acceptance bar: non-TOP bounds everywhere, outside included."""
    for algo, costs in derive_costs(project).items():
        assert not find_tops(costs.outside.expr), algo
        for name, sc in costs.steps.items():
            assert sc.bounded, f"{algo} {name}"
            assert not find_tops(sc.expr), f"{algo} {name}"
            assert not sc.unbounded, f"{algo} {name}"


def test_external_psrs_derived_dominated_by_paper(project: Project) -> None:
    """REP301's invariant, asserted directly: derived <= paper per step."""
    from repro.analysis.cost.paper import paper_bound_for

    costs = derive_costs(project)["external_psrs"]
    for name in (
        "1:local-sort", "2:pivots", "3:partition",
        "4:redistribute", "5:final-merge",
    ):
        paper = paper_bound_for("external_psrs", name)
        assert paper is not None
        assert dominates(costs.steps[name].expr, paper) is None, name


# -- the rules: one bad fixture per code -------------------------------------

BAD_301 = """
def _sort_impl(cluster, inputs, config):
    with cluster.step("1:local-sort"):
        for node, f in zip(cluster.nodes, inputs):
            polyphase_sort(f, node.disk, node.mem)
            polyphase_sort(f, node.disk, node.mem)
"""

BAD_302 = """
def _sort_impl(cluster, inputs, config):
    with cluster.step("1:local-sort"):
        for node in cluster.nodes:
            chunk = node.scratch.take_upto(4)
"""

BAD_303 = BAD_301  # two polyphase sorts = 4 sweeps, over the paper's 3

BAD_304 = """
def _sort_impl(cluster, inputs, config):
    with cluster.step("1:local-sort"):
        for node, run in zip(cluster.nodes, inputs):
            while node.busy():
                block = run.read_block()
"""

BAD_306 = """
def _sort_impl(cluster, inputs, config):
    with cluster.step("1:local-sort"):
        x = 1
"""

GOOD_IN_CORE = """
def sort_in_core(cluster, inputs, config):
    with cluster.step("1:local-sort"):
        x = 1
"""


def test_rep301_derived_exceeds_paper() -> None:
    report = check(BAD_301, rules=get_cost_rules(["REP301"]))
    assert codes(report) == ["REP301"]
    # the counterexample environment is part of the message
    assert "exceeds" in report.findings[0].message


def test_rep302_unbounded_io_in_step() -> None:
    report = check(BAD_302, rules=get_cost_rules(["REP302"]))
    assert codes(report) == ["REP302"]
    assert "cursor read" in report.findings[0].message


def test_rep303_extra_pass() -> None:
    report = check(BAD_303, rules=get_cost_rules(["REP303"]))
    assert codes(report) == ["REP303"]
    assert "4 passes" in report.findings[0].message


def test_rep304_io_outside_derivable_loop_bound() -> None:
    report = check(BAD_304, rules=get_cost_rules(["REP304"]))
    assert codes(report) == ["REP304"]


def test_rep305_bound_regression_via_injected_baseline() -> None:
    source = textwrap.dedent("""
    def _sort_impl(cluster, inputs, config):
        with cluster.step("1:local-sort"):
            for node, f in zip(cluster.nodes, inputs):
                polyphase_sort(f, node.disk, node.mem)
    """)
    project = Project.from_sources([(source, ENTRY_PATH, ENTRY_PATH)])
    project.cache["cost:baseline"] = {
        "algorithms": {
            "external_psrs": {"1:local-sort": {"expr": Const(1.0).to_dict()}}
        }
    }
    findings = list(BoundRegressionRule().check_project(project))
    assert [f.rule for f in findings] == ["REP305"]
    assert "regressed" in findings[0].message
    # same derivation, baseline matching the derived bound: clean
    project2 = Project.from_sources([(source, ENTRY_PATH, ENTRY_PATH)])
    derived = derive_costs(project2)["external_psrs"].steps["1:local-sort"]
    project2.cache["cost:baseline"] = {
        "algorithms": {
            "external_psrs": {"1:local-sort": {"expr": derived.expr.to_dict()}}
        }
    }
    assert list(BoundRegressionRule().check_project(project2)) == []


def test_rep306_dead_bound() -> None:
    report = check(BAD_306, rules=get_cost_rules(["REP306"]))
    assert codes(report) and set(codes(report)) == {"REP306"}
    assert any("no charge site" in f.message for f in report.findings)


def test_noqa_suppresses_cost_findings() -> None:
    source = BAD_304.replace(
        'with cluster.step("1:local-sort"):',
        'with cluster.step("1:local-sort"):  '
        "# repro: noqa=REP304 -- retry loop bounded by fault budget",
    )
    report = check(source, rules=get_cost_rules(["REP304"]))
    assert codes(report) == []
    assert [s.finding.rule for s in report.suppressed] == ["REP304"]


def test_zero_io_in_core_fixture_is_clean() -> None:
    report = check(GOOD_IN_CORE, path="repro/core/in_core_psrs.py")
    assert codes(report) == []


def test_real_tree_is_cost_clean(project: Project) -> None:
    """The repo self-check: REP301..306 clean vs the checked-in baseline."""
    baseline = REPO_ROOT / COST_BASELINE_NAME
    assert baseline.is_file(), "cost-baseline.json must be checked in"
    report = analyze_cost(
        [Path(repro.__file__).parent],
        rules=get_cost_rules(baseline_path=baseline),
        project=project,
    )
    assert report.findings == []


def test_checked_in_baseline_matches_current_derivation(
    project: Project,
) -> None:
    on_disk = json.loads(
        (REPO_ROOT / COST_BASELINE_NAME).read_text(encoding="utf-8")
    )
    assert on_disk == json.loads(json.dumps(baseline_payload(project)))


# -- certification: measured <= derived(static) ------------------------------


def _meta(**overrides) -> RunMeta:
    base = dict(
        n_items=4096,
        perf=(1, 1, 2),
        memory_items=1024,
        block_items=64,
        oversample=4,
        d_duplicates=0,
        pivot_method="regular",
    )
    base.update(overrides)
    return RunMeta(**base)


def test_node_env_l_covers_portion_and_optimal_share() -> None:
    from repro.core.perf import PerfVector

    meta = _meta()
    perf = PerfVector(list(meta.perf))
    portions = perf.portions(meta.n_items)
    for node in range(perf.p):
        env = node_env(meta, node)
        assert env["l"] >= portions[node]
        assert env["l"] >= perf.optimal_share(meta.n_items, node)
        assert env["g"] == float(perf[node])


def test_certify_cells_verdicts() -> None:
    meta = _meta()
    exprs = {"1:local-sort": mul(Const(2.0), Sym("l"))}
    env = node_env(meta, 0)
    bound = 2.0 * env["l"]
    rounded = math.ceil(bound / meta.block_items) * meta.block_items
    ok_report = certify_cells(
        [("1:local-sort", 0, int(rounded))], meta, exprs=exprs
    )
    assert ok_report.ok and ok_report.rows[0].bound_items == rounded
    bad_report = certify_cells(
        [("1:local-sort", 0, int(rounded) + 1)], meta, exprs=exprs
    )
    assert not bad_report.ok and len(bad_report.violations) == 1


def test_certify_cells_missing_numbered_step_fails() -> None:
    report = certify_cells([("3:partition", 0, 10)], _meta(), exprs={})
    assert report.missing_steps == ["3:partition"] and not report.ok


def test_certify_cells_informational_rows() -> None:
    meta = _meta(pivot_method="quantile")
    exprs = {"1:local-sort": Sym("l")}
    report = certify_cells(
        [("2:pivots", 0, 5), ("1:local-sort", 99, 5)], meta, exprs=exprs
    )
    # quantile pivots and out-of-range nodes are info rows, not verdicts
    assert report.ok
    assert all(r.bound_items is None for r in report.rows)


def test_certify_bench_recorded_runs() -> None:
    results = certify_bench(REPO_ROOT / "BENCH_sort.json")
    assert results, "BENCH_sort.json must have runs"
    assert all(r.ok for r in results)
    certified = [r for r in results if r.report is not None]
    assert len(certified) >= 2  # the audited sizes certify, rest skip
    for r in certified:
        assert r.report.ok and r.report.rows


def test_certify_fuzz_corpus() -> None:
    results = certify_corpus(REPO_ROOT / "tests" / "data" / "fuzz_corpus")
    by_name = {r.name: r for r in results}
    assert all(r.ok for r in results)
    # fault-free replays certify; faulted/violation replays are skipped
    assert by_name["all-equal-tight-memory"].report is not None
    assert by_name["zipf-extreme-perf"].report is not None
    assert by_name["kill-step4-degraded"].skipped is not None
    assert by_name["tightened-slack-polyphase"].skipped is not None
