"""Tests for exact-quantile pivots (§3.2 extension) and heterogeneous
hyperquicksort (§6 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster, heterogeneous_cluster, homogeneous_cluster
from repro.core.external_psrs import PSRSConfig, distribute_array, sort_array
from repro.core.hyperquicksort import (
    sort_array_hyperquicksort,
    sort_hyperquicksort,
    split_group,
)
from repro.core.perf import PerfVector
from repro.core.quantiles import (
    boundary_targets,
    exact_quantile_pivots,
    global_count_leq,
)
from repro.extsort.polyphase import polyphase_sort
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation


def _sorted_cluster(perf_vals, n, memory=2048, seed=0, bench=0):
    """A cluster whose nodes hold sorted perf-proportional portions."""
    perf = PerfVector(perf_vals)
    n = perf.nearest_exact(n)
    cluster = Cluster(
        heterogeneous_cluster([float(v) for v in perf_vals], memory_items=memory)
    )
    data = make_benchmark(bench, n, seed=seed)
    inputs = distribute_array(cluster, perf, data, 256)
    sorted_files = [
        polyphase_sort(f, node.disk, node.mem).output
        for node, f in zip(cluster.nodes, inputs)
    ]
    return cluster, perf, sorted_files, data


class TestBoundaryTargets:
    def test_homogeneous(self):
        assert boundary_targets(PerfVector([1, 1, 1, 1]), 100) == [25, 50, 75]

    def test_heterogeneous(self):
        assert boundary_targets(PerfVector([1, 1, 4, 4]), 100) == [10, 20, 60]


class TestGlobalCountLeq:
    def test_counts(self):
        cluster, perf, files, data = _sorted_cluster([1, 2], 3_000)
        v = int(np.median(data))
        expected = int(np.count_nonzero(data <= v))
        assert global_count_leq(cluster, files, np.uint32(v)) == expected


class TestExactQuantilePivots:
    def test_realises_targets_exactly_on_distinct_keys(self):
        cluster, perf, files, data = _sorted_cluster([1, 1, 4, 4], 40_000)
        pivots, report = exact_quantile_pivots(cluster, perf, files)
        targets = boundary_targets(perf, data.size)
        d = data.astype(np.int64)
        for piv, t in zip(pivots, targets):
            realised = int(np.count_nonzero(d <= int(piv)))
            # Exact up to duplicate ties at the pivot value.
            dups = int(np.count_nonzero(d == int(piv)))
            assert t <= realised <= t + dups
        assert report.rounds > 0 and report.probes > 0

    def test_pivots_sorted(self):
        cluster, perf, files, _ = _sorted_cluster([2, 3, 5], 20_000)
        pivots, _ = exact_quantile_pivots(cluster, perf, files)
        assert np.all(np.diff(pivots.astype(np.int64)) >= 0)

    def test_single_node_empty_pivots(self):
        cluster, perf, files, _ = _sorted_cluster([1], 1_000)
        pivots, report = exact_quantile_pivots(cluster, perf, files)
        assert pivots.size == 0
        assert report.rounds == 0

    def test_empty_input_rejected(self):
        cluster = Cluster(homogeneous_cluster(2))
        perf = PerfVector([1, 1])
        files = distribute_array(cluster, perf, np.empty(0, dtype=np.uint32), 64)
        with pytest.raises(ValueError, match="empty"):
            exact_quantile_pivots(cluster, perf, files)

    def test_size_mismatch_rejected(self):
        cluster, perf, files, _ = _sorted_cluster([1, 1], 1_000)
        with pytest.raises(ValueError):
            exact_quantile_pivots(cluster, PerfVector([1, 1, 1]), files)

    def test_duplicates_heavy_input_terminates(self):
        cluster, perf, files, data = _sorted_cluster([1, 3], 6_000, bench=2)
        pivots, _ = exact_quantile_pivots(cluster, perf, files)
        assert pivots.size == 1

    def test_charges_io_and_network(self):
        cluster, perf, files, _ = _sorted_cluster([1, 1, 4, 4], 20_000)
        reads_before = cluster.io_stats().blocks_read
        msgs_before = cluster.network.messages_sent
        exact_quantile_pivots(cluster, perf, files)
        assert cluster.io_stats().blocks_read > reads_before
        assert cluster.network.messages_sent > msgs_before

    def test_memory_clean(self):
        cluster, perf, files, _ = _sorted_cluster([1, 2], 8_000)
        exact_quantile_pivots(cluster, perf, files)
        assert all(node.mem.in_use == 0 for node in cluster.nodes)


class TestQuantilePSRSIntegration:
    def test_end_to_end_sorted_and_near_perfect_balance(self):
        perf = PerfVector([1, 1, 4, 4])
        n = perf.nearest_exact(40_000)
        data = make_benchmark(0, n, seed=1)
        cluster = Cluster(
            heterogeneous_cluster([1.0, 1.0, 4.0, 4.0], memory_items=2048)
        )
        res = sort_array(
            cluster,
            perf,
            data,
            PSRSConfig(block_items=256, message_items=2048, pivot_method="quantile"),
        )
        verify_sorted_permutation(data, res.to_array())
        assert res.s_max < 1.01  # essentially exact

    def test_better_balance_than_sampling(self):
        perf = PerfVector([1, 1, 4, 4])
        n = perf.nearest_exact(40_000)
        data = make_benchmark(0, n, seed=2)
        results = {}
        for method in ("regular", "quantile"):
            cluster = Cluster(
                heterogeneous_cluster([1.0, 1.0, 4.0, 4.0], memory_items=2048)
            )
            results[method] = sort_array(
                cluster,
                perf,
                data,
                PSRSConfig(block_items=256, message_items=2048, pivot_method=method),
            )
        assert results["quantile"].s_max <= results["regular"].s_max
        # ...but pays more step-2 time (the documented trade-off).
        assert (
            results["quantile"].step_times["2:pivots"]
            > results["regular"].step_times["2:pivots"]
        )


class TestSplitGroup:
    def test_even_perf_splits_in_half(self):
        low, high, share = split_group([0, 1, 2, 3], PerfVector([1, 1, 1, 1]))
        assert (low, high) == ([0, 1], [2, 3])
        assert share == pytest.approx(0.5)

    def test_skewed_perf_balances_aggregate(self):
        # {4,4,1,1}: best even split is [0] vs [1,2,3] (4 vs 6) or
        # [0,1] vs [2,3] (8 vs 2) -> the former.
        low, high, share = split_group([0, 1, 2, 3], PerfVector([4, 4, 1, 1]))
        assert low == [0] and high == [1, 2, 3]
        assert share == pytest.approx(0.4)

    def test_too_small_group(self):
        with pytest.raises(ValueError):
            split_group([0], PerfVector([1]))


class TestHyperquicksort:
    def test_sorts_heterogeneous(self):
        perf = PerfVector([1, 1, 4, 4])
        n = perf.nearest_exact(20_000)
        data = make_benchmark(0, n, seed=0)
        cluster = Cluster(heterogeneous_cluster([1.0, 1.0, 4.0, 4.0]))
        res = sort_array_hyperquicksort(cluster, perf, data)
        verify_sorted_permutation(data, res.to_array())
        assert res.levels >= 2

    def test_node_ranges_ordered(self):
        perf = PerfVector([1, 2, 3])
        data = make_benchmark(0, perf.nearest_exact(9_000), seed=3)
        cluster = Cluster(heterogeneous_cluster([1.0, 2.0, 3.0]))
        res = sort_array_hyperquicksort(cluster, perf, data)
        prev = None
        for arr in res.outputs:
            if arr.size == 0:
                continue
            if prev is not None:
                assert arr[0] >= prev
            prev = arr[-1]

    def test_single_node(self):
        perf = PerfVector([2])
        data = make_benchmark(0, 1_000, seed=0)
        cluster = Cluster(homogeneous_cluster(1))
        res = sort_array_hyperquicksort(cluster, perf, data)
        np.testing.assert_array_equal(res.to_array(), np.sort(data))
        assert res.levels == 0

    def test_worse_balance_than_psrs(self):
        """The structural point: compounding per-level pivot errors."""
        from repro.core.in_core_psrs import sort_array_in_core

        perf = PerfVector([1, 1, 4, 4])
        n = perf.nearest_exact(40_000)
        smax_hqs, smax_psrs = [], []
        for seed in range(3):
            data = make_benchmark(0, n, seed=seed)
            c1 = Cluster(heterogeneous_cluster([1.0, 1.0, 4.0, 4.0]))
            smax_hqs.append(sort_array_hyperquicksort(c1, perf, data, seed=seed).s_max)
            c2 = Cluster(heterogeneous_cluster([1.0, 1.0, 4.0, 4.0]))
            smax_psrs.append(sort_array_in_core(c2, perf, data).s_max)
        assert np.mean(smax_psrs) < np.mean(smax_hqs)

    def test_validation(self):
        cluster = Cluster(homogeneous_cluster(2))
        with pytest.raises(ValueError):
            sort_hyperquicksort(cluster, PerfVector([1, 1, 1]), [np.arange(3)] * 2)
        with pytest.raises(ValueError):
            sort_hyperquicksort(
                cluster, PerfVector([1, 1]), [np.arange(3)] * 2, sample_per_node=0
            )

    @pytest.mark.parametrize("bench", [0, 2, 4, 5, 7])
    def test_benchmarks(self, bench):
        perf = PerfVector([1, 2])
        data = make_benchmark(bench, perf.nearest_exact(4_000), seed=bench)
        cluster = Cluster(heterogeneous_cluster([1.0, 2.0]))
        res = sort_array_hyperquicksort(cluster, perf, data)
        verify_sorted_permutation(data, res.to_array())


@settings(max_examples=15, deadline=None)
@given(
    vals=st.lists(st.integers(1, 5), min_size=1, max_size=5),
    seed=st.integers(0, 50),
    bench=st.integers(0, 7),
)
def test_property_hyperquicksort_sorts(vals, seed, bench):
    perf = PerfVector(vals)
    data = make_benchmark(bench, perf.nearest_exact(2_000), seed=seed)
    cluster = Cluster(heterogeneous_cluster([float(v) for v in vals]))
    res = sort_array_hyperquicksort(cluster, perf, data, seed=seed)
    verify_sorted_permutation(data, res.to_array())
