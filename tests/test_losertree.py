"""Tests for the tournament (loser) tree."""

import heapq

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.extsort.losertree import LoserTree, merge_iterables


class TestLoserTree:
    def test_single_source(self):
        t = LoserTree([5])
        assert t.winner == 0
        assert t.winner_key == 5
        t.replace_winner(None)
        assert t.exhausted

    def test_winner_is_minimum(self):
        t = LoserTree([7, 3, 9, 1, 5])
        assert t.winner == 3
        assert t.winner_key == 1

    def test_replace_winner_promotes_next(self):
        t = LoserTree([7, 3, 9, 1, 5])
        t.replace_winner(None)
        assert t.winner_key == 3
        t.replace_winner(None)
        assert t.winner_key == 5

    def test_none_keys_at_init(self):
        t = LoserTree([None, 4, None])
        assert t.winner == 1
        t.replace_winner(None)
        assert t.exhausted

    def test_replace_out_of_range(self):
        t = LoserTree([1, 2])
        with pytest.raises(IndexError):
            t.replace(2, 5)

    def test_pop_push(self):
        t = LoserTree([4, 2, 6])
        key, src = t.pop_push(9)
        assert (key, src) == (2, 1)
        assert t.winner_key == 4

    def test_pop_push_exhausted_raises(self):
        t = LoserTree([None])
        with pytest.raises(RuntimeError, match="exhausted"):
            t.pop_push(1)

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            LoserTree([])

    def test_non_winner_replace(self):
        # Thawing a frozen (non-winner) leaf must keep the tree consistent.
        t = LoserTree([5, 10, 20])
        t.replace(2, 1)  # leaf 2 was a loser; now smallest
        assert t.winner == 2
        assert t.winner_key == 1

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=64))
    def test_drains_in_sorted_order(self, keys):
        t = LoserTree(list(keys))
        out = []
        while not t.exhausted:
            out.append(t.winner_key)
            t.replace_winner(None)
        assert out == sorted(keys)

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=32),
        st.lists(st.integers(0, 100), max_size=64),
    )
    def test_matches_heap_under_replacements(self, init, stream):
        """Drive the tree and a heap with the same pop/push sequence."""
        t = LoserTree(list(init))
        h = list(init)
        heapq.heapify(h)
        feed = iter(stream)
        while not t.exhausted:
            nxt = next(feed, None)
            key, _src = t.pop_push(nxt)
            assert key == heapq.heappop(h)
            if nxt is not None:
                heapq.heappush(h, nxt)
        assert not h

    def test_comparison_count_is_logarithmic(self):
        k = 64
        t = LoserTree(list(range(k)))
        t.comparisons = 0
        n_ops = 1000
        for i in range(n_ops):
            t.pop_push(i)  # keep the tree full
        # ceil(log2 64) = 6 comparisons per replacement
        assert t.comparisons <= 6 * n_ops


class TestMergeIterables:
    def test_merges_sorted_lists(self):
        out = merge_iterables([[1, 4, 7], [2, 5], [0, 9]])
        assert out == [0, 1, 2, 4, 5, 7, 9]

    def test_empty_inputs(self):
        assert merge_iterables([[], []]) == []
        assert merge_iterables([]) == []

    def test_key_function(self):
        out = merge_iterables([[(1, "a"), (3, "b")], [(2, "c")]], key=lambda x: x[0])
        assert out == [(1, "a"), (2, "c"), (3, "b")]

    @given(st.lists(st.lists(st.integers(0, 50)), min_size=1, max_size=8))
    def test_matches_sorted_concat(self, lists):
        lists = [sorted(sub) for sub in lists]
        out = merge_iterables(lists)
        assert out == sorted(x for sub in lists for x in sub)
