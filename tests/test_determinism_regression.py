"""Determinism and model-regression tests.

The simulation must be bit-reproducible given a seed, and the cost
model's outputs for pinned configurations are snapshotted here: a change
to any constant or charging rule shows up as an exact-value failure, so
model drift is always a conscious, reviewed decision (update the golden
values together with docs/MODEL.md and EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, paper_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.extsort.polyphase import polyphase_sort
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark

PERF = PerfVector([4, 4, 1, 1])
N = PERF.nearest_exact(2**14)
CFG = PSRSConfig(block_items=256, message_items=2048, n_tapes=8)


def _paper_run():
    data = make_benchmark(0, N, seed=42)
    cluster = Cluster(paper_cluster(memory_items=2048))
    return sort_array(cluster, PERF, data, CFG)


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        a, b = _paper_run(), _paper_run()
        assert a.elapsed == b.elapsed
        assert a.received_sizes == b.received_sizes
        np.testing.assert_array_equal(a.pivots, b.pivots)
        np.testing.assert_array_equal(a.to_array(), b.to_array())
        assert a.io.block_ios == b.io.block_ios
        assert a.network_bytes == b.network_bytes

    def test_different_seed_different_trace(self):
        a = _paper_run()
        data = make_benchmark(0, N, seed=43)
        cluster = Cluster(paper_cluster(memory_items=2048))
        b = sort_array(cluster, PERF, data, CFG)
        assert not np.array_equal(a.pivots, b.pivots)


class TestModelRegression:
    """Golden values for the pinned paper-cluster configuration.

    Exact equality on integer counters; tight tolerance on times (pure
    float arithmetic, still deterministic — approx guards against
    summation-order refactors only).
    """

    def test_psrs_golden(self):
        # Counters dropped from 792/191654 when step 3 switched to the
        # joint multi-pivot search (shared probe paths read once); the
        # elapsed value is the event kernel's overlap-aware schedule.
        # See docs/MODEL.md and docs/KERNEL.md.
        res = _paper_run()
        assert res.elapsed == pytest.approx(0.10406818455098674, rel=1e-12)
        assert res.io.block_ios == 764
        assert res.io.item_ios == 184486
        assert res.network_messages == 22
        assert res.network_bytes == 43112
        assert res.received_sizes == [6729, 6525, 1662, 1474]
        assert res.pivots.tolist() == [1759652724, 3447839338, 3908321912]

    def test_psrs_golden_lockstep(self):
        # The legacy BSP schedule, pinned separately: same data plane
        # (identical counters, pivots, placement), barrier-delimited
        # timing.  Was 0.2653522112176535 before the step-3 joint search
        # trimmed 28 block reads.
        data = make_benchmark(0, N, seed=42)
        cluster = Cluster(paper_cluster(memory_items=2048), kernel="lockstep")
        res = sort_array(cluster, PERF, data, CFG)
        assert res.elapsed == pytest.approx(0.24944074455098694, rel=1e-12)
        assert res.io.block_ios == 764
        assert res.io.item_ios == 184486
        assert res.received_sizes == [6729, 6525, 1662, 1474]

    def test_polyphase_golden(self):
        disk = SimDisk(DiskParams(seek_time=5e-4, bandwidth=15e6))
        mem = MemoryManager(2048)
        f = BlockFile(disk, 256, np.uint32)
        with BlockWriter(f, mem) as w:
            w.write(make_benchmark(0, 2**14, seed=42))
        base = disk.stats.snapshot()
        res = polyphase_sort(f, disk, mem, n_tapes=8)
        delta = disk.stats - base
        assert res.n_initial_runs == 10
        assert res.n_phases == 2
        assert delta.block_ios == 300
        assert delta.busy_time == pytest.approx(0.17048, rel=1e-9)

    def test_link_model_golden(self):
        from repro.cluster.network import FAST_ETHERNET, MYRINET

        # One 32 KiB message in 32 KiB packets.
        assert FAST_ETHERNET.message_time(32768, 32768) == pytest.approx(
            90e-6 + 32768 / 12.5e6
        )
        # A 32-byte message pays the sub-MTU stall on Ethernet only.
        assert FAST_ETHERNET.message_time(32, 32768) == pytest.approx(
            90e-6 + 32 / 12.5e6 + 2e-3
        )
        assert MYRINET.message_time(32, 32768) == pytest.approx(9e-6 + 32 / 160e6)

    def test_paper_disk_golden(self):
        spec = paper_cluster()
        d = spec.nodes[0].disk
        # One 1 KiB block (256 uint32) on the unloaded SCSI model.
        assert d.access_cost(1024) == pytest.approx(5e-4 + 1024 / 15e6)
