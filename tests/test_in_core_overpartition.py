"""Tests for in-core heterogeneous PSRS and the Li & Sevcik comparator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster, heterogeneous_cluster, homogeneous_cluster
from repro.core.in_core_psrs import sort_array_in_core, sort_in_core
from repro.core.overpartition import (
    assign_buckets,
    sort_array_overpartitioned,
)
from repro.core.perf import PerfVector
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation


def _cluster(vals, memory=None):
    return Cluster(heterogeneous_cluster([float(v) for v in vals], memory_items=memory))


class TestInCorePSRS:
    def test_sorts_heterogeneous(self):
        perf = PerfVector([1, 1, 4, 4])
        data = make_benchmark(0, perf.nearest_exact(30_000), seed=1)
        res = sort_array_in_core(_cluster(perf.values), perf, data)
        verify_sorted_permutation(data, res.to_array())

    def test_smax_near_one(self):
        perf = PerfVector([1, 1, 4, 4])
        data = make_benchmark(0, perf.nearest_exact(50_000), seed=2)
        res = sort_array_in_core(_cluster(perf.values), perf, data)
        assert res.s_max < 1.12

    def test_single_node(self):
        perf = PerfVector([1])
        data = make_benchmark(0, 1000, seed=0)
        res = sort_array_in_core(_cluster([1]), perf, data)
        np.testing.assert_array_equal(res.to_array(), np.sort(data))

    @pytest.mark.parametrize("bench", [0, 2, 3, 4, 5, 7])
    def test_benchmarks(self, bench):
        perf = PerfVector([1, 2, 3])
        data = make_benchmark(bench, perf.nearest_exact(6_000), seed=bench)
        res = sort_array_in_core(_cluster(perf.values), perf, data)
        verify_sorted_permutation(data, res.to_array())

    def test_size_mismatch_rejected(self):
        cluster = Cluster(homogeneous_cluster(2))
        with pytest.raises(ValueError):
            sort_in_core(cluster, PerfVector([1, 1, 1]), [np.arange(3)] * 2)

    def test_agrees_with_external(self):
        """The external algorithm must produce the identical global array."""
        from repro.core.external_psrs import PSRSConfig, sort_array

        perf = PerfVector([1, 3])
        data = make_benchmark(0, perf.nearest_exact(8_000), seed=9)
        in_core = sort_array_in_core(_cluster(perf.values), perf, data)
        external = sort_array(
            _cluster(perf.values, memory=2048),
            perf,
            data,
            PSRSConfig(block_items=128, message_items=512),
        )
        np.testing.assert_array_equal(in_core.to_array(), external.to_array())

    def test_step_times_recorded(self):
        perf = PerfVector([1, 2])
        data = make_benchmark(0, perf.nearest_exact(5_000))
        res = sort_array_in_core(_cluster(perf.values), perf, data)
        assert len(res.step_times) == 5
        assert res.elapsed > 0


class TestAssignBuckets:
    def test_respects_perf_weights(self):
        perf = PerfVector([1, 3])
        sizes = [10] * 8
        owner = assign_buckets(sizes, perf)
        got = [sum(sizes[b] for b in range(8) if owner[b] == i) for i in range(2)]
        assert got[1] > got[0]
        assert abs(got[1] - 60) <= 10

    def test_homogeneous_even(self):
        perf = PerfVector([1, 1])
        owner = assign_buckets([5, 5, 5, 5], perf)
        loads = [owner.count(0), owner.count(1)]
        assert loads == [2, 2]

    def test_skewed_bucket_goes_alone(self):
        perf = PerfVector([1, 1])
        owner = assign_buckets([100, 1, 1, 1], perf)
        big_owner = owner[0]
        assert all(o != big_owner for o in owner[1:])


class TestOverpartitioning:
    def test_sorts(self):
        perf = PerfVector([1, 1, 4, 4])
        data = make_benchmark(0, perf.nearest_exact(20_000), seed=4)
        res = sort_array_overpartitioned(_cluster(perf.values), perf, data, s=4)
        verify_sorted_permutation(data, res.to_array())

    def test_more_buckets_better_balance(self):
        perf = PerfVector([1, 1, 4, 4])
        data = make_benchmark(0, perf.nearest_exact(40_000), seed=6)
        res_small = sort_array_overpartitioned(_cluster(perf.values), perf, data, s=1)
        res_large = sort_array_overpartitioned(_cluster(perf.values), perf, data, s=16)
        assert res_large.s_max <= res_small.s_max

    def test_expansion_worse_than_psrs_at_low_s(self):
        """§3.3: oversampling with low s trails regular sampling."""
        perf = PerfVector([1, 1, 4, 4])
        data = make_benchmark(0, perf.nearest_exact(40_000), seed=7)
        over = sort_array_overpartitioned(_cluster(perf.values), perf, data, s=2)
        psrs = sort_array_in_core(_cluster(perf.values), perf, data)
        assert psrs.s_max < over.s_max + 0.25  # PSRS competitive or better

    def test_bucket_count(self):
        perf = PerfVector([1, 2])
        data = make_benchmark(0, perf.nearest_exact(3_000), seed=0)
        res = sort_array_overpartitioned(_cluster(perf.values), perf, data, s=5)
        assert len(res.bucket_sizes) == 10
        assert sum(res.bucket_sizes) == res.n_items

    def test_invalid_s(self):
        perf = PerfVector([1, 1])
        data = make_benchmark(0, 100)
        with pytest.raises(ValueError):
            sort_array_overpartitioned(_cluster([1, 1]), perf, data, s=0)

    def test_empty_input_rejected(self):
        perf = PerfVector([1, 1])
        with pytest.raises(ValueError, match="empty"):
            sort_array_overpartitioned(
                _cluster([1, 1]), perf, np.empty(0, dtype=np.uint32)
            )

    def test_received_sizes_sum_to_n(self):
        perf = PerfVector([2, 3])
        data = make_benchmark(0, perf.nearest_exact(5_000), seed=1)
        res = sort_array_overpartitioned(_cluster(perf.values), perf, data)
        assert sum(res.received_sizes) == res.n_items


@settings(max_examples=15, deadline=None)
@given(
    vals=st.lists(st.integers(1, 4), min_size=1, max_size=4),
    bench=st.integers(0, 7),
)
def test_property_in_core_psrs_sorts(vals, bench):
    perf = PerfVector(vals)
    data = make_benchmark(bench, perf.nearest_exact(2_000), seed=0)
    res = sort_array_in_core(_cluster(vals), perf, data)
    verify_sorted_permutation(data, res.to_array())


@settings(max_examples=15, deadline=None)
@given(
    vals=st.lists(st.integers(1, 4), min_size=2, max_size=4),
    s=st.integers(1, 8),
    seed=st.integers(0, 50),
)
def test_property_overpartition_sorts(vals, s, seed):
    perf = PerfVector(vals)
    data = make_benchmark(0, perf.nearest_exact(2_000), seed=seed)
    res = sort_array_overpartitioned(_cluster(vals), perf, data, s=s, seed=seed)
    verify_sorted_permutation(data, res.to_array())
