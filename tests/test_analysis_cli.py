"""Exit-code contract and output stability of ``python -m repro lint``."""

from __future__ import annotations

import io
import json
from pathlib import Path

import repro
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    main,
)

CLEAN = "def double(x):\n    return 2 * x\n"
DIRTY = "y = sorted(xs)\nt = time.time()\n"


def lint(*argv: str) -> tuple[int, str, str]:
    """Run the standalone lint CLI capturing stdout/stderr.

    The incremental cache is bypassed so these tests exercise the
    analysis itself (and never write ``.lint-cache/`` into the test
    cwd); the cache has its own suite in ``test_lint_cache.py``.
    """
    import contextlib

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(["--no-cache", *argv])
    return code, out.getvalue(), err.getvalue()


def core_file(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    """Materialise a snippet under a fake ``repro/core`` tree."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / name
    target.write_text(source, encoding="utf-8")
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        f = core_file(tmp_path, CLEAN)
        code, out, _ = lint("--no-baseline", str(f))
        assert code == EXIT_CLEAN
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path):
        f = core_file(tmp_path, DIRTY)
        code, out, _ = lint("--no-baseline", str(f))
        assert code == EXIT_FINDINGS
        assert "REP002" in out and "REP003" in out

    def test_syntax_error_exits_two(self, tmp_path):
        f = core_file(tmp_path, "def broken(:\n")
        code, _, err = lint("--no-baseline", str(f))
        assert code == EXIT_INTERNAL_ERROR
        assert "internal error" in err

    def test_unknown_rule_exits_two(self, tmp_path):
        f = core_file(tmp_path, CLEAN)
        code, _, err = lint("--no-baseline", "--rule", "REP999", str(f))
        assert code == EXIT_INTERNAL_ERROR
        assert "unknown rule" in err

    def test_missing_baseline_file_exits_two(self, tmp_path):
        f = core_file(tmp_path, CLEAN)
        code, _, err = lint("--baseline", str(tmp_path / "none.json"), str(f))
        assert code == EXIT_INTERNAL_ERROR
        assert "baseline file not found" in err


class TestRuleFilter:
    def test_rule_filter_restricts_findings(self, tmp_path):
        f = core_file(tmp_path, DIRTY)
        code, out, _ = lint("--no-baseline", "--rule", "REP003", str(f))
        assert code == EXIT_FINDINGS
        assert "REP003" in out and "REP002" not in out

    def test_list_rules_catalogues_all_codes(self):
        code, out, _ = lint("--list-rules")
        assert code == EXIT_CLEAN
        for n in range(1, 9):
            assert f"REP00{n}" in out


class TestJsonFormat:
    def test_json_payload_shape_and_stability(self, tmp_path):
        f = core_file(tmp_path, DIRTY)
        code1, out1, _ = lint("--no-baseline", "--format", "json", str(f))
        code2, out2, _ = lint("--no-baseline", "--format", "json", str(f))
        assert code1 == code2 == EXIT_FINDINGS
        assert out1 == out2  # byte-stable for tooling
        payload = json.loads(out1)
        assert payload["version"] == 1
        assert payload["summary"]["findings"] == len(payload["findings"]) == 2
        first = payload["findings"][0]
        for key in ("path", "line", "col", "rule", "message", "snippet", "fingerprint"):
            assert key in first
        rules = [x["rule"] for x in payload["findings"]]
        assert rules == sorted(rules) or len(set(rules)) == len(rules)

    def test_json_reports_suppressions_with_reasons(self, tmp_path):
        f = core_file(
            tmp_path, "y = sorted(xs)  # repro: noqa REP002(bounded sample)\n"
        )
        code, out, _ = lint("--no-baseline", "--format", "json", str(f))
        assert code == EXIT_CLEAN
        payload = json.loads(out)
        assert payload["findings"] == []
        assert payload["suppressed"][0]["reason"] == "bounded sample"


class TestBaselineWorkflow:
    def test_write_then_lint_clean_then_new_violation(self, tmp_path):
        f = core_file(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"

        code, out, _ = lint("--baseline", str(baseline), "--write-baseline", str(f))
        assert code == EXIT_CLEAN and "wrote 2 finding(s)" in out

        code, out, _ = lint("--baseline", str(baseline), str(f))
        assert code == EXIT_CLEAN
        assert "0 finding(s), 2 baselined" in out

        # A new violation fails the gate and is the only one reported.
        f.write_text(DIRTY + "f = open(p)\n", encoding="utf-8")
        code, out, _ = lint("--baseline", str(baseline), str(f))
        assert code == EXIT_FINDINGS
        assert "REP001" in out and "REP002" not in out

    def test_baselined_findings_survive_line_drift(self, tmp_path):
        f = core_file(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        lint("--baseline", str(baseline), "--write-baseline", str(f))
        f.write_text("# pushed down\n\n" + DIRTY, encoding="utf-8")
        code, _, _ = lint("--baseline", str(baseline), str(f))
        assert code == EXIT_CLEAN


class TestSelfCheck:
    def test_repro_package_lints_clean_against_repo_baseline(self):
        pkg = Path(repro.__file__).parent
        baseline = pkg.parent.parent / "lint-baseline.json"
        assert baseline.is_file(), "repo baseline missing"
        code, out, _ = lint("--baseline", str(baseline), str(pkg))
        assert code == EXIT_CLEAN, out
