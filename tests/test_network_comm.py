"""Tests for link models, channel serialization and collectives."""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, homogeneous_cluster
from repro.cluster.network import FAST_ETHERNET, MYRINET, LinkModel, Network
from repro.cluster.node import SimNode


def _nodes(p):
    return [SimNode(i) for i in range(p)]


class TestLinkModel:
    def test_message_time_formula(self):
        link = LinkModel(latency=1e-3, bandwidth=1e6)
        # 10_000 bytes in 4096-byte packets: 3 packets
        t = link.message_time(10_000, 4096)
        assert t == pytest.approx(3 * 1e-3 + 10_000 / 1e6)

    def test_empty_message_costs_latency(self):
        link = LinkModel(latency=1e-3, bandwidth=1e6)
        assert link.message_time(0, 1024) == pytest.approx(1e-3)

    def test_small_packets_latency_dominated(self):
        """The paper's in-text experiment: 8-int packets are catastrophic."""
        nbytes = 2**21 * 4  # 2M integers
        tiny = FAST_ETHERNET.message_time(nbytes, 8 * 4)
        big = FAST_ETHERNET.message_time(nbytes, 8192 * 4)
        assert tiny > 10 * big

    def test_myrinet_faster_than_ethernet(self):
        n = 10**6
        assert MYRINET.message_time(n, 32768) < FAST_ETHERNET.message_time(n, 32768)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            LinkModel(latency=0, bandwidth=0)
        link = LinkModel(latency=0, bandwidth=1)
        with pytest.raises(ValueError):
            link.message_time(-1, 10)
        with pytest.raises(ValueError):
            link.message_time(10, 0)


class TestNetwork:
    def test_transfer_advances_both_clocks(self):
        nodes = _nodes(2)
        net = Network(LinkModel(latency=0.01, bandwidth=1e6), 2, packet_bytes=1024)
        end = net.transfer(nodes[0], nodes[1], 1024)
        assert end == pytest.approx(0.01 + 1024 / 1e6)
        assert nodes[0].clock.time == pytest.approx(end)
        assert nodes[1].clock.time == pytest.approx(end)

    def test_self_transfer_free(self):
        nodes = _nodes(2)
        net = Network(FAST_ETHERNET, 2)
        net.transfer(nodes[0], nodes[0], 10**6)
        assert nodes[0].clock.time == 0.0
        assert net.messages_sent == 0

    def test_sender_channel_serializes(self):
        """Two sends from one node cannot overlap."""
        nodes = _nodes(3)
        net = Network(LinkModel(latency=0.0, bandwidth=1e6), 3, packet_bytes=1 << 20)
        net.transfer(nodes[0], nodes[1], 10**6)  # 1 s
        # Reset sender's clock to simulate it being "free" — channel must
        # still be busy until t=1.
        nodes[0].clock.reset()
        end = net.transfer(nodes[0], nodes[2], 10**6)
        assert end == pytest.approx(2.0)

    def test_receiver_channel_serializes(self):
        nodes = _nodes(3)
        net = Network(LinkModel(latency=0.0, bandwidth=1e6), 3, packet_bytes=1 << 20)
        net.transfer(nodes[1], nodes[0], 10**6)
        end = net.transfer(nodes[2], nodes[0], 10**6)
        assert end == pytest.approx(2.0)

    def test_counters(self):
        nodes = _nodes(2)
        net = Network(FAST_ETHERNET, 2)
        net.transfer(nodes[0], nodes[1], 500)
        assert net.messages_sent == 1
        assert net.bytes_sent == 500

    def test_reset(self):
        nodes = _nodes(2)
        net = Network(FAST_ETHERNET, 2)
        net.transfer(nodes[0], nodes[1], 500)
        net.reset()
        assert net.messages_sent == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Network(FAST_ETHERNET, 0)
        with pytest.raises(ValueError):
            Network(FAST_ETHERNET, 2, packet_bytes=0)


class TestSimComm:
    def _cluster(self, p=4) -> Cluster:
        return Cluster(homogeneous_cluster(p))

    def test_gather_delivers_payloads(self):
        c = self._cluster()
        payloads = [np.full(4, i, dtype=np.uint32) for i in range(4)]
        got = c.comm.gather(payloads, root=0)
        for i, arr in enumerate(got):
            np.testing.assert_array_equal(arr, payloads[i])
        assert c.network.messages_sent == 3  # root does not message itself

    def test_gather_charges_time(self):
        c = self._cluster()
        c.comm.gather([np.zeros(1000, dtype=np.uint32)] * 4, root=1)
        assert c.elapsed() > 0

    def test_bcast_binomial_message_count(self):
        c = self._cluster(8)
        c.comm.bcast(np.arange(10), root=0)
        assert c.network.messages_sent == 7  # p-1 messages in log p rounds

    def test_bcast_nonzero_root(self):
        c = self._cluster(4)
        out = c.comm.bcast(np.array([9, 9]), root=2)
        assert len(out) == 4
        for arr in out:
            np.testing.assert_array_equal(arr, [9, 9])

    def test_bcast_faster_than_linear_gather(self):
        """log2(p) rounds beat p-1 sequential sends for large p."""
        payload = np.zeros(10**5, dtype=np.uint32)
        c1 = self._cluster(16)
        c1.comm.bcast(payload, root=0)
        t_bcast = c1.elapsed()
        c2 = self._cluster(16)
        c2.comm.gather([payload] * 16, root=0)
        t_gather = c2.elapsed()
        assert t_bcast < t_gather

    def test_scatter(self):
        c = self._cluster()
        parts = [np.full(2, i) for i in range(4)]
        got = c.comm.scatter(parts, root=0)
        np.testing.assert_array_equal(got[3], [3, 3])

    def test_alltoallv_transposes(self):
        c = self._cluster(3)
        matrix = [
            [np.full(2, 10 * i + j, dtype=np.uint32) for j in range(3)]
            for i in range(3)
        ]
        recv = c.comm.alltoallv(matrix)
        for i in range(3):
            for j in range(3):
                np.testing.assert_array_equal(recv[j][i], matrix[i][j])

    def test_alltoallv_none_entries(self):
        c = self._cluster(2)
        matrix = [[None, np.array([1])], [None, None]]
        recv = c.comm.alltoallv(matrix)
        assert recv[1][0] is not None
        assert recv[0][1] is None
        assert c.network.messages_sent == 1

    def test_alltoallv_shape_checked(self):
        c = self._cluster(3)
        with pytest.raises(ValueError, match="3x3"):
            c.comm.alltoallv([[None] * 2] * 3)

    def test_rank_checks(self):
        c = self._cluster(2)
        with pytest.raises(ValueError):
            c.comm.gather([np.array([1])] * 2, root=5)
        with pytest.raises(ValueError):
            c.comm.gather([np.array([1])], root=0)

    def test_payloads_are_copies(self):
        c = self._cluster(2)
        src = np.array([1, 2, 3])
        out = c.comm.bcast(src, root=0)
        out[1][0] = 99
        assert src[0] == 1


class TestSimCommEdgeCases:
    """The footprints the protocol schema/conformance model relies on."""

    def _cluster(self, p=4) -> Cluster:
        return Cluster(homogeneous_cluster(p))

    def test_self_send_is_free_and_publishes_nothing(self):
        """A rank-i -> rank-i send is a local move: data still arrives,
        but no message is charged and no NetTransfer event appears."""
        c = self._cluster(2)
        c.bus.set_level("io")
        got = c.comm.send(1, 1, np.array([7, 7]))
        np.testing.assert_array_equal(got, [7, 7])
        assert c.network.messages_sent == 0
        assert c.elapsed() == 0.0
        assert not [e for e in c.bus.events if e.kind == "net_transfer"]

    def test_cross_send_publishes_one_transfer(self):
        c = self._cluster(2)
        c.comm.send(0, 1, np.array([1, 2]))
        assert c.network.messages_sent == 1

    def test_alltoallv_empty_segments(self):
        """Zero-length segments are real (empty) messages, unlike None."""
        c = self._cluster(3)
        empty = np.array([], dtype=np.uint32)
        matrix = [
            [None if i == j else empty for j in range(3)] for i in range(3)
        ]
        recv = c.comm.alltoallv(matrix)
        # 6 off-diagonal zero-byte messages still pay per-message latency
        assert c.network.messages_sent == 6
        assert c.elapsed() > 0
        for i in range(3):
            for j in range(3):
                if i == j:
                    assert recv[i][j] is None
                else:
                    assert recv[j][i] is not None and recv[j][i].size == 0

    def test_alltoallv_all_empty_diagonal_only(self):
        c = self._cluster(2)
        empty = np.array([], dtype=np.uint32)
        recv = c.comm.alltoallv([[empty, None], [None, empty]])
        assert c.network.messages_sent == 0  # diagonal moves are local
        assert recv[0][0] is not None and recv[0][0].size == 0

    def test_gather_on_noncontiguous_degraded_view(self):
        """Survivors {0, 2, 3}: view ranks are *positions*, so root=0 is
        global node 0 and the two messages come from nodes 2 and 3."""
        c = self._cluster(4)
        c.bus.set_level("io")
        view = c.view([0, 2, 3])
        payloads = [np.full(2, r, dtype=np.uint32) for r in view.ranks]
        got = view.comm.gather(payloads, root=0)
        assert len(got) == 3
        for pos, r in enumerate(view.ranks):
            np.testing.assert_array_equal(got[pos], [r, r])
        transfers = [e for e in c.bus.events if e.kind == "net_transfer"]
        assert {(e.src, e.dst) for e in transfers} == {(2, 0), (3, 0)}

    def test_scatter_on_noncontiguous_degraded_view(self):
        """Scatter by position: slice i goes to the i-th *survivor*."""
        c = self._cluster(5)
        c.bus.set_level("io")
        view = c.view([1, 3, 4])
        parts = [np.full(2, pos, dtype=np.uint32) for pos in range(3)]
        got = view.comm.scatter(parts, root=1)  # root position 1 = node 3
        np.testing.assert_array_equal(got[2], [2, 2])
        transfers = [e for e in c.bus.events if e.kind == "net_transfer"]
        assert {(e.src, e.dst) for e in transfers} == {(3, 1), (3, 4)}

    def test_bcast_on_noncontiguous_degraded_view(self):
        """Binomial tree in position space: sources are always holders,
        and only surviving nodes appear in the traffic."""
        c = self._cluster(6)
        c.bus.set_level("io")
        survivors = [0, 2, 3, 5]
        view = c.view(survivors)
        out = view.comm.bcast(np.array([4]), root=2)  # root = node 3
        assert len(out) == len(survivors)
        transfers = [e for e in c.bus.events if e.kind == "net_transfer"]
        assert len(transfers) == len(survivors) - 1
        holders = {3}
        for e in transfers:
            assert e.src in holders and e.dst not in holders
            assert e.src in survivors and e.dst in survivors
            holders.add(e.dst)
        assert holders == set(survivors)

    def test_degraded_view_rank_out_of_positions_rejected(self):
        """Passing a *global* rank where a position is expected fails
        loudly once the view is small enough (the REP206 bug class)."""
        c = self._cluster(4)
        view = c.view([0, 3])
        with pytest.raises(ValueError, match="out of range"):
            view.comm.gather([np.array([1])] * 2, root=3)  # 3 is a rank


class TestCluster:
    def test_step_records_trace(self):
        # Lockstep: this test asserts the barrier-per-step contract.
        c = Cluster(homogeneous_cluster(2), kernel="lockstep")
        with c.step("work"):
            c.nodes[0].compute(10**6)
        assert c.trace.steps() == ["work"]
        assert c.trace.step_duration("work") > 0
        # Barrier after the step: clocks equal.
        assert c.nodes[0].clock.time == c.nodes[1].clock.time

    def test_elapsed_is_max_clock(self):
        c = Cluster(homogeneous_cluster(3))
        c.nodes[2].compute(10**6)
        assert c.elapsed() == pytest.approx(c.nodes[2].clock.time)

    def test_reset(self):
        c = Cluster(homogeneous_cluster(2))
        with c.step("w"):
            c.nodes[0].compute(100)
        c.reset()
        assert c.elapsed() == 0.0
        assert c.trace.events == []

    def test_io_stats_aggregates(self):
        c = Cluster(homogeneous_cluster(2))
        c.nodes[0].disk.charge_write(4, 4)
        c.nodes[1].disk.charge_write(4, 4)
        assert c.io_stats().blocks_written == 2

    def test_spec_helpers(self):
        from repro.cluster.machine import heterogeneous_cluster, paper_cluster

        spec = paper_cluster()
        assert spec.p == 4
        assert [n.speed for n in spec.nodes] == [1.0, 1.0, 0.25, 0.25]
        het = heterogeneous_cluster([1, 2, 4])
        assert Cluster(het).speeds == [1, 2, 4]
        assert spec.with_packet_bytes(64).packet_bytes == 64
        assert spec.with_link(MYRINET).link.name == "Myrinet"
        assert spec.with_memory(4096).nodes[0].memory_items == 4096

    def test_empty_cluster_rejected(self):
        from repro.cluster.machine import ClusterSpec

        with pytest.raises(ValueError):
            ClusterSpec(nodes=())
