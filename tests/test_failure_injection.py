"""Failure injection: faults mid-algorithm must propagate cleanly and
leave the memory accounting balanced (no phantom reservations)."""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, homogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.extsort.balanced import balanced_merge_sort
from repro.extsort.distribution import distribution_sort
from repro.extsort.polyphase import polyphase_sort
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark

from tests.conftest import file_from_array


class FaultyDisk(SimDisk):
    """A disk that fails after a configured number of I/O operations."""

    def __init__(self, fail_after: int, **kw) -> None:
        super().__init__(**kw)
        self.fail_after = fail_after
        self._ops = 0

    def _tick(self) -> None:
        self._ops += 1
        if self._ops > self.fail_after:
            raise IOError(f"injected disk fault after {self.fail_after} I/Os")

    def charge_read(self, n_items: int, itemsize: int) -> float:
        self._tick()
        return super().charge_read(n_items, itemsize)

    def charge_write(self, n_items: int, itemsize: int) -> float:
        self._tick()
        return super().charge_write(n_items, itemsize)


def _faulty_setup(fail_after: int, n: int = 800, capacity: int = 64):
    disk = FaultyDisk(fail_after=10**9, params=DiskParams(1e-4, 1e8), name="faulty")
    mem = MemoryManager(capacity=capacity)
    data = make_benchmark(0, n, seed=0)
    src = file_from_array(data, disk, B=8, mem=mem)
    disk.fail_after = disk._ops + fail_after  # arm after setup
    return disk, mem, src


@pytest.mark.parametrize("fail_after", [1, 5, 25, 120, 400])
class TestSequentialEnginesUnderFaults:
    def test_polyphase_propagates_and_balances(self, fail_after):
        disk, mem, src = _faulty_setup(fail_after)
        with pytest.raises(IOError, match="injected disk fault"):
            polyphase_sort(src, disk, mem, n_tapes=4)
        assert mem.in_use == 0, "leaked memory reservations after fault"

    def test_balanced_propagates_and_balances(self, fail_after):
        disk, mem, src = _faulty_setup(fail_after)
        with pytest.raises(IOError, match="injected disk fault"):
            balanced_merge_sort(src, disk, mem)
        assert mem.in_use == 0

    def test_distribution_propagates_and_balances(self, fail_after):
        disk, mem, src = _faulty_setup(fail_after)
        with pytest.raises(IOError, match="injected disk fault"):
            distribution_sort(src, disk, mem)
        assert mem.in_use == 0


class TestClusterUnderFaults:
    @pytest.mark.parametrize("fail_after", [3, 20, 60, 120])
    def test_psrs_fault_on_one_node(self, fail_after):
        """A fault on one node aborts the whole (bulk-synchronous) sort;
        every node's accounting must still balance."""
        perf = PerfVector([1, 1])
        n = perf.nearest_exact(2_000)
        data = make_benchmark(0, n, seed=1)
        cluster = Cluster(homogeneous_cluster(2, memory_items=512))
        # Replace node 1's disk with a faulty one (same observer wiring).
        node = cluster.nodes[1]
        faulty = FaultyDisk(
            fail_after=10**9,
            params=node.disk.params,
            name=node.disk.name,
            slowdown=node.disk.slowdown,
            observer=node.clock.advance,
        )
        node.disk = faulty
        from repro.core.external_psrs import distribute_array, sort_distributed

        inputs = distribute_array(cluster, perf, data, 64)
        faulty.fail_after = faulty._ops + fail_after
        with pytest.raises(IOError, match="injected disk fault"):
            sort_distributed(
                cluster, perf, inputs,
                PSRSConfig(block_items=64, message_items=256),
            )
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0

    def test_fault_beyond_total_io_means_clean_completion(self):
        """A fault armed past the sort's total I/O never fires — and the
        run completes correctly (sanity check on the injection harness)."""
        perf = PerfVector([1, 1])
        n = perf.nearest_exact(2_000)
        data = make_benchmark(0, n, seed=1)
        cluster = Cluster(homogeneous_cluster(2, memory_items=512))
        node = cluster.nodes[1]
        faulty = FaultyDisk(
            fail_after=10**9,
            params=node.disk.params,
            name=node.disk.name,
            observer=node.clock.advance,
        )
        node.disk = faulty
        res = sort_array(
            cluster, perf, data, PSRSConfig(block_items=64, message_items=256)
        )
        from repro.workloads.records import verify_sorted_permutation

        verify_sorted_permutation(data, res.to_array())

    def test_fault_free_run_after_failed_run(self):
        """The cluster object remains usable after an aborted sort."""
        perf = PerfVector([1, 1])
        n = perf.nearest_exact(2_000)
        data = make_benchmark(0, n, seed=2)
        cluster = Cluster(homogeneous_cluster(2, memory_items=512))
        node = cluster.nodes[0]
        faulty = FaultyDisk(
            fail_after=50,
            params=node.disk.params,
            name=node.disk.name,
            observer=node.clock.advance,
        )
        node.disk = faulty
        with pytest.raises(IOError):
            sort_array(
                cluster, perf, data, PSRSConfig(block_items=64, message_items=256)
            )
        # Heal the disk, reset, run again.
        faulty.fail_after = 10**12
        cluster.reset()
        res = sort_array(
            cluster, perf, data, PSRSConfig(block_items=64, message_items=256)
        )
        from repro.workloads.records import verify_sorted_permutation

        verify_sorted_permutation(data, res.to_array())
