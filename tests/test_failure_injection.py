"""Failure injection: faults mid-algorithm must propagate cleanly and
leave the memory accounting balanced (no phantom reservations).

Faults are injected through the first-class hooks
(:attr:`SimDisk.fault_hook` via :func:`repro.faults.install_disk_faults`,
:class:`repro.faults.FaultInjector` for whole clusters) — the old
``FaultyDisk`` subclass is gone.  :class:`repro.faults.DiskFaultError`
subclasses :class:`IOError`, so these tests keep asserting the
historical ``pytest.raises(IOError, match="injected disk fault")``.
"""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, homogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.extsort.balanced import balanced_merge_sort
from repro.extsort.distribution import distribution_sort
from repro.extsort.polyphase import polyphase_sort
from repro.faults import (
    DiskFault,
    DiskFaultError,
    FaultError,
    FaultPlan,
    install_disk_faults,
)
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark

from tests.conftest import file_from_array


def _faulty_setup(fail_after: int, n: int = 800, capacity: int = 64):
    disk = SimDisk(DiskParams(1e-4, 1e8), name="faulty")
    mem = MemoryManager(capacity=capacity)
    data = make_benchmark(0, n, seed=0)
    src = file_from_array(data, disk, B=8, mem=mem)
    # Arm after setup: install_disk_faults counts I/Os from this call.
    counters = install_disk_faults(
        disk, [DiskFault(after_ios=fail_after, count=None)]
    )
    return disk, mem, src, counters


@pytest.mark.parametrize("fail_after", [1, 5, 25, 120, 400])
class TestSequentialEnginesUnderFaults:
    def test_polyphase_propagates_and_balances(self, fail_after):
        disk, mem, src, counters = _faulty_setup(fail_after)
        with pytest.raises(IOError, match="injected disk fault"):
            polyphase_sort(src, disk, mem, n_tapes=4)
        assert mem.in_use == 0, "leaked memory reservations after fault"
        # A permanent fault may fire again during cleanup I/O.
        assert counters.disk_faults >= 1
        assert disk.stats.faults == counters.disk_faults

    def test_balanced_propagates_and_balances(self, fail_after):
        disk, mem, src, counters = _faulty_setup(fail_after)
        with pytest.raises(IOError, match="injected disk fault"):
            balanced_merge_sort(src, disk, mem)
        assert mem.in_use == 0
        assert counters.disk_faults >= 1

    def test_distribution_propagates_and_balances(self, fail_after):
        disk, mem, src, counters = _faulty_setup(fail_after)
        with pytest.raises(IOError, match="injected disk fault"):
            distribution_sort(src, disk, mem)
        assert mem.in_use == 0
        assert counters.disk_faults >= 1


class TestDiskFaultErrorShape:
    def test_is_ioerror_and_faulterror(self):
        disk, mem, src, _ = _faulty_setup(0)
        with pytest.raises(DiskFaultError) as exc_info:
            polyphase_sort(src, disk, mem, n_tapes=4)
        err = exc_info.value
        assert isinstance(err, IOError)
        assert isinstance(err, FaultError)
        assert err.disk_name == "faulty"
        assert err.op in ("read", "write")
        assert err.io_index >= 1

    def test_faulted_io_is_not_counted(self):
        """The fault fires before the I/O is charged: counters and file
        contents are exactly as if the failing I/O never started."""
        disk, mem, src, _ = _faulty_setup(0)
        before = disk.stats.snapshot()
        n_items = src.n_items
        with pytest.raises(DiskFaultError):
            polyphase_sort(src, disk, mem, n_tapes=4)
        after = disk.stats.snapshot()
        assert after.blocks_read == before.blocks_read
        assert after.blocks_written == before.blocks_written
        assert src.n_items == n_items


class TestClusterUnderFaults:
    @pytest.mark.parametrize("fail_after", [3, 20, 60, 120])
    def test_psrs_fault_on_one_node(self, fail_after):
        """A permanent fault on one node aborts the whole (bulk-synchronous)
        sort; every node's accounting must still balance."""
        perf = PerfVector([1, 1])
        n = perf.nearest_exact(2_000)
        data = make_benchmark(0, n, seed=1)
        cluster = Cluster(homogeneous_cluster(2, memory_items=512))
        from repro.core.external_psrs import distribute_array, sort_distributed

        inputs = distribute_array(cluster, perf, data, 64)
        # Armed inside sort_distributed, i.e. after the setup writes.
        plan = FaultPlan(
            disk_faults=[DiskFault(node=1, after_ios=fail_after, count=None)]
        )
        with pytest.raises(IOError, match="injected disk fault"):
            sort_distributed(
                cluster, perf, inputs,
                PSRSConfig(block_items=64, message_items=256),
                faults=plan,
            )
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0
        # The injector uninstalled its hooks on the way out.
        assert all(nd.disk.fault_hook is None for nd in cluster.nodes)
        assert cluster.step_observers == []

    def test_fault_beyond_total_io_means_clean_completion(self):
        """A fault armed past the sort's total I/O never fires — and the
        run completes correctly (sanity check on the injection harness)."""
        perf = PerfVector([1, 1])
        n = perf.nearest_exact(2_000)
        data = make_benchmark(0, n, seed=1)
        cluster = Cluster(homogeneous_cluster(2, memory_items=512))
        plan = FaultPlan(disk_faults=[DiskFault(node=1, after_ios=10**9)])
        res = sort_array(
            cluster, perf, data,
            PSRSConfig(block_items=64, message_items=256),
            faults=plan,
        )
        from repro.workloads.records import verify_sorted_permutation

        verify_sorted_permutation(data, res.to_array())
        assert res.faults.total_faults == 0

    def test_fault_free_run_after_failed_run(self):
        """The cluster object remains usable after an aborted sort."""
        perf = PerfVector([1, 1])
        n = perf.nearest_exact(2_000)
        data = make_benchmark(0, n, seed=2)
        cluster = Cluster(homogeneous_cluster(2, memory_items=512))
        plan = FaultPlan(
            disk_faults=[DiskFault(node=0, after_ios=50, count=None)]
        )
        with pytest.raises(IOError):
            sort_array(
                cluster, perf, data,
                PSRSConfig(block_items=64, message_items=256),
                faults=plan,
            )
        # The failed run's hooks are gone; reset and run again clean.
        cluster.reset()
        res = sort_array(
            cluster, perf, data, PSRSConfig(block_items=64, message_items=256)
        )
        from repro.workloads.records import verify_sorted_permutation

        verify_sorted_permutation(data, res.to_array())
