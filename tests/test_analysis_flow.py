"""The flow-aware deep rules REP101..REP105: fixtures, properties, self-check.

Every rule gets at least one *bad* fixture (must flag) and one *good*
fixture (must stay silent); a hypothesis property generates leak-free
writer-discipline snippets and asserts the typestate rules never fire on
them; and the repo self-check pins ``repro lint --deep`` to zero
un-baselined findings on the real package.
"""

from __future__ import annotations

import contextlib
import io
import json
import textwrap
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    main,
)
from repro.analysis.flow import (
    DEEP_RULES,
    DEEP_RULES_BY_CODE,
    analyze_deep,
    analyze_deep_source,
)

PATH = "repro/core/mod.py"


def deep(source: str, path: str = PATH):
    """Run all deep rules on a dedented snippet; return the FileReport."""
    return analyze_deep_source(textwrap.dedent(source), path)


def codes(report) -> list[str]:
    return [f.rule for f in report.findings]


def lint(*argv: str) -> tuple[int, str, str]:
    # --no-cache: keep these tests off the incremental cache (which has
    # its own suite) and out of the test cwd.
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(["--no-cache", *argv])
    return code, out.getvalue(), err.getvalue()


def core_file(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / name
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


class TestRegistry:
    def test_five_rules_in_code_order(self):
        assert [r.code for r in DEEP_RULES] == [
            "REP101", "REP102", "REP103", "REP104", "REP105",
        ]
        assert set(DEEP_RULES_BY_CODE) == {r.code for r in DEEP_RULES}


class TestHandleLeakREP101:
    def test_bad_never_closed(self):
        report = deep(
            """
            def leak(f, mem, data):
                w = BlockWriter(f, mem)
                w.write(data)
            """
        )
        assert codes(report) == ["REP101"]
        assert "leak" in report.findings[0].message

    def test_bad_closed_on_one_branch_only(self):
        report = deep(
            """
            def half(f, mem, data, flag):
                w = BlockWriter(f, mem)
                w.write(data)
                if flag:
                    w.close()
            """
        )
        assert codes(report) == ["REP101"]

    def test_good_with_statement(self):
        report = deep(
            """
            def ok(f, mem, data):
                with BlockWriter(f, mem) as w:
                    w.write(data)
            """
        )
        assert codes(report) == []

    def test_good_return_inside_with(self):
        # __exit__ seals the writer on the return path: not a leak
        report = deep(
            """
            def ok(f, mem, data, flag):
                with BlockWriter(f, mem) as w:
                    if flag:
                        return 0
                    w.write(data)
                return 1
            """
        )
        assert codes(report) == []

    def test_good_close_in_finally(self):
        report = deep(
            """
            def ok(f, mem, data):
                w = BlockWriter(f, mem)
                try:
                    w.write(data)
                finally:
                    w.close()
            """
        )
        assert codes(report) == []

    def test_good_escaping_writer_is_callers_problem(self):
        report = deep(
            """
            def make(f, mem):
                return BlockWriter(f, mem)
            """
        )
        assert codes(report) == []


class TestUseAfterSealREP102:
    def test_bad_write_after_close(self):
        report = deep(
            """
            def bad(f, mem, data):
                w = BlockWriter(f, mem)
                w.close()
                w.write(data)
            """
        )
        assert codes(report) == ["REP102"]

    def test_bad_double_close(self):
        report = deep(
            """
            def bad(f, mem, data):
                w = BlockWriter(f, mem)
                w.write(data)
                w.close()
                w.close()
            """
        )
        assert codes(report) == ["REP102"]

    def test_bad_write_after_abandon(self):
        report = deep(
            """
            def bad(f, mem, data):
                w = BlockWriter(f, mem)
                w.abandon()
                w.write(data)
            """
        )
        assert codes(report) == ["REP102"]

    def test_good_single_seal_after_last_write(self):
        report = deep(
            """
            def ok(f, mem, chunks):
                w = BlockWriter(f, mem)
                for c in chunks:
                    w.write(c)
                w.close()
            """
        )
        assert codes(report) == []

    def test_good_abandon_then_close_is_sanctioned(self):
        # abandon() marks closed; a later close() is the documented no-op
        report = deep(
            """
            def ok(f, mem):
                w = BlockWriter(f, mem)
                w.abandon()
                w.close()
            """
        )
        assert codes(report) == []

    def test_good_close_on_either_branch(self):
        report = deep(
            """
            def ok(f, mem, data, flag):
                w = BlockWriter(f, mem)
                if flag:
                    w.write(data)
                    w.close()
                else:
                    w.abandon()
            """
        )
        assert codes(report) == []


class TestReadNeverWrittenREP103:
    def test_bad_read_all_of_fresh_file(self):
        report = deep(
            """
            def bad(node, dtype):
                f = node.disk.new_file(16, dtype)
                return f.read_all()
            """
        )
        assert codes(report) == ["REP103"]

    def test_bad_reader_on_fresh_file(self):
        report = deep(
            """
            def bad(node, dtype, mem):
                f = node.disk.new_file(16, dtype)
                r = BlockReader(f, mem)
                return r
            """
        )
        assert codes(report) == ["REP103"]

    def test_good_append_then_read(self):
        report = deep(
            """
            def ok(node, dtype, block):
                f = node.disk.new_file(16, dtype)
                f.append_block(block)
                return f.read_all()
            """
        )
        assert codes(report) == []

    def test_good_writer_attached(self):
        report = deep(
            """
            def ok(node, dtype, mem, data):
                f = node.disk.new_file(16, dtype)
                with BlockWriter(f, mem) as w:
                    w.write(data)
                return f.read_all()
            """
        )
        assert codes(report) == []

    def test_good_escaped_file_not_judged(self):
        # a file handed to another function may be written there
        report = deep(
            """
            def ok(node, dtype, fill):
                f = node.disk.new_file(16, dtype)
                fill(f)
                return f.read_all()
            """
        )
        assert codes(report) == []


class TestCrossNodeEscapeREP104:
    def test_bad_result_discarded(self):
        report = deep(
            """
            def bad(cluster, arr, i, j):
                cluster.comm.send(i, j, arr)
                return arr
            """
        )
        assert codes(report) == ["REP104"]

    def test_bad_result_bound_but_never_read(self):
        report = deep(
            """
            def bad(cluster, arr, root):
                copies = cluster.comm.bcast(arr, root=root)
                return arr
            """
        )
        assert codes(report) == ["REP104"]

    def test_good_receiver_copy_used(self):
        report = deep(
            """
            def ok(cluster, arr, i, j):
                arr = cluster.comm.send(i, j, arr)
                return arr
            """
        )
        assert codes(report) == []

    def test_good_noqa_with_reason(self):
        report = deep(
            """
            def ok(cluster, arr, i, j):
                cluster.comm.send(i, j, arr)  # repro: noqa REP104(charge-only)
                return arr
            """
        )
        assert codes(report) == []
        assert [s.finding.rule for s in report.suppressed] == ["REP104"]


class TestPhaseAttributionREP105:
    def test_bad_helper_reachable_outside_step(self):
        report = deep(
            """
            def _deliver(f, block):
                f.append_block(block)

            def run(cluster, f, block):
                _deliver(f, block)
            """
        )
        assert codes(report) == ["REP105"]
        assert "append_block" in report.findings[0].message
        assert "run" in report.findings[0].message  # names the bad caller

    def test_good_all_callers_under_step(self):
        report = deep(
            """
            def _deliver(f, block):
                f.append_block(block)

            def run(cluster, f, block):
                with cluster.step("deliver"):
                    _deliver(f, block)
            """
        )
        assert codes(report) == []

    def test_good_attribution_is_transitive(self):
        report = deep(
            """
            def _deliver(f, block):
                f.append_block(block)

            def _middle(f, block):
                _deliver(f, block)

            def run(cluster, f, block):
                with cluster.step("deliver"):
                    _middle(f, block)
            """
        )
        assert codes(report) == []

    def test_bad_one_unattributed_caller_breaks_it(self):
        report = deep(
            """
            def _deliver(f, block):
                f.append_block(block)

            def run(cluster, f, block):
                with cluster.step("deliver"):
                    _deliver(f, block)

            def sneaky(f, block):
                _deliver(f, block)
            """
        )
        assert codes(report) == ["REP105"]
        assert "sneaky" in report.findings[0].message

    def test_good_runner_registration_counts(self):
        report = deep(
            """
            def _deliver(f, block):
                f.append_block(block)

            def run(runner, f, block):
                runner.run("deliver", lambda: _deliver(f, block))
            """
        )
        assert codes(report) == []

    def test_good_public_entry_points_skipped(self):
        # no in-package callers: attribution is the caller's contract
        report = deep(
            """
            def sort_array(cluster, f, block):
                f.append_block(block)
            """
        )
        assert codes(report) == []


# -- hypothesis: leak-free snippets never trip the typestate rules ----------

_GOOD_BLOCKS = (
    "with BlockWriter(f{i}, mem) as w{i}:\n    w{i}.write(data)",
    "w{i} = BlockWriter(f{i}, mem)\nw{i}.write(data)\nw{i}.close()",
    "w{i} = BlockWriter(f{i}, mem)\ntry:\n    w{i}.write(data)\nfinally:\n    w{i}.close()",
    "w{i} = BlockWriter(f{i}, mem)\nw{i}.abandon()",
    "f{i}.append_block(data)\nout = f{i}.read_all()",
)


@st.composite
def leak_free_snippets(draw) -> str:
    picks = draw(
        st.lists(st.sampled_from(_GOOD_BLOCKS), min_size=1, max_size=4)
    )
    args = ", ".join(f"f{i}" for i in range(len(picks)))
    body = "\n".join(
        textwrap.indent(tpl.format(i=i), "    ")
        for i, tpl in enumerate(picks)
    )
    return f"def snippet({args}, mem, data):\n{body}\n"


class TestTypestateProperty:
    @settings(max_examples=60, deadline=None)
    @given(source=leak_free_snippets())
    def test_disciplined_snippets_are_clean(self, source: str):
        report = analyze_deep_source(source, PATH)
        typestate = [c for c in codes(report) if c in ("REP101", "REP102", "REP103")]
        assert typestate == []


# -- CLI integration ---------------------------------------------------------


class TestDeepCli:
    BAD = """
    def _deliver(f, block):
        f.append_block(block)

    def run(cluster, f, block):
        _deliver(f, block)
    """

    def test_deep_findings_exit_one(self, tmp_path):
        f = core_file(tmp_path, self.BAD)
        code, out, _ = lint("--deep", "--no-baseline", str(f))
        assert code == EXIT_FINDINGS
        assert "REP105" in out

    def test_shallow_pass_ignores_deep_rules(self, tmp_path):
        f = core_file(tmp_path, self.BAD)
        code, out, _ = lint("--no-baseline", str(f))
        assert code == EXIT_CLEAN

    def test_deep_rule_requires_deep_flag(self, tmp_path):
        f = core_file(tmp_path, self.BAD)
        code, _, err = lint("--rule", "REP105", "--no-baseline", str(f))
        assert code == EXIT_INTERNAL_ERROR
        assert "--deep" in err

    def test_json_has_engine_versions_and_stable_order(self, tmp_path):
        f = core_file(tmp_path, self.BAD)
        code, out, _ = lint("--deep", "--no-baseline", "--format", "json", str(f))
        assert code == EXIT_FINDINGS
        payload = json.loads(out)
        assert payload["version"] == 1  # unchanged: existing tooling contract
        assert payload["engine_version"]
        assert payload["flow_engine_version"]
        keys = [(x["path"], x["line"], x["rule"]) for x in payload["findings"]]
        assert keys == sorted(keys)

    def test_json_without_deep_has_null_flow_version(self, tmp_path):
        f = core_file(tmp_path, "def double(x):\n    return 2 * x\n")
        code, out, _ = lint("--no-baseline", "--format", "json", str(f))
        assert code == EXIT_CLEAN
        assert json.loads(out)["flow_engine_version"] is None

    def test_list_rules_includes_deep(self):
        code, out, _ = lint("--list-rules")
        assert code == EXIT_CLEAN
        for rule_code in DEEP_RULES_BY_CODE:
            assert rule_code in out
        assert "[deep]" in out

    def test_deep_baseline_roundtrip(self, tmp_path):
        f = core_file(tmp_path, self.BAD)
        baseline = tmp_path / "baseline.json"
        code, _, _ = lint(
            "--deep", "--baseline", str(baseline), "--write-baseline", str(f)
        )
        assert code == EXIT_CLEAN
        code, out, _ = lint("--deep", "--baseline", str(baseline), str(f))
        assert code == EXIT_CLEAN
        assert "1 baselined" in out


class TestSelfCheckDeep:
    def test_repo_is_deep_clean(self):
        """The package itself carries zero un-suppressed deep findings."""
        pkg = Path(repro.__file__).parent
        report = analyze_deep([pkg])
        findings = [f for fr in report.files for f in fr.findings]
        assert findings == []

    def test_cli_deep_self_check_exits_clean(self):
        pkg = Path(repro.__file__).parent
        code, out, _ = lint("--deep", "--no-baseline", str(pkg))
        assert code == EXIT_CLEAN, out
