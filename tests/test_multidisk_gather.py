"""Tests for multi-disk nodes (PDM D > 1), the gather phase, and
merge_many's multi-pass path."""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, ClusterSpec, NodeSpec, homogeneous_cluster
from repro.cluster.node import SimNode
from repro.core.external_psrs import (
    PSRSConfig,
    gather_output,
    merge_many,
    sort_array,
)
from repro.core.perf import PerfVector
from repro.extsort.multiway import RunRef
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

from tests.conftest import file_from_array, make_disk


class TestDiskParallelism:
    def test_service_time_divides_by_d(self):
        p = DiskParams(seek_time=0.01, bandwidth=1e6)
        d1 = SimDisk(p, parallelism=1)
        d4 = SimDisk(p, parallelism=4)
        assert d1.charge_read(100, 4) == pytest.approx(4 * d4.charge_read(100, 4))

    def test_block_count_unchanged(self):
        d4 = SimDisk(DiskParams(), parallelism=4)
        d4.charge_write(8, 4)
        assert d4.stats.blocks_written == 1  # PDM cost measure invariant

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            SimDisk(DiskParams(), parallelism=0)

    def test_node_n_disks(self):
        node = SimNode(0, n_disks=4)
        assert node.disk.parallelism == 4

    def test_sort_speeds_up_with_d(self):
        """Theorem 1's n/D factor, end to end through Algorithm 1."""
        perf = PerfVector([1, 1])
        n = perf.nearest_exact(20_000)
        data = make_benchmark(0, n, seed=0)
        times = {}
        for D in (1, 4):
            spec = ClusterSpec(
                nodes=tuple(
                    NodeSpec(name=f"n{i}", memory_items=1024, n_disks=D)
                    for i in range(2)
                )
            )
            cluster = Cluster(spec)
            res = sort_array(
                cluster, perf, data, PSRSConfig(block_items=128, message_items=4096)
            )
            verify_sorted_permutation(data, res.to_array())
            times[D] = res.elapsed
        # I/O dominates, so ~4x fewer I/O seconds; communication and CPU
        # dilute it below a clean 4x.
        assert 1.8 < times[1] / times[4] <= 4.2


class TestGatherOutput:
    def _sorted_result(self, perf_vals=(1, 2), n=5_000, memory=1024):
        perf = PerfVector(list(perf_vals))
        n = perf.nearest_exact(n)
        data = make_benchmark(0, n, seed=1)
        cluster = Cluster(homogeneous_cluster(perf.p, memory_items=memory))
        res = sort_array(
            cluster, perf, data, PSRSConfig(block_items=128, message_items=512)
        )
        return cluster, res, data

    def test_gather_concatenates_in_order(self):
        cluster, res, data = self._sorted_result()
        g = gather_output(cluster, res)
        np.testing.assert_array_equal(g.to_array(), np.sort(data))

    def test_gather_lands_on_root_disk(self):
        cluster, res, _ = self._sorted_result((1, 1, 1))
        g = gather_output(cluster, res, root=2)
        assert g.disk is cluster.nodes[2].disk

    def test_gather_charges_network_and_is_traced(self):
        cluster, res, _ = self._sorted_result()
        msgs_before = cluster.network.messages_sent
        gather_output(cluster, res)
        assert cluster.network.messages_sent > msgs_before
        assert "gather" in cluster.trace.steps()

    def test_gather_time_excluded_from_sort_elapsed(self):
        cluster, res, _ = self._sorted_result()
        sort_elapsed = res.elapsed
        gather_output(cluster, res)
        assert cluster.elapsed() > sort_elapsed  # gather added on top

    def test_memory_budgets_respected(self):
        cluster, res, _ = self._sorted_result(memory=768)
        gather_output(cluster, res, message_items=10_000)  # clamped internally
        for node in cluster.nodes:
            assert node.mem.in_use == 0


class TestMergeMany:
    def test_multi_pass_when_runs_exceed_order(self, rng):
        """Memory allows a 3-way merge; feed 10 runs -> multiple passes."""
        node = SimNode(0, memory_items=32 * 4)  # B=32 -> order 3
        runs = []
        all_items = []
        for _ in range(10):
            arr = np.sort(rng.integers(0, 10**6, 50)).astype(np.uint32)
            all_items.append(arr)
            runs.append(RunRef.whole(file_from_array(arr, node.disk, 32, node.mem)))
        out = merge_many(runs, node, "vector")
        expected = np.sort(np.concatenate(all_items))
        np.testing.assert_array_equal(out.to_array(), expected)
        assert node.mem.in_use == 0

    def test_empty_refs(self):
        node = SimNode(0)
        out = merge_many([], node, "vector", B=64)
        assert out.n_items == 0
        assert out.B == 64

    def test_empty_refs_require_explicit_block_size(self):
        node = SimNode(0)
        with pytest.raises(ValueError, match="explicit B"):
            merge_many([], node, "vector")

    def test_single_whole_run_returned_directly(self, rng):
        node = SimNode(0)
        arr = np.sort(rng.integers(0, 100, 20)).astype(np.uint32)
        f = file_from_array(arr, node.disk, 8, node.mem)
        out = merge_many([RunRef.whole(f)], node, "vector")
        assert out is f  # no copy

    def test_partial_ref_copied_out(self, rng):
        node = SimNode(0)
        arr = np.sort(rng.integers(0, 100, 20)).astype(np.uint32)
        f = file_from_array(arr, node.disk, 8, node.mem)
        out = merge_many([RunRef(f, 5, 15)], node, "vector")
        np.testing.assert_array_equal(out.to_array(), arr[5:15])


class TestLinearSpace:
    def test_intermediates_reclaimed(self):
        """After the sort, live storage is ~inputs + outputs only."""
        perf = PerfVector([1, 1])
        n = perf.nearest_exact(10_000)
        data = make_benchmark(0, n, seed=0)
        cluster = Cluster(homogeneous_cluster(2, memory_items=1024))
        from repro.core.external_psrs import distribute_array, sort_distributed

        inputs = distribute_array(cluster, perf, data, 128)
        res = sort_distributed(
            cluster, perf, inputs, PSRSConfig(block_items=128, message_items=512)
        )
        live_outputs = sum(f.n_items for f in res.outputs)
        live_inputs = sum(f.n_items for f in inputs)
        assert live_outputs == n and live_inputs == n
        # Nothing else left: total bytes written minus cleared ~= in+out.
        # We can't enumerate internal files, but the result files account
        # for the data exactly once each.
        verify_sorted_permutation(data, res.to_array())
