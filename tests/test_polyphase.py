"""Tests for polyphase merge sort (the paper's sequential engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extsort.polyphase import (
    fibonacci_distribution,
    polyphase_item_io_bound,
    polyphase_sort,
    theoretical_phase_count,
)
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark
from repro.workloads.records import is_sorted, verify_permutation

from tests.conftest import file_from_array, make_disk


def _sort(arr, B=8, capacity=40, n_tapes=4, **kw):
    disk = make_disk()
    mem = MemoryManager(capacity=capacity)
    src = file_from_array(np.asarray(arr, dtype=np.uint32), disk, B=B, mem=mem)
    res = polyphase_sort(src, disk, mem, n_tapes=n_tapes, **kw)
    assert mem.in_use == 0, "polyphase leaked memory reservations"
    return res, disk, src


class TestFibonacciDistribution:
    def test_three_tapes_is_fibonacci(self):
        # With T=3 the perfect totals are the Fibonacci numbers.
        totals = []
        for runs in [1, 2, 3, 5, 8, 13, 21]:
            counts, _ = fibonacci_distribution(runs, 3)
            totals.append(sum(counts))
        assert totals == [1, 2, 3, 5, 8, 13, 21]

    def test_exact_when_perfect(self):
        counts, level = fibonacci_distribution(8, 3)
        assert sum(counts) == 8
        assert counts == sorted(counts, reverse=True)

    def test_dummies_needed_when_imperfect(self):
        counts, _ = fibonacci_distribution(6, 3)
        assert sum(counts) == 8  # next Fibonacci up

    def test_level_counts_phases(self):
        assert theoretical_phase_count(1, 3) == 0
        assert theoretical_phase_count(2, 3) == 1
        assert theoretical_phase_count(13, 3) == 5

    def test_more_tapes_fewer_phases(self):
        assert theoretical_phase_count(100, 8) < theoretical_phase_count(100, 3)

    def test_rejects_two_tapes(self):
        with pytest.raises(ValueError, match="at least 3"):
            fibonacci_distribution(5, 2)


class TestPolyphaseSort:
    def test_sorts_random_input(self, rng):
        data = rng.integers(0, 2**31, 500)
        res, _, _ = _sort(data)
        assert is_sorted(res.output.to_array())
        assert verify_permutation(data, res.output.to_array())
        assert res.n_items == 500

    def test_empty_input(self):
        res, _, _ = _sort([])
        assert res.n_items == 0
        assert res.n_initial_runs == 0
        assert res.output.to_array().size == 0

    def test_in_core_input_single_run_no_phase(self, rng):
        data = rng.integers(0, 99, 20)
        res, _, _ = _sort(data, capacity=64)
        assert res.n_initial_runs == 1
        assert res.n_phases == 0
        assert is_sorted(res.output.to_array())

    def test_already_sorted_input(self):
        res, _, _ = _sort(np.arange(300))
        np.testing.assert_array_equal(res.output.to_array(), np.arange(300))

    def test_reverse_input(self):
        res, _, _ = _sort(np.arange(300)[::-1].copy())
        np.testing.assert_array_equal(res.output.to_array(), np.arange(300))

    def test_all_duplicates(self):
        res, _, _ = _sort(np.full(250, 7))
        np.testing.assert_array_equal(res.output.to_array(), np.full(250, 7))

    def test_phase_count_matches_theory(self, rng):
        data = rng.integers(0, 2**31, 1000)
        res, _, _ = _sort(data, capacity=40, n_tapes=4)
        # capacity 40, B 8 -> load 32 -> ceil(1000/32) = 32 runs
        assert res.n_initial_runs == 32
        assert res.n_phases == theoretical_phase_count(32, 4)

    def test_io_within_bound(self, rng):
        data = rng.integers(0, 2**31, 1000)
        res, disk, src = _sort(data, capacity=40, n_tapes=4)
        bound = polyphase_item_io_bound(1000, res.n_initial_runs, 4)
        measured = disk.stats.item_ios - src.n_items  # exclude input creation
        assert measured <= bound

    def test_replacement_selection_policy(self, rng):
        data = rng.integers(0, 2**31, 600)
        res, _, _ = _sort(data, run_policy="replacement")
        assert is_sorted(res.output.to_array())
        assert verify_permutation(data, res.output.to_array())

    def test_itemwise_engine(self, rng):
        data = rng.integers(0, 2**31, 300)
        res, _, _ = _sort(data, engine="itemwise")
        assert verify_permutation(data, res.output.to_array())

    def test_more_tapes_fewer_phases_measured(self, rng):
        data = rng.integers(0, 2**31, 2000)
        res3, _, _ = _sort(data, capacity=80, n_tapes=3)
        res8, _, _ = _sort(data, capacity=80, n_tapes=8)
        assert res8.n_phases < res3.n_phases
        assert verify_permutation(data, res8.output.to_array())

    def test_tapes_exceeding_memory_rejected(self, rng):
        with pytest.raises(ValueError, match="exceeds the memory budget"):
            _sort(rng.integers(0, 9, 100), capacity=24, n_tapes=5)  # m=3 < 5

    def test_budget_too_small_rejected(self, rng):
        with pytest.raises(ValueError, match="too small"):
            _sort(rng.integers(0, 9, 100), capacity=16, n_tapes=3)  # m=2

    def test_default_tape_count(self, rng):
        disk = make_disk()
        mem = MemoryManager(capacity=48)  # m=6
        src = file_from_array(rng.integers(0, 9, 100).astype(np.uint32), disk, 8, mem)
        res = polyphase_sort(src, disk, mem)
        assert res.n_tapes == 6

    def test_compute_hook(self, rng):
        ops = []
        disk = make_disk()
        mem = MemoryManager(capacity=40)
        src = file_from_array(rng.integers(0, 2**31, 400).astype(np.uint32), disk, 8, mem)
        polyphase_sort(src, disk, mem, n_tapes=4, compute=ops.append)
        assert sum(ops) > 400  # at least run-formation sort work

    def test_source_left_intact(self, rng):
        data = rng.integers(0, 2**31, 300)
        res, _, src = _sort(data)
        np.testing.assert_array_equal(src.to_array(), data.astype(np.uint32))


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(st.integers(0, 2**32 - 1), max_size=400),
    n_tapes=st.integers(3, 5),
    policy=st.sampled_from(["load", "replacement"]),
)
def test_property_polyphase_sorts(data, n_tapes, policy):
    res, _, _ = _sort(data, B=4, capacity=24, n_tapes=n_tapes, run_policy=policy)
    expected = np.sort(np.asarray(data, dtype=np.uint32))
    np.testing.assert_array_equal(res.output.to_array(), expected)


@pytest.mark.parametrize("bench", [0, 1, 2, 3, 4, 5, 6, 7])
def test_all_benchmarks_sort(bench):
    data = make_benchmark(bench, 700, seed=bench)
    res, _, _ = _sort(data, capacity=48, n_tapes=5)
    assert is_sorted(res.output.to_array())
    assert verify_permutation(data, res.output.to_array())
