"""Property tests for the vectorized hot-path kernels.

Three kernels got numpy block-at-a-time implementations in the event-
kernel PR; each is checked here against its scalar reference:

* :func:`~repro.extsort.losertree.merge_two_sorted` /
  :func:`~repro.extsort.losertree.kway_merge_sorted` — equivalent to a
  stable sort of the concatenation (ties keep part order), across
  dtypes including the signed/unsigned twin pairs;
* :func:`~repro.core.partition.partition_offsets` — the joint
  multi-pivot descent returns exactly what per-pivot
  :func:`~repro.core.partition.lower_bound_offset` binary searches
  return, with no more block reads than the per-pivot bound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import lower_bound_offset, partition_offsets
from repro.extsort.losertree import kway_merge_sorted, merge_two_sorted
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager

DTYPES = [np.uint16, np.uint32, np.int32, np.uint64, np.int64]

# Small value ranges force heavy duplication; int dtypes get negatives.
def _values(dtype):
    info = np.iinfo(dtype)
    lo = max(info.min, -50)
    hi = min(info.max, 100)
    return st.integers(min_value=int(lo), max_value=int(hi))


@st.composite
def sorted_arrays(draw, dtype, max_size=64):
    vals = draw(st.lists(_values(dtype), min_size=0, max_size=max_size))
    return np.sort(np.array(vals, dtype=dtype))


class TestMergeTwoSorted:
    @pytest.mark.parametrize("dtype", DTYPES)
    @settings(deadline=None)
    @given(data=st.data())
    def test_equals_stable_concat_sort(self, dtype, data):
        a = data.draw(sorted_arrays(dtype))
        b = data.draw(sorted_arrays(dtype))
        out = merge_two_sorted(a, b)
        ref = np.sort(np.concatenate([a, b]), kind="stable")
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(out, ref)

    def test_tie_order_is_a_before_b(self):
        # Same keys, distinguishable payload via a structured trick:
        # merge index arrays through the same scatter math.
        a = np.array([5, 5, 7], dtype=np.uint32)
        b = np.array([5, 7, 7], dtype=np.uint32)
        out = np.empty(a.size + b.size, dtype=np.int64)
        out[np.arange(a.size) + np.searchsorted(b, a, side="left")] = [0, 1, 2]
        out[np.arange(b.size) + np.searchsorted(a, b, side="right")] = [10, 11, 12]
        # a's ties land before b's ties at every key.
        assert out.tolist() == [0, 1, 10, 2, 11, 12]

    def test_empty_edges(self):
        e = np.empty(0, dtype=np.uint32)
        x = np.array([1, 2], dtype=np.uint32)
        np.testing.assert_array_equal(merge_two_sorted(e, x), x)
        np.testing.assert_array_equal(merge_two_sorted(x, e), x)
        assert merge_two_sorted(e, e).size == 0
        # Returned arrays are fresh, never aliases of the inputs.
        out = merge_two_sorted(x, e)
        out[0] = 99
        assert x[0] == 1


class TestKwayMergeSorted:
    @pytest.mark.parametrize("dtype", DTYPES)
    @settings(deadline=None)
    @given(data=st.data())
    def test_equals_stable_concat_sort(self, dtype, data):
        k = data.draw(st.integers(min_value=0, max_value=9))
        parts = [data.draw(sorted_arrays(dtype, max_size=32)) for _ in range(k)]
        out = kway_merge_sorted(parts)
        if not parts:
            assert out.size == 0
            return
        ref = np.sort(np.concatenate(parts), kind="stable")
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(out, ref)

    def test_single_part_is_a_copy(self):
        a = np.array([1, 2, 3], dtype=np.uint32)
        out = kway_merge_sorted([a])
        np.testing.assert_array_equal(out, a)
        out[0] = 42
        assert a[0] == 1

    def test_all_empty_parts(self):
        parts = [np.empty(0, dtype=np.uint64)] * 3
        out = kway_merge_sorted(parts)
        assert out.size == 0 and out.dtype == np.uint64

    def test_unsigned_twin_values_near_limits(self):
        # int64 near-min vs uint64 near-max: same bit patterns must not
        # be confused across the two dtypes' merges.
        i = np.array([-(2**62), -1, 0, 1], dtype=np.int64)
        u = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        np.testing.assert_array_equal(
            kway_merge_sorted([i, i]),
            np.sort(np.concatenate([i, i]), kind="stable"),
        )
        np.testing.assert_array_equal(
            kway_merge_sorted([u, u]),
            np.sort(np.concatenate([u, u]), kind="stable"),
        )


def _file_from(arr, B=8):
    disk = SimDisk(DiskParams(), name="d0")
    f = BlockFile(disk, B, arr.dtype)
    with BlockWriter(f, MemoryManager.unlimited()) as w:
        w.write(arr)
    return f, disk


class TestPartitionOffsets:
    @settings(deadline=None)
    @given(data=st.data())
    def test_joint_search_matches_per_pivot_search(self, data):
        dtype = data.draw(st.sampled_from([np.uint32, np.int32, np.uint64]))
        arr = data.draw(sorted_arrays(dtype, max_size=200))
        n_piv = data.draw(st.integers(min_value=0, max_value=15))
        pivots = np.sort(
            np.array(
                data.draw(
                    st.lists(_values(dtype), min_size=n_piv, max_size=n_piv)
                ),
                dtype=dtype,
            )
        )
        B = data.draw(st.sampled_from([1, 4, 8]))
        mem = MemoryManager.unlimited()
        f, disk = _file_from(arr, B=B)
        base_reads = disk.stats.blocks_read
        cuts = partition_offsets(f, list(pivots), mem)
        joint_reads = disk.stats.blocks_read - base_reads
        # Exact agreement with the scalar reference search, pivot by pivot.
        expect = [0]
        for d in pivots:
            expect.append(lower_bound_offset(f, d, mem))
        expect.append(f.n_items)
        assert cuts == expect
        # Monotone, bracketed by [0, n].
        assert cuts[0] == 0 and cuts[-1] == f.n_items
        assert all(a <= b for a, b in zip(cuts, cuts[1:]))
        # Never more reads than p-1 independent binary searches need.
        if f.n_blocks:
            per_pivot_bound = len(pivots) * (
                int(np.floor(np.log2(f.n_blocks))) + 2
            )
            assert joint_reads <= max(per_pivot_bound, 0)

    def test_duplicate_pivots_share_probes(self):
        arr = np.arange(512, dtype=np.uint32)
        f, disk = _file_from(arr, B=8)
        mem = MemoryManager.unlimited()
        base = disk.stats.blocks_read
        cuts = partition_offsets(f, [100] * 7, mem)
        dup_reads = disk.stats.blocks_read - base
        assert cuts == [0] + [101] * 7 + [512]
        # One binary-search path, not seven.
        assert dup_reads <= int(np.floor(np.log2(f.n_blocks))) + 2

    def test_empty_file_and_no_pivots(self):
        mem = MemoryManager.unlimited()
        f, _ = _file_from(np.empty(0, dtype=np.uint32))
        assert partition_offsets(f, [], mem) == [0, 0]
        assert partition_offsets(f, [5], mem) == [0, 0, 0]
        g, _ = _file_from(np.array([1, 2, 3], dtype=np.uint32), B=2)
        assert partition_offsets(g, [], mem) == [0, 3]
