"""Unit tests of the fuzzer machinery: mutators, corpus, shrinker,
case files, coverage, determinism, and the planted-violation loop."""

from __future__ import annotations

import json
import os
import sys

import numpy as np
import pytest

from repro.faults.plan import DiskFault, FaultPlan, NodeKill
from repro.fuzz import (
    Corpus,
    FuzzConfig,
    LineCoverage,
    Scenario,
    ScenarioError,
    ScenarioExecutor,
    fuzz,
    load_case,
    replay_case,
    shrink,
    write_case,
)
from repro.fuzz.engine import DEFAULT_SEEDS
from repro.fuzz.executor import RunOutcome, Violation
from repro.fuzz.mutators import MUTATORS, mutate
from repro.fuzz.scenario import DEFAULTS, MIN_N

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


# ---------------------------------------------------------------------------
# Scenario (de)serialisation
# ---------------------------------------------------------------------------


def test_scenario_roundtrip_with_fault_plan():
    s = Scenario(
        benchmark="zipf",
        perf=(2, 1, 1),
        fault_plan=FaultPlan(
            disk_faults=(DiskFault(node=1, after_ios=3),),
            node_kills=(NodeKill(node=2, step=4),),
        ),
        retries=2,
        audit_slack=1.1,
    ).validate()
    again = Scenario.from_json(s.to_json())
    assert again == s
    assert again.fingerprint() == s.fingerprint()


def test_scenario_rejects_unknown_keys_and_bad_axes():
    with pytest.raises(ScenarioError):
        Scenario.from_dict({"n_items": 128, "bogus": 1})
    with pytest.raises(ScenarioError):
        Scenario(benchmark="not_a_workload").validate()
    with pytest.raises(ScenarioError):
        # M < 3B is a config landmine, excluded from the space
        Scenario(memory_items=256, block_items=256).validate()
    with pytest.raises(ScenarioError):
        # step-1 kills are unrecoverable by design
        Scenario(
            perf=(1, 1),
            fault_plan=FaultPlan(node_kills=(NodeKill(node=1, step=1),)),
        ).validate()
    with pytest.raises(ScenarioError):
        # killing every node leaves no survivor
        Scenario(
            perf=(1,),
            fault_plan=FaultPlan(node_kills=(NodeKill(node=0, step=3),)),
        ).validate()


def test_default_seeds_are_valid():
    for s in DEFAULT_SEEDS:
        assert s.validate() is s


# ---------------------------------------------------------------------------
# Mutators
# ---------------------------------------------------------------------------


def test_mutators_are_closed_over_validation():
    """Any mutation of any reachable scenario must validate."""
    rng = np.random.default_rng(0)
    frontier = list(DEFAULT_SEEDS)
    names_seen = set()
    for _ in range(300):
        base = frontier[int(rng.integers(len(frontier)))]
        name, out = mutate(rng, base)
        names_seen.add(name)
        assert out.validate() is out
        assert out != base
        frontier.append(out)
        if len(frontier) > 64:
            frontier.pop(0)
    # the walk must actually exercise a spread of axes, not one mutator
    assert len(names_seen) >= len(MUTATORS) // 2


def test_mutate_is_deterministic_in_the_rng():
    a = mutate(np.random.default_rng(7), DEFAULTS)
    b = mutate(np.random.default_rng(7), DEFAULTS)
    assert a == b


# ---------------------------------------------------------------------------
# Coverage collector
# ---------------------------------------------------------------------------


def test_line_coverage_collects_package_lines_only():
    with LineCoverage() as cov:
        Scenario(benchmark="gaussian").validate().fingerprint()
        json.dumps({"outside": "the package"})
    assert cov.lines, "executing repro code must produce lines"
    files = {path for path, _ in cov.lines}
    assert any(f.endswith("fuzz/scenario.py") for f in files)
    for f in files:
        assert not os.path.isabs(f)
        assert "json" not in f  # stdlib frames are filtered out


def test_line_coverage_restores_tracing_state():
    before = sys.gettrace()
    with LineCoverage():
        pass
    assert sys.gettrace() is before


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------


def _outcome(scenario, lines=(), sigs=(), ratio=0.0):
    return RunOutcome(
        scenario=scenario,
        status="ok",
        coverage=frozenset(lines),
        signature=frozenset(sigs),
        worst_ratio=ratio,
    )


def test_corpus_scores_novelty_then_evicts_lowest():
    corpus = Corpus(max_size=2)
    a = _outcome(Scenario(seed=1), lines={("a.py", 1), ("a.py", 2)})
    b = _outcome(Scenario(seed=2), lines={("a.py", 1)}, sigs={("s", "k", "c")})
    assert corpus.consider(a) is not None
    assert corpus.consider(b) is not None
    # a repeat of already-seen behaviour with no bound pressure: rejected
    c = _outcome(Scenario(seed=3), lines={("a.py", 1)})
    assert corpus.consider(c) is None
    # high bound pressure beats the weakest seat even with zero novelty
    d = _outcome(Scenario(seed=4), lines={("a.py", 1)}, ratio=0.99)
    assert corpus.consider(d) is not None
    assert len(corpus) == 2
    fps = set(corpus.fingerprints())
    assert Scenario(seed=4).fingerprint() in fps
    # ranked() is best-first
    scores = [e.score for e in corpus.ranked()]
    assert scores == sorted(scores, reverse=True)


def test_corpus_rejects_duplicate_fingerprints():
    corpus = Corpus(max_size=4)
    s = Scenario(seed=5)
    assert corpus.consider(_outcome(s, lines={("x.py", 1)})) is not None
    assert corpus.consider(_outcome(s, lines={("y.py", 9)})) is None


def test_corpus_pick_is_seed_deterministic():
    corpus = Corpus(max_size=8)
    for i in range(5):
        corpus.consider(_outcome(Scenario(seed=i), lines={("f.py", i)}))
    picks_a = [corpus.pick(np.random.default_rng(3)).fingerprint for _ in range(4)]
    picks_b = [corpus.pick(np.random.default_rng(3)).fingerprint for _ in range(4)]
    assert picks_a == picks_b


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------


def test_shrink_reaches_the_minimal_scenario():
    """Synthetic planted bug: violates iff n >= 512 and a disk fault exists."""

    def predicate(s: Scenario) -> bool:
        return s.n_items >= 512 and s.fault_plan is not None and bool(
            s.fault_plan.disk_faults
        )

    start = Scenario(
        benchmark="staggered",
        n_items=16384,
        dtype="uint64",
        perf=(4, 2, 1, 1),
        pivot_method="quantile",
        oversample=7,
        seed=99,
        fault_plan=FaultPlan(
            disk_faults=(
                DiskFault(node=0, after_ios=10),
                DiskFault(node=2, after_ios=20),
            ),
            node_kills=(NodeKill(node=3, step=4),),
        ),
        retries=4,
    ).validate()
    result = shrink(start, predicate)
    s = result.scenario
    assert s.n_items == 512, "binary search must find the exact threshold"
    assert s.fault_plan is not None and len(s.fault_plan.disk_faults) == 1
    assert not s.fault_plan.node_kills, "irrelevant kills must be dropped"
    assert s.perf == (1,), "irrelevant nodes must be dropped"
    # every config axis irrelevant to the bug returns to its default
    for axis in ("benchmark", "dtype", "pivot_method", "oversample", "seed"):
        assert getattr(s, axis) == getattr(DEFAULTS, axis), axis
    assert result.steps and result.attempts > 0


def test_shrink_requires_a_reproducing_start():
    with pytest.raises(ValueError):
        shrink(DEFAULTS, lambda s: False)


def test_shrink_never_escalates_on_raising_predicate():
    def predicate(s: Scenario) -> bool:
        if s.n_items < 1024:
            raise RuntimeError("different failure below 1024")
        return True

    result = shrink(Scenario(n_items=4096).validate(), predicate)
    assert result.scenario.n_items >= 1024


# ---------------------------------------------------------------------------
# Case files
# ---------------------------------------------------------------------------


def test_golden_case_roundtrip():
    """The checked-in golden file parses and regenerates byte-for-byte."""
    path = os.path.join(DATA_DIR, "fuzz_case_golden.jsonl")
    case = load_case(path)
    assert case.expect_status == "violation"
    assert case.expect_kind == "audit"
    assert case.expect_check == "1:local-sort:0"
    assert case.scenario.benchmark == "zipf"
    assert case.scenario.perf == (2, 1)
    assert case.scenario.fault_plan is not None
    assert case.origin is not None
    assert case.origin["mutations"] == ["n-items", "fault-disk"]


def test_write_case_roundtrips(tmp_path):
    path = str(tmp_path / "case.jsonl")
    s = Scenario(benchmark="reverse", perf=(3, 1), seed=5).validate()
    v = Violation(kind="verify", detail="output is not sorted")
    write_case(
        path, s, expect_status="violation", violation=v, note="roundtrip"
    )
    case = load_case(path)
    assert case.scenario == s
    assert (case.expect_status, case.expect_kind) == ("violation", "verify")
    assert case.note == "roundtrip"


def test_load_case_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"scenario": {"n_items": 128}}\n')
    with pytest.raises(ScenarioError):
        load_case(str(bad))  # no fuzz_case header
    bad.write_text("not json\n")
    with pytest.raises(ScenarioError):
        load_case(str(bad))


# ---------------------------------------------------------------------------
# The loop: determinism and the planted violation, end to end
# ---------------------------------------------------------------------------


def test_fuzz_is_deterministic_for_a_seed():
    a = fuzz(FuzzConfig(seed=11, max_runs=6))
    b = fuzz(FuzzConfig(seed=11, max_runs=6))
    assert a.corpus_fingerprints == b.corpus_fingerprints
    assert a.statuses == b.statuses
    assert a.runs == b.runs


def test_fuzz_finds_shrinks_and_replays_a_planted_violation(tmp_path):
    """End to end: tightening the auditor's slack to the ideal merge
    formula makes a real multi-pass polyphase run genuinely exceed the
    step-1 bound; the loop must catch it, shrink it, write a case file,
    and the case file must reproduce."""
    corpus_dir = str(tmp_path / "fuzz")
    report = fuzz(
        FuzzConfig(
            seed=0,
            max_runs=2,
            tighten_slack=1.0,
            corpus_dir=corpus_dir,
            shrink_attempts=80,
        )
    )
    assert not report.ok
    audit_cases = [
        v for v in report.violations if v.violation.kind == "audit"
    ]
    assert audit_cases, f"expected an audit violation, got {report.statuses}"
    case = audit_cases[0]
    assert case.path is not None and os.path.exists(case.path)
    # the shrunk scenario is no bigger than the seed that violated
    assert case.shrunk.n_items <= case.scenario.n_items
    assert case.shrunk.audit_slack == 1.0
    result = replay_case(case.path)
    assert result.matched, result.reason
    # the corpus snapshot and report land next to the violations
    assert os.path.isdir(os.path.join(corpus_dir, "corpus"))
    with open(os.path.join(corpus_dir, "report.json")) as fh:
        assert json.load(fh)["violations"]


def test_fuzz_config_validates():
    with pytest.raises(ValueError):
        FuzzConfig(max_runs=None, time_budget=None)
    with pytest.raises(ValueError):
        FuzzConfig(time_budget=-1.0, max_runs=None)


def test_executor_classifies_degraded_and_recovered():
    ex = ScenarioExecutor(collect_coverage=False)
    killed = ex.run(
        Scenario(
            perf=(1, 1, 4, 4),
            fault_plan=FaultPlan(node_kills=(NodeKill(node=1, step=4),)),
        ).validate()
    )
    assert killed.status == "degraded" and killed.violation is None
    transient = ex.run(
        Scenario(
            perf=(1, 1),
            fault_plan=FaultPlan(disk_faults=(DiskFault(node=0, after_ios=5),)),
            retries=3,
        ).validate()
    )
    # a retried run repeats I/O, so the fault-free bounds are not enforced
    assert transient.status == "recovered" and transient.violation is None
