"""Tests for the PDM parameter bundle and its theoretical bounds."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pdm.model import PDMConfig


class TestValidation:
    def test_accepts_paper_like_config(self):
        cfg = PDMConfig(N=2**24, M=2**20, B=2**12, D=1, P=4)
        assert cfg.n == 2**12
        assert cfg.m == 2**8

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError, match="N must be"):
            PDMConfig(N=-1, M=64, B=8)

    def test_rejects_zero_block(self):
        with pytest.raises(ValueError, match="B must be"):
            PDMConfig(N=100, M=64, B=0)

    def test_rejects_memory_below_two_blocks(self):
        with pytest.raises(ValueError, match="M must be"):
            PDMConfig(N=100, M=15, B=8)

    def test_rejects_zero_disks(self):
        with pytest.raises(ValueError, match="D must be"):
            PDMConfig(N=100, M=64, B=8, D=0)

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError, match="P must be"):
            PDMConfig(N=100, M=64, B=8, P=0)

    def test_frozen(self):
        cfg = PDMConfig(N=100, M=64, B=8)
        with pytest.raises(AttributeError):
            cfg.N = 7  # type: ignore[misc]


class TestDerived:
    def test_n_rounds_up(self):
        assert PDMConfig(N=17, M=64, B=8).n == 3

    def test_m_rounds_down(self):
        assert PDMConfig(N=17, M=63, B=8).m == 7

    def test_out_of_core_flag(self):
        assert PDMConfig(N=1000, M=64, B=8).is_out_of_core
        assert not PDMConfig(N=64, M=64, B=8).is_out_of_core

    def test_practical_constraint_from_paper(self):
        # 1 <= D*B <= M/2
        assert PDMConfig(N=100, M=64, B=8, D=4).satisfies_practical_constraint()
        assert not PDMConfig(N=100, M=64, B=8, D=5).satisfies_practical_constraint()

    def test_merge_order_leaves_output_buffer(self):
        assert PDMConfig(N=100, M=64, B=8).merge_order() == 7

    def test_merge_order_floor_two(self):
        assert PDMConfig(N=100, M=16, B=8).merge_order() == 2

    def test_with_replaces_fields(self):
        cfg = PDMConfig(N=100, M=64, B=8)
        cfg2 = cfg.with_(N=200, D=2)
        assert (cfg2.N, cfg2.D, cfg2.M) == (200, 2, 64)
        assert cfg.N == 100  # original untouched


class TestBounds:
    def test_in_core_needs_zero_passes(self):
        assert PDMConfig(N=64, M=64, B=8).merge_passes() == 0

    def test_single_merge_pass(self):
        # 4 runs of 64 with merge order 7 -> one pass
        assert PDMConfig(N=256, M=64, B=8).merge_passes() == 1

    def test_pass_count_grows_with_n(self):
        small = PDMConfig(N=2**10, M=64, B=8).merge_passes()
        large = PDMConfig(N=2**16, M=64, B=8).merge_passes()
        assert large > small

    def test_sort_io_bound_zero_for_empty(self):
        assert PDMConfig(N=0, M=64, B=8).sort_io_bound() == 0.0

    def test_sort_io_bound_scales_inverse_in_d(self):
        one = PDMConfig(N=2**16, M=64, B=8, D=1).sort_io_bound()
        four = PDMConfig(N=2**16, M=64, B=8, D=4).sort_io_bound()
        assert one == pytest.approx(4 * four)

    def test_step1_bound_matches_formula(self):
        cfg = PDMConfig(N=2**14, M=64, B=8)
        l_i = 2**12
        expected = 2 * l_i * (1 + cfg.merge_passes(l_i))
        assert cfg.step1_io_bound(l_i) == expected

    def test_step1_bound_zero_items(self):
        assert PDMConfig(N=100, M=64, B=8).step1_io_bound(0) == 0.0

    @given(st.integers(min_value=1, max_value=2**20))
    def test_sort_bound_positive_and_monotone_in_n(self, n):
        cfg = PDMConfig(N=n, M=64, B=8)
        b1 = cfg.sort_io_bound()
        b2 = cfg.sort_io_bound(2 * n)
        assert b1 > 0
        assert b2 >= b1

    @given(
        st.integers(min_value=2, max_value=2**18),
        st.integers(min_value=3, max_value=64),
    )
    def test_merge_passes_vs_theory(self, n, m_blocks):
        B = 4
        cfg = PDMConfig(N=n, M=m_blocks * B, B=B)
        p = cfg.merge_passes()
        if n <= cfg.M:
            assert p == 0
        else:
            runs = math.ceil(n / cfg.M)
            assert p >= 1
            assert cfg.merge_order() ** p >= runs  # enough passes to merge all
