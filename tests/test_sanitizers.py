"""Runtime sanitizers: each SAN check fires precisely, clean runs stay clean."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizers import (
    SanitizerConfig,
    SanitizerError,
    active_sanitizer,
    install_sanitizers,
    sanitized,
    uninstall_sanitizers,
)
from repro.cluster.machine import Cluster, homogeneous_cluster
from repro.cluster.network import FAST_ETHERNET, Network
from repro.cluster.node import SimNode
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark


def _raises_check(check: str):
    return pytest.raises(SanitizerError, match=rf"\[{check}\]")


class TestDiskChecks:
    def test_empty_io_charge_rejected(self):
        node = SimNode(0)
        with sanitized():
            with _raises_check("SAN-DISK-EMPTY"):
                node.disk.charge_read(0, 4)

    def test_degenerate_itemsize_rejected(self):
        node = SimNode(0)
        with sanitized():
            with _raises_check("SAN-DISK-EMPTY"):
                node.disk.charge_write(8, 0)

    def test_dead_node_disk_never_written(self):
        node = SimNode(0)
        node.mark_dead("3:partition")
        with sanitized():
            with _raises_check("SAN-DISK-DEAD-WRITE"):
                node.disk.charge_write(8, 4)

    def test_dead_node_disk_still_salvage_readable(self):
        node = SimNode(0)
        node.mark_dead("3:partition")
        with sanitized():
            node.disk.charge_read(8, 4)  # degraded-mode salvage is legal

    def test_unaccounted_block_io_detected(self):
        node = SimNode(0)
        with sanitized() as san:
            with _raises_check("SAN-DISK-UNACCOUNTED"):
                with san.expect_block_charge(node.disk, "write"):
                    pass  # block moved, disk never charged

    def test_double_charged_block_io_detected(self):
        node = SimNode(0)
        with sanitized() as san:
            with _raises_check("SAN-DISK-UNACCOUNTED"):
                with san.expect_block_charge(node.disk, "read"):
                    node.disk.charge_read(4, 4)
                    node.disk.charge_read(4, 4)

    def test_blockfile_io_is_exactly_once_charged(self):
        node = SimNode(0)
        with sanitized() as san:
            f = BlockFile(node.disk, 8, np.uint32)
            with BlockWriter(f, node.mem) as w:
                w.write(np.arange(32, dtype=np.uint32))
            for i in range(f.n_blocks):
                f.read_block(i)
            assert san.stats.block_ios == f.n_blocks * 2
            assert san.stats.violations == 0


class TestNetworkChecks:
    def _net(self):
        src, dst = SimNode(0), SimNode(1)
        return Network(FAST_ETHERNET, 2), src, dst

    def test_message_to_dead_node_rejected(self):
        net, src, dst = self._net()
        dst.mark_dead("4:redistribute")
        with sanitized():
            with _raises_check("SAN-NET-DEAD-DST"):
                net.transfer(src, dst, 1024)

    def test_salvage_from_dead_node_is_legal(self):
        net, src, dst = self._net()
        src.mark_dead("4:redistribute")
        with sanitized():
            net.transfer(src, dst, 1024)  # reading the dead node's runs

    def test_torn_message_rejected(self):
        net, src, dst = self._net()
        with sanitized():
            with _raises_check("SAN-NET-TORN"):
                net.transfer(src, dst, 10, item_bytes=4)

    def test_whole_item_message_accepted(self):
        net, src, dst = self._net()
        with sanitized() as san:
            net.transfer(src, dst, 12, item_bytes=4)
            assert san.stats.transfers == 1
            assert san.stats.violations == 0


class TestMemoryLeakCheck:
    def test_pinned_reservation_at_scope_end_is_a_leak(self):
        with _raises_check("SAN-MEM-LEAK"):
            with sanitized():
                mem = MemoryManager(128)
                mem.acquire(16)  # never released

    def test_balanced_usage_is_clean(self):
        with sanitized() as san:
            mem = MemoryManager(128)
            mem.acquire(16)
            mem.release(16)
            assert san.stats.managers_tracked == 1

    def test_leak_check_can_be_disabled(self):
        with sanitized(check_leaks=False):
            mem = MemoryManager(128)
            mem.acquire(16)


class TestConfigAndStack:
    def test_disabled_check_does_not_fire(self):
        node = SimNode(0)
        with sanitized(SanitizerConfig(empty_io=False), check_leaks=False) as san:
            node.disk.charge_read(0, 4)
            assert san.stats.violations == 0

    def test_stats_count_consulted_operations(self):
        node = SimNode(0)
        with sanitized(check_leaks=False) as san:
            node.disk.charge_read(8, 4)
            node.disk.charge_write(8, 4)
            assert san.stats.disk_charges == 2

    def test_innermost_sanitizer_wins(self):
        outer = install_sanitizers()
        try:
            with sanitized() as inner:
                assert active_sanitizer() is inner
            assert active_sanitizer() is outer
        finally:
            uninstall_sanitizers(outer)

    @pytest.mark.no_sanitizers
    def test_uninstall_without_install_is_an_error(self):
        assert active_sanitizer() is None
        with pytest.raises(RuntimeError):
            uninstall_sanitizers()

    def test_violation_stats_recorded(self):
        node = SimNode(0)
        with sanitized(check_leaks=False) as san:
            with pytest.raises(SanitizerError) as exc_info:
                node.disk.charge_read(0, 4)
            assert exc_info.value.check == "SAN-DISK-EMPTY"
            assert san.stats.by_check["SAN-DISK-EMPTY"] == 1

    def test_sanitizer_error_is_assertion_error(self):
        # pytest.raises(AssertionError) therefore also catches SAN failures.
        assert issubclass(SanitizerError, AssertionError)

    def test_trips_survive_the_raise(self):
        # consumers that translate the error (the fuzzer classifying a
        # run) read the machine-readable record off .trips afterwards
        node = SimNode(0)
        with sanitized(check_leaks=False) as san:
            with pytest.raises(SanitizerError):
                node.disk.charge_read(0, 4)
            with pytest.raises(SanitizerError):
                node.disk.charge_read(0, 4)
        assert [t.check for t in san.trips] == ["SAN-DISK-EMPTY", "SAN-DISK-EMPTY"]
        assert "degenerate" in san.trips[0].message


class TestEndToEnd:
    def test_full_external_sort_runs_clean_under_sanitizers(self):
        perf = PerfVector([1, 2])
        n = perf.nearest_exact(4_096)
        data = make_benchmark(0, n, seed=3)
        cluster = Cluster(homogeneous_cluster(perf.p, memory_items=1024))
        with sanitized() as san:
            res = sort_array(
                cluster, perf, data, PSRSConfig(block_items=64, message_items=256)
            )
            assert san.stats.violations == 0
            assert san.stats.block_ios > 0 and san.stats.transfers > 0
        np.testing.assert_array_equal(res.to_array(), np.sort(data))
