"""Tests for per-step I/O attribution and trace-level balance."""

import pytest

from repro.cluster.machine import Cluster, heterogeneous_cluster, paper_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.workloads.generators import make_benchmark


def _run(perf_vals, speeds, n=16_000, kernel="event", **cfg):
    perf = PerfVector(perf_vals)
    n = perf.nearest_exact(n)
    data = make_benchmark(0, n, seed=0)
    cluster = Cluster(heterogeneous_cluster(speeds, memory_items=2048), kernel=kernel)
    res = sort_array(
        cluster,
        perf,
        data,
        PSRSConfig(block_items=256, message_items=2048, **cfg),
    )
    return cluster, res


class TestStepIO:
    def test_partition_sums_to_total(self):
        _, res = _run([1, 2], [1.0, 2.0])
        assert sum(s.block_ios for s in res.step_io.values()) == res.io.block_ios
        assert sum(s.item_ios for s in res.step_io.values()) == res.io.item_ios

    def test_all_five_steps_attributed(self):
        _, res = _run([1, 2], [1.0, 2.0])
        assert set(res.step_io) == {
            "1:local-sort",
            "2:pivots",
            "3:partition",
            "4:redistribute",
            "5:final-merge",
        }

    def test_sampling_io_constant_while_sort_io_grows(self):
        """The paper: step 2's 'L IO operations' are 'very inferior, in
        practice, to the IO operations of step 1' — because L is a
        constant of the machine while step 1 scales with N.  Measured:
        doubling N doubles step-1 I/O and leaves step-2 I/O flat."""
        _, small = _run([1, 1, 4, 4], [1.0, 1.0, 4.0, 4.0], n=16_000)
        _, big = _run([1, 1, 4, 4], [1.0, 1.0, 4.0, 4.0], n=64_000)
        s1_ratio = big.step_io["1:local-sort"].block_ios / small.step_io[
            "1:local-sort"
        ].block_ios
        assert s1_ratio > 2.5  # 4x data, super-linear passes
        # Step 2 is bounded by the machine constant L = c(p-1)*sum(perf)
        # block reads (one per sample worst case), whatever N is.
        L_total = 4 * 3 * 10  # oversample * (p-1) * sum(perf)
        for res in (small, big):
            assert res.step_io["2:pivots"].block_ios <= L_total + 4 * 4
        # ...and at the larger size step 1 clearly dominates step 2.
        assert (
            big.step_io["1:local-sort"].block_ios
            > 10 * big.step_io["2:pivots"].block_ios
        )

    def test_zero_copy_partition_step_does_only_searches(self):
        _, mat = _run([1, 2], [1.0, 2.0], materialize_partitions=True)
        _, zero = _run([1, 2], [1.0, 2.0], materialize_partitions=False)
        assert zero.step_io["3:partition"].blocks_written == 0
        assert mat.step_io["3:partition"].blocks_written > 0

    def test_step4_io_within_paper_bound(self):
        """Step 4: <= 2*l_i/B block I/Os cluster-wide (read at senders +
        write at receivers == 2 passes over the data)."""
        _, res = _run([1, 1], [1.0, 1.0])
        n_blocks = -(-res.n_items // 256)
        assert res.step_io["4:redistribute"].block_ios <= 2 * (n_blocks + res.perf.p * 2)


class TestTraceBalance:
    def test_correct_perf_balances_every_step(self):
        # Lockstep: per-step busy balance is a BSP attribution property;
        # under the event kernel a step's interval also absorbs queueing
        # behind the node's own write-behind from earlier steps.
        cluster, _ = _run([4, 4, 1, 1], [4.0, 4.0, 1.0, 1.0], n=32_000,
                          kernel="lockstep")
        for step in ("1:local-sort", "3:partition", "5:final-merge"):
            assert cluster.trace.imbalance(step) < 1.35

    def test_naive_perf_imbalances_local_sort(self):
        """On the loaded cluster with the naive vector, the slow nodes'
        step-1 work dominates the step (imbalance >> 1)."""
        perf = PerfVector([1, 1, 1, 1])
        n = perf.nearest_exact(32_000)
        data = make_benchmark(0, n, seed=1)
        cluster = Cluster(paper_cluster(memory_items=2048))
        sort_array(cluster, perf, data, PSRSConfig(block_items=256, message_items=2048))
        assert cluster.trace.imbalance("1:local-sort") > 1.5

    def test_render_lists_all_steps(self):
        cluster, _ = _run([1, 2], [1.0, 2.0])
        out = cluster.trace.render()
        for step in cluster.trace.steps():
            assert step in out
