"""The incremental lint cache: content-keyed hits, safe degradation."""

from __future__ import annotations

import contextlib
import io
import json
from pathlib import Path

from repro.analysis.cache import (
    CacheStats,
    LintCache,
    cache_key,
    project_digest,
    rule_selection_token,
    source_digest,
)
from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, main

DIRTY = "y = sorted(xs)\n"
CLEAN = "def double(x):\n    return 2 * x\n"


def lint(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(io.StringIO()):
        code = main(list(argv))
    return code, out.getvalue()


def core_file(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / name
    target.write_text(source, encoding="utf-8")
    return target


def cache_stats(out: str) -> dict:
    return json.loads(out)["cache"]


class TestKeying:
    def test_source_digest_is_content_only(self):
        assert source_digest("a") == source_digest("a")
        assert source_digest("a") != source_digest("b")

    def test_cache_key_orders_parts(self):
        assert cache_key("a", "b") != cache_key("b", "a")

    def test_project_digest_ignores_file_order(self):
        files = [("b.py", "2"), ("a.py", "1")]
        assert project_digest(files) == project_digest(list(reversed(files)))
        assert project_digest(files) != project_digest([("a.py", "1")])

    def test_rule_token_canonicalises(self):
        assert rule_selection_token(None) == "*"
        assert rule_selection_token(["rep002", "REP001"]) == "REP001,REP002"


class TestCliCacheFlow:
    def test_second_run_is_all_hits_with_same_result(self, tmp_path):
        f = core_file(tmp_path, DIRTY)
        cache = tmp_path / "cache"
        args = ("--no-baseline", "--format", "json",
                "--cache-dir", str(cache), str(f))
        code1, out1 = lint(*args)
        code2, out2 = lint(*args)
        assert code1 == code2 == EXIT_FINDINGS
        stats1, stats2 = cache_stats(out1), cache_stats(out2)
        assert stats1 == {
            "hits": 0, "misses": 1, "hit_rate": 0.0,
            "passes": {"shallow": {"hits": 0, "misses": 1, "hit_rate": 0.0}},
        }
        assert stats2 == {
            "hits": 1, "misses": 0, "hit_rate": 1.0,
            "passes": {"shallow": {"hits": 1, "misses": 0, "hit_rate": 1.0}},
        }
        # findings identical whether computed or replayed
        assert json.loads(out1)["findings"] == json.loads(out2)["findings"]

    def test_edit_invalidates_only_the_edited_file(self, tmp_path):
        a = core_file(tmp_path, DIRTY, "a.py")
        core_file(tmp_path, CLEAN, "b.py")
        cache = tmp_path / "cache"
        args = ("--no-baseline", "--format", "json",
                "--cache-dir", str(cache), str(tmp_path))
        lint(*args)
        a.write_text(CLEAN, encoding="utf-8")
        code, out = lint(*args)
        assert code == EXIT_CLEAN
        assert cache_stats(out) == {
            "hits": 1, "misses": 1, "hit_rate": 0.5,
            "passes": {"shallow": {"hits": 1, "misses": 1, "hit_rate": 0.5}},
        }

    def test_protocol_pass_caches_by_project_digest(self, tmp_path):
        core_file(tmp_path, CLEAN, "a.py")
        b = core_file(tmp_path, CLEAN, "b.py")
        cache = tmp_path / "cache"
        args = ("--no-baseline", "--protocol", "--format", "json",
                "--cache-dir", str(cache), str(tmp_path))
        _, out1 = lint(*args)
        _, out2 = lint(*args)
        # 2 shallow files + 1 protocol project entry
        assert cache_stats(out1)["misses"] == 3
        stats2 = cache_stats(out2)
        assert (stats2["hits"], stats2["misses"]) == (3, 0)
        assert stats2["passes"] == {
            "shallow": {"hits": 2, "misses": 0, "hit_rate": 1.0},
            "protocol": {"hits": 1, "misses": 0, "hit_rate": 1.0},
        }
        # touching any module invalidates the whole interprocedural entry
        b.write_text(CLEAN + "\n", encoding="utf-8")
        _, out3 = lint(*args)
        assert cache_stats(out3)["misses"] == 2  # b.py + the project entry

    def test_no_cache_bypasses_and_reports_null(self, tmp_path):
        f = core_file(tmp_path, DIRTY)
        cache = tmp_path / "cache"
        args = ("--no-baseline", "--format", "json", "--no-cache",
                "--cache-dir", str(cache), str(f))
        _, out = lint(*args)
        assert json.loads(out)["cache"] is None
        assert not cache.exists()

    def test_text_mode_still_caches(self, tmp_path):
        f = core_file(tmp_path, CLEAN)
        cache = tmp_path / "cache"
        lint("--no-baseline", "--cache-dir", str(cache), str(f))
        assert any(cache.rglob("*.json"))


class TestDegradation:
    def test_corrupt_entry_is_a_miss_then_repaired(self, tmp_path):
        f = core_file(tmp_path, DIRTY)
        cache = tmp_path / "cache"
        args = ("--no-baseline", "--format", "json",
                "--cache-dir", str(cache), str(f))
        lint(*args)
        for entry in cache.rglob("*.json"):
            entry.write_text("{not json", encoding="utf-8")
        code, out = lint(*args)
        assert code == EXIT_FINDINGS
        stats = cache_stats(out)
        assert (stats["hits"], stats["misses"]) == (0, 1)
        code, out = lint(*args)
        assert cache_stats(out)["hits"] == 1

    def test_get_miss_and_put_roundtrip(self, tmp_path):
        cache = LintCache(tmp_path / "c")
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_unwritable_root_degrades_silently(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("", encoding="utf-8")
        cache = LintCache(blocker)  # root is a file: every write fails
        cache.put("ab" * 32, {"x": 1})  # must not raise
        assert cache.get("ab" * 32) is None

    def test_stats_hit_rate_handles_zero_total(self):
        assert CacheStats().hit_rate == 0.0
        assert CacheStats(hits=3, misses=1).to_dict()["hit_rate"] == 0.75
