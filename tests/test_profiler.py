"""Causal critical-path profiler: conservation, blame, what-if accuracy.

The acceptance contract (ISSUE 9) is asserted literally on a recorded
fault-free {1,1,4,4} run of 131k items:

* the critical path's total duration equals the run's elapsed simulated
  time (the walk reaches t = 0 and loses nothing on jumps);
* every (step, node) blame cell's components sum to the cell's span —
  the report conserves time, it never estimates it;
* for six what-if scenarios the predicted elapsed time is within 10%
  of an *actual* re-run under the modified configuration.

Plus: telemetry consistency under degraded (node-kill) runs, the
exporter satellites (flow events, critical-path track, Prometheus
counters) and the bench regression report.
"""

import json
from dataclasses import replace

import pytest

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.cluster.network import FAST_ETHERNET, MYRINET
from repro.cluster.node import CpuParams
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.faults.plan import FaultPlan, NodeKill
from repro.pdm.disk import DiskParams
from repro.obs.events import (
    BarrierWait,
    BlockRead,
    BlockWrite,
    FaultInjected,
    NetTransfer,
    StepBegin,
    StepEnd,
)
from repro.obs.exporters import read_jsonl, to_chrome_trace, to_prometheus, write_jsonl
from repro.obs.profiler import (
    HardwareMeta,
    RunProfile,
    WhatIfError,
    profile_from_jsonl_meta,
)
from repro.workloads.generators import make_benchmark

N_ACCEPT = 131072
MEMORY = 2048
BLOCK = 256
MESSAGE = 8192


def run_sort(
    speeds,
    n=N_ACCEPT,
    link=FAST_ETHERNET,
    n_disks=1,
    level="full",
    faults=None,
    seed=0,
    disk=DiskParams(),
    cpu=CpuParams(),
):
    """One full-capture sort run; returns (cluster, result)."""
    perf = PerfVector([int(s) for s in speeds])
    n = perf.nearest_exact(n)
    data = make_benchmark(0, n, seed=seed)
    spec = heterogeneous_cluster(
        [float(s) for s in speeds], memory_items=MEMORY, link=link, disk=disk, cpu=cpu
    )
    if n_disks != 1:
        spec = replace(
            spec, nodes=tuple(replace(ns, n_disks=n_disks) for ns in spec.nodes)
        )
    cluster = Cluster(spec)
    cluster.bus.set_level(level)
    cfg = PSRSConfig(block_items=BLOCK, message_items=MESSAGE)
    res = sort_array(cluster, perf, data, cfg, faults=faults)
    return cluster, res


@pytest.fixture(scope="module")
def baseline():
    """The acceptance run: fault-free {1,1,4,4}, 131k items, full capture."""
    cluster, res = run_sort([1, 1, 4, 4])
    prof = RunProfile.from_cluster(cluster, block_items=BLOCK)
    return cluster, res, prof


class TestConservation:
    def test_critical_path_total_equals_elapsed(self, baseline):
        _, res, prof = baseline
        assert prof.elapsed == pytest.approx(res.elapsed, rel=1e-12)
        assert prof.critical.complete
        assert prof.critical.total == pytest.approx(res.elapsed, rel=1e-9)

    def test_critical_path_segments_are_contiguous(self, baseline):
        _, _, prof = baseline
        segs = prof.critical.segments
        assert segs[0].t0 == pytest.approx(0.0, abs=1e-9)
        assert segs[-1].t1 == pytest.approx(prof.elapsed, rel=1e-9)
        for a, b in zip(segs, segs[1:]):
            assert b.t0 == pytest.approx(a.t1, rel=1e-9, abs=1e-12)

    def test_blame_cells_conserve_step_spans(self, baseline):
        """Components of each (step, node) cell sum to the cell's span."""
        _, _, prof = baseline
        assert prof.blame.steps, "no steps decomposed"
        for sb in prof.blame.steps:
            for node, comps in sb.by_node.items():
                span = sb.spans[node]
                assert sum(comps.values()) == pytest.approx(span, rel=1e-9, abs=1e-12)

    def test_run_totals_tile_every_node_clock(self, baseline):
        _, _, prof = baseline
        total = sum(prof.blame.totals.values())
        assert total == pytest.approx(
            prof.timeline.n_nodes * prof.elapsed, rel=1e-9
        )

    def test_unattributed_time_is_negligible(self, baseline):
        """Full capture leaves (almost) no 'other' clock advance."""
        _, _, prof = baseline
        budget = prof.timeline.n_nodes * prof.elapsed
        assert prof.blame.totals["other"] < 0.01 * budget

    def test_barrier_idle_is_reported(self, baseline):
        _, _, prof = baseline
        assert prof.blame.totals["barrier"] > 0.0
        assert sum(prof.blame.barrier_seconds.values()) == pytest.approx(
            prof.blame.totals["barrier"], rel=1e-9
        )


class TestSkewAndStraggler:
    def test_per_step_time_skew(self, baseline):
        _, _, prof = baseline
        numbered = [sb for sb in prof.blame.steps if sb.step[0].isdigit()]
        assert len(numbered) == 5
        for sb in numbered:
            assert sb.time_skew >= 1.0
            assert len(sb.by_node) == 4

    def test_straggler_index_within_paper_regime(self, baseline):
        """max/mean productive time >= 1; this balanced run should also
        sit well inside the paper's 2x item-imbalance reference."""
        _, _, prof = baseline
        assert 1.0 <= prof.blame.straggler_index
        assert prof.blame.straggler_index < prof.blame.straggler_reference


class TestReplayAndWhatIf:
    def test_baseline_replay_fidelity(self, baseline):
        """Replaying the op sequence under the run's own parameters
        reproduces the recorded elapsed time."""
        _, res, prof = baseline
        model = prof.baseline_replay()
        assert model.elapsed == pytest.approx(res.elapsed, rel=0.02)

    @pytest.mark.parametrize(
        "spec, rerun_kwargs",
        [
            ("disks=2", dict(speeds=[1, 1, 4, 4], n_disks=2)),
            ("disks=4", dict(speeds=[1, 1, 4, 4], n_disks=4)),
            ("net=myrinet", dict(speeds=[1, 1, 4, 4], link=MYRINET)),
            (
                "net.latency=1e-3",
                dict(speeds=[1, 1, 4, 4], link=replace(FAST_ETHERNET, latency=1e-3)),
            ),
            (
                "net.bandwidth=25e6",
                dict(
                    speeds=[1, 1, 4, 4], link=replace(FAST_ETHERNET, bandwidth=25e6)
                ),
            ),
            (
                "disk.seek=4e-3",
                dict(speeds=[1, 1, 4, 4], disk=DiskParams(seek_time=4e-3)),
            ),
            (
                "disk.bandwidth=40e6",
                dict(speeds=[1, 1, 4, 4], disk=DiskParams(bandwidth=40e6)),
            ),
            (
                "cpu=4e-8",
                dict(speeds=[1, 1, 4, 4], cpu=CpuParams(seconds_per_op=4e-8)),
            ),
        ],
    )
    def test_prediction_within_10pct_of_actual_rerun(
        self, baseline, spec, rerun_kwargs
    ):
        """The acceptance bound: predicted elapsed vs. a real re-run,
        for eight sequence-preserving scenarios (ISSUE asks for >= 5)."""
        _, _, prof = baseline
        predicted = prof.what_if(spec).predicted_elapsed
        _, actual = run_sort(**rerun_kwargs)
        assert predicted == pytest.approx(actual.elapsed, rel=0.10)

    def test_uniform_perf_prediction(self, baseline):
        """Uniformly doubling the perf vector keeps partition shares (the
        op sequence is structurally identical) but the real re-run still
        reorders network contention — compute and disk halve while the
        link does not, so sends become ready in a different order.  The
        ratio prediction stays a faithful first-order answer; hold it to
        a looser 20% bound and check it lands between the no-change and
        everything-halves extremes."""
        _, res, prof = baseline
        predicted = prof.what_if("perf=2,2,8,8").predicted_elapsed
        _, actual = run_sort([2, 2, 8, 8])
        assert predicted == pytest.approx(actual.elapsed, rel=0.20)
        assert res.elapsed / 2 < predicted < res.elapsed

    def test_speedup_direction(self, baseline):
        _, _, prof = baseline
        assert prof.what_if("disks=4").speedup > 1.0
        assert prof.what_if("net.latency=0.01").speedup < 1.0

    def test_uniform_perf_scaling_is_exact_sequence(self, baseline):
        _, _, prof = baseline
        w = prof.what_if("perf=2,2,8,8")
        assert not w.approximate
        assert prof.what_if("perf=1,1,1,1").approximate

    def test_combined_clauses(self, baseline):
        _, _, prof = baseline
        w = prof.what_if("disks=4; net=myrinet")
        assert w.predicted_elapsed < prof.what_if("disks=4").predicted_elapsed

    def test_bad_specs_raise(self, baseline):
        _, _, prof = baseline
        for bad in [
            "",
            "nonsense",
            "wat=1",
            "perf=1,1",
            "perf=0,0,0,0",
            "net=carrier-pigeon",
            "disks=0",
            "block=abc",
        ]:
            with pytest.raises(WhatIfError):
                prof.what_if(bad)

    def test_block_whatif_needs_block_items(self, baseline):
        cluster, _, prof = baseline
        assert prof.what_if("block=512").approximate
        bare = RunProfile(prof.events, hw=prof.hw)  # no block_items
        with pytest.raises(WhatIfError):
            bare.what_if("block=512")


class TestJsonlRoundtrip:
    def test_profile_from_saved_log(self, baseline, tmp_path):
        """Recorded run: JSONL roundtrip preserves hw model and profile."""
        cluster, res, prof = baseline
        path = str(tmp_path / "run.jsonl")
        meta = {"block_items": BLOCK, "hw": prof.hw.to_dict()}
        write_jsonl(path, prof.events, meta)
        meta2, events2 = read_jsonl(path)
        prof2 = profile_from_jsonl_meta(meta2, events2)
        assert prof2.hw == prof.hw
        assert prof2.block_items == BLOCK
        assert prof2.elapsed == pytest.approx(res.elapsed, rel=1e-9)
        assert prof2.critical.total == pytest.approx(prof.critical.total, rel=1e-9)

    def test_missing_hw_defaults(self):
        prof = profile_from_jsonl_meta({}, [])
        assert prof.hw == HardwareMeta()
        assert prof.block_items is None


class TestDegradedRunTelemetry:
    """EventKernel timeline/telemetry consistency when a node dies."""

    @pytest.fixture(scope="class")
    def degraded(self):
        plan = FaultPlan(node_kills=(NodeKill(node=2, step=4),))
        cluster, res = run_sort([1, 1, 4, 4], n=2**15, faults=plan)
        assert res.faults.degraded
        return cluster, res

    def test_per_node_timestamps_monotone(self, degraded):
        cluster, _ = degraded
        last = {}
        for ev in cluster.bus.events:
            node = getattr(ev, "node", -1)
            assert ev.t >= last.get(node, 0.0) - 1e-12, (
                f"node {node} went back in time at {ev!r}"
            )
            last[node] = max(last.get(node, 0.0), ev.t)

    def test_spans_stay_paired(self, degraded):
        """Every StepEnd closes a prior StepBegin of the same (step, node);
        a killed node may leave a begin open, never an orphan end."""
        cluster, _ = degraded
        open_spans = set()
        for ev in cluster.bus.events:
            if isinstance(ev, StepBegin):
                assert (ev.step, ev.node) not in open_spans
                open_spans.add((ev.step, ev.node))
            elif isinstance(ev, StepEnd):
                assert (ev.step, ev.node) in open_spans, (
                    f"orphan StepEnd {ev.step!r} on node {ev.node}"
                )
                open_spans.discard((ev.step, ev.node))

    def test_dead_node_falls_silent(self, degraded):
        """After its kill the node performs no work of its own.  The
        recovery step may still emit events *at* the dead node — block
        reads against its disk and transfers shipping its spilled data
        to a survivor model the salvage — but outside recovery the node
        must never begin/end a step, wait at a barrier, or send again."""
        cluster, _ = degraded
        events = cluster.bus.events
        kills = [
            ev
            for ev in events
            if isinstance(ev, FaultInjected) and ev.category == "node-kill"
        ]
        assert kills, "no kill event recorded"
        kill = kills[0]
        own_activity = [
            ev
            for ev in events
            if ev.t > kill.t + 1e-12
            and (
                (
                    isinstance(ev, (StepBegin, StepEnd, BarrierWait))
                    and ev.node == kill.node
                )
                or (
                    isinstance(ev, NetTransfer)
                    and ev.src == kill.node
                    and not ev.step.startswith("recover:")
                )
            )
        ]
        assert not own_activity, (
            f"dead node {kill.node} kept working: {own_activity[:3]}"
        )

    def test_timeline_still_conserves(self, degraded):
        """The reconstruction stays exact on degraded streams."""
        cluster, res = degraded
        prof = RunProfile.from_cluster(cluster, block_items=BLOCK)
        assert prof.elapsed == pytest.approx(res.elapsed, rel=1e-9)
        for sb in prof.blame.steps:
            for node, comps in sb.by_node.items():
                assert sum(comps.values()) == pytest.approx(
                    sb.spans[node], rel=1e-9, abs=1e-12
                )


class TestExporterSatellites:
    EVENTS = [
        StepBegin(t=0.0, node=0, step="4:redistribute"),
        StepBegin(t=0.0, node=1, step="4:redistribute"),
        BlockRead(t=0.3, node=0, step="4:redistribute", disk="node0.disk",
                  n_items=256, itemsize=4, cost=0.3),
        NetTransfer(t=0.6, node=0, step="4:redistribute", src=0, dst=1,
                    nbytes=4096, duration=0.2),
        BlockWrite(t=0.9, node=1, step="4:redistribute", disk="node1.disk",
                   n_items=256, itemsize=4, cost=0.1),
        StepEnd(t=0.9, node=0, step="4:redistribute", duration=0.9),
        StepEnd(t=1.0, node=1, step="4:redistribute", duration=1.0),
        BarrierWait(t=1.0, node=0, step="4:redistribute", wait=0.1),
        BarrierWait(t=1.0, node=1, step="4:redistribute", wait=0.0),
    ]

    def test_flow_events_link_send_to_recv(self):
        trace = to_chrome_trace(self.EVENTS)
        flows = [e for e in trace["traceEvents"] if e.get("ph") in ("s", "f")]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert start["pid"] == 0 and finish["pid"] == 1  # pid = node rank
        assert finish["bp"] == "e"
        assert start["ts"] == pytest.approx(0.4e6)  # send start, µs
        assert finish["ts"] == pytest.approx(0.6e6)  # arrival, µs

    def test_recv_span_on_destination_track(self):
        trace = to_chrome_trace(self.EVENTS)
        recv = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "X" and e.get("name", "").startswith("recv<-")
        ]
        assert len(recv) == 1 and recv[0]["pid"] == 1

    def test_critical_path_track(self):
        prof = RunProfile(self.EVENTS)
        trace = to_chrome_trace(self.EVENTS, critical=prof.critical.segments)
        crit = [e for e in trace["traceEvents"] if e.get("cat") == "critical"]
        assert crit, "no critical-path track emitted"
        assert sum(e["dur"] for e in crit) == pytest.approx(
            prof.critical.total * 1e6, rel=1e-6
        )

    def test_prometheus_busy_and_barrier_counters(self):
        text = to_prometheus(self.EVENTS)
        assert (
            'repro_drive_busy_seconds_total{disk="node0.disk",node="0"} 0.3' in text
        )
        assert (
            'repro_drive_busy_seconds_total{disk="node1.disk",node="1"} 0.1' in text
        )
        assert 'repro_node_barrier_wait_seconds_total{node="0"} 0.1' in text
        assert 'repro_node_barrier_wait_seconds_total{node="1"} 0' in text


def _bench_entry(elapsed, best=None, steps=None, best_steps=None, blame=None):
    """A structurally valid repro-bench-sort/2 run entry."""
    entry = {
        "key": "1000x1-1",
        "n_items": 1000,
        "perf": [1, 1],
        "elapsed_seconds": elapsed,
        "step_seconds": steps or {},
    }
    if best is not None:
        entry["best_elapsed_seconds"] = best
    if best_steps is not None:
        entry["best_step_seconds"] = best_steps
    if blame is not None:
        entry["blame"] = blame
    return entry


class TestBenchReport:
    def test_report_rows_flag_regressions_with_blame(self):
        from repro.metrics.bench import SCHEMA, report_rows

        doc = {
            "schema": SCHEMA,
            "runs": [
                _bench_entry(
                    elapsed=2.0,
                    best=1.0,
                    steps={"1:local-sort": 0.5, "4:redistribute": 1.5},
                    best_steps={"1:local-sort": 0.45, "4:redistribute": 0.55},
                    blame={
                        "steps": [
                            {"step": "4:redistribute", "dominant": "net"},
                        ]
                    },
                )
            ],
        }
        (row,) = report_rows(doc, factor=1.2)
        assert row["regressed"]
        assert row["ratio"] == pytest.approx(2.0)
        assert row["blamed_step"] == "4:redistribute"
        assert row["blamed_step_delta_seconds"] == pytest.approx(0.95)
        assert row["blamed_component"] == "net"

    def test_report_rows_within_factor_is_clean(self):
        from repro.metrics.bench import SCHEMA, report_rows

        doc = {"schema": SCHEMA, "runs": [_bench_entry(elapsed=1.1, best=1.0)]}
        (row,) = report_rows(doc, factor=1.2)
        assert not row["regressed"]

    def test_record_with_guard_tracks_best_step_seconds(self, tmp_path):
        import importlib.util
        import pathlib

        helpers_py = (
            pathlib.Path(__file__).parent.parent / "benchmarks" / "helpers.py"
        )
        spec = importlib.util.spec_from_file_location("bench_helpers", helpers_py)
        helpers = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(helpers)

        path = str(tmp_path / "BENCH_sort.json")
        fast = {
            "n_items": 1000,
            "perf": [1, 1],
            "elapsed_seconds": 1.0,
            "step_seconds": {"1:local-sort": 0.4},
        }
        slow = {**fast, "elapsed_seconds": 1.1, "step_seconds": {"1:local-sort": 0.5}}
        helpers.record_with_guard(path, fast)
        doc = helpers.record_with_guard(path, slow)
        entry = doc["runs"][0]
        # The slower re-run keeps the best run's elapsed AND step times.
        assert entry["elapsed_seconds"] == pytest.approx(1.1)
        assert entry["best_elapsed_seconds"] == pytest.approx(1.0)
        assert entry["best_step_seconds"] == {"1:local-sort": 0.4}
        with pytest.raises(AssertionError):
            helpers.record_with_guard(path, {**fast, "elapsed_seconds": 5.0})

    def test_cli_exit_codes_and_artifact(self, tmp_path, capsys):
        from repro.cli import main
        from repro.metrics.bench import SCHEMA

        clean = tmp_path / "clean.json"
        clean.write_text(
            json.dumps({"schema": SCHEMA, "runs": [_bench_entry(1.0, best=1.0)]})
        )
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"schema": SCHEMA, "runs": [_bench_entry(2.0, best=1.0)]})
        )
        out_file = tmp_path / "report.json"
        assert main(["bench", "report", str(clean)]) == 0
        assert "ok" in capsys.readouterr().out
        rc = main(
            ["bench", "report", str(bad), "--format", "json", "--output",
             str(out_file)]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_regressions"] == 1
        assert json.loads(out_file.read_text())["runs"][0]["regressed"]

    def test_cli_bad_artifact(self, tmp_path, capsys):
        from repro.cli import main

        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main(["bench", "report", str(broken)]) == 2


class TestCLIProfile:
    @pytest.fixture(scope="class")
    def events_file(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("profile") / "run.jsonl"
        rc = main(
            ["sort", "--n", "20000", "--perf", "1,1,4,4", "--memory", "2048",
             "--block", "256", "--message", "2048", "--events", str(path)]
        )
        assert rc == 0
        return str(path)

    def test_sort_json_summary_carries_profile(self, capsys):
        from repro.cli import main

        rc = main(
            ["sort", "--n", "8000", "--perf", "1,1,4,4", "--memory", "1024",
             "--block", "128", "--message", "1024", "--profile",
             "--format", "json"]
        )
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["critical_path"]["complete"]
        assert summary["critical_path"]["total_seconds"] == pytest.approx(
            summary["elapsed_seconds"], rel=1e-9
        )
        skews = summary["step_time_skew"]
        assert set(summary["step_seconds"]) <= set(skews)
        assert all(v >= 1.0 for v in skews.values())
        assert summary["blame"]["straggler_index"] >= 1.0

    def test_events_meta_records_hardware(self, events_file):
        meta, _ = read_jsonl(events_file)
        hw = HardwareMeta.from_dict(meta["hw"])
        assert hw.speeds == (1.0, 1.0, 4.0, 4.0)
        assert hw.kernel == "event"
        assert meta["block_items"] == 256

    def test_profile_json(self, events_file, capsys):
        from repro.cli import main

        rc = main(
            ["profile", events_file, "--what-if", "disks=4", "--format", "json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["critical_path"]["complete"]
        assert payload["capture_has_compute"]
        (pred,) = payload["what_if"]
        assert pred["scenario"] == "disks=4"
        assert pred["speedup"] > 1.0

    def test_profile_text_and_trace(self, events_file, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        rc = main(
            ["profile", events_file, "--what-if", "net=myrinet", "--trace",
             str(trace_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "what-if predictions" in out
        trace = json.loads(trace_path.read_text())
        assert any(e.get("cat") == "critical" for e in trace["traceEvents"])
        assert any(e.get("ph") == "s" for e in trace["traceEvents"])

    def test_profile_bad_whatif(self, events_file, capsys):
        from repro.cli import main

        assert main(["profile", events_file, "--what-if", "warp=9"]) == 2
        assert "unknown what-if key" in capsys.readouterr().err
