"""Property tests over the fault-plan space (hypothesis).

The central contract of the fault subsystem: for *any* seeded
:class:`~repro.faults.FaultPlan`, the recoverable sort either

* completes — and the output is a globally sorted permutation of the
  input (never silently wrong), or
* raises a typed :class:`~repro.faults.FaultError` subclass,

and in **both** cases every node's :class:`MemoryManager` balances back
to zero and every injection hook is removed.  Plans themselves are
deterministic pure data: JSON round-trips losslessly, and the same
(plan, workload) pair always injects the same faults.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.faults import (
    DiskFault,
    FaultError,
    FaultPlan,
    FaultPlanError,
    MessageFault,
    NodeKill,
    RetryPolicy,
)

P = 3
PERF = PerfVector([1, 2, 1])
CONFIG = PSRSConfig(block_items=32, message_items=128)


def _make_cluster() -> Cluster:
    return Cluster(
        heterogeneous_cluster([1.0, 2.0, 1.0], memory_items=512)
    )


def _make_data(seed: int) -> np.ndarray:
    n = PERF.nearest_exact(600)
    return np.random.default_rng(seed).integers(
        0, 2**32, size=n, dtype=np.uint32
    )


# -- strategies -------------------------------------------------------------

disk_faults = st.builds(
    DiskFault,
    node=st.integers(0, P - 1),
    after_ios=st.integers(0, 250),
    count=st.one_of(st.none(), st.integers(1, 3)),
)

message_faults = st.builds(
    MessageFault,
    drop_probability=st.floats(0, 0.5),
    delay_probability=st.floats(0, 0.5),
    delay=st.floats(0, 0.01),
    fail_after=st.one_of(st.none(), st.integers(0, 30)),
    count=st.integers(1, 2),
    src=st.one_of(st.none(), st.integers(0, P - 1)),
    dst=st.one_of(st.none(), st.integers(0, P - 1)),
)

node_kills = st.builds(
    NodeKill, node=st.integers(0, P - 1), step=st.integers(1, 5)
)

fault_plans = st.builds(
    FaultPlan,
    disk_faults=st.lists(disk_faults, max_size=2),
    message_faults=st.lists(message_faults, max_size=2),
    node_kills=st.lists(node_kills, max_size=1),
    seed=st.integers(0, 2**31),
)


# -- the central property ---------------------------------------------------


class TestSortedOrTypedError:
    @given(plan=fault_plans, data_seed=st.integers(0, 100))
    def test_sorted_permutation_or_fault_error(self, plan, data_seed):
        """Any plan: correct completion or a typed error — nothing else."""
        data = _make_data(data_seed)
        cluster = _make_cluster()
        try:
            res = sort_array(
                cluster, PERF, data, CONFIG,
                faults=plan,
                retry=RetryPolicy(max_attempts=3, backoff=0.01),
            )
        except FaultError:
            pass  # a typed injected failure is an allowed outcome
        else:
            out = res.to_array()
            assert np.array_equal(out, np.sort(data)), (
                "fault plan produced silently wrong output"
            )
            assert len(res.outputs) == len(res.active_ranks)
        # Either way: accounting balances, hooks are gone.
        for nd in cluster.nodes:
            assert nd.mem.in_use == 0, f"node {nd.rank} leaked reservations"
            assert nd.disk.fault_hook is None
        assert cluster.network.fault_hook is None
        assert cluster.step_observers == []

    @given(plan=fault_plans, data_seed=st.integers(0, 100))
    @settings(max_examples=10)
    def test_injection_is_deterministic(self, plan, data_seed):
        """Same (plan, workload) twice: same faults, same clocks, same output."""
        data = _make_data(data_seed)
        outcomes = []
        for _ in range(2):
            cluster = _make_cluster()
            try:
                res = sort_array(
                    cluster, PERF, data, CONFIG,
                    faults=plan,
                    retry=RetryPolicy(max_attempts=2, backoff=0.01),
                )
                outcomes.append(
                    (
                        "ok",
                        res.elapsed,
                        res.faults.total_faults,
                        res.faults.total_retries,
                        res.faults.messages_dropped,
                        res.faults.messages_delayed,
                        tuple(res.active_ranks),
                        res.to_array().tobytes(),
                    )
                )
            except FaultError as exc:
                outcomes.append(("raise", type(exc).__name__, str(exc)))
        assert outcomes[0] == outcomes[1]


class TestRecoveryModeIsCostTransparent:
    def test_empty_plan_matches_fault_free_run_exactly(self):
        """Recovery-mode execution (checkpointed clears, views, runner)
        charges bit-identically to the plain path when nothing fires."""
        data = _make_data(7)
        c1 = _make_cluster()
        r1 = sort_array(c1, PERF, data, CONFIG)
        c2 = _make_cluster()
        r2 = sort_array(
            c2, PERF, data, CONFIG,
            faults=FaultPlan(), retry=RetryPolicy(),
        )
        assert r1.elapsed == r2.elapsed
        assert r1.io.block_ios == r2.io.block_ios
        assert r1.network_bytes == r2.network_bytes
        assert r1.network_messages == r2.network_messages
        assert np.array_equal(r1.to_array(), r2.to_array())
        assert r2.faults.total_faults == 0 and not r2.faults.degraded


# -- plan data-model properties ---------------------------------------------


class TestPlanSerialization:
    @given(plan=fault_plans)
    def test_json_round_trip(self, plan):
        assert FaultPlan.from_json(plan.to_json()) == plan

    @given(plan=fault_plans)
    def test_dict_round_trip(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_load_from_file(self, tmp_path):
        plan = FaultPlan(
            disk_faults=(DiskFault(node=1, after_ios=5),),
            node_kills=(NodeKill(node=0, step=3),),
            seed=9,
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert FaultPlan.load(str(path)) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"disks": []})

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")


class TestPlanValidation:
    def test_out_of_range_node_rejected_at_install(self):
        plan = FaultPlan(disk_faults=(DiskFault(node=7),))
        with pytest.raises(FaultPlanError, match="7"):
            plan.validate_for(P)

    def test_duplicate_kill_rejected(self):
        with pytest.raises(FaultPlanError, match="more than once"):
            FaultPlan(
                node_kills=(NodeKill(node=1, step=2), NodeKill(node=1, step=4))
            )

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: DiskFault(node=-1),
            lambda: DiskFault(after_ios=-1),
            lambda: DiskFault(count=0),
            lambda: MessageFault(drop_probability=1.5),
            lambda: MessageFault(delay=-0.1),
            lambda: MessageFault(fail_after=-1),
            lambda: NodeKill(node=0, step=0),
            lambda: NodeKill(node=0, step=6),
            lambda: NodeKill(node=-1, step=1),
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            bad()
