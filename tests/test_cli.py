"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_perf_parsing(self):
        args = build_parser().parse_args(["sort", "--perf", "4,4,1,1"])
        assert args.perf.values == [4, 4, 1, 1]

    def test_bad_perf_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--perf", "a,b"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--perf", "0,1"])

    def test_bad_pivot_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--pivot-method", "bogus"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "staggered" in out

    def test_sort_small(self, capsys):
        rc = main(
            ["sort", "--n", "4000", "--perf", "1,2", "--memory", "512",
             "--block", "64", "--message", "256"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "S(max)" in out

    def test_sort_with_spill_dir(self, capsys, tmp_path):
        rc = main(
            ["sort", "--n", "2000", "--perf", "1,1", "--memory", "512",
             "--block", "64", "--spill-dir", str(tmp_path / "spill")]
        )
        assert rc == 0
        assert (tmp_path / "spill").is_dir()

    def test_sort_named_benchmark_and_myrinet(self, capsys):
        rc = main(
            ["sort", "--n", "2000", "--perf", "1,1", "--memory", "512",
             "--block", "64", "--benchmark", "zipf", "--link", "myrinet",
             "--pivot-method", "random"]
        )
        assert rc == 0

    def test_calibrate(self, capsys):
        rc = main(["calibrate", "--n", "8000", "--memory", "512", "--block", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perf vector: [4, 4, 1, 1]" in out

    def test_table2(self, capsys):
        rc = main(["table2", "--sizes", "2000,4000", "--memory", "512", "--block", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "helmvige" in out and "rossweisse" in out

    def test_table3(self, capsys):
        rc = main(["table3", "--n", "8000", "--memory", "512", "--block", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_sweep(self, capsys):
        rc = main(
            ["sweep", "--n", "4000", "--sizes", "8,512", "--memory", "512",
             "--block", "64"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "512" in out
