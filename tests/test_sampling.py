"""Tests for regular sampling and pivot selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perf import PerfVector
from repro.core.sampling import (
    pivot_ranks,
    random_sample,
    read_samples,
    regular_sample,
    regular_sample_positions,
    sample_count,
    sample_interval,
    select_pivots,
)
from repro.pdm.memory import MemoryManager

from tests.conftest import file_from_array, make_disk


class TestSampleCount:
    def test_paper_literal(self):
        assert sample_count(4, 4, oversample=1) == 12  # (p-1)*perf

    def test_default_oversample(self):
        assert sample_count(1, 4) == 12
        assert sample_count(4, 4) == 48

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_count(0, 4)
        with pytest.raises(ValueError):
            sample_count(1, 4, oversample=0)


class TestSampleInterval:
    def test_identical_across_nodes_under_eq2(self):
        """Eq. 2 makes the offset node-independent (the paper's remark)."""
        perf = PerfVector([1, 1, 4, 4])
        n = perf.admissible_size(100)
        portions = perf.exact_portions(n)
        offs = {
            sample_interval(l, perf[i], perf.p, oversample=1)
            for i, l in enumerate(portions)
        }
        assert len(offs) == 1

    def test_floor_one(self):
        assert sample_interval(2, 4, 4) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sample_interval(-1, 1, 4)


class TestPositions:
    def test_basic(self):
        np.testing.assert_array_equal(
            regular_sample_positions(12, 4, 3), [3, 7, 11]
        )

    def test_caps_at_max_samples(self):
        assert regular_sample_positions(100, 10, 3).size == 3

    def test_all_below_l(self):
        pos = regular_sample_positions(10, 3, 99)
        assert pos.size == 3
        assert pos.max() < 10

    def test_empty_cases(self):
        assert regular_sample_positions(0, 1, 5).size == 0
        assert regular_sample_positions(10, 1, 0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            regular_sample_positions(10, 0, 5)
        with pytest.raises(ValueError):
            regular_sample_positions(10, 1, -1)

    @given(st.integers(1, 500), st.integers(1, 50), st.integers(0, 100))
    def test_property_positions_valid(self, l_i, off, max_s):
        pos = regular_sample_positions(l_i, off, max_s)
        assert pos.size <= max_s
        if pos.size:
            assert pos.min() >= 0 and pos.max() < l_i
            assert np.all(np.diff(pos) == off)


class TestReadSamples:
    def test_reads_correct_items(self, disk):
        f = file_from_array(np.arange(100, dtype=np.uint32) * 2, disk, B=8)
        got = read_samples(f, [0, 7, 8, 99], MemoryManager.unlimited())
        np.testing.assert_array_equal(got, [0, 14, 16, 198])

    def test_charges_one_read_per_distinct_block(self, disk):
        f = file_from_array(np.arange(64, dtype=np.uint32), disk, B=8)
        before = disk.stats.blocks_read
        read_samples(f, [0, 1, 2, 9, 10], MemoryManager.unlimited())
        assert disk.stats.blocks_read == before + 2  # blocks 0 and 1

    def test_out_of_range(self, disk):
        f = file_from_array(np.arange(10, dtype=np.uint32), disk, B=8)
        with pytest.raises(IndexError):
            read_samples(f, [10], MemoryManager.unlimited())

    def test_empty(self, disk):
        f = file_from_array(np.arange(10, dtype=np.uint32), disk, B=8)
        assert read_samples(f, [], MemoryManager.unlimited()).size == 0


class TestRegularSample:
    def test_sample_is_sorted_subset(self, disk):
        data = np.sort(np.random.default_rng(0).integers(0, 10**6, 4000)).astype(np.uint32)
        f = file_from_array(data, disk, B=64)
        perf = PerfVector([1, 1, 4, 4])
        s = regular_sample(f, perf, 2, MemoryManager.unlimited())
        assert s.size == sample_count(4, 4)
        assert np.all(np.diff(s.astype(np.int64)) >= 0)
        assert np.all(np.isin(s, data))

    def test_single_node_no_samples(self, disk):
        f = file_from_array(np.arange(10, dtype=np.uint32), disk, B=8)
        assert regular_sample(f, PerfVector([1]), 0, MemoryManager.unlimited()).size == 0

    def test_node_out_of_range(self, disk):
        f = file_from_array(np.arange(10, dtype=np.uint32), disk, B=8)
        with pytest.raises(IndexError):
            regular_sample(f, PerfVector([1, 1]), 2, MemoryManager.unlimited())


class TestRandomSample:
    def test_size_and_membership(self, disk, rng):
        data = np.sort(rng.integers(0, 10**6, 500)).astype(np.uint32)
        f = file_from_array(data, disk, B=32)
        s = random_sample(f, 20, MemoryManager.unlimited(), rng)
        assert s.size == 20
        assert np.all(np.isin(s, data))

    def test_empty_cases(self, disk, rng):
        f = file_from_array(np.arange(5, dtype=np.uint32), disk, B=8)
        assert random_sample(f, 0, MemoryManager.unlimited(), rng).size == 0
        with pytest.raises(ValueError):
            random_sample(f, -1, MemoryManager.unlimited(), rng)


class TestPivotRanks:
    def test_homogeneous_regular(self):
        perf = PerfVector([1, 1, 1, 1])
        # c=1: ranks (p-1)*j - 1 = [2, 5, 8] of 12 candidates
        np.testing.assert_array_equal(pivot_ranks(perf, oversample=1), [2, 5, 8])

    def test_hetero(self):
        perf = PerfVector([1, 1, 4, 4])
        # c=1: 3*cumsum([1,2,6]) - 1 = [2, 5, 17] of 30
        np.testing.assert_array_equal(pivot_ranks(perf, oversample=1), [2, 5, 17])

    def test_single_node(self):
        assert pivot_ranks(PerfVector([3])).size == 0

    def test_ranks_within_candidate_range(self):
        for vals in ([1, 1], [5, 3, 2], [1, 1, 4, 4], [8, 5, 3, 1]):
            perf = PerfVector(vals)
            for c in (1, 2, 4):
                ranks = pivot_ranks(perf, oversample=c)
                assert ranks.size == perf.p - 1
                assert ranks.min() >= 0
                assert ranks.max() < c * (perf.p - 1) * perf.total


class TestSelectPivots:
    def test_count_and_order(self, rng):
        perf = PerfVector([1, 1, 4, 4])
        cand = rng.integers(0, 10**6, sample_count(1, 4) * 10).astype(np.uint32)
        piv = select_pivots(cand, perf)
        assert piv.size == 3
        assert np.all(np.diff(piv.astype(np.int64)) >= 0)

    def test_single_node_empty(self):
        assert select_pivots(np.array([1, 2]), PerfVector([1])).size == 0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="empty candidate"):
            select_pivots(np.array([]), PerfVector([1, 1]))

    def test_compute_hook(self, rng):
        ops = []
        select_pivots(rng.integers(0, 99, 64), PerfVector([1, 1]), compute=ops.append)
        assert sum(ops) > 0


class TestEndToEndBalance:
    """The statistical property the whole scheme exists for."""

    @pytest.mark.parametrize(
        "perf_vals,bound",
        [([1, 1, 1, 1], 1.10), ([1, 1, 4, 4], 1.15), ([8, 5, 3, 1], 1.15)],
    )
    def test_partition_balance_on_uniform(self, perf_vals, bound):
        perf = PerfVector(perf_vals)
        n = perf.nearest_admissible(60_000)
        rng = np.random.default_rng(7)
        data = rng.integers(0, 2**32, n, dtype=np.uint32)
        portions, start = [], 0
        for l in perf.portions(n):
            portions.append(np.sort(data[start : start + l]))
            start += l
        cands = []
        for i, s in enumerate(portions):
            off = sample_interval(s.size, perf[i], perf.p)
            pos = regular_sample_positions(s.size, off, sample_count(perf[i], perf.p))
            cands.append(s[pos])
        pivots = select_pivots(np.concatenate(cands), perf)
        received = np.zeros(perf.p)
        for s in portions:
            cuts = np.concatenate(
                ([0], np.searchsorted(s, pivots, side="right"), [s.size])
            )
            received += np.diff(cuts)
        expansions = [
            received[i] / perf.optimal_share(n, i) for i in range(perf.p)
        ]
        assert max(expansions) < bound


@settings(max_examples=25, deadline=None)
@given(
    vals=st.lists(st.integers(1, 6), min_size=2, max_size=5),
    seed=st.integers(0, 1000),
)
def test_property_pivots_respect_two_x_bound(vals, seed):
    """PSRS theorem: no partition exceeds twice its optimal share (+d)."""
    perf = PerfVector(vals)
    n = perf.nearest_admissible(5_000)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2**31, n, dtype=np.uint32)
    portions, start = [], 0
    for l in perf.portions(n):
        portions.append(np.sort(data[start : start + l]))
        start += l
    cands = []
    for i, s in enumerate(portions):
        off = sample_interval(s.size, perf[i], perf.p)
        pos = regular_sample_positions(s.size, off, sample_count(perf[i], perf.p))
        cands.append(s[pos])
    pivots = select_pivots(np.concatenate(cands), perf)
    received = np.zeros(perf.p)
    for s in portions:
        cuts = np.concatenate(([0], np.searchsorted(s, pivots, side="right"), [s.size]))
        received += np.diff(cuts)
    from repro.core.theory import max_duplicate_count

    d = max_duplicate_count(data)
    for i in range(perf.p):
        assert received[i] <= 2 * perf.optimal_share(n, i) + d + perf.p
