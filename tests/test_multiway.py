"""Tests for run cursors and the two k-way merge engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extsort.multiway import (
    RunCursor,
    RunRef,
    max_merge_order,
    merge_runs,
)
from repro.pdm.blockfile import BlockFile
from repro.pdm.memory import MemoryBudgetError, MemoryManager
from repro.workloads.records import is_sorted, verify_permutation

from tests.conftest import file_from_array, make_disk


class TestMaxMergeOrder:
    def test_basic(self):
        assert max_merge_order(MemoryManager(capacity=64), B=8) == 7

    def test_unlimited(self):
        assert max_merge_order(MemoryManager.unlimited(), B=8) > 1000

    def test_too_small(self):
        with pytest.raises(ValueError, match="too small"):
            max_merge_order(MemoryManager(capacity=16), B=8)


class TestRunRef:
    def test_whole(self, disk):
        f = file_from_array(np.arange(20, dtype=np.uint32), disk, B=8)
        r = RunRef.whole(f)
        assert (r.start, r.stop, r.length) == (0, 20, 20)

    def test_invalid_range(self, disk):
        f = file_from_array(np.arange(20, dtype=np.uint32), disk, B=8)
        with pytest.raises(ValueError):
            RunRef(f, 5, 25)
        with pytest.raises(ValueError):
            RunRef(f, 10, 5)


class TestRunCursor:
    def test_take_all_in_order(self, disk):
        f = file_from_array(np.arange(20, dtype=np.uint32), disk, B=8)
        mem = MemoryManager(capacity=16)
        c = RunCursor(RunRef.whole(f), mem)
        got = []
        while not c.exhausted:
            got.extend(c.take_leq(c.buffer_max()).tolist())
        assert got == list(range(20))
        assert mem.in_use == 0

    def test_subrange_mid_block(self, disk):
        f = file_from_array(np.arange(32, dtype=np.uint32), disk, B=8)
        c = RunCursor(RunRef(f, 5, 19), MemoryManager.unlimited())
        got = []
        while not c.exhausted:
            got.extend(c.take_leq(c.buffer_max()).tolist())
        assert got == list(range(5, 19))

    def test_take_leq_partial(self, disk):
        f = file_from_array(np.arange(8, dtype=np.uint32), disk, B=8)
        mem = MemoryManager(capacity=16)
        c = RunCursor(RunRef.whole(f), mem)
        out = c.take_leq(3)
        np.testing.assert_array_equal(out, [0, 1, 2, 3])
        assert mem.in_use == 4  # 4 items still buffered
        c.drop()
        assert mem.in_use == 0

    def test_take_one_and_peek(self, disk):
        f = file_from_array(np.array([3, 7], dtype=np.uint32), disk, B=8)
        c = RunCursor(RunRef.whole(f), MemoryManager.unlimited())
        assert c.peek() == 3
        assert c.take_one() == 3
        assert c.take_one() == 7
        assert c.peek() is None
        assert c.exhausted

    def test_exhausted_buffer_max_raises(self, disk):
        f = BlockFile(disk, B=8)
        c = RunCursor(RunRef.whole(f), MemoryManager.unlimited())
        assert c.exhausted
        with pytest.raises(RuntimeError):
            c.buffer_max()

    def test_memory_budget_enforced(self, disk):
        f = file_from_array(np.arange(16, dtype=np.uint32), disk, B=8)
        mem = MemoryManager(capacity=7)  # less than one block
        c = RunCursor(RunRef.whole(f), mem)
        with pytest.raises(MemoryBudgetError):
            c.buffer_max()


def _merge_case(run_arrays, engine, B=8, capacity=None):
    disk = make_disk()
    mem = MemoryManager(capacity=capacity)
    refs = [
        RunRef.whole(file_from_array(np.sort(np.asarray(a, dtype=np.uint32)), disk, B))
        for a in run_arrays
    ]
    out = BlockFile(disk, B, np.uint32)
    n = merge_runs(refs, out, mem, engine=engine)
    assert mem.in_use == 0, "merge leaked memory reservations"
    return n, out


@pytest.mark.parametrize("engine", ["vector", "itemwise"])
class TestMergeEngines:
    def test_basic_merge(self, engine, rng):
        runs = [rng.integers(0, 1000, 30) for _ in range(4)]
        n, out = _merge_case(runs, engine, capacity=200)
        all_items = np.concatenate(runs)
        assert n == all_items.size
        assert is_sorted(out.to_array())
        assert verify_permutation(all_items, out.to_array())

    def test_single_run_copy(self, engine, rng):
        run = rng.integers(0, 100, 20)
        _, out = _merge_case([run], engine)
        np.testing.assert_array_equal(out.to_array(), np.sort(run))

    def test_empty_runs_mixed(self, engine, rng):
        runs = [rng.integers(0, 100, 10), [], rng.integers(0, 100, 5)]
        n, out = _merge_case(runs, engine)
        assert n == 15
        assert is_sorted(out.to_array())

    def test_all_empty(self, engine):
        n, out = _merge_case([[], []], engine)
        assert n == 0 and out.n_items == 0

    def test_heavy_duplicates(self, engine):
        runs = [[5] * 20, [5] * 10 + [6] * 10, [4] * 5 + [5] * 5]
        n, out = _merge_case(runs, engine)
        arr = out.to_array()
        assert is_sorted(arr)
        assert verify_permutation(np.concatenate([np.asarray(r) for r in runs]), arr)

    def test_disjoint_ranges(self, engine):
        runs = [range(0, 10), range(20, 30), range(10, 20)]
        _, out = _merge_case([list(r) for r in runs], engine)
        np.testing.assert_array_equal(out.to_array(), np.arange(30))

    def test_respects_tight_budget(self, engine, rng):
        # 3 runs + output + chunk scratch inside capacity 8 blocks of 4.
        runs = [rng.integers(0, 1000, 25) for _ in range(3)]
        n, out = _merge_case(runs, engine, B=4, capacity=32)
        assert n == 75 and is_sorted(out.to_array())

    def test_compute_hook_called(self, engine, rng):
        disk = make_disk()
        mem = MemoryManager.unlimited()
        refs = [
            RunRef.whole(
                file_from_array(np.sort(rng.integers(0, 99, 16).astype(np.uint32)), disk, 8)
            )
            for _ in range(2)
        ]
        out = BlockFile(disk, 8, np.uint32)
        ops = []
        merge_runs(refs, out, mem, compute=ops.append, engine=engine)
        assert sum(ops) > 0


class TestMergeScheduling:
    def test_too_many_runs_rejected(self, rng):
        disk = make_disk()
        mem = MemoryManager(capacity=32)  # B=8 -> order 3
        refs = [
            RunRef.whole(file_from_array(np.sort(rng.integers(0, 99, 8).astype(np.uint32)), disk, 8))
            for _ in range(4)
        ]
        out = BlockFile(disk, 8, np.uint32)
        with pytest.raises(ValueError, match="exceed merge order"):
            merge_runs(refs, out, mem)

    def test_unknown_engine(self, rng):
        disk = make_disk()
        refs = [RunRef.whole(file_from_array(np.arange(4, dtype=np.uint32), disk, 8))]
        out = BlockFile(disk, 8, np.uint32)
        with pytest.raises(ValueError, match="unknown merge engine"):
            merge_runs(refs, out, MemoryManager.unlimited(), engine="bogus")


@settings(max_examples=30, deadline=None)
@given(
    runs=st.lists(
        st.lists(st.integers(0, 2**32 - 1), max_size=60), min_size=1, max_size=6
    ),
    engine=st.sampled_from(["vector", "itemwise"]),
)
def test_property_engines_agree_with_numpy(runs, engine):
    n, out = _merge_case(runs, engine, B=4)
    expected = np.sort(
        np.concatenate([np.asarray(r, dtype=np.uint32) for r in runs])
        if any(len(r) for r in runs)
        else np.empty(0, dtype=np.uint32)
    )
    np.testing.assert_array_equal(out.to_array(), expected)
