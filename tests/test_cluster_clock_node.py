"""Tests for virtual clocks, nodes and traces."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.node import CpuParams, SimNode
from repro.cluster.simclock import VirtualClock, barrier
from repro.cluster.trace import Trace
from repro.pdm.disk import DiskParams


class TestVirtualClock:
    def test_advance(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.time == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_to_never_goes_back(self):
        c = VirtualClock(start=5.0)
        c.advance_to(3.0)
        assert c.time == 5.0
        c.advance_to(7.0)
        assert c.time == 7.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1)

    def test_reset(self):
        c = VirtualClock()
        c.advance(3)
        c.reset()
        assert c.time == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=8))
    def test_barrier_syncs_to_max(self, times):
        clocks = [VirtualClock(start=t) for t in times]
        t = barrier(clocks)
        assert t == pytest.approx(max(times))
        assert all(c.time == t for c in clocks)

    def test_barrier_empty(self):
        assert barrier([]) == 0.0


class TestSimNode:
    def test_compute_scales_with_speed(self):
        slow = SimNode(0, speed=1.0, cpu_params=CpuParams(seconds_per_op=1e-6))
        fast = SimNode(1, speed=4.0, cpu_params=CpuParams(seconds_per_op=1e-6))
        slow.compute(1000)
        fast.compute(1000)
        assert slow.clock.time == pytest.approx(4 * fast.clock.time)

    def test_disk_observer_advances_clock(self):
        n = SimNode(0, disk_params=DiskParams(seek_time=0.01, bandwidth=1e6))
        n.disk.charge_write(100, 4)
        assert n.clock.time == pytest.approx(0.01 + 400 / 1e6)

    def test_io_scaled_by_speed(self):
        loaded = SimNode(0, speed=0.25, disk_params=DiskParams(seek_time=0.01, bandwidth=1e6))
        loaded.disk.charge_write(100, 4)
        assert loaded.clock.time == pytest.approx(4 * (0.01 + 400 / 1e6))

    def test_io_not_scaled_when_disabled(self):
        n = SimNode(
            0,
            speed=0.25,
            disk_params=DiskParams(seek_time=0.01, bandwidth=1e6),
            io_scaled_by_speed=False,
        )
        n.disk.charge_write(100, 4)
        assert n.clock.time == pytest.approx(0.01 + 400 / 1e6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SimNode(-1)
        with pytest.raises(ValueError):
            SimNode(0, speed=0)
        with pytest.raises(ValueError):
            CpuParams(seconds_per_op=0)
        with pytest.raises(ValueError):
            SimNode(0).compute(-5)

    def test_reset(self):
        n = SimNode(0)
        n.compute(100)
        n.disk.charge_read(4, 4)
        n.reset()
        assert n.clock.time == 0.0
        assert n.disk.stats.block_ios == 0
        assert n.ops_charged == 0

    def test_default_name(self):
        assert SimNode(3).name == "node3"


class TestTrace:
    def test_record_and_summary(self):
        t = Trace()
        t.record("sort", 0, 0.0, 2.0)
        t.record("sort", 1, 0.0, 4.0)
        t.record("merge", 0, 4.0, 5.0)
        assert t.steps() == ["sort", "merge"]
        assert t.step_duration("sort") == pytest.approx(4.0)
        assert t.summary()["merge"] == pytest.approx(1.0)

    def test_imbalance(self):
        t = Trace()
        t.record("s", 0, 0.0, 1.0)
        t.record("s", 1, 0.0, 3.0)
        assert t.imbalance("s") == pytest.approx(1.5)

    def test_imbalance_empty_and_zero(self):
        t = Trace()
        assert t.imbalance("none") == 1.0
        t.record("z", 0, 1.0, 1.0)
        assert t.imbalance("z") == 1.0

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Trace().record("s", 0, 2.0, 1.0)

    def test_render_contains_steps(self):
        t = Trace()
        t.record("phase1", 0, 0.0, 1.0)
        out = t.render()
        assert "phase1" in out and "duration" in out

    def test_queries_are_arrival_order_insensitive(self):
        """Event-kernel regression: nodes flow through step boundaries at
        their own clocks, so the bus can record a fast node's step-2
        interval before a slow node's step-1 interval.  Every Trace query
        must be a function of the event *set*, not the arrival order."""
        intervals = [
            ("sort", 0, 0.0, 2.0),
            ("sort", 1, 1.0, 4.0),
            ("merge", 0, 2.0, 5.0),
            ("merge", 1, 4.0, 6.0),
            ("merge", 2, 4.5, 4.5),
        ]
        in_order = Trace()
        shuffled = Trace()
        for rec in intervals:
            in_order.record(*rec)
        # Worst-case arrival: later steps and nodes first.
        for rec in reversed(intervals):
            shuffled.record(*rec)
        assert shuffled.steps() == in_order.steps() == ["sort", "merge"]
        assert shuffled.for_step("merge") == in_order.for_step("merge")
        assert shuffled.summary() == in_order.summary()
        for step in ("sort", "merge"):
            assert shuffled.step_duration(step) == in_order.step_duration(step)
            assert shuffled.imbalance(step) == in_order.imbalance(step)
            for node in range(3):
                assert shuffled.node_busy(step, node) == in_order.node_busy(
                    step, node
                )
        assert shuffled.render() == in_order.render()
