"""Tests for binary partitioning (step 3) and redistribution (step 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster, heterogeneous_cluster, homogeneous_cluster
from repro.core.partition import (
    lower_bound_offset,
    materialize_partitions,
    partition_array,
    partition_offsets,
    partition_refs,
)
from repro.core.redistribute import message_items_for, redistribute
from repro.extsort.multiway import RunRef
from repro.pdm.memory import MemoryManager

from tests.conftest import file_from_array, make_disk


class TestLowerBoundOffset:
    def _file(self, arr, B=8):
        disk = make_disk()
        return file_from_array(np.asarray(arr, dtype=np.uint32), disk, B), disk

    def test_matches_searchsorted(self, rng):
        data = np.sort(rng.integers(0, 1000, 200)).astype(np.uint32)
        f, _ = self._file(data)
        mem = MemoryManager.unlimited()
        for pivot in [0, 57, 500, 999, 1000]:
            assert lower_bound_offset(f, pivot, mem) == int(
                np.searchsorted(data, pivot, side="right")
            )

    def test_empty_file(self):
        f, _ = self._file([])
        assert lower_bound_offset(f, 5, MemoryManager.unlimited()) == 0

    def test_all_below(self):
        f, _ = self._file([10, 20, 30])
        assert lower_bound_offset(f, 5, MemoryManager.unlimited()) == 0

    def test_all_at_or_below_pivot(self):
        f, _ = self._file([10, 20, 30])
        assert lower_bound_offset(f, 30, MemoryManager.unlimited()) == 3

    def test_logarithmic_reads(self):
        data = np.arange(2**12, dtype=np.uint32)
        f, disk = self._file(data, B=8)  # 512 blocks
        before = disk.stats.blocks_read
        lower_bound_offset(f, 1234, MemoryManager.unlimited())
        reads = disk.stats.blocks_read - before
        assert reads <= 12  # ~log2(512) + 1, far below 512

    @given(
        st.lists(st.integers(0, 100), max_size=100),
        st.integers(-1, 101),
    )
    def test_property_equals_numpy(self, items, pivot):
        data = np.sort(np.asarray(items, dtype=np.int64)).astype(np.uint32)
        pivot = max(0, pivot)
        f, _ = self._file(data, B=4)
        got = lower_bound_offset(f, np.uint32(pivot), MemoryManager.unlimited())
        assert got == int(np.searchsorted(data, pivot, side="right"))


class TestPartitionOffsets:
    def test_cuts_are_monotone_and_complete(self, rng):
        data = np.sort(rng.integers(0, 10**6, 500)).astype(np.uint32)
        f = file_from_array(data, make_disk(), B=16)
        pivots = np.sort(rng.integers(0, 10**6, 3)).astype(np.uint32)
        cuts = partition_offsets(f, pivots, MemoryManager.unlimited())
        assert cuts[0] == 0 and cuts[-1] == 500
        assert cuts == sorted(cuts)

    def test_unsorted_pivots_rejected(self, rng):
        f = file_from_array(np.arange(10, dtype=np.uint32), make_disk(), B=8)
        with pytest.raises(ValueError, match="non-decreasing"):
            partition_offsets(f, [5, 3], MemoryManager.unlimited())

    def test_no_pivots_single_partition(self):
        f = file_from_array(np.arange(10, dtype=np.uint32), make_disk(), B=8)
        assert partition_offsets(f, [], MemoryManager.unlimited()) == [0, 10]

    def test_refs_cover_file(self, rng):
        data = np.sort(rng.integers(0, 100, 64)).astype(np.uint32)
        f = file_from_array(data, make_disk(), B=8)
        cuts = partition_offsets(f, [25, 50, 75], MemoryManager.unlimited())
        refs = partition_refs(f, cuts)
        assert sum(r.length for r in refs) == 64
        joined = np.concatenate(
            [data[r.start : r.stop] for r in refs]
        )
        np.testing.assert_array_equal(joined, data)


class TestMaterialize:
    def test_contents_match_ranges(self, rng):
        disk = make_disk()
        data = np.sort(rng.integers(0, 1000, 100)).astype(np.uint32)
        f = file_from_array(data, disk, B=8)
        mem = MemoryManager(capacity=64)
        cuts = partition_offsets(f, [300, 600], mem)
        files = materialize_partitions(f, cuts, disk, mem)
        assert mem.in_use == 0
        for j, pf in enumerate(files):
            np.testing.assert_array_equal(pf.to_array(), data[cuts[j] : cuts[j + 1]])

    def test_io_within_paper_bound(self, rng):
        """Step 3 bound: materialising costs <= 2Q item I/Os (+ binary search)."""
        disk = make_disk()
        data = np.sort(rng.integers(0, 10**6, 2048)).astype(np.uint32)
        f = file_from_array(data, disk, B=32)
        mem = MemoryManager(capacity=256)
        before = disk.stats.item_ios
        cuts = partition_offsets(f, [10**5, 5 * 10**5], mem)
        materialize_partitions(f, cuts, disk, mem)
        measured = disk.stats.item_ios - before
        search_allowance = 3 * 32 * 12  # p-1 searches * B * log blocks
        assert measured <= 2 * 2048 + search_allowance


class TestPartitionArray:
    def test_matches_file_version(self, rng):
        data = np.sort(rng.integers(0, 1000, 200)).astype(np.uint32)
        pivots = [100, 500, 900]
        parts = partition_array(data, pivots)
        assert sum(x.size for x in parts) == 200
        np.testing.assert_array_equal(np.concatenate(parts), data)
        assert all(np.all(parts[0] <= pivots[0]) for _ in [0])

    def test_empty(self):
        parts = partition_array(np.empty(0, dtype=np.uint32), [5])
        assert len(parts) == 2 and all(x.size == 0 for x in parts)


class TestMessageItemsFor:
    def test_rounds_to_block_multiple(self):
        assert message_items_for(1000, 64, None) == 960

    def test_sub_block_messages_kept(self):
        # The paper's packet-size sweep goes down to 8-integer messages.
        assert message_items_for(8, 64, None) == 8

    def test_at_least_block_rounds_down(self):
        assert message_items_for(100, 64, None) == 64

    def test_memory_cap(self):
        # capacity 256 -> cap at 128 rounded to blocks of 64 -> 128
        assert message_items_for(10_000, 64, 256) == 128

    def test_invalid(self):
        with pytest.raises(ValueError):
            message_items_for(0, 64, None)


class TestRedistribute:
    def _setup(self, p=3, items_per_pair=50, B=8, seed=0):
        cluster = Cluster(homogeneous_cluster(p))
        rng = np.random.default_rng(seed)
        partitions = []
        expected = [[None] * p for _ in range(p)]
        for i in range(p):
            node = cluster.nodes[i]
            row = []
            pieces = []
            for j in range(p):
                piece = np.sort(rng.integers(0, 1000, items_per_pair)).astype(np.uint32)
                expected[i][j] = piece
                pieces.append(piece)
            whole = np.concatenate(pieces)
            f = file_from_array(whole, node.disk, B)
            offset = 0
            for j in range(p):
                row.append(RunRef(f, offset, offset + items_per_pair))
                offset += items_per_pair
            partitions.append(row)
        return cluster, partitions, expected

    def test_delivers_every_partition(self):
        cluster, partitions, expected = self._setup()
        received, report = self._run(cluster, partitions)
        for j in range(3):
            for i in range(3):
                np.testing.assert_array_equal(
                    received[j][i].to_array(), expected[i][j]
                )
        assert report.items_moved == 9 * 50

    def _run(self, cluster, partitions, message_items=16):
        from repro.core.redistribute import redistribute

        return redistribute(cluster, partitions, message_items)

    def test_received_files_live_on_receiver_disk(self):
        cluster, partitions, _ = self._setup()
        received, _ = self._run(cluster, partitions)
        for j in range(3):
            for i in range(3):
                assert received[j][i].disk is cluster.nodes[j].disk

    def test_local_partition_no_network(self):
        cluster = Cluster(homogeneous_cluster(1))
        f = file_from_array(np.arange(20, dtype=np.uint32), cluster.nodes[0].disk, 8)
        received, report = redistribute(cluster, [[RunRef.whole(f)]], 16)
        assert cluster.network.messages_sent == 0
        np.testing.assert_array_equal(received[0][0].to_array(), np.arange(20))

    def test_message_count_scales_with_chunking(self):
        cluster, partitions, _ = self._setup()
        _, small = self._run(Cluster(homogeneous_cluster(3)), partitions, 8)
        # partitions reference files on the first cluster's disks; rebuild
        cluster2, partitions2, _ = self._setup()
        _, big = redistribute(cluster2, partitions2, 64)
        assert small.messages > big.messages

    def _setup_realistic(self, items_per_pair=4000, B=256):
        """Paper-like proportions: block seeks cheap per item relative to
        per-message latency, so tiny messages lose (the in-text result)."""
        from repro.cluster.machine import ClusterSpec, NodeSpec
        from repro.pdm.disk import DiskParams

        fast_disk = DiskParams(seek_time=1e-4, bandwidth=100e6)
        spec = ClusterSpec(
            nodes=tuple(NodeSpec(name=f"n{i}", disk=fast_disk) for i in range(3))
        )
        cluster = Cluster(spec)
        rng = np.random.default_rng(0)
        partitions = []
        for i in range(3):
            pieces = [
                np.sort(rng.integers(0, 1000, items_per_pair)).astype(np.uint32)
                for _ in range(3)
            ]
            f = file_from_array(np.concatenate(pieces), cluster.nodes[i].disk, B)
            partitions.append(
                [
                    RunRef(f, j * items_per_pair, (j + 1) * items_per_pair)
                    for j in range(3)
                ]
            )
        return cluster, partitions

    def test_small_messages_cost_more_time(self):
        c1, p1 = self._setup_realistic()
        redistribute(c1, p1, 8)  # 8-integer messages: the paper's disaster
        t_small = c1.elapsed()
        c2, p2 = self._setup_realistic()
        redistribute(c2, p2, 8192)
        t_big = c2.elapsed()
        assert t_small > 2 * t_big

    def test_shape_validated(self):
        cluster = Cluster(homogeneous_cluster(2))
        with pytest.raises(ValueError, match="2x2"):
            redistribute(cluster, [[None]], 16)

    def test_memory_budget_respected(self):
        cluster = Cluster(homogeneous_cluster(2, memory_items=64))
        rng = np.random.default_rng(0)
        partitions = []
        for i in range(2):
            node = cluster.nodes[i]
            data = np.sort(rng.integers(0, 100, 60)).astype(np.uint32)
            f = file_from_array(data, node.disk, 8, mem=node.mem)
            partitions.append([RunRef(f, 0, 30), RunRef(f, 30, 60)])
        received, _ = redistribute(cluster, partitions, message_items=16)
        for node in cluster.nodes:
            assert node.mem.in_use == 0


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(
        st.lists(st.integers(0, 40), min_size=2, max_size=2), min_size=2, max_size=2
    ),
    message_items=st.integers(1, 64),
)
def test_property_redistribute_preserves_data(sizes, message_items):
    p = 2
    cluster = Cluster(homogeneous_cluster(p))
    rng = np.random.default_rng(1)
    partitions, expected = [], {}
    for i in range(p):
        pieces = [
            np.sort(rng.integers(0, 100, sizes[i][j])).astype(np.uint32)
            for j in range(p)
        ]
        whole = np.concatenate(pieces) if any(x.size for x in pieces) else np.empty(0, np.uint32)
        f = file_from_array(whole, cluster.nodes[i].disk, 4)
        row, off = [], 0
        for j in range(p):
            row.append(RunRef(f, off, off + sizes[i][j]))
            expected[(i, j)] = pieces[j]
            off += sizes[i][j]
        partitions.append(row)
    received, report = redistribute(cluster, partitions, message_items)
    for j in range(p):
        for i in range(p):
            np.testing.assert_array_equal(received[j][i].to_array(), expected[(i, j)])
    assert report.items_moved == sum(sum(s) for s in sizes)
