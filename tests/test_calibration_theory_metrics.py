"""Tests for the calibration protocol, the theory module and the metrics."""

import numpy as np
import pytest

from repro.cluster.machine import heterogeneous_cluster, homogeneous_cluster, paper_cluster
from repro.core.calibration import calibrate, sequential_sort_table
from repro.core.perf import PerfVector
from repro.core.theory import (
    homogeneous_waste_factor,
    ideal_speedup,
    ideal_speedup_vs_fastest,
    load_balance_bound,
    max_duplicate_count,
    step_io_bounds,
)
from repro.metrics.expansion import partition_stats
from repro.metrics.report import Table, format_table
from repro.metrics.timing import TrialStats, collect_trials, repeat_trials


class TestCalibration:
    def test_recovers_paper_perf_vector(self):
        """The Table-2 protocol must conclude {4,4,1,1} on the loaded cluster."""
        cal = calibrate(paper_cluster(memory_items=4096), 4 * 20_000, block_items=256)
        assert cal.perf.values == [4, 4, 1, 1]

    def test_loaded_nodes_about_4x_slower(self):
        cal = calibrate(paper_cluster(memory_items=4096), 4 * 20_000, block_items=256)
        ratio = cal.times[2] / cal.times[0]
        assert 3.3 < ratio < 4.7  # paper Table 2: 1910.8/492.0 = 3.88 etc.

    def test_homogeneous_gives_all_ones(self):
        cal = calibrate(
            homogeneous_cluster(3, memory_items=4096), 3 * 9_000, block_items=256
        )
        assert cal.perf.values == [1, 1, 1]

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            calibrate(homogeneous_cluster(4), 2)

    def test_table2_rows_shape(self):
        rows = sequential_sort_table(
            paper_cluster(memory_items=4096),
            sizes=[4_000, 8_000],
            repeats=2,
            block_items=256,
        )
        assert len(rows) == 8  # 4 nodes x 2 sizes
        by_node = {}
        for r in rows:
            by_node.setdefault(r.node, []).append(r)
        # Time grows with size on every node.
        for rs in by_node.values():
            assert rs[0].stats.mean < rs[1].stats.mean
        # Loaded nodes slower at equal size.
        helm = next(r for r in rows if r.node == "helmvige" and r.n_items == 8_000)
        sieg = next(r for r in rows if r.node == "siegrune" and r.n_items == 8_000)
        assert sieg.stats.mean > 3 * helm.stats.mean

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            sequential_sort_table(homogeneous_cluster(1), [100], repeats=0)


class TestTheory:
    def test_load_balance_bound(self):
        perf = PerfVector([1, 1, 4, 4])
        assert load_balance_bound(1000, perf, 0) == pytest.approx(200.0)
        assert load_balance_bound(1000, perf, 2, d_duplicates=7) == pytest.approx(807.0)

    def test_load_balance_bound_validation(self):
        perf = PerfVector([1, 1])
        with pytest.raises(ValueError):
            load_balance_bound(-1, perf, 0)
        with pytest.raises(ValueError):
            load_balance_bound(10, perf, 0, d_duplicates=-1)

    def test_max_duplicate_count(self):
        assert max_duplicate_count(np.array([1, 2, 2, 2, 3])) == 3
        assert max_duplicate_count(np.array([])) == 0
        assert max_duplicate_count(np.array([5])) == 1

    def test_ideal_speedups_paper_vector(self):
        perf = PerfVector([1, 1, 4, 4])
        assert ideal_speedup(perf) == pytest.approx(10.0)  # vs slowest
        assert ideal_speedup_vs_fastest(perf) == pytest.approx(2.5)
        assert homogeneous_waste_factor(perf) == pytest.approx(2.5)

    def test_homogeneous_waste_is_one_for_homogeneous(self):
        assert homogeneous_waste_factor(PerfVector([2, 2, 2])) == pytest.approx(1.0)

    def test_step_io_bounds_total(self):
        perf = PerfVector([1, 3])
        b = step_io_bounds(3000, perf, 1, M=512, B=64)
        assert b.step1_local_sort > 0
        assert b.step2_sampling == (perf.p - 1) * perf[1]
        assert b.step3_partition == 6000
        assert b.total == pytest.approx(
            b.step1_local_sort
            + b.step2_sampling
            + b.step3_partition
            + b.step4_redistribute
            + b.step5_final_merge
        )


class TestPartitionStats:
    def test_homogeneous_case(self):
        perf = PerfVector([1, 1, 1, 1])
        st = partition_stats([250, 260, 240, 250], perf, 1000)
        assert st.mean == pytest.approx(250.0)
        assert st.max == 260
        assert st.s_max == pytest.approx(260 / 250)

    def test_heterogeneous_fastest_view(self):
        perf = PerfVector([1, 1, 4, 4])
        st = partition_stats([100, 110, 400, 390], perf, 1000)
        assert st.mean_fastest == pytest.approx(395.0)
        assert st.s_max_fastest == pytest.approx(400 / 400)
        assert st.s_max == pytest.approx(1.1)  # node 1: 110/100

    def test_validation(self):
        perf = PerfVector([1, 1])
        with pytest.raises(ValueError):
            partition_stats([1], perf, 2)
        with pytest.raises(ValueError):
            partition_stats([-1, 3], perf, 2)


class TestTrialStats:
    def test_mean_std(self):
        s = TrialStats((1.0, 2.0, 3.0))
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert (s.min, s.max, s.n) == (1.0, 3.0, 3)

    def test_single_trial_zero_std(self):
        assert TrialStats((5.0,)).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrialStats(())

    def test_repeat_trials(self):
        stats = repeat_trials(lambda seed: float(seed * 2), [1, 2, 3])
        assert stats.mean == pytest.approx(4.0)
        with pytest.raises(ValueError):
            repeat_trials(lambda s: 0.0, [])

    def test_collect_trials(self):
        results, stats = collect_trials(lambda s: {"v": s}, [1, 2], lambda r: r["v"])
        assert len(results) == 2
        assert stats.mean == pytest.approx(1.5)


class TestReport:
    def test_table_renders(self):
        t = Table("Table X", ["a", "bb"])
        t.add_row(1, 2.5)
        t.add_section("config A")
        t.add_row("x", 0.00001)
        out = t.render()
        assert "Table X" in out
        assert "config A" in out
        assert "2.500" in out

    def test_row_width_checked(self):
        t = Table("t", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_format_table_alignment(self):
        out = format_table("T", ["col"], [["123456"]])
        lines = out.splitlines()
        assert any("123456" in line for line in lines)
