"""Record (key + payload) sorting via packed 64-bit keys."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.workloads.records import is_sorted, pack_records, unpack_records


class TestPacking:
    def test_roundtrip(self, rng):
        keys = rng.integers(0, 2**32, 100, dtype=np.uint32)
        ids = np.arange(100, dtype=np.uint32)
        k2, i2 = unpack_records(pack_records(keys, ids))
        np.testing.assert_array_equal(k2, keys)
        np.testing.assert_array_equal(i2, ids)

    def test_order_is_key_then_id(self):
        packed = pack_records(
            np.array([5, 5, 3], dtype=np.uint32), np.array([2, 1, 9], dtype=np.uint32)
        )
        order = np.argsort(packed)
        np.testing.assert_array_equal(order, [2, 1, 0])  # key 3 first, then 5/id1, 5/id2

    def test_extreme_values(self):
        keys = np.array([0, 2**32 - 1], dtype=np.uint32)
        ids = np.array([2**32 - 1, 0], dtype=np.uint32)
        k2, i2 = unpack_records(pack_records(keys, ids))
        np.testing.assert_array_equal(k2, keys)
        np.testing.assert_array_equal(i2, ids)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pack_records(np.zeros(2, np.uint32), np.zeros(3, np.uint32))

    def test_dtype_checked(self):
        with pytest.raises(TypeError):
            pack_records(np.zeros(2, np.int64), np.zeros(2, np.uint32))
        with pytest.raises(TypeError):
            unpack_records(np.zeros(2, np.uint32))

    @given(
        st.lists(
            st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1)),
            max_size=100,
        )
    )
    def test_property_pack_order_matches_lexicographic(self, pairs):
        keys = np.asarray([k for k, _ in pairs], dtype=np.uint32)
        ids = np.asarray([i for _, i in pairs], dtype=np.uint32)
        sorted_keys, sorted_ids = unpack_records(np.sort(pack_records(keys, ids)))
        expected = sorted(zip(keys.tolist(), ids.tolist()))
        assert list(zip(sorted_keys.tolist(), sorted_ids.tolist())) == expected


class TestRecordSortEndToEnd:
    def test_records_survive_the_full_pipeline(self):
        """Sort key+payload records through Algorithm 1: every payload
        travels with its key, stably."""
        perf = PerfVector([1, 3])
        n = perf.nearest_exact(8_000)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 1000, n, dtype=np.uint32)  # many duplicates
        payload = np.arange(n, dtype=np.uint32)  # locator into a payload table
        packed = pack_records(keys, payload)

        cluster = Cluster(heterogeneous_cluster([1.0, 3.0], memory_items=2048))
        res = sort_array(
            cluster, perf, packed, PSRSConfig(block_items=256, message_items=1024)
        )
        out_keys, out_ids = unpack_records(res.to_array())

        assert is_sorted(out_keys)
        # Every record present exactly once.
        np.testing.assert_array_equal(np.sort(out_ids), payload)
        # Payloads still attached to their original keys.
        np.testing.assert_array_equal(keys[out_ids], out_keys)
        # Stability: among equal keys, payload ids ascend (pack order).
        for a, b in zip(range(0, n - 1), range(1, n)):
            if out_keys[a] == out_keys[b]:
                assert out_ids[a] < out_ids[b]
