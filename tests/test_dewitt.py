"""Tests for the DeWitt-style probabilistic-splitting sort (§2 comparator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster, heterogeneous_cluster, homogeneous_cluster
from repro.core.dewitt import DeWittConfig, sort_array_dewitt, sort_dewitt_distributed
from repro.core.perf import PerfVector
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation


def _run(perf_vals, n=8_000, memory=1024, seed=0, bench=0, **cfg_kw):
    perf = PerfVector(perf_vals)
    n = perf.nearest_exact(n)
    data = make_benchmark(bench, n, seed=seed)
    cluster = Cluster(
        heterogeneous_cluster([float(v) for v in perf_vals], memory_items=memory)
    )
    cfg = DeWittConfig(
        block_items=cfg_kw.pop("block_items", 128),
        message_items=cfg_kw.pop("message_items", 512),
        **cfg_kw,
    )
    res = sort_array_dewitt(cluster, perf, data, cfg)
    return data, res, cluster


class TestCorrectness:
    def test_sorted_permutation(self):
        data, res, _ = _run([1, 1, 4, 4], 16_000)
        verify_sorted_permutation(data, res.to_array())

    def test_homogeneous(self):
        data, res, _ = _run([1, 1], 6_000)
        verify_sorted_permutation(data, res.to_array())

    def test_single_node(self):
        data, res, _ = _run([1], 3_000)
        verify_sorted_permutation(data, res.to_array())

    @pytest.mark.parametrize("bench", [0, 2, 3, 4, 5, 7])
    def test_workloads(self, bench):
        data, res, _ = _run([1, 2], 5_000, bench=bench, seed=bench)
        verify_sorted_permutation(data, res.to_array())

    def test_node_ranges_ordered(self):
        _, res, _ = _run([1, 2, 3], 9_000)
        prev = None
        for f in res.outputs:
            arr = f.to_array()
            if arr.size == 0:
                continue
            if prev is not None:
                assert arr[0] >= prev
            prev = arr[-1]


class TestBehaviour:
    def test_many_small_runs_formed(self):
        """The signature of the algorithm: receivers accumulate one run
        per arriving message."""
        _, res, _ = _run([1, 1], 12_000, message_items=256)
        assert all(r > 5 for r in res.runs_per_node)

    def test_smaller_messages_more_runs(self):
        _, small, _ = _run([1, 1], 12_000, message_items=128)
        _, big, _ = _run([1, 1], 12_000, message_items=2048)
        assert sum(small.runs_per_node) > 2 * sum(big.runs_per_node)

    def test_balance_tracks_perf(self):
        _, res, _ = _run([1, 1, 4, 4], 40_000, memory=2048)
        assert res.s_max < 1.35  # random splitters: looser than PSRS

    def test_memory_balanced(self):
        _, res, cluster = _run([1, 3], 8_000)
        for node in cluster.nodes:
            assert node.mem.in_use == 0
            assert node.mem.high_water <= 1024

    def test_step_times_recorded(self):
        _, res, _ = _run([1, 2], 4_000)
        assert set(res.step_times) == {"1:splitters", "2:route", "3:merge-runs"}

    def test_no_local_presort_io(self):
        """DeWitt skips PSRS's step-1 pre-sort: total item I/O at friendly
        message sizes comes in below external PSRS's."""
        from repro.core.external_psrs import PSRSConfig, sort_array

        perf = PerfVector([1, 1])
        n = perf.nearest_exact(16_000)
        data = make_benchmark(0, n, seed=4)
        c1 = Cluster(homogeneous_cluster(2, memory_items=1024))
        dw = sort_array_dewitt(
            c1, perf, data, DeWittConfig(block_items=128, message_items=2048)
        )
        c2 = Cluster(homogeneous_cluster(2, memory_items=1024))
        ps = sort_array(
            c2, perf, data, PSRSConfig(block_items=128, message_items=2048)
        )
        assert dw.io.item_ios < ps.io.item_ios

    def test_validation(self):
        with pytest.raises(ValueError):
            DeWittConfig(block_items=0)
        with pytest.raises(ValueError):
            DeWittConfig(message_items=0)
        with pytest.raises(ValueError):
            DeWittConfig(oversample=0)
        cluster = Cluster(homogeneous_cluster(2))
        with pytest.raises(ValueError, match="match"):
            sort_dewitt_distributed(cluster, PerfVector([1, 1, 1]), [])

    def test_empty_input_rejected(self):
        cluster = Cluster(homogeneous_cluster(2))
        with pytest.raises(ValueError, match="empty"):
            sort_array_dewitt(
                cluster, PerfVector([1, 1]), np.empty(0, dtype=np.uint32)
            )


@settings(max_examples=12, deadline=None)
@given(
    vals=st.lists(st.integers(1, 4), min_size=1, max_size=4),
    seed=st.integers(0, 50),
    bench=st.integers(0, 7),
)
def test_property_dewitt_sorts(vals, seed, bench):
    data, res, cluster = _run(vals, 3_000, seed=seed, bench=bench)
    verify_sorted_permutation(data, res.to_array())
    for node in cluster.nodes:
        assert node.mem.in_use == 0
