"""Property-based invariants of the telemetry event stream.

Every run, whatever its shape, must produce a well-formed stream: step
begins and ends pair up per (step, node), and each node's events carry
non-decreasing timestamps (simulated time never runs backwards on one
clock).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.obs.events import StepBegin, StepEnd
from repro.workloads.generators import make_benchmark

SPEEDS = {2: [1.0, 2.0], 3: [1.0, 1.0, 4.0]}


@st.composite
def run_params(draw):
    p = draw(st.sampled_from([2, 3]))
    perf = [int(s) for s in SPEEDS[p]]
    n = draw(st.integers(1_000, 6_000))
    bench = draw(st.sampled_from([0, "zipf"]))
    level = draw(st.sampled_from(["steps", "io"]))
    return perf, n, bench, level


@given(run_params())
@settings(max_examples=10, deadline=None)
def test_event_stream_is_well_formed(params):
    perf_vals, n, bench, level = params
    perf = PerfVector(perf_vals)
    n = perf.nearest_exact(n)
    data = make_benchmark(bench, n, seed=0)
    cluster = Cluster(
        heterogeneous_cluster(SPEEDS[perf.p], memory_items=512)
    )
    cluster.bus.set_level(level)
    sort_array(cluster, perf, data, PSRSConfig(block_items=64, message_items=256))
    events = cluster.bus.events
    assert events

    # Every StepBegin has exactly one matching StepEnd (same step, node),
    # and the end never precedes its begin.
    begins = {}
    ends = {}
    for e in events:
        if isinstance(e, StepBegin):
            key = (e.step, e.node)
            assert key not in begins, f"duplicate StepBegin {key}"
            begins[key] = e
        elif isinstance(e, StepEnd):
            key = (e.step, e.node)
            assert key not in ends, f"duplicate StepEnd {key}"
            assert key in begins, f"StepEnd {key} without StepBegin"
            ends[key] = e
            assert e.t >= begins[key].t
            assert e.duration >= 0
    assert set(begins) == set(ends), "unmatched StepBegin(s)"

    # Per-node timestamps are non-decreasing in emission order.
    last = {}
    for e in events:
        assert e.t >= last.get(e.node, 0.0), (
            f"time ran backwards on node {e.node}: {e}"
        )
        last[e.node] = e.t

    # The trace view agrees with the paired events.
    for (step, node), end in ends.items():
        assert any(
            te.node == node and te.duration == end.duration
            for te in cluster.trace.for_step(step)
        )
