"""Tier-1 replay of every checked-in fuzz corpus case.

``tests/data/fuzz_corpus/`` holds hand-shrunk scenarios the fuzzer (or a
human) promoted into the permanent regression suite: each JSONL case
records a scenario plus the verdict it must keep producing.  Replaying
them here means every past finding — and the seeded corner cases — is
re-checked on every test run, the same way a fuzzing trophy case works
in OSS-Fuzz-style setups.

To promote a new finding: copy the shrunk case file from
``<corpus-dir>/violations/`` into ``tests/data/fuzz_corpus/`` (see
docs/FUZZING.md).
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.fuzz import ScenarioExecutor, load_case, replay_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "fuzz_corpus")

CASE_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.jsonl")))


def _case_id(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def test_corpus_is_not_empty():
    # the three seeded scenarios (plus any promoted findings) must exist
    assert len(CASE_FILES) >= 3


@pytest.mark.parametrize("path", CASE_FILES, ids=_case_id)
def test_case_parses(path):
    case = load_case(path)
    # the scenario embedded in a case file must round-trip canonically
    assert case.scenario.validate() is case.scenario
    assert case.expect_status in ("ok", "recovered", "degraded", "violation")


@pytest.mark.parametrize("path", CASE_FILES, ids=_case_id)
def test_case_replays(path):
    # coverage collection off: replay only needs the oracle verdict
    result = replay_case(path, executor=ScenarioExecutor(collect_coverage=False))
    assert result.matched, (
        f"{os.path.basename(path)} no longer reproduces: {result.reason}"
    )


def test_expected_statuses_cover_the_interesting_outcomes():
    statuses = {load_case(p).expect_status for p in CASE_FILES}
    # the checked-in corpus must keep exercising the ok, degraded and
    # violation arms of the oracle (not collapse into all-ok)
    assert {"ok", "degraded", "violation"} <= statuses
