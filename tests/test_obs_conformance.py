"""Trace conformance: NetTransfer sequences vs the extracted protocol.

Synthetic grammars first (each primitive's hardware footprint, root
binding, round semantics), then the acceptance loop: a recorded
{1,1,4,4} external_psrs run validated against the statically extracted
schema — clean passes, a tampered trace fails, a degraded run demotes
to informational.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

import repro
from repro.analysis.flow import load_project
from repro.analysis.protocol import emit_schemas, extract_schema
from repro.cli import main
from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.core.theory import max_duplicate_count
from repro.obs.audit import RunMeta
from repro.obs.conformance import check_conformance
from repro.obs.events import FaultInjected, NetTransfer
from repro.obs.exporters import write_jsonl
from repro.workloads.generators import make_benchmark


def prim(kind, root=None):
    return {"kind": kind, "root": root}


def step(name, ops, optional=False, may_repeat=False):
    return {"name": name, "ops": ops, "optional": optional,
            "may_repeat": may_repeat}


def schema(*steps):
    return {"version": 1, "algorithm": "synthetic", "steps": list(steps)}


def nt(src, dst, step_name="s"):
    return NetTransfer(t=0.0, node=src, step=step_name, src=src, dst=dst,
                       nbytes=4, duration=0.1)


FAULT = FaultInjected(t=0.0, node=0, step="s", category="kill", detail="n2")


class TestPrimitives:
    def test_gather_fan_in(self):
        sch = schema(step("s", [prim("gather", "root")]))
        ok_events = [nt(1, 0), nt(2, 0), nt(3, 0)]
        assert check_conformance(sch, ok_events).ok

    def test_gather_rejects_split_destination(self):
        sch = schema(step("s", [prim("gather", "root")]))
        report = check_conformance(sch, [nt(1, 0), nt(2, 1)])
        assert not report.ok and report.violations[0].step == "s"

    def test_scatter_fan_out(self):
        sch = schema(step("s", [prim("scatter", "root")]))
        assert check_conformance(sch, [nt(0, 1), nt(0, 2), nt(0, 3)]).ok
        assert not check_conformance(sch, [nt(0, 1), nt(1, 2)]).ok

    def test_bcast_binomial_holders_only(self):
        sch = schema(step("s", [prim("bcast", "root")]))
        # 0 -> 1, then both forward: a legal binomial round
        assert check_conformance(sch, [nt(0, 1), nt(0, 2), nt(1, 3)]).ok
        # 2 never received the payload, so it cannot forward
        assert not check_conformance(sch, [nt(0, 1), nt(2, 3)]).ok

    def test_alltoallv_any_cross_traffic(self):
        sch = schema(step("s", [prim("alltoallv")]))
        assert check_conformance(sch, [nt(0, 1), nt(2, 1), nt(1, 0)]).ok

    def test_send_is_exactly_one_message(self):
        sch = schema(step("s", [prim("send")]))
        assert check_conformance(sch, [nt(0, 1)]).ok
        assert not check_conformance(sch, [nt(0, 1), nt(1, 0)]).ok
        assert not check_conformance(sch, []).ok

    def test_barrier_consumes_nothing(self):
        sch = schema(step("s", [prim("barrier")]))
        assert check_conformance(sch, []).ok
        assert not check_conformance(sch, [nt(0, 1)]).ok


class TestRootBinding:
    def test_same_expression_must_resolve_to_same_node(self):
        sch = schema(
            step("s", [prim("gather", "cfg.root"), prim("bcast", "cfg.root")])
        )
        consistent = [nt(1, 0), nt(2, 0), nt(0, 1), nt(0, 2)]
        assert check_conformance(sch, consistent).ok
        # gather converges on 0 but the bcast then leaves from 1
        drifted = [nt(1, 0), nt(2, 0), nt(1, 0), nt(1, 2)]
        assert not check_conformance(sch, drifted).ok

    def test_distinct_expressions_bind_independently(self):
        sch = schema(step("s", [prim("gather", "a"), prim("bcast", "b")]))
        assert check_conformance(sch, [nt(1, 0), nt(2, 1), nt(2, 3)]).ok


class TestRoundSemantics:
    two_round = [nt(1, 0), nt(2, 0), nt(0, 1), nt(2, 1)]

    def test_fault_free_run_enforces_single_round(self):
        """may_repeat admits degraded re-runs only; a clean run that
        produces two rounds of traffic is a drift, not a repeat."""
        sch = schema(step("s", [prim("gather", "r")], may_repeat=True))
        report = check_conformance(sch, self.two_round)
        assert not report.ok

    def test_faulty_run_admits_repeats_informationally(self):
        sch = schema(step("s", [prim("gather", "r")], may_repeat=True))
        report = check_conformance(sch, [*self.two_round, FAULT])
        assert report.faulty
        assert all(not r.enforced for r in report.rows)
        assert report.ok  # nothing enforced failed

    def test_optional_step_that_never_ran_is_skipped(self):
        sch = schema(step("recover", [prim("gather", "r")], optional=True))
        report = check_conformance(sch, [])
        assert report.ok and report.rows == []

    def test_unknown_trace_step_is_informational(self):
        sch = schema(step("s", [prim("send")]))
        report = check_conformance(sch, [nt(0, 1), nt(1, 2, "mystery")])
        assert report.ok
        extra = [r for r in report.rows if r.step == "mystery"]
        assert extra and not extra[0].enforced


# -- acceptance: a real run against the real schema -------------------------


def _recorded_run(tmp_path=None):
    perf = PerfVector([1, 1, 4, 4])
    n = perf.nearest_exact(2**14)
    data = make_benchmark(0, n, seed=0)
    cluster = Cluster(
        heterogeneous_cluster([1.0, 1.0, 4.0, 4.0], memory_items=1024)
    )
    cluster.bus.set_level("io")
    cfg = PSRSConfig(block_items=256, message_items=2048)
    res = sort_array(cluster, perf, data, cfg)
    meta = RunMeta(
        n_items=res.n_items,
        perf=(1, 1, 4, 4),
        memory_items=1024,
        block_items=256,
        oversample=cfg.oversample,
        d_duplicates=max_duplicate_count(data),
    )
    return cluster.bus.events, meta


@pytest.fixture(scope="module")
def psrs_schema():
    project = load_project([Path(repro.__file__).parent])
    return extract_schema(project, "external_psrs")


@pytest.fixture(scope="module")
def recorded():
    return _recorded_run()


class TestExternalPsrsConformance:
    def test_clean_run_conforms(self, psrs_schema, recorded):
        events, _ = recorded
        report = check_conformance(psrs_schema, events)
        assert report.ok, report.table().render()
        checked = {r.step for r in report.rows if r.enforced}
        assert {"2:pivots", "4:redistribute"} <= checked

    def test_tampered_transfer_is_caught(self, psrs_schema, recorded):
        events, _ = recorded
        tampered = []
        flipped = False
        for ev in events:
            if (not flipped and isinstance(ev, NetTransfer)
                    and ev.step == "2:pivots"):
                ev = dataclasses.replace(ev, dst=(ev.dst + 1) % 4)
                flipped = True
            tampered.append(ev)
        assert flipped
        assert not check_conformance(psrs_schema, tampered).ok

    def test_audit_cli_validates_protocol(self, psrs_schema, recorded,
                                          tmp_path, capsys):
        events, meta = recorded
        run = tmp_path / "run.jsonl"
        write_jsonl(str(run), events, meta.to_dict())
        sch = tmp_path / "schema.json"
        sch.write_text(json.dumps(psrs_schema), encoding="utf-8")
        rc = main(["audit", str(run), "--protocol", str(sch)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Protocol conformance: external_psrs" in out

    def test_audit_cli_json_payload_carries_protocol(self, psrs_schema,
                                                     recorded, tmp_path,
                                                     capsys):
        events, meta = recorded
        run = tmp_path / "run.jsonl"
        write_jsonl(str(run), events, meta.to_dict())
        sch = tmp_path / "schema.json"
        sch.write_text(json.dumps(psrs_schema), encoding="utf-8")
        rc = main(["audit", str(run), "--format", "json",
                   "--protocol", str(sch)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["protocol"]["ok"] is True
        assert payload["protocol"]["algorithm"] == "external_psrs"

    def test_audit_cli_unreadable_schema_exits_two(self, recorded, tmp_path):
        events, meta = recorded
        run = tmp_path / "run.jsonl"
        write_jsonl(str(run), events, meta.to_dict())
        rc = main(["audit", str(run), "--protocol", str(tmp_path / "no.json")])
        assert rc == 2

    def test_emit_schemas_writes_all_known_algorithms(self, tmp_path):
        project = load_project([Path(repro.__file__).parent])
        written = emit_schemas(project, tmp_path)
        names = {p.name for p in written}
        assert "protocol-external_psrs.json" in names
        for p in written:
            payload = json.loads(p.read_text(encoding="utf-8"))
            assert payload["version"] >= 1
