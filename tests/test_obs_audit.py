"""End-to-end tests for the bounds auditor and its CLI surface."""

import json

import pytest

from repro.cli import main
from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.core.theory import max_duplicate_count
from repro.obs.audit import (
    AuditRow,
    RunMeta,
    StepNodeIO,
    audit_run,
    collect_step_io,
)
from repro.obs.events import BlockRead, BlockWrite
from repro.workloads.generators import make_benchmark

NUMBERED_STEPS = {
    "1:local-sort", "2:pivots", "3:partition", "4:redistribute", "5:final-merge",
}


def _audited_run(n=2**14, memory=1024, pivot_method="regular"):
    perf = PerfVector([1, 1, 4, 4])
    n = perf.nearest_exact(n)
    data = make_benchmark(0, n, seed=0)
    cluster = Cluster(
        heterogeneous_cluster([1.0, 1.0, 4.0, 4.0], memory_items=memory)
    )
    cluster.bus.set_level("io")
    cfg = PSRSConfig(block_items=256, message_items=2048, pivot_method=pivot_method)
    res = sort_array(cluster, perf, data, cfg)
    meta = RunMeta(
        n_items=res.n_items,
        perf=(1, 1, 4, 4),
        memory_items=memory,
        block_items=256,
        oversample=cfg.oversample,
        d_duplicates=max_duplicate_count(data),
        pivot_method=pivot_method,
    )
    return audit_run(cluster.bus.events, meta)


class TestAuditE2E:
    def test_heterogeneous_sort_satisfies_all_bounds(self):
        """Acceptance: every audited step I/O on {1,1,4,4} is within bound."""
        report = _audited_run()
        assert report.ok, report.table().render()
        bounded = {r.step for r in report.rows if r.bound_items is not None}
        assert bounded == NUMBERED_STEPS
        # Every numbered step has a row for every node.
        for step in NUMBERED_STEPS:
            assert {r.node for r in report.rows if r.step == step} == {0, 1, 2, 3}

    def test_bounds_hold_across_memory_and_pivot_configs(self):
        assert _audited_run(n=2**13, memory=2048).ok
        assert _audited_run(pivot_method="random").ok

    def test_quantile_pivot_step2_is_informational(self):
        report = _audited_run(n=2**13, memory=2048, pivot_method="quantile")
        step2 = [r for r in report.rows if r.step == "2:pivots"]
        assert step2 and all(r.bound_items is None for r in step2)
        others = [r for r in report.rows if r.step in NUMBERED_STEPS - {"2:pivots"}]
        assert all(r.ok for r in others)

    def test_violation_detected(self):
        report = _audited_run()
        meta = report.meta
        events = [
            BlockRead(t=0.0, node=0, step="1:local-sort", disk="d",
                      n_items=10 * meta.n_items, itemsize=4, cost=1.0)
        ]
        bad = audit_run(events, meta)
        assert not bad.ok
        assert len(bad.violations) == 1
        assert "VIOLATION" in bad.table().render()

    def test_collect_step_io_folds_reads_and_writes(self):
        events = [
            BlockRead(t=0.0, node=1, step="s", disk="d", n_items=10,
                      itemsize=4, cost=0.1),
            BlockWrite(t=0.1, node=1, step="s", disk="d", n_items=20,
                       itemsize=4, cost=0.1),
            BlockRead(t=0.2, node=2, step="s", disk="d", n_items=5,
                      itemsize=4, cost=0.1),
        ]
        cells = collect_step_io(events)
        assert cells[("s", 1)].item_ios == 30
        assert cells[("s", 1)].block_ios == 2
        assert cells[("s", 2)].items_read == 5

    def test_informational_rows_for_unnumbered_steps(self):
        meta = RunMeta(n_items=100, perf=(1, 1), memory_items=None,
                       block_items=16, oversample=4, d_duplicates=1)
        events = [
            BlockRead(t=0.0, node=0, step="gather", disk="d", n_items=16,
                      itemsize=4, cost=0.1)
        ]
        report = audit_run(events, meta)
        assert report.ok
        assert report.rows[0].bound_items is None
        assert report.rows[0].note == "outside Algorithm 1"

    def test_run_meta_roundtrip_and_validation(self):
        meta = RunMeta(n_items=100, perf=(1, 2), memory_items=512,
                       block_items=64, oversample=4, d_duplicates=3,
                       pivot_method="random")
        assert RunMeta.from_dict(meta.to_dict()) == meta
        with pytest.raises(ValueError, match="invalid run_meta"):
            RunMeta.from_dict({"n_items": 100})

    def test_audit_row_properties(self):
        row = AuditRow(step="s", node=0, measured_items=50, bound_items=100.0)
        assert row.ok and row.ratio == pytest.approx(0.5)
        info = AuditRow(step="s", node=0, measured_items=50, bound_items=None)
        assert info.ok and info.ratio is None
        assert StepNodeIO(items_read=3, items_written=4).item_ios == 7


class TestCLITelemetry:
    ARGS = ["sort", "--n", "8000", "--perf", "1,1,4,4", "--memory", "1024",
            "--block", "256", "--message", "2048"]

    def test_audit_flag_prints_pass_table(self, capsys):
        rc = main(self.ARGS + ["--audit"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bounds audit" in out
        assert "PASS" in out and "VIOLATION" not in out

    def test_trace_and_events_files_written(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        events = tmp_path / "run.jsonl"
        rc = main(self.ARGS + ["--trace", str(trace), "--events", str(events)])
        assert rc == 0
        data = json.loads(trace.read_text())
        assert "traceEvents" in data and len(data["traceEvents"]) > 50
        head = json.loads(events.read_text().splitlines()[0])
        assert head["kind"] == "run_meta" and head["perf"] == [1, 1, 4, 4]

    def test_audit_subcommand_replays_jsonl(self, capsys, tmp_path):
        events = tmp_path / "run.jsonl"
        assert main(self.ARGS + ["--events", str(events)]) == 0
        capsys.readouterr()
        rc = main(["audit", str(events)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        rc = main(["audit", str(events), "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0 and report["ok"] is True
        assert report["meta"]["n_items"] == 8000

    def test_audit_subcommand_rejects_metaless_log(self, capsys, tmp_path):
        log = tmp_path / "bare.jsonl"
        log.write_text(
            '{"kind": "step_begin", "t": 0.0, "node": 0, "step": "s"}\n'
        )
        rc = main(["audit", str(log)])
        assert rc == 2
        assert "run_meta" in capsys.readouterr().err

    def test_format_json_summary(self, capsys):
        rc = main(self.ARGS + ["--format", "json", "--audit"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["command"] == "sort"
        assert summary["verified"] is True
        assert summary["n_items"] == 8000
        assert set(summary["step_seconds"]) == NUMBERED_STEPS
        assert summary["io"]["blocks_read"] > 0
        assert summary["io"]["labels"]
        assert summary["audit"]["ok"] is True

    def test_degraded_run_skips_audit_enforcement(self, capsys):
        rc = main(
            self.ARGS
            + ["--audit", "--fault-plan",
               '{"kills": [{"node": 3, "step": 3}]}']
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "degraded" in out.lower()
