"""The BENCH_sort.json keyed-run-list format (repro.metrics.bench)."""

from __future__ import annotations

import json
import os

import pytest

from repro.metrics.bench import (
    SCHEMA,
    BenchFormatError,
    append_run,
    get_run,
    load_bench,
    run_key,
    validate_bench,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _summary(n=1024, perf=(1, 1), elapsed=1.0):
    return {
        "command": "sort",
        "n_items": n,
        "perf": list(perf),
        "verified": True,
        "elapsed_seconds": elapsed,
    }


def test_run_key_is_n_times_perf():
    assert run_key(_summary(131080, (1, 1, 4, 4))) == "131080x1-1-4-4"
    with pytest.raises(BenchFormatError):
        run_key({"perf": [1]})


def test_append_creates_then_appends_then_updates(tmp_path):
    path = str(tmp_path / "BENCH_sort.json")
    append_run(path, _summary(1024, (1, 1)))
    append_run(path, _summary(2048, (1, 1, 4, 4)))
    doc = append_run(path, _summary(1024, (1, 1), elapsed=9.9))
    assert doc["schema"] == SCHEMA
    # two configurations, not three: the re-run updated in place
    assert [e["key"] for e in doc["runs"]] == ["1024x1-1", "2048x1-1-4-4"]
    assert get_run(doc, "1024x1-1")["elapsed_seconds"] == 9.9
    # the on-disk file round-trips
    assert load_bench(path) == doc


def test_legacy_v1_file_is_migrated(tmp_path):
    path = str(tmp_path / "BENCH_sort.json")
    with open(path, "w") as fh:
        json.dump(_summary(4096, (2, 1)), fh)
    doc = append_run(path, _summary(8192, (2, 1)))
    # the legacy run survives the migration alongside the new one
    assert [e["key"] for e in doc["runs"]] == ["4096x2-1", "8192x2-1"]


def test_validate_rejects_broken_documents(tmp_path):
    with pytest.raises(BenchFormatError):
        validate_bench({"schema": "other", "runs": []})
    with pytest.raises(BenchFormatError):
        validate_bench({"schema": SCHEMA, "runs": [{"key": ""}]})
    with pytest.raises(BenchFormatError):
        # key must agree with the entry's own n_items/perf
        validate_bench(
            {"schema": SCHEMA, "runs": [{"key": "1x9", **_summary(1024, (1,))}]}
        )
    dup = {"key": "1024x1", **_summary(1024, (1,))}
    with pytest.raises(BenchFormatError):
        validate_bench({"schema": SCHEMA, "runs": [dup, dict(dup)]})
    path = str(tmp_path / "junk.json")
    with open(path, "w") as fh:
        fh.write("[]")
    with pytest.raises(BenchFormatError):
        load_bench(path)


def test_checked_in_artifact_is_valid_v2():
    """The committed BENCH_sort.json must already be migrated and valid."""
    path = os.path.join(REPO_ROOT, "BENCH_sort.json")
    if not os.path.exists(path):
        pytest.skip("no benchmark artifact in this checkout")
    doc = load_bench(path)
    validate_bench(doc, path=path)
    assert doc["schema"] == SCHEMA
    for entry in doc["runs"]:
        assert entry["verified"] is True
