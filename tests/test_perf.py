"""Tests for the performance vector and the Eq.-2 size condition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.perf import PerfVector


class TestConstruction:
    def test_paper_vector(self):
        perf = PerfVector([1, 1, 4, 4])
        assert perf.p == 4
        assert perf.total == 10
        assert perf.lcm == 4
        assert not perf.is_homogeneous

    def test_homogeneous(self):
        assert PerfVector([1, 1, 1]).is_homogeneous

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PerfVector([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PerfVector([1, 0])

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            PerfVector([1, 2.5])
        with pytest.raises(TypeError):
            PerfVector([True, 2])

    def test_equality_and_iteration(self):
        a = PerfVector([1, 2])
        assert a == PerfVector([1, 2])
        assert a != PerfVector([2, 1])
        assert list(a) == [1, 2]
        assert a[1] == 2
        assert len(a) == 2


class TestEq2:
    def test_paper_example(self):
        """k=1, perf={8,5,3,1}: lcm=120, n = 120+3*120+5*120+8*120 = 2040."""
        perf = PerfVector([8, 5, 3, 1])
        assert perf.lcm == 120
        assert perf.admissible_size(1) == 2040
        assert perf.is_admissible(2040)
        assert not perf.is_admissible(2041)

    def test_paper_table3_size(self):
        """{1,1,4,4}: the paper grows 2^24 to 16777220 (integral portions)."""
        perf = PerfVector([1, 1, 4, 4])
        assert perf.portion_granularity == 10
        assert perf.nearest_exact(2**24) == 16777220
        # The strict Eq.-2 size is coarser (granularity lcm*total = 40).
        assert perf.nearest_admissible(2**24) == 16777240

    def test_nearest_exact_validation(self):
        with pytest.raises(ValueError):
            PerfVector([1, 1]).nearest_exact(0)

    @given(st.lists(st.integers(1, 12), min_size=1, max_size=6), st.integers(1, 10**6))
    def test_property_nearest_exact_portions_integral(self, vals, n):
        perf = PerfVector(vals)
        m = perf.nearest_exact(n)
        assert m >= n
        for i in range(perf.p):
            assert (m * perf[i]) % perf.total == 0

    def test_granularity(self):
        assert PerfVector([1, 1, 4, 4]).granularity == 40

    def test_admissible_size_k_validation(self):
        with pytest.raises(ValueError):
            PerfVector([1, 1]).admissible_size(0)

    def test_nearest_admissible_validation(self):
        with pytest.raises(ValueError):
            PerfVector([1, 1]).nearest_admissible(0)

    @given(st.lists(st.integers(1, 12), min_size=1, max_size=6), st.integers(1, 50))
    def test_admissible_sizes_are_admissible(self, vals, k):
        perf = PerfVector(vals)
        assert perf.is_admissible(perf.admissible_size(k))


class TestPortions:
    def test_exact_portions_paper(self):
        perf = PerfVector([8, 5, 3, 1])
        assert perf.exact_portions(2040) == [960, 600, 360, 120]

    def test_exact_requires_admissible(self):
        with pytest.raises(ValueError, match="Eq. 2"):
            PerfVector([1, 1, 4, 4]).exact_portions(100)

    def test_portions_match_exact_when_admissible(self):
        perf = PerfVector([1, 1, 4, 4])
        n = perf.admissible_size(3)
        assert perf.portions(n) == perf.exact_portions(n)

    def test_portions_sum_and_proximity(self):
        perf = PerfVector([3, 2, 2])
        parts = perf.portions(100)
        assert sum(parts) == 100
        for i, part in enumerate(parts):
            assert abs(part - perf.optimal_share(100, i)) < 1

    def test_portions_zero(self):
        assert PerfVector([1, 2]).portions(0) == [0, 0]

    def test_portions_negative_rejected(self):
        with pytest.raises(ValueError):
            PerfVector([1]).portions(-1)

    def test_optimal_share_bounds(self):
        perf = PerfVector([1, 3])
        assert perf.optimal_share(8, 0) == pytest.approx(2.0)
        assert perf.optimal_share(8, 1) == pytest.approx(6.0)
        with pytest.raises(IndexError):
            perf.optimal_share(8, 2)

    @given(
        st.lists(st.integers(1, 9), min_size=1, max_size=8),
        st.integers(0, 10_000),
    )
    def test_property_portions_partition_n(self, vals, n):
        perf = PerfVector(vals)
        parts = perf.portions(n)
        assert sum(parts) == n
        assert all(x >= 0 for x in parts)
        for i, part in enumerate(parts):
            assert abs(part - perf.optimal_share(n, i)) <= 1


class TestFromSpeeds:
    def test_paper_calibration(self):
        """Measured ratios near 4 round to the {4,4,1,1} vector."""
        perf = PerfVector.from_speeds([4.06, 4.03, 1.0, 0.97])
        assert perf.values == [4, 4, 1, 1]

    def test_all_equal(self):
        assert PerfVector.from_speeds([2.0, 2.0]).values == [1, 1]

    def test_caps_huge_ratio(self):
        assert PerfVector.from_speeds([1000.0, 1.0], max_value=8).values == [8, 1]

    def test_rejects_bad_speeds(self):
        with pytest.raises(ValueError):
            PerfVector.from_speeds([])
        with pytest.raises(ValueError):
            PerfVector.from_speeds([1.0, -2.0])

    @given(st.lists(st.floats(0.1, 50), min_size=1, max_size=8))
    def test_property_always_valid_vector(self, speeds):
        perf = PerfVector.from_speeds(speeds)
        assert all(v >= 1 for v in perf.values)
        assert min(perf.values) == 1  # normalised by the slowest node
