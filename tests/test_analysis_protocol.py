"""The protocol verifier: REP201..REP206 plus schema extraction.

One bad fixture per rule (each fires exactly the code under test), one
good counterpart per rule (fires nothing), the registry contract, and a
self-check that the real tree is protocol-clean — the acceptance bar of
``repro lint --protocol`` exiting 0.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.engine import AnalysisError
from repro.analysis.protocol import (
    KNOWN_ENTRIES,
    PROTOCOL_RULES,
    PROTOCOL_RULES_BY_CODE,
    analyze_protocol,
    analyze_protocol_source,
    extract_schema,
    get_protocol_rules,
)
from repro.analysis.flow import load_project

PATH = "repro/core/mod.py"


def check(source: str, path: str = PATH):
    return analyze_protocol_source(textwrap.dedent(source), path)


def codes(report) -> list[str]:
    return [f.rule for f in report.findings]


# -- bad fixtures: one per rule ---------------------------------------------

BAD_201 = """
    def exchange(view, rank, leader, payloads, data):
        if rank != leader:
            view.comm.gather(payloads, root=0)
        else:
            view.comm.bcast(data, root=0)
"""

BAD_202 = """
    def distribute(view, parts):
        for i in range(view.p):
            parts[i] = parts[i] + 1
        view.comm.gather(parts, root=i)
"""

BAD_203 = """
    def stage(comm, data):
        comm.send(3, 3, data)
"""

BAD_204 = """
    def broadcast_each(view, data):
        for i in range(view.p):
            view.comm.bcast(data, root=0)
"""

BAD_205 = """
    def sync(view, rank, leader):
        if rank != leader:
            view.barrier()
"""

BAD_206 = """
    def regather(view, parts, config):
        view.comm.gather(parts, root=config.root)
"""

# -- good counterparts: the documented fixes --------------------------------

GOOD = """
    def orchestrate(view, config, parts, data):
        root = view.ranks.index(config.root)
        out = view.comm.gather(parts, root=root)
        view.comm.bcast(data, root=root)
        payload = [out[i] for i in range(view.p)]
        view.comm.scatter(payload, root=root)
        view.barrier()
        for src in range(view.p):
            dst = (src + 1) % view.p
            if src != dst:
                view.comm.send(src, dst, data)
"""


class TestBadFixtures:
    @pytest.mark.parametrize(
        "source,code",
        [
            (BAD_201, "REP201"),
            (BAD_202, "REP202"),
            (BAD_203, "REP203"),
            (BAD_204, "REP204"),
            (BAD_205, "REP205"),
            (BAD_206, "REP206"),
        ],
    )
    def test_each_rule_fires_on_its_fixture(self, source, code):
        assert code in codes(check(source))

    def test_fixtures_fire_only_their_rule(self):
        # REP201's divergent arms are otherwise well-formed, etc.: each
        # planted bug is a single defect, not a pile-up.
        assert codes(check(BAD_201)) == ["REP201"]
        assert codes(check(BAD_202)) == ["REP202"]
        assert codes(check(BAD_203)) == ["REP203"]
        assert codes(check(BAD_204)) == ["REP204"]
        assert codes(check(BAD_205)) == ["REP205"]
        assert codes(check(BAD_206)) == ["REP206"]

    def test_findings_name_the_function(self):
        report = check(BAD_203)
        assert "[in stage()]" in report.findings[0].message

    def test_view_result_indexed_by_global_rank(self):
        source = """
            def read_back(view, parts, config):
                pos = view.ranks.index(config.root)
                out = view.comm.gather(parts, root=pos)
                return out[config.root]
        """
        assert codes(check(source)) == ["REP206"]

    def test_out_of_scope_module_is_exempt(self):
        report = check(BAD_203, path="repro/obs/mod.py")
        assert report.findings == []

    def test_noqa_suppresses_with_reason(self):
        source = """
            def stage(comm, data):
                comm.send(3, 3, data)  # repro: noqa REP203(loopback model)
        """
        report = check(source)
        assert report.findings == []
        assert report.suppressed[0].reason == "loopback model"


class TestGoodFixtures:
    def test_orchestration_idiom_is_clean(self):
        assert codes(check(GOOD)) == []

    def test_guarded_self_send_is_clean(self):
        source = """
            def route(comm, src, dst, data):
                if src != dst:
                    comm.send(src, dst, data)
        """
        assert codes(check(source)) == []

    def test_collective_after_rank_loop_is_clean(self):
        source = """
            def plan(view, data):
                payloads = []
                for i in range(view.p):
                    payloads.append(data[i])
                view.comm.alltoallv(payloads)
        """
        assert codes(check(source)) == []

    def test_same_collectives_in_both_arms_is_clean(self):
        source = """
            def balanced(view, rank, leader, parts):
                if rank != leader:
                    view.comm.gather(parts, root=0)
                else:
                    view.comm.gather(parts, root=0)
        """
        assert codes(check(source)) == []


class TestRegistry:
    def test_codes_are_the_documented_range(self):
        assert sorted(PROTOCOL_RULES_BY_CODE) == [
            f"REP20{n}" for n in range(1, 7)
        ]
        assert len(PROTOCOL_RULES) == len(PROTOCOL_RULES_BY_CODE)

    def test_metadata_is_complete(self):
        for rule in PROTOCOL_RULES:
            assert rule.name and rule.summary and rule.fix_hint
            assert rule.scope  # every protocol rule is scoped

    def test_selection_resolves_case_insensitively(self):
        (rule,) = get_protocol_rules(["rep204"])
        assert rule.code == "REP204"

    def test_unknown_code_raises(self):
        with pytest.raises(AnalysisError, match="unknown protocol rule"):
            get_protocol_rules(["REP999"])


class TestRepoSelfCheck:
    def test_package_is_protocol_clean(self):
        pkg = Path(repro.__file__).parent
        report = analyze_protocol([pkg])
        assert [f.render() for f in report.findings] == []


class TestCliIntegration:
    @staticmethod
    def lint(*argv: str) -> tuple[int, str, str]:
        import contextlib
        import io

        from repro.analysis.cli import main

        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = main(list(argv))
        return code, out.getvalue(), err.getvalue()

    @staticmethod
    def core_file(tmp_path: Path, source: str) -> Path:
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True, exist_ok=True)
        target = pkg / "mod.py"
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        return target

    def test_protocol_finding_exits_one(self, tmp_path):
        f = self.core_file(tmp_path, BAD_204)
        code, out, _ = self.lint("--no-baseline", "--no-cache",
                                 "--protocol", str(f))
        assert code == 1
        assert "REP204" in out

    def test_protocol_rule_requires_flag(self, tmp_path):
        f = self.core_file(tmp_path, BAD_204)
        code, _, err = self.lint("--no-baseline", "--no-cache",
                                 "--rule", "REP204", str(f))
        assert code == 2
        assert "--protocol" in err

    def test_rule_filter_within_protocol_pass(self, tmp_path):
        f = self.core_file(tmp_path, BAD_204 + BAD_203)
        code, out, _ = self.lint("--no-baseline", "--no-cache", "--protocol",
                                 "--rule", "REP203", str(f))
        assert code == 1
        assert "REP203" in out and "REP204" not in out

    def test_json_payload_reports_protocol_engine(self, tmp_path):
        import json

        f = self.core_file(tmp_path, "x = 1\n")
        code, out, _ = self.lint("--no-baseline", "--no-cache", "--protocol",
                                 "--format", "json", str(f))
        assert code == 0
        payload = json.loads(out)
        assert payload["protocol_engine_version"] == "1.0"

    def test_emit_schema_keeps_json_stdout_pure(self, tmp_path):
        import json

        schemas = tmp_path / "schemas"
        pkg = Path(repro.__file__).parent
        code, out, err = self.lint(
            "--no-baseline", "--no-cache", "--protocol", "--format", "json",
            "--emit-schema", str(schemas), str(pkg),
        )
        assert code == 0
        json.loads(out)  # no schema notices interleaved
        assert "wrote schema" in err
        assert (schemas / "protocol-external_psrs.json").is_file()

    def test_list_rules_tags_protocol_pass(self):
        code, out, _ = self.lint("--list-rules")
        assert code == 0
        for n in range(1, 7):
            assert f"REP20{n}" in out
        assert "[protocol]" in out


class TestSchemaExtraction:
    @pytest.fixture(scope="class")
    def project(self):
        return load_project([Path(repro.__file__).parent])

    def test_known_entries_resolve(self, project):
        for key in KNOWN_ENTRIES.values():
            assert key in project.functions, key

    def test_external_psrs_schema_shape(self, project):
        schema = extract_schema(project, "external_psrs")
        assert schema["algorithm"] == "external_psrs"
        names = [s["name"] for s in schema["steps"]]
        # the paper's step skeleton, in superstep order
        for expected in ("2:pivots", "3:partition", "4:redistribute"):
            assert expected in names
        assert names == sorted(names, key=names.index)  # stable order
        by_name = {s["name"]: s for s in schema["steps"]}
        assert by_name["2:pivots"]["ops"]  # quantile/sample traffic

    def test_all_entries_extract(self, project):
        for algorithm in KNOWN_ENTRIES:
            schema = extract_schema(project, algorithm)
            assert schema["version"] >= 1
            assert isinstance(schema["steps"], list)

    def test_unknown_algorithm_raises(self, project):
        with pytest.raises(AnalysisError):
            extract_schema(project, "bogosort")
