"""Tests for the memory budget manager."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pdm.memory import MemoryBudgetError, MemoryManager


class TestMemoryManager:
    def test_acquire_release(self):
        m = MemoryManager(capacity=10)
        m.acquire(6)
        assert m.in_use == 6
        m.release(4)
        assert m.in_use == 2

    def test_over_budget_raises(self):
        m = MemoryManager(capacity=10)
        m.acquire(8)
        with pytest.raises(MemoryBudgetError, match="budget exceeded"):
            m.acquire(3)
        assert m.in_use == 8  # failed acquire left state intact

    def test_release_more_than_held_raises(self):
        m = MemoryManager(capacity=10)
        m.acquire(2)
        with pytest.raises(ValueError, match="only 2"):
            m.release(3)

    def test_negative_amounts_rejected(self):
        m = MemoryManager(capacity=10)
        with pytest.raises(ValueError):
            m.acquire(-1)
        with pytest.raises(ValueError):
            m.release(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryManager(capacity=0)

    def test_high_water_tracks_peak(self):
        m = MemoryManager(capacity=100)
        m.acquire(30)
        m.acquire(40)
        m.release(60)
        m.acquire(5)
        assert m.high_water == 70

    def test_reserve_context_releases_on_error(self):
        m = MemoryManager(capacity=10)
        with pytest.raises(RuntimeError):
            with m.reserve(7):
                assert m.in_use == 7
                raise RuntimeError("boom")
        assert m.in_use == 0

    def test_unlimited(self):
        m = MemoryManager.unlimited()
        m.acquire(10**12)
        assert m.available > 10**15

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
    def test_nested_reserves_always_balance(self, amounts):
        m = MemoryManager(capacity=50 * 40 + 1)
        import contextlib

        with contextlib.ExitStack() as stack:
            for a in amounts:
                stack.enter_context(m.reserve(a))
            assert m.in_use == sum(amounts)
        assert m.in_use == 0
