"""Systematic configuration-matrix integration tests.

Every combination of the algorithm's main switches must (a) produce a
sorted permutation, (b) leave every memory budget balanced, (c) respect
the heterogeneous PSRS load-balance theorem.  One test body, the matrix
as parameters — this is the regression net for cross-feature
interactions (e.g. zero-copy partitions x replacement selection x
quantile pivots).
"""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.cluster.network import FAST_ETHERNET, MYRINET
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.core.theory import load_balance_bound, max_duplicate_count
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

PERF = PerfVector([1, 3])
N = PERF.nearest_exact(4_000)


def _run(**cfg_overrides):
    link = cfg_overrides.pop("link", FAST_ETHERNET)
    data = make_benchmark(cfg_overrides.pop("bench", 0), N, seed=7)
    cluster = Cluster(
        heterogeneous_cluster([1.0, 3.0], memory_items=1024, link=link)
    )
    cfg = PSRSConfig(block_items=128, message_items=512, **cfg_overrides)
    res = sort_array(cluster, PERF, data, cfg)
    # (a) correctness
    verify_sorted_permutation(data, res.to_array())
    # (b) accounting
    for node in cluster.nodes:
        assert node.mem.in_use == 0
        assert node.mem.high_water <= 1024
    # (c) theorem
    d = max_duplicate_count(data)
    for i, received in enumerate(res.received_sizes):
        assert received <= load_balance_bound(N, PERF, i, d) + PERF.p
    return res


@pytest.mark.parametrize("engine", ["vector", "itemwise"])
@pytest.mark.parametrize("run_policy", ["load", "replacement"])
@pytest.mark.parametrize("pivot_method", ["regular", "random", "quantile"])
def test_engine_policy_pivot_matrix(engine, run_policy, pivot_method):
    _run(engine=engine, run_policy=run_policy, pivot_method=pivot_method)


@pytest.mark.parametrize("materialize", [True, False])
@pytest.mark.parametrize("pivot_method", ["regular", "quantile"])
@pytest.mark.parametrize("link", [FAST_ETHERNET, MYRINET])
def test_materialize_pivot_link_matrix(materialize, pivot_method, link):
    _run(
        materialize_partitions=materialize,
        pivot_method=pivot_method,
        link=link,
    )


@pytest.mark.parametrize("bench", list(range(8)))
@pytest.mark.parametrize("materialize", [True, False])
def test_workload_materialize_matrix(bench, materialize):
    _run(bench=bench, materialize_partitions=materialize)


@pytest.mark.parametrize("message_items", [8, 128, 512, 4096])
def test_message_size_matrix(message_items):
    data = make_benchmark(0, N, seed=7)
    cluster = Cluster(heterogeneous_cluster([1.0, 3.0], memory_items=1024))
    res = sort_array(
        cluster,
        PERF,
        data,
        PSRSConfig(block_items=128, message_items=message_items),
    )
    verify_sorted_permutation(data, res.to_array())


@pytest.mark.parametrize("n_tapes", [3, 4, 6, 8])
def test_tape_count_matrix(n_tapes):
    _run(n_tapes=n_tapes)


@pytest.mark.parametrize("oversample", [1, 2, 8])
def test_oversample_matrix(oversample):
    _run(oversample=oversample)


def test_all_switches_at_once():
    """The kitchen sink: every non-default switch simultaneously."""
    res = _run(
        engine="itemwise",
        run_policy="replacement",
        pivot_method="quantile",
        materialize_partitions=False,
        oversample=2,
        n_tapes=4,
        link=MYRINET,
    )
    assert res.s_max < 1.05  # quantile pivots keep balance tight
