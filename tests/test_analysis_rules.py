"""Per-rule positive/negative fixtures for the REP001..REP008 linter."""

from __future__ import annotations

import keyword
import textwrap

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    AnalysisError,
    Baseline,
    analyze_source,
    fingerprint,
    get_rules,
    package_relpath,
    parse_noqa,
)

CORE = "repro/core/mod.py"
EXTSORT = "repro/extsort/mod.py"
PDM = "repro/pdm/mod.py"
OUTSIDE = "repro/metrics/mod.py"


def run(src: str, path: str = CORE, codes=None):
    """Lint a snippet; return the (unsuppressed) finding list."""
    report = analyze_source(textwrap.dedent(src), path, get_rules(codes))
    return report.findings


def codes_of(findings):
    return sorted({f.rule for f in findings})


class TestScoping:
    def test_package_relpath_strips_prefix(self):
        assert package_relpath("/x/src/repro/core/a.py") == "core/a.py"
        assert package_relpath("repro/pdm/disk.py") == "pdm/disk.py"

    def test_core_scoped_rule_silent_outside_core(self):
        src = "x = sorted(items)\n"
        assert codes_of(run(src)) == ["REP002"]
        assert run(src, path=OUTSIDE) == []

    def test_exempt_module_is_skipped(self):
        src = "x = sorted(items)\n"
        assert run(src, path="repro/extsort/runs.py") == []
        assert codes_of(run(src, path=EXTSORT)) == ["REP002"]


class TestRawHostIO:
    def test_open_flagged_in_core(self):
        assert codes_of(run("f = open('x.bin', 'rb')\n")) == ["REP001"]

    def test_os_and_shutil_ops_flagged(self):
        src = """
            import os, shutil
            os.remove(p)
            shutil.copyfile(a, b)
        """
        fs = run(src, codes=["REP001"])
        assert len(fs) == 2

    def test_numpy_file_io_and_tofile_flagged(self):
        src = """
            np.save(path, arr)
            arr.tofile(path)
        """
        assert len(run(src, path=PDM, codes=["REP001"])) == 2

    def test_filestore_exempt_and_noncore_silent(self):
        src = "f = open('x.bin', 'rb')\n"
        assert run(src, path="repro/pdm/filestore.py") == []
        assert run(src, path="repro/workloads/mod.py", codes=["REP001"]) == []

    def test_plain_calls_not_flagged(self):
        assert run("y = os.path.join(a, b)\nz = compute(x)\n", codes=["REP001"]) == []


class TestInCoreSort:
    @pytest.mark.parametrize(
        "snippet",
        ["y = sorted(xs)\n", "y = np.sort(xs)\n", "xs.sort()\n", "i = np.argsort(xs)\n"],
    )
    def test_sorts_flagged(self, snippet):
        assert codes_of(run(snippet, codes=["REP002"])) == ["REP002"]

    def test_non_sort_calls_clean(self):
        assert run("y = np.searchsorted(xs, v)\nz = merge(xs)\n", codes=["REP002"]) == []


class TestNondeterminism:
    @pytest.mark.parametrize(
        "snippet",
        [
            "t = time.time()\n",
            "t = time.perf_counter()\n",
            "x = random.random()\n",
            "x = np.random.rand(3)\n",
            "rng = np.random.default_rng()\n",
            "u = uuid.uuid4()\n",
            "d = datetime.datetime.now()\n",
        ],
    )
    def test_nondeterministic_calls_flagged(self, snippet):
        assert codes_of(run(snippet, path=OUTSIDE, codes=["REP003"])) == ["REP003"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "rng = np.random.default_rng(42)\n",
            "rng = np.random.default_rng(seed=seed)\n",
            "g = np.random.Generator(np.random.PCG64(1))\n",
            "t = node.clock.time\n",
        ],
    )
    def test_seeded_and_simulated_clean(self, snippet):
        assert run(snippet, path=OUTSIDE, codes=["REP003"]) == []


class TestMagicBlockSize:
    @pytest.mark.parametrize(
        "snippet",
        [
            "f = BlockFile(disk, 1024)\n",
            "f = disk.new_file(512, np.uint32)\n",
            "f = StripedFile(disks, B=256)\n",
        ],
    )
    def test_literal_b_flagged(self, snippet):
        assert codes_of(run(snippet, path=OUTSIDE, codes=["REP004"])) == ["REP004"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "f = BlockFile(disk, config.block_items)\n",
            "f = disk.new_file(B, dtype)\n",
            "f = disk.new_file(src.B, src.dtype)\n",
        ],
    )
    def test_threaded_b_clean(self, snippet):
        assert run(snippet, path=OUTSIDE, codes=["REP004"]) == []


class TestNodeIsolation:
    def test_to_array_and_inspect_payload_flagged(self):
        src = """
            a = f.to_array()
            b = f.inspect_block(0)
        """
        assert len(run(src, codes=["REP005"])) == 2

    def test_size_metadata_access_allowed(self):
        assert run("n = f.inspect_block(i).size\n", codes=["REP005"]) == []

    def test_foreign_private_state_flagged_but_self_allowed(self):
        src = """
            class F:
                def ok(self):
                    return self._blocks
                def bad(self, other):
                    return other._blocks
        """
        fs = run(src, codes=["REP005"])
        assert len(fs) == 1 and "_blocks" in fs[0].message

    def test_outside_core_and_extsort_silent(self):
        assert run("a = f.to_array()\n", path=OUTSIDE, codes=["REP005"]) == []


class TestMemoryBypass:
    def test_unbudgeted_data_sized_alloc_flagged(self):
        src = """
            def f(parts):
                return np.concatenate(parts)
        """
        fs = run(src, codes=["REP006"])
        assert len(fs) == 1 and "f()" in fs[0].message

    def test_function_with_memory_manager_clean(self):
        src = """
            def f(parts, mem):
                with mem.reserve(n):
                    return np.concatenate(parts)
        """
        assert run(src, codes=["REP006"]) == []

    def test_constant_sized_scratch_clean(self):
        src = """
            def f(parts):
                return np.empty(8, dtype=np.uint32)
        """
        assert run(src, codes=["REP006"]) == []


class TestSwallowedFault:
    def test_bare_except_flagged(self):
        src = """
            try:
                step()
            except:
                pass
        """
        assert codes_of(run(src, path=OUTSIDE, codes=["REP007"])) == ["REP007"]

    def test_broad_except_pass_flagged(self):
        src = """
            try:
                step()
            except Exception:
                pass
        """
        assert len(run(src, path=OUTSIDE, codes=["REP007"])) == 1

    def test_swallowed_fault_error_flagged(self):
        src = """
            try:
                step()
            except DiskFaultError:
                pass
        """
        assert len(run(src, path=OUTSIDE, codes=["REP007"])) == 1

    @pytest.mark.parametrize(
        "handler",
        [
            "except Exception as exc:\n    raise RuntimeError('x') from exc",
            "except Exception as exc:\n    log(exc)",
            "except ValueError:\n    pass",
        ],
    )
    def test_proper_handlers_clean(self, handler):
        src = "try:\n    step()\n" + handler + "\n"
        assert run(src, path=OUTSIDE, codes=["REP007"]) == []


class TestSharedMutableState:
    def test_mutable_default_flagged(self):
        src = """
            def f(x, acc=[]):
                return acc
        """
        assert len(run(src, path=OUTSIDE, codes=["REP008"])) == 1

    def test_module_level_mutable_flagged(self):
        src = "cache = {}\nitems = list()\n"
        assert len(run(src, path=OUTSIDE, codes=["REP008"])) == 2

    @pytest.mark.parametrize(
        "snippet",
        [
            "BENCHMARKS = {}\n",  # ALL_CAPS constant registry
            "__all__ = ['a', 'b']\n",  # list of str is fine for dunders
            "def f(x, acc=None):\n    acc = acc or []\n    return acc\n",
            "def f(x, opts=()):\n    return opts\n",
        ],
    )
    def test_sanctioned_patterns_clean(self, snippet):
        assert run(snippet, path=OUTSIDE, codes=["REP008"]) == []


class TestNoqa:
    def test_parse_noqa_with_codes_and_reasons(self):
        lines = [
            "x = sorted(a)  # repro: noqa REP002(bounded sample), REP006(scratch)",
            "y = 1",
            "z = open(p)  # repro: noqa",
        ]
        directives = parse_noqa(lines)
        assert set(directives[1]) == {"REP002", "REP006"}
        assert directives[1]["REP002"] == "bounded sample"
        assert 2 not in directives
        assert "*" in directives[3]

    def test_noqa_suppresses_matching_rule_only(self):
        src = "y = sorted(open(p))  # repro: noqa REP002(charged below)\n"
        report = analyze_source(src, CORE, get_rules())
        assert codes_of(report.findings) == ["REP001"]  # open() still reported
        assert [s.finding.rule for s in report.suppressed] == ["REP002"]
        assert report.suppressed[0].reason == "charged below"

    def test_blanket_noqa_suppresses_everything(self):
        src = "y = sorted(open(p))  # repro: noqa\n"
        report = analyze_source(src, CORE, get_rules())
        assert report.findings == []
        assert len(report.suppressed) == 2


class TestBaselineMatching:
    def _finding(self, src="y = sorted(xs)\n", path=CORE):
        (f,) = run(src, path=path, codes=["REP002"])
        return f

    def test_fingerprint_survives_line_drift(self):
        a = self._finding("y = sorted(xs)\n")
        b = self._finding("\n\n# moved down\ny = sorted(xs)\n")
        assert a.line != b.line
        assert fingerprint(a) == fingerprint(b)

    def test_fingerprint_changes_with_snippet_or_path(self):
        a = self._finding("y = sorted(xs)\n")
        b = self._finding("y = sorted(ys)\n")
        c = self._finding("y = sorted(xs)\n", path="repro/core/other.py")
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) != fingerprint(c)

    def test_split_is_multiset(self, tmp_path):
        one = self._finding("y = sorted(xs)\n")
        path = tmp_path / "baseline.json"
        Baseline.write(path, [one])
        baseline = Baseline.load(path)
        # Two identical occurrences against a count-1 baseline: 1 old, 1 new.
        pair = run("y = sorted(xs)\ny = sorted(xs)\n", codes=["REP002"])
        assert fingerprint(pair[0]) == fingerprint(pair[1]) == fingerprint(one)
        new, old = baseline.split(pair)
        assert len(old) == 1 and len(new) == 1

    def test_missing_baseline_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            Baseline.load(tmp_path / "nope.json")


class TestEngineErrors:
    def test_syntax_error_is_analysis_error(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            analyze_source("def f(:\n", CORE, get_rules())

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            get_rules(["REP999"])


_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s)
)

_CLEAN_TEMPLATES = (
    "def fn_{n}({n}):\n    return {n} + 1\n",
    "{N}_TABLE = {{'a': 1}}\n",
    "rng = np.random.default_rng({i})\n",
    "def fn_{n}({n}, mem):\n    with mem.reserve({n}.size):\n"
    "        return np.concatenate([{n}])\n",
    "total = 0\nfor _x in range({i}):\n    total += _x\n",
)


class TestCleanSnippetsProperty:
    @given(
        name=_IDENT,
        seed=st.integers(min_value=0, max_value=2**31),
        template=st.sampled_from(_CLEAN_TEMPLATES),
    )
    def test_rule_clean_snippets_have_zero_findings(self, name, seed, template):
        src = template.format(n=name, N=name.upper(), i=seed)
        for path in (CORE, EXTSORT, PDM, OUTSIDE):
            assert run(src, path=path) == []
