"""Tests for run formation (memory-load and replacement selection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extsort.runs import CollectingSink, form_runs
from repro.pdm.memory import MemoryManager
from repro.workloads.records import is_sorted, verify_permutation

from tests.conftest import file_from_array, make_disk


def _form(arr, B=8, capacity=32, policy="load"):
    disk = make_disk()
    mem = MemoryManager(capacity=capacity)
    src = file_from_array(np.asarray(arr, dtype=np.uint32), disk, B=B, mem=mem)
    sink = CollectingSink(disk, B, np.dtype(np.uint32), mem)
    n = form_runs(src, sink, mem, policy=policy)
    assert mem.in_use == 0, "run formation leaked memory reservations"
    return n, sink.runs, src


class TestMemoryLoadRuns:
    def test_each_run_sorted(self, rng):
        data = rng.integers(0, 1000, 100)
        n, runs, _ = _form(data)
        assert n == len(runs)
        for r in runs:
            assert is_sorted(r.to_array())

    def test_union_is_permutation(self, rng):
        data = rng.integers(0, 1000, 100)
        _, runs, _ = _form(data)
        union = np.concatenate([r.to_array() for r in runs])
        assert verify_permutation(data, union)

    def test_run_count_matches_load_size(self, rng):
        # capacity 32, B 8 -> load of 24 items -> ceil(100/24) = 5 runs
        n, _, _ = _form(rng.integers(0, 1000, 100))
        assert n == 5

    def test_empty_input(self):
        n, runs, _ = _form([])
        assert n == 0 and runs == []

    def test_in_core_single_run(self, rng):
        n, _, _ = _form(rng.integers(0, 1000, 20), capacity=64)
        assert n == 1

    def test_too_small_budget_rejected(self, rng):
        with pytest.raises(ValueError, match="too small"):
            _form(rng.integers(0, 1000, 100), B=8, capacity=15)

    def test_ops_charged(self, rng):
        ops = []
        disk = make_disk()
        mem = MemoryManager(capacity=32)
        src = file_from_array(rng.integers(0, 1000, 100).astype(np.uint32), disk, 8)
        sink = CollectingSink(disk, 8, np.dtype(np.uint32), mem)
        form_runs(src, sink, mem, compute=ops.append)
        assert sum(ops) > 0


class TestReplacementSelection:
    def test_each_run_sorted_and_union_complete(self, rng):
        data = rng.integers(0, 10000, 200)
        n, runs, _ = _form(data, policy="replacement")
        for r in runs:
            assert is_sorted(r.to_array())
        union = np.concatenate([r.to_array() for r in runs])
        assert verify_permutation(data, union)

    def test_sorted_input_gives_one_run(self):
        data = np.arange(500, dtype=np.uint32)
        n, runs, _ = _form(data, policy="replacement")
        assert n == 1

    def test_reverse_input_gives_many_short_runs(self):
        data = np.arange(200, dtype=np.uint32)[::-1].copy()
        n, _, _ = _form(data, policy="replacement")
        # Reverse-sorted is the worst case: run length == heap size H=16.
        assert n >= 200 // 16

    def test_fewer_runs_than_memory_load_on_random(self, rng):
        data = rng.integers(0, 2**31, 2000)
        n_load, _, _ = _form(data, policy="load", capacity=64)
        n_rs, _, _ = _form(data, policy="replacement", capacity=64)
        # Expected ~2x longer runs -> about half the count.
        assert n_rs < n_load

    def test_empty_input(self):
        n, runs, _ = _form([], policy="replacement")
        assert n == 0

    def test_too_small_budget_rejected(self, rng):
        with pytest.raises(ValueError, match="too small"):
            _form(rng.integers(0, 1000, 64), B=8, capacity=16, policy="replacement")

    def test_unknown_policy_rejected(self, rng):
        disk = make_disk()
        mem = MemoryManager(capacity=64)
        src = file_from_array(rng.integers(0, 9, 10).astype(np.uint32), disk, 8)
        sink = CollectingSink(disk, 8, np.dtype(np.uint32), mem)
        with pytest.raises(ValueError, match="unknown run policy"):
            form_runs(src, sink, mem, policy="bogus")  # type: ignore[arg-type]


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.integers(0, 2**32 - 1), max_size=300),
    policy=st.sampled_from(["load", "replacement"]),
)
def test_property_runs_partition_input(data, policy):
    n, runs, _ = _form(data, B=4, capacity=20, policy=policy)
    union = (
        np.concatenate([r.to_array() for r in runs])
        if runs
        else np.empty(0, dtype=np.uint32)
    )
    assert verify_permutation(np.asarray(data, dtype=np.uint32), union)
    for r in runs:
        assert is_sorted(r.to_array())
        assert r.n_items > 0
