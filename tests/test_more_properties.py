"""Additional property-based tests on structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import LinkModel
from repro.core.perf import PerfVector
from repro.core.quantiles import boundary_targets
from repro.core.theory import load_balance_bound
from repro.extsort.polyphase import fibonacci_distribution, theoretical_phase_count
from repro.metrics.expansion import partition_stats


class TestFibonacciProperties:
    @given(st.integers(1, 5000), st.integers(3, 10))
    def test_distribution_covers_and_is_minimal(self, n_runs, n_tapes):
        counts, level = fibonacci_distribution(n_runs, n_tapes)
        assert len(counts) == n_tapes - 1
        assert sum(counts) >= n_runs
        assert all(c >= 0 for c in counts)
        assert counts == sorted(counts, reverse=True)
        if level > 0:
            # Minimality: the previous level did not cover n_runs.
            prev, _ = fibonacci_distribution(sum(counts), n_tapes)
            a = [1] + [0] * (n_tapes - 2)
            for _ in range(level - 1):
                a = [a[0] + a[i + 1] for i in range(n_tapes - 2)] + [a[0]]
            assert sum(a) < n_runs

    @given(st.integers(2, 5000), st.integers(3, 10))
    def test_phase_count_monotone_in_tapes(self, n_runs, n_tapes):
        more_tapes = theoretical_phase_count(n_runs, n_tapes + 1)
        fewer_tapes = theoretical_phase_count(n_runs, n_tapes)
        assert more_tapes <= fewer_tapes

    @given(st.integers(1, 2000), st.integers(3, 8))
    def test_phase_count_monotone_in_runs(self, n_runs, n_tapes):
        assert theoretical_phase_count(n_runs, n_tapes) <= theoretical_phase_count(
            n_runs + 1, n_tapes
        )


class TestLinkModelProperties:
    @given(
        nbytes=st.integers(0, 10**8),
        packet=st.integers(1, 10**6),
        latency=st.floats(0, 1e-2),
        bw=st.floats(1e3, 1e10),
    )
    def test_message_time_nonnegative_and_monotone(self, nbytes, packet, latency, bw):
        link = LinkModel(latency=latency, bandwidth=bw)
        t = link.message_time(nbytes, packet)
        assert t >= 0
        assert link.message_time(nbytes + packet, packet) >= t

    @given(nbytes=st.integers(1, 10**6), p1=st.integers(1, 10**4), p2=st.integers(1, 10**4))
    def test_bigger_packets_never_slower(self, nbytes, p1, p2):
        link = LinkModel(latency=1e-4, bandwidth=1e7)
        small, big = min(p1, p2), max(p1, p2)
        assert link.message_time(nbytes, big) <= link.message_time(nbytes, small)


class TestBoundaryTargetProperties:
    @given(st.lists(st.integers(1, 9), min_size=2, max_size=8), st.integers(0, 10**6))
    def test_targets_monotone_within_n(self, vals, n):
        perf = PerfVector(vals)
        t = boundary_targets(perf, n)
        assert len(t) == perf.p - 1
        assert t == sorted(t)
        assert all(0 <= x <= n for x in t)

    @given(st.lists(st.integers(1, 9), min_size=1, max_size=8), st.integers(0, 10**6))
    def test_load_balance_bound_scales(self, vals, n):
        perf = PerfVector(vals)
        total = sum(
            load_balance_bound(n, perf, i) for i in range(perf.p)
        )
        assert total == pytest.approx(2.0 * n)


class TestPartitionStatsProperties:
    @given(
        st.lists(st.integers(1, 6), min_size=1, max_size=6).flatmap(
            lambda vals: st.tuples(
                st.just(vals),
                st.lists(
                    st.integers(0, 10**5), min_size=len(vals), max_size=len(vals)
                ),
            )
        )
    )
    def test_smax_at_least_one_when_sizes_cover_n(self, vals_sizes):
        vals, sizes = vals_sizes
        perf = PerfVector(vals)
        n = sum(sizes)
        stats = partition_stats(sizes, perf, n)
        if n > 0:
            # Some node is at or above its optimal share.
            assert stats.s_max >= 1.0 - 1e-9
        assert stats.max == max(sizes)
        assert stats.mean == pytest.approx(np.mean(sizes))
