"""Command-line interface: ``python -m repro <command>``.

Commands
--------
sort        run the heterogeneous external PSRS sort once and report
calibrate   run the Table-2 perf-filling protocol on the paper cluster
table2      regenerate a (scaled) Table 2
table3      regenerate a (scaled) Table 3 comparison
sweep       the §5 message-size sweep
workloads   list the 8 input benchmarks
lint        simulation-invariant static analysis (REP001..REP008)
audit       replay a saved telemetry JSONL log through the bounds auditor
fuzz        coverage-guided scenario fuzzing with the auditor as oracle
profile     critical-path/blame profile of a saved run, with what-if predictions
bench       benchmark-artifact tools (report: regression check with blame)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _parse_perf(text: str):
    from repro.core.perf import PerfVector

    try:
        vals = [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"perf must be comma-separated integers, got {text!r}"
        ) from None
    try:
        return PerfVector(vals)
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Out-of-core PSRS sorting for heterogeneous clusters "
        "(Cérin, IPPS 2002) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sort = sub.add_parser("sort", help="run the external PSRS sort once")
    p_sort.add_argument("--n", type=int, default=2**16, help="input size (items)")
    p_sort.add_argument("--perf", type=_parse_perf, default=_parse_perf("4,4,1,1"))
    p_sort.add_argument("--memory", type=int, default=2048, help="per-node M (items)")
    p_sort.add_argument("--block", type=int, default=256, help="block size B (items)")
    p_sort.add_argument("--message", type=int, default=8192, help="message size (items)")
    p_sort.add_argument(
        "--pivot-method", choices=["regular", "random", "quantile"], default="regular"
    )
    p_sort.add_argument("--link", choices=["ethernet", "myrinet"], default="ethernet")
    p_sort.add_argument("--benchmark", default="0", help="workload id or name")
    p_sort.add_argument("--seed", type=int, default=0)
    p_sort.add_argument(
        "--spill-dir",
        default=None,
        help="spill every file to this host directory (true out-of-core)",
    )
    p_sort.add_argument(
        "--fault-plan",
        default=None,
        help="fault plan: path to a JSON file, or inline JSON "
        '(e.g. \'{"disk": [{"node": 1, "after_ios": 40}]}\')',
    )
    p_sort.add_argument(
        "--retries",
        type=int,
        default=None,
        help="max attempts per step for transient faults (enables retry)",
    )
    p_sort.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        help="base backoff seconds charged to the sim clock per retry",
    )
    p_sort.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace/Perfetto JSON of the run "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    p_sort.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="write the raw telemetry event stream as JSONL "
        "(replayable with 'repro audit')",
    )
    p_sort.add_argument(
        "--audit",
        action="store_true",
        help="check measured per-step I/O against the paper bounds "
        "(exit 1 on violation)",
    )
    p_sort.add_argument(
        "--profile",
        action="store_true",
        help="capture full telemetry and print the critical-path/blame "
        "profile with the summary",
    )
    p_sort.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="summary output format (json: one machine-readable object)",
    )
    p_sort.add_argument(
        "--kernel",
        choices=["event", "lockstep"],
        default="event",
        help="execution kernel: 'event' (overlap-aware per-node clocks) "
        "or 'lockstep' (legacy barrier-per-step BSP timing)",
    )

    p_cal = sub.add_parser("calibrate", help="Table-2 perf-filling protocol")
    p_cal.add_argument("--n", type=int, default=2**17, help="total input size")
    p_cal.add_argument("--memory", type=int, default=2048)
    p_cal.add_argument("--block", type=int, default=256)

    p_t2 = sub.add_parser("table2", help="regenerate Table 2 (scaled)")
    p_t2.add_argument("--sizes", default="16384,32768,65536")
    p_t2.add_argument("--memory", type=int, default=2048)
    p_t2.add_argument("--block", type=int, default=256)

    p_t3 = sub.add_parser("table3", help="regenerate the Table 3 comparison")
    p_t3.add_argument("--n", type=int, default=2**16)
    p_t3.add_argument("--memory", type=int, default=2048)
    p_t3.add_argument("--block", type=int, default=256)

    p_sw = sub.add_parser("sweep", help="message-size sweep (§5)")
    p_sw.add_argument("--n", type=int, default=2**14)
    p_sw.add_argument("--sizes", default="8,64,512,8192,32768")
    p_sw.add_argument("--memory", type=int, default=2048)
    p_sw.add_argument("--block", type=int, default=256)

    sub.add_parser("workloads", help="list the 8 input benchmarks")

    p_audit = sub.add_parser(
        "audit",
        help="replay a saved telemetry JSONL log through the bounds auditor",
        description="Reads a JSONL event log written by 'repro sort --events' "
        "(its run_meta line carries the run parameters) and re-checks every "
        "step's measured I/O against the paper bounds; exit 1 on violation.  "
        "--certify additionally checks measured I/O against the *statically "
        "derived* per-step bounds (repro lint --cost), closing the "
        "measured <= derived <= paper sandwich; --certify-corpus / "
        "--certify-bench certify a fuzz corpus or a BENCH_sort.json instead "
        "of a single log.",
    )
    p_audit.add_argument(
        "events_file",
        nargs="?",
        default=None,
        help="JSONL log from 'repro sort --events' (optional with "
        "--certify-corpus / --certify-bench)",
    )
    p_audit.add_argument(
        "--protocol",
        default=None,
        metavar="SCHEMA",
        help="also check trace conformance against a protocol schema JSON "
        "(from 'repro lint --protocol --emit-schema DIR')",
    )
    p_audit.add_argument(
        "--certify",
        action="store_true",
        help="also check measured I/O against the statically derived "
        "symbolic bounds (exit 1 if any step exceeds them)",
    )
    p_audit.add_argument(
        "--certify-corpus",
        default=None,
        metavar="DIR",
        help="replay every fuzz-corpus case in DIR and certify the "
        "fault-free ones against the static bounds",
    )
    p_audit.add_argument(
        "--certify-bench",
        default=None,
        metavar="FILE",
        help="certify every audited run recorded in a BENCH_sort.json",
    )
    p_audit.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzing with the auditor as oracle",
        description="Mutates sort scenarios (workload, perf vector, PDM "
        "config, fault plan) from a novelty-scored corpus; every run is "
        "checked by the sanitizers, output verification and the paper-bounds "
        "auditor, and each distinct violation is shrunk to a minimal "
        "replayable JSONL case.  Exit 0 clean, 1 violations found.",
    )
    p_fuzz.add_argument("--seed", type=int, default=0, help="fuzz RNG seed")
    p_fuzz.add_argument(
        "--max-runs",
        type=int,
        default=None,
        metavar="N",
        help="stop after N mutated runs (deterministic mode; default 100 "
        "when no --time-budget is given)",
    )
    p_fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this much wall-clock time",
    )
    p_fuzz.add_argument(
        "--corpus-dir",
        default=None,
        metavar="DIR",
        help="load/save the corpus and write shrunk violation cases here",
    )
    p_fuzz.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-run one JSONL case file and check it still reproduces "
        "(exit 0 on match, 1 on mismatch)",
    )
    p_fuzz.add_argument(
        "--tighten-slack",
        type=float,
        default=None,
        metavar="X",
        help="audit with polyphase slack X instead of the calibrated "
        "default (1.0 = the ideal merge formula; used to plant violations)",
    )
    p_fuzz.add_argument(
        "--max-corpus", type=int, default=64, help="corpus size cap"
    )
    p_fuzz.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json: the full machine-readable report)",
    )
    p_fuzz.add_argument(
        "--kernel",
        choices=["event", "lockstep"],
        default="event",
        help="execution kernel every scenario runs under (oracle verdicts "
        "are kernel-independent; see tests/test_differential_kernel.py)",
    )

    p_prof = sub.add_parser(
        "profile",
        help="critical-path/blame profile of a saved run",
        description="Reconstructs the happens-before timeline of a JSONL "
        "event log written by 'repro sort --events' (ideally with "
        "--profile for full capture), extracts the critical path and the "
        "per-(step, node) blame decomposition, and optionally predicts "
        "elapsed time under hypothetical hardware changes without "
        "re-running.",
    )
    p_prof.add_argument("events_file", help="JSONL log from 'repro sort --events'")
    p_prof.add_argument(
        "--what-if",
        action="append",
        default=None,
        metavar="SPEC",
        help="predict elapsed under a change, e.g. 'perf=1,1,8,8', "
        "'disks=4', 'net=myrinet', 'net.latency=1e-3', 'block=512'; "
        "clauses combine with ';', flag repeats",
    )
    p_prof.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace JSON with the critical path "
        "highlighted on its own track",
    )
    p_prof.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )

    p_bench = sub.add_parser(
        "bench", help="benchmark-artifact tools (see 'repro bench report')"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_brep = bench_sub.add_parser(
        "report",
        help="regression report over the keyed BENCH_sort.json artifact",
        description="Reads the keyed run list (repro-bench-sort/2) and "
        "compares each configuration's elapsed time against its best "
        "recorded; regressions beyond --factor are flagged with the step "
        "that moved most and that step's dominant blame component. "
        "Exit 1 when any configuration regressed.",
    )
    p_brep.add_argument(
        "bench_file",
        nargs="?",
        default="BENCH_sort.json",
        help="keyed benchmark artifact (default: BENCH_sort.json)",
    )
    p_brep.add_argument(
        "--factor",
        type=float,
        default=1.2,
        help="flag runs slower than FACTOR x their best recorded (default 1.2)",
    )
    p_brep.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the JSON report here (CI artifact)",
    )
    p_brep.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )

    from repro.analysis.cli import add_lint_arguments

    p_lint = sub.add_parser(
        "lint",
        help="simulation-invariant static analysis (REP001..REP008)",
        description="AST linter enforcing the cost-model invariants; "
        "exit 0 clean, 1 new findings, 2 internal error.",
    )
    add_lint_arguments(p_lint)
    return parser


def _load_fault_plan(text: str):
    """``--fault-plan`` accepts inline JSON or a path to a JSON file."""
    from repro.faults.plan import FaultPlan

    if text.lstrip().startswith("{"):
        return FaultPlan.from_json(text)
    return FaultPlan.load(text)


def cmd_sort(args) -> int:
    import json

    from repro.cluster.machine import Cluster, heterogeneous_cluster
    from repro.cluster.network import FAST_ETHERNET, MYRINET
    from repro.core.external_psrs import PSRSConfig, sort_array
    from repro.core.theory import max_duplicate_count
    from repro.faults.plan import RetryPolicy
    from repro.metrics.report import fault_table
    from repro.pdm.filestore import FileStore
    from repro.workloads.generators import make_benchmark
    from repro.workloads.records import verify_sorted_permutation

    perf = args.perf
    n = perf.nearest_exact(args.n)
    bench = int(args.benchmark) if args.benchmark.isdigit() else args.benchmark
    data = make_benchmark(bench, n, seed=args.seed)
    link = FAST_ETHERNET if args.link == "ethernet" else MYRINET
    cluster = Cluster(
        heterogeneous_cluster(
            [float(v) for v in perf.values], memory_items=args.memory, link=link
        ),
        kernel=args.kernel,
    )
    if args.events or args.profile:
        cluster.bus.set_level("full")
    elif args.trace or args.audit:
        cluster.bus.set_level("io")
    store = FileStore(args.spill_dir) if args.spill_dir else None
    if store is not None:
        for node in cluster.nodes:
            node.disk.file_factory = store.create
    plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    retry = (
        RetryPolicy(max_attempts=args.retries, backoff=args.retry_backoff)
        if args.retries is not None
        else None
    )
    cfg = PSRSConfig(
        block_items=args.block,
        message_items=args.message,
        pivot_method=args.pivot_method,
        seed=args.seed,
    )
    res = sort_array(cluster, perf, data, cfg, faults=plan, retry=retry)
    # Profile before gathering: the event stream then ends exactly at the
    # final barrier, so the reconstructed elapsed matches res.elapsed.
    from repro.obs.profiler import RunProfile

    prof = RunProfile.from_cluster(cluster, block_items=args.block)
    verify_sorted_permutation(data, res.to_array())

    report = None
    if args.trace or args.events or args.audit:
        from repro.obs.audit import RunMeta, audit_run
        from repro.obs.exporters import write_chrome_trace, write_jsonl

        meta = RunMeta(
            n_items=res.n_items,
            perf=tuple(int(v) for v in perf.values),
            memory_items=args.memory,
            block_items=args.block,
            oversample=cfg.oversample,
            d_duplicates=max_duplicate_count(data),
            pivot_method=args.pivot_method,
        )
        if args.events:
            write_jsonl(
                args.events,
                cluster.bus.events,
                {**meta.to_dict(), "hw": prof.hw.to_dict()},
            )
        if args.trace:
            names = {node.rank: node.name for node in cluster.nodes}
            write_chrome_trace(
                args.trace,
                cluster.bus.events,
                names,
                critical=prof.critical.segments if args.profile else None,
            )
        if args.audit:
            report = audit_run(cluster.bus.events, meta)

    if args.format == "json":
        summary = {
            "command": "sort",
            "n_items": res.n_items,
            "perf": [int(v) for v in perf.values],
            "benchmark": str(args.benchmark),
            "pivot_method": args.pivot_method,
            "verified": True,
            "elapsed_seconds": res.elapsed,
            "s_max": res.s_max,
            "step_seconds": dict(res.step_times),
            # Wall-time analogue of the item-count skew s_max: per-step
            # max/mean of the nodes' recorded span lengths.
            "step_time_skew": {sb.step: sb.time_skew for sb in prof.blame.steps},
            "blame": prof.blame.to_dict(),
            "io": {
                "blocks_read": res.io.blocks_read,
                "blocks_written": res.io.blocks_written,
                "items_read": res.io.items_read,
                "items_written": res.io.items_written,
                "busy_seconds": res.io.busy_time,
                "labels": dict(res.io.labels),
            },
            "network": {
                "messages": res.network_messages,
                "bytes": res.network_bytes,
            },
            "degraded": res.faults.degraded,
            "faults": {
                "total": res.faults.total_faults,
                "retries": dict(res.faults.retries),
                "backoff_seconds": res.faults.backoff_time,
            },
        }
        if args.profile:
            summary["critical_path"] = prof.critical.to_dict()
        if report is not None:
            summary["audit"] = report.to_dict()
        print(json.dumps(summary, indent=2, sort_keys=False))
    else:
        print(f"sorted {res.n_items} items (verified) on perf={perf.values}")
        print(f"simulated time: {res.elapsed:.3f} s   S(max): {res.s_max:.4f}")
        for step, t in res.step_times.items():
            print(f"  {step:<18} {t:9.4f} s")
        if args.profile:
            print(_render_profile(prof))
        print(
            f"I/O blocks r/w: {res.io.blocks_read}/{res.io.blocks_written}   "
            f"network: {res.network_messages} msgs / {res.network_bytes} bytes"
        )
        if plan is not None or retry is not None:
            if res.faults.degraded:
                print(f"completed DEGRADED on survivors {res.active_ranks}")
            print(fault_table(res.faults).render())
        if report is not None:
            print(report.table().render())
    if report is not None:
        if res.faults.degraded:
            if args.format != "json":
                print("audit: degraded run — bounds not enforced")
            return 0
        return 0 if report.ok else 1
    return 0


def _render_certify_cases(cases, fmt: str) -> bool:
    """Print corpus/bench certification results; returns overall ok."""
    import json

    if fmt == "json":
        payload = [
            {
                "name": c.name,
                "ok": c.ok,
                "skipped": c.skipped,
                "report": c.report.to_dict() if c.report is not None else None,
            }
            for c in cases
        ]
        print(json.dumps(payload, indent=2))
    else:
        for c in cases:
            if c.report is None:
                print(f"{c.name}: skipped ({c.skipped})")
            else:
                verdict = "CERTIFIED" if c.report.ok else "FAIL"
                worst = max(
                    (r.ratio for r in c.report.rows if r.ratio is not None),
                    default=None,
                )
                ratio = f", worst ratio {worst:.3f}" if worst is not None else ""
                print(f"{c.name}: {verdict}{ratio}")
                if not c.report.ok:
                    print(c.report.table().render())
    return all(c.ok for c in cases)


def cmd_audit(args) -> int:
    import json

    from repro.obs.audit import RunMeta, audit_run
    from repro.obs.exporters import read_jsonl

    corpus_dir = getattr(args, "certify_corpus", None)
    bench_file = getattr(args, "certify_bench", None)
    if corpus_dir is not None or bench_file is not None:
        from repro.analysis.cost import certify_bench, certify_corpus

        ok = True
        if corpus_dir is not None:
            ok = _render_certify_cases(
                certify_corpus(corpus_dir), args.format
            ) and ok
        if bench_file is not None:
            ok = _render_certify_cases(
                certify_bench(bench_file), args.format
            ) and ok
        if args.events_file is None:
            return 0 if ok else 1
        # fall through: also audit/certify the given log
        if not ok:
            return 1

    if args.events_file is None:
        print(
            "error: events_file is required unless --certify-corpus or "
            "--certify-bench is given",
            file=sys.stderr,
        )
        return 2
    meta_dict, events = read_jsonl(args.events_file)
    if meta_dict is None:
        print(
            f"error: {args.events_file} has no run_meta line "
            "(write it with 'repro sort --events PATH')",
            file=sys.stderr,
        )
        return 2
    meta = RunMeta.from_dict(meta_dict)
    report = audit_run(events, meta)
    conformance = None
    if getattr(args, "protocol", None) is not None:
        from repro.obs.conformance import check_conformance

        try:
            with open(args.protocol, encoding="utf-8") as fh:
                schema = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read schema {args.protocol}: {exc}",
                  file=sys.stderr)
            return 2
        conformance = check_conformance(schema, events)
    certification = None
    if getattr(args, "certify", False):
        from repro.analysis.cost import certify_events

        certification = certify_events(events, meta)
    if args.format == "json":
        payload = report.to_dict()
        if conformance is not None:
            payload["protocol"] = conformance.to_dict()
        if certification is not None:
            payload["certify"] = certification.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(report.table().render())
        if conformance is not None:
            print(conformance.table().render())
        if certification is not None:
            print(certification.table().render())
    ok = (
        report.ok
        and (conformance is None or conformance.ok)
        and (certification is None or certification.ok)
    )
    return 0 if ok else 1


def _render_profile(prof, whatifs=()) -> str:
    """Text rendering of a RunProfile (used by sort --profile and profile)."""
    from repro.metrics.report import Table

    cp = prof.critical
    lines = [
        f"critical path: {cp.total:.3f} s over {len(cp.segments)} segments "
        f"({'complete' if cp.complete else 'INCOMPLETE'}; "
        f"run elapsed {prof.elapsed:.3f} s)",
        "  by component: "
        + "  ".join(f"{c}={v:.3f}s" for c, v in sorted(cp.by_component.items()) if v > 0),
        f"straggler index: {prof.blame.straggler_index:.3f} "
        f"(max/mean productive time; paper's item bound: "
        f"{prof.blame.straggler_reference:g}x)",
        "run totals (all nodes): "
        + "  ".join(
            f"{c}={prof.blame.totals.get(c, 0.0):.3f}s"
            for c in ("compute", "disk", "net", "barrier", "other")
        ),
    ]
    if not prof.timeline.has_compute:
        lines.append(
            "note: log lacks compute events (capture level below 'full'); "
            "compute time reports as 'other'"
        )
    blame = Table(
        "per-step blame",
        ["step", "span(max)", "skew", "dominant", "compute", "disk", "net", "barrier", "other"],
    )
    for sb in prof.blame.steps:
        totals = sb.totals()
        blame.add_row(
            sb.step,
            sb.span_max,
            sb.time_skew,
            sb.dominant(),
            totals["compute"],
            totals["disk"],
            totals["net"],
            totals["barrier"],
            totals["other"],
        )
    lines.append(blame.render())
    if whatifs:
        wi = Table(
            "what-if predictions",
            ["scenario", "predicted (s)", "recorded (s)", "speedup", "fidelity"],
        )
        for w in whatifs:
            wi.add_row(
                w.scenario,
                w.predicted_elapsed,
                w.recorded_elapsed,
                f"{w.speedup:.2f}x",
                "approx" if w.approximate else "exact-seq",
            )
        lines.append(wi.render())
    return "\n".join(lines)


def cmd_profile(args) -> int:
    import json

    from repro.obs.exporters import read_jsonl, write_chrome_trace
    from repro.obs.profiler import WhatIfError, profile_from_jsonl_meta

    meta_dict, events = read_jsonl(args.events_file)
    if not events:
        print(f"error: {args.events_file} contains no events", file=sys.stderr)
        return 2
    prof = profile_from_jsonl_meta(meta_dict, events)
    if meta_dict is None or "hw" not in meta_dict:
        print(
            "warning: log has no 'hw' metadata (written by older versions); "
            "what-ifs assume the stock hardware model",
            file=sys.stderr,
        )
    try:
        whatifs = [prof.what_if(spec) for spec in (args.what_if or [])]
    except WhatIfError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        write_chrome_trace(
            args.trace, events, critical=prof.critical.segments
        )
    if args.format == "json":
        payload = prof.to_dict()
        payload["command"] = "profile"
        payload["events_file"] = args.events_file
        if whatifs:
            payload["what_if"] = [w.to_dict() for w in whatifs]
        print(json.dumps(payload, indent=2))
    else:
        print(_render_profile(prof, whatifs))
    return 0


def cmd_bench(args) -> int:
    import json

    from repro.metrics.bench import BenchFormatError, load_bench, report_rows

    # Only one sub-action today; argparse enforces bench_command.
    try:
        doc = load_bench(args.bench_file)
    except BenchFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = report_rows(doc, factor=args.factor)
    regressions = [r for r in rows if r["regressed"]]
    payload = {
        "command": "bench-report",
        "bench_file": args.bench_file,
        "factor": args.factor,
        "n_runs": len(rows),
        "n_regressions": len(regressions),
        "runs": rows,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        from repro.metrics.report import Table

        table = Table(
            f"bench report ({args.bench_file}, factor {args.factor:g}x)",
            ["key", "elapsed (s)", "best (s)", "ratio", "verdict", "blamed step"],
        )
        for r in rows:
            blamed = (
                f"{r['blamed_step']} [{r['blamed_component']}]"
                if r["regressed"] and r["blamed_step"]
                else ""
            )
            table.add_row(
                r["key"],
                r["elapsed_seconds"],
                r["best_elapsed_seconds"],
                f"{r['ratio']:.2f}",
                "REGRESSED" if r["regressed"] else "ok",
                blamed,
            )
        print(table.render())
        if regressions:
            print(
                f"{len(regressions)} configuration(s) regressed beyond "
                f"{args.factor:g}x their best recorded time"
            )
    return 1 if regressions else 0


def cmd_calibrate(args) -> int:
    from repro.cluster.machine import paper_cluster
    from repro.core.calibration import calibrate

    spec = paper_cluster(memory_items=args.memory)
    cal = calibrate(spec, args.n, block_items=args.block)
    for ns, t in zip(spec.nodes, cal.times):
        print(f"{ns.name:<12} {t:10.3f} s")
    print(f"perf vector: {cal.perf.values}")
    return 0


def cmd_table2(args) -> int:
    from repro.cluster.machine import paper_cluster
    from repro.core.calibration import sequential_sort_table
    from repro.metrics.report import Table

    sizes = [int(x) for x in args.sizes.split(",")]
    rows = sequential_sort_table(
        paper_cluster(memory_items=args.memory),
        sizes=sizes,
        repeats=2,
        block_items=args.block,
    )
    table = Table("Table 2 (scaled)", ["Node", "Input size", "Time (s)", "Dev"])
    last = None
    for r in rows:
        if r.node != last:
            table.add_section(r.node)
            last = r.node
        table.add_row("", r.n_items, r.stats.mean, r.stats.std)
    print(table.render())
    return 0


def cmd_table3(args) -> int:
    from repro.cluster.machine import Cluster, paper_cluster
    from repro.core.external_psrs import PSRSConfig, sort_array
    from repro.core.perf import PerfVector
    from repro.metrics.report import Table
    from repro.workloads.generators import make_benchmark

    table = Table("Table 3 (scaled)", ["perf", "Exe Time (s)", "S(max)"])
    times = {}
    for vals in ([1, 1, 1, 1], [4, 4, 1, 1]):
        perf = PerfVector(vals)
        n = perf.nearest_exact(args.n)
        data = make_benchmark(0, n, seed=0)
        cluster = Cluster(paper_cluster(memory_items=args.memory))
        res = sort_array(
            cluster, perf, data, PSRSConfig(block_items=args.block, message_items=8192)
        )
        times[tuple(vals)] = res.elapsed
        table.add_row(str(vals), res.elapsed, res.s_max)
    print(table.render())
    print(
        f"homogeneous/hetero ratio: "
        f"{times[(1, 1, 1, 1)] / times[(4, 4, 1, 1)]:.2f}x (paper: 1.96x)"
    )
    return 0


def cmd_sweep(args) -> int:
    from repro.cluster.machine import Cluster, paper_cluster
    from repro.core.external_psrs import PSRSConfig, sort_array
    from repro.core.perf import PerfVector
    from repro.metrics.report import Table
    from repro.workloads.generators import make_benchmark

    perf = PerfVector([1, 1, 1, 1])
    data = make_benchmark(0, args.n, seed=0)
    table = Table("message-size sweep", ["message (ints)", "Exe Time (s)"])
    for msg in [int(x) for x in args.sizes.split(",")]:
        cluster = Cluster(paper_cluster(loaded=False, memory_items=args.memory))
        res = sort_array(
            cluster, perf, data, PSRSConfig(block_items=args.block, message_items=msg)
        )
        table.add_row(msg, res.elapsed)
    print(table.render())
    return 0


def cmd_fuzz(args) -> int:
    import json

    from repro.fuzz import FuzzConfig, fuzz, replay_case

    if args.replay is not None:
        result = replay_case(args.replay, kernel=args.kernel)
        if args.format == "json":
            print(
                json.dumps(
                    {
                        "command": "fuzz-replay",
                        "case": args.replay,
                        "scenario": result.case.scenario.to_dict(),
                        "expected": result.case.expect_status,
                        "status": result.outcome.status,
                        "matched": result.matched,
                        "reason": result.reason,
                    },
                    indent=2,
                )
            )
        else:
            verdict = "reproduced" if result.matched else "MISMATCH"
            print(f"{verdict}: {result.reason}")
            if result.case.note:
                print(f"note: {result.case.note}")
        return 0 if result.matched else 1

    config = FuzzConfig(
        seed=args.seed,
        max_runs=(
            args.max_runs
            if args.max_runs is not None
            else (None if args.time_budget is not None else 100)
        ),
        time_budget=args.time_budget,
        corpus_dir=args.corpus_dir,
        max_corpus=args.max_corpus,
        tighten_slack=args.tighten_slack,
        kernel=args.kernel,
    )
    log = (lambda msg: print(msg, file=sys.stderr)) if args.format == "text" else None
    report = fuzz(config, log=log)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        statuses = ", ".join(f"{k}={v}" for k, v in sorted(report.statuses.items()))
        print(
            f"fuzz: {report.runs} runs ({statuses}); corpus "
            f"{len(report.corpus_fingerprints)} scenarios, "
            f"{report.coverage_lines} lines, {report.signatures} signatures"
        )
        for case in report.violations:
            print(f"violation [{case.violation.kind}] {case.violation.detail}")
            print(f"  minimal: {case.shrunk.to_json()}")
            if case.path:
                print(f"  case file: {case.path}")
    return 0 if report.ok else 1


def cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def cmd_workloads(_args) -> int:
    from repro.workloads.generators import BENCHMARKS

    for bid, spec in BENCHMARKS.items():
        print(f"{bid}  {spec.name:<14} {spec.description}")
    return 0


_COMMANDS = {
    "sort": cmd_sort,
    "calibrate": cmd_calibrate,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "sweep": cmd_sweep,
    "workloads": cmd_workloads,
    "lint": cmd_lint,
    "audit": cmd_audit,
    "fuzz": cmd_fuzz,
    "profile": cmd_profile,
    "bench": cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(threshold=16)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
