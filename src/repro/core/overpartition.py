"""Sorting by overpartitioning (Li & Sevcik), heterogeneous variant (§3.3).

The comparator the paper weighs regular sampling against.  Key ideas:

* skip the initial local sort; pick ``p*s - 1`` pivots from a *random*
  sample of the unsorted data (s = overpartitioning factor),
* split the input into ``p*s`` buckets — many more than processors —
  and assign whole buckets to processors so the totals are as even as
  possible (here: perf-proportional capacities, largest-bucket-first
  greedy),
* each processor sorts its buckets; the global order is the bucket
  order, so the output is the concatenation of sorted buckets.

Li & Sevcik report sublist expansions around 1.3 for large p even with
large s — the paper's stated reason to prefer regular sampling (a few
percent).  The sampling ablation bench reproduces exactly this contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.machine import Cluster
from repro.core.incore import (
    concat_for_verification,
    concat_in_memory,
    sort_in_memory,
)
from repro.core.perf import PerfVector


@dataclass
class OverpartitionResult:
    """Outputs plus the load-balance metrics of an overpartitioned sort."""

    outputs: list[np.ndarray]  # per node, concatenation of its sorted buckets
    bucket_owner: list[int]  # owner node of each of the p*s buckets
    bucket_sizes: list[int]
    perf: PerfVector
    n_items: int
    elapsed: float
    received_sizes: list[int]
    optimal_sizes: list[float]
    s: int

    @property
    def expansions(self) -> list[float]:
        return [
            r / o if o > 0 else 1.0
            for r, o in zip(self.received_sizes, self.optimal_sizes)
        ]

    @property
    def s_max(self) -> float:
        return max(self.expansions)

    def to_array(self) -> np.ndarray:
        """Global sorted output: buckets in order, each sorted by its owner."""
        return concat_for_verification(self._bucket_arrays)


def assign_buckets(
    bucket_sizes: Sequence[int], perf: PerfVector
) -> list[int]:
    """Greedy largest-first assignment of buckets to perf-weighted nodes.

    Each node has capacity proportional to perf[i]; buckets are placed,
    biggest first, on the node with the largest remaining *relative*
    capacity (remaining / perf) — LPT scheduling on uniform-speed
    machines generalised to the heterogeneous case.
    """
    total = sum(bucket_sizes)
    remaining = [perf.optimal_share(total, i) for i in range(perf.p)]
    owner = [0] * len(bucket_sizes)
    order = sorted(range(len(bucket_sizes)), key=lambda b: -bucket_sizes[b])
    for b in order:
        i = max(range(perf.p), key=lambda j: remaining[j] / perf[j])
        owner[b] = i
        remaining[i] -= bucket_sizes[b]
    return owner


def sort_overpartitioned(
    cluster: Cluster,
    perf: PerfVector,
    portions: Sequence[np.ndarray],
    s: int = 4,
    oversample: int = 2,
    seed: int = 0,
) -> OverpartitionResult:
    """Run the heterogeneous overpartitioning sort over per-node arrays."""
    p = cluster.p
    if perf.p != p or len(portions) != p:
        raise ValueError("perf/portions must match the cluster size")
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    n_items = sum(a.size for a in portions)
    n_buckets = p * s
    rng = np.random.default_rng(seed)

    # Phase 1: random sample (no local sort!) -> pivots on the root.
    with cluster.step("1:sample-pivots"):
        samples = []
        for node, arr in zip(cluster.nodes, portions):
            arr = np.asarray(arr)
            want = min(arr.size, max(1, oversample * s * perf[node.rank] * max(1, p - 1)))
            if arr.size:
                idx = rng.integers(0, arr.size, size=want)
                node.compute(float(want))
                samples.append(arr[idx])
            else:
                samples.append(arr[:0])
        gathered = cluster.comm.gather(samples, root=0)
        root = cluster.nodes[0]
        cand = sort_in_memory(concat_in_memory(gathered, root), root)
        if cand.size == 0:
            raise ValueError("cannot overpartition an empty input")
        ranks = (np.arange(1, n_buckets) * cand.size) // n_buckets
        pivots = cand[np.clip(ranks, 0, cand.size - 1)]
        pivots = cluster.comm.bcast(pivots, root=0)[0]

    # Phase 2: bucketize the (unsorted) local data.
    with cluster.step("2:bucketize"):
        local_buckets: list[list[np.ndarray]] = []
        for node, arr in zip(cluster.nodes, portions):
            arr = np.asarray(arr)
            which = np.searchsorted(pivots, arr, side="right")
            node.compute(arr.size * float(np.log2(max(2, n_buckets))))
            local_buckets.append([arr[which == b] for b in range(n_buckets)])

    # Phase 3: global bucket sizes (an allreduce of p*s counts) + assignment.
    with cluster.step("3:assign"):
        counts = [
            np.asarray([lb[b].size for b in range(n_buckets)], dtype=np.int64)
            for lb in local_buckets
        ]
        gathered_counts = cluster.comm.gather(counts, root=0)
        bucket_sizes = list(np.sum(gathered_counts, axis=0))
        owner = assign_buckets([int(x) for x in bucket_sizes], perf)
        owner_arr = cluster.comm.bcast(np.asarray(owner, dtype=np.int64), root=0)[0]
        owner = [int(x) for x in owner_arr]

    # Phase 4: exchange bucket pieces to their owners.
    with cluster.step("4:exchange"):
        matrix: list[list[np.ndarray | None]] = [
            [None] * p for _ in range(p)
        ]
        for i in range(p):
            for j in range(p):
                pieces = [
                    local_buckets[i][b] for b in range(n_buckets) if owner[b] == j
                ]
                pieces = [q for q in pieces if q.size]
                if pieces:
                    matrix[i][j] = concat_in_memory(pieces, cluster.nodes[i])
        recv = cluster.comm.alltoallv(matrix)  # repro: noqa REP104(charge-only exchange; phase 5 reassembles identical content locally - see data-plane note below)

    # Phase 5: each node sorts its buckets (bucket-local sorts).
    # Data plane note: recv[j][i] holds exactly the concatenation of node
    # i's pieces of node j's buckets; we reassemble from local_buckets
    # (identical content) to keep per-bucket boundaries without sending
    # p*s separate messages — the *charged* communication in phase 4 is
    # the same either way.
    bucket_arrays: list[np.ndarray] = [None] * n_buckets  # type: ignore[list-item]
    received_sizes = [0] * p
    with cluster.step("5:sort-buckets"):
        for j, node in enumerate(cluster.nodes):
            for b in range(n_buckets):
                if owner[b] != j:
                    continue
                pieces = [
                    local_buckets[i][b] for i in range(p) if local_buckets[i][b].size
                ]
                if pieces:
                    data = sort_in_memory(concat_in_memory(pieces, node), node)
                else:
                    data = np.empty(0, dtype=np.asarray(portions[0]).dtype)
                bucket_arrays[b] = data
                received_sizes[j] += data.size

    elapsed = cluster.barrier()
    outputs = [
        concat_in_memory(
            [bucket_arrays[b] for b in range(n_buckets) if owner[b] == j]
            or [np.empty(0, dtype=np.asarray(portions[0]).dtype)],
            cluster.nodes[j],
        )
        for j in range(p)
    ]
    result = OverpartitionResult(
        outputs=outputs,
        bucket_owner=owner,
        bucket_sizes=[int(x) for x in bucket_sizes],
        perf=perf,
        n_items=n_items,
        elapsed=elapsed,
        received_sizes=received_sizes,
        optimal_sizes=[perf.optimal_share(n_items, i) for i in range(p)],
        s=s,
    )
    result._bucket_arrays = bucket_arrays  # type: ignore[attr-defined]
    return result


def sort_array_overpartitioned(
    cluster: Cluster,
    perf: PerfVector,
    data: np.ndarray,
    s: int = 4,
    oversample: int = 2,
    seed: int = 0,
) -> OverpartitionResult:
    """Distribute ``data`` perf-proportionally (untimed) and sort."""
    portions = perf.portions(data.size)
    arrays = []
    start = 0
    for l_i in portions:
        arrays.append(np.asarray(data[start : start + l_i]))
        start += l_i
    cluster.reset()
    return sort_overpartitioned(cluster, perf, arrays, s=s, oversample=oversample, seed=seed)
