"""The performance vector and the lcm input-size condition (paper Eq. 2).

The heterogeneity of the cluster is coded in an integer array ``perf``
of relative node performances (higher = faster).  The paper requires the
input size to satisfy

    n = k * perf[0] * lcm(perf) + ... + k * perf[p-1] * lcm(perf)
      = k * lcm(perf) * sum(perf)                                (Eq. 2)

for some integer ``k >= 1``, so every node's portion
``l_i = n * perf[i] / sum(perf)`` is integral *and* the regular-sampling
interval ``n / (p * sum(perf))``... divides every portion evenly — the
property that makes the pivot-selection offsets identical on all nodes
("the value of i is the same on all processors due to Equation 2").

For sizes that do not satisfy Eq. 2 the paper points at standard
load-balancing techniques; :meth:`PerfVector.portions` implements
largest-remainder rounding, and :meth:`PerfVector.nearest_admissible`
finds the closest Eq.-2 size (how the paper turns 2^24 into 16777220
for the {1,1,4,4} machine).
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Iterator, Sequence


class PerfVector:
    """Integer relative performances of the p nodes.

    ``PerfVector([1, 1, 4, 4])`` is the paper's loaded-cluster machine;
    ``PerfVector([1]*p)`` is the homogeneous configuration.
    """

    def __init__(self, values: Sequence[int]) -> None:
        vals = list(values)
        if not vals:
            raise ValueError("perf vector cannot be empty")
        for v in vals:
            if not isinstance(v, (int,)) or isinstance(v, bool):
                raise TypeError(f"perf values must be ints, got {v!r}")
            if v < 1:
                raise ValueError(f"perf values must be >= 1, got {v}")
        self.values = vals

    @property
    def p(self) -> int:
        return len(self.values)

    @property
    def total(self) -> int:
        return sum(self.values)

    @property
    def lcm(self) -> int:
        return reduce(math.lcm, self.values)

    @property
    def is_homogeneous(self) -> bool:
        return len(set(self.values)) == 1

    def __getitem__(self, i: int) -> int:
        return self.values[i]

    def __len__(self) -> int:
        return self.p

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PerfVector) and self.values == other.values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PerfVector({self.values})"

    # -- Eq. 2 -----------------------------------------------------------

    @property
    def granularity(self) -> int:
        """The Eq.-2 quantum ``lcm(perf) * sum(perf)``: admissible sizes
        are exactly its positive multiples."""
        return self.lcm * self.total

    def is_admissible(self, n: int) -> bool:
        """Does ``n`` satisfy Eq. 2 for some integer k >= 1?"""
        return n > 0 and n % self.granularity == 0

    def admissible_size(self, k: int) -> int:
        """The Eq.-2 size for a given k."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return k * self.granularity

    def nearest_admissible(self, n: int) -> int:
        """Smallest strictly Eq.-2-admissible size >= n."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        g = self.granularity
        return -(-n // g) * g

    @property
    def portion_granularity(self) -> int:
        """Smallest g such that every multiple of g has integral
        performance-proportional portions ``n * perf[i] / total``.

        This is the condition the paper actually applies when it grows
        2^24 to 16777220 for the {1,1,4,4} machine ("since the least
        common multiple of {1,1,4,4} is 4, we are able to choose the
        size of 16777220"): 16777220 is the smallest size >= 2^24 whose
        portions (1677722 / 6710888) are whole numbers.
        """
        g = 1
        for v in self.values:
            g = math.lcm(g, self.total // math.gcd(self.total, v))
        return g

    def nearest_exact(self, n: int) -> int:
        """Smallest size >= n with integral portions (paper: 2^24 -> 16777220)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        g = self.portion_granularity
        return -(-n // g) * g

    # -- data distribution -------------------------------------------------

    def exact_portions(self, n: int) -> list[int]:
        """Per-node portions for an Eq.-2 admissible size (exact)."""
        if not self.is_admissible(n):
            raise ValueError(
                f"n={n} does not satisfy Eq. 2 for perf={self.values} "
                f"(granularity {self.granularity}); use portions() or "
                f"nearest_admissible()"
            )
        unit = n // self.total
        return [unit * v for v in self.values]

    def portions(self, n: int) -> list[int]:
        """Per-node portions proportional to perf, for any ``n >= 0``.

        Uses largest-remainder rounding, so ``sum == n`` always and each
        portion is within 1 of the exact proportional share.  For
        admissible sizes this equals :meth:`exact_portions`.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        shares = [n * v / self.total for v in self.values]
        base = [int(s) for s in shares]
        rem = n - sum(base)
        order = sorted(
            range(self.p), key=lambda i: (shares[i] - base[i], self.values[i]), reverse=True
        )
        for i in order[:rem]:
            base[i] += 1
        return base

    def optimal_share(self, n: int, i: int) -> float:
        """The ideal (real-valued) share of node i: ``n * perf[i] / total``."""
        if not (0 <= i < self.p):
            raise IndexError(f"node {i} out of range 0..{self.p - 1}")
        return n * self.values[i] / self.total

    def subset(self, indices: Sequence[int]) -> "PerfVector":
        """The perf vector of a node subset (degraded-mode rescaling).

        ``perf.subset(survivors)`` re-bases the performance-proportional
        shares on the surviving nodes, which is what the 2x load-balance
        bound is re-checked against after a node death.
        """
        idx = list(indices)
        if not idx:
            raise ValueError("subset cannot be empty")
        for i in idx:
            if not (0 <= i < self.p):
                raise IndexError(f"node {i} out of range 0..{self.p - 1}")
        return PerfVector([self.values[i] for i in idx])

    # -- derivation ----------------------------------------------------------

    @staticmethod
    def from_speeds(speeds: Sequence[float], max_value: int = 64) -> "PerfVector":
        """Round measured relative speeds to a small-integer perf vector.

        Normalises by the slowest node and rounds to the nearest integer
        (the paper's protocol: "the ratios to the slower execution time
        allow us to fill the perf array") — e.g. measured ratios
        {4.06, 4.03, 1.0, 0.97} become {4, 4, 1, 1}.
        """
        sp = [float(s) for s in speeds]
        if not sp:
            raise ValueError("speeds cannot be empty")
        if any(s <= 0 for s in sp):
            raise ValueError(f"speeds must be > 0, got {sp}")
        slowest = min(sp)
        vals = [max(1, min(max_value, round(s / slowest))) for s in sp]
        return PerfVector(vals)
