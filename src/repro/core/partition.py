"""Binary partitioning of a sorted local portion by the pivots (step 3).

The pivots fit in core, so each node finds the p cut offsets of its
*sorted* file by binary search (reading O(p * log(n_blocks)) blocks),
then — in the paper's formulation — writes the p sublists out as files,
costing at most ``2 * Q / B`` block I/Os (read + write of Q items).

Because a sublist of a sorted file is just an item range, the
``materialize=False`` mode skips the copy and hands
:class:`~repro.extsort.multiway.RunRef` ranges straight to the
redistribution step — an ablation on the paper's design (it trades one
full read+write pass for seekier reads during redistribution).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.extsort.multiway import RunCursor, RunRef
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import SimDisk
from repro.pdm.memory import MemoryManager


def lower_bound_offset(
    sorted_file: BlockFile, pivot: "int | np.generic", mem: MemoryManager
) -> int:
    """Item offset of the first element ``> pivot`` (upper-bound cut).

    Binary search at block granularity: O(log n_blocks) charged block
    reads, then a searchsorted within the final block.  Using the
    upper-bound (``side='right'``) cut sends keys equal to a pivot to the
    lower partition, matching the PSRS duplicates analysis (a heavy
    duplicate inflates one partition by at most d).
    """
    nb = sorted_file.n_blocks
    if nb == 0:
        return 0
    lo, hi = 0, nb - 1  # invariant: answer block in [lo, hi+1)
    # Find the first block whose last item is > pivot.
    target = -1
    while lo <= hi:
        mid = (lo + hi) // 2
        with mem.reserve(sorted_file.inspect_block(mid).size):
            blk = sorted_file.read_block(mid)
            if blk[-1] > pivot:
                target = mid
                hi = mid - 1
            else:
                lo = mid + 1
    if target == -1:
        return sorted_file.n_items  # everything <= pivot
    with mem.reserve(sorted_file.inspect_block(target).size):
        blk = sorted_file.read_block(target)
        within = int(np.searchsorted(blk, pivot, side="right"))
    return target * sorted_file.B + within


def _joint_lower_bounds(
    sorted_file: BlockFile,
    piv: np.ndarray,
    mem: MemoryManager,
    out: list[int],
    plo: int,
    phi: int,
    blo: int,
    bhi: int,
) -> None:
    """Resolve ``out[plo:phi]`` over the block range ``[blo, bhi]``.

    One probe of the midpoint block answers *every* pivot in the range at
    once: pivots below the block's last key descend left (recording the
    in-block upper-bound cut as their current best answer, overwritten by
    any smaller block found later), the rest descend right.  Each block
    is read at most once per descent tree, so duplicate or clustered
    pivots share probes — never more reads than p-1 independent binary
    searches.  Iterative with an explicit work stack; traversal order is
    free because an entry only ever overwrites answers recorded by its
    own ancestors, which are popped before it.
    """
    work = [(plo, phi, blo, bhi)]
    while work:
        plo, phi, blo, bhi = work.pop()
        if plo >= phi or blo > bhi:
            continue
        mid = (blo + bhi) // 2
        with mem.reserve(sorted_file.inspect_block(mid).size):
            blk = sorted_file.read_block(mid)
            # Pivots strictly below the block's last key have their
            # target (first block with last > pivot) at or before ``mid``.
            k = plo + int(np.searchsorted(piv[plo:phi], blk[-1], side="left"))
            if k > plo:
                within = np.searchsorted(blk, piv[plo:k], side="right")
                base = mid * sorted_file.B
                for idx, w in zip(range(plo, k), within):
                    out[idx] = base + int(w)
        work.append((plo, k, blo, mid - 1))
        work.append((k, phi, mid + 1, bhi))


def partition_offsets(
    sorted_file: BlockFile, pivots: Sequence, mem: MemoryManager
) -> list[int]:
    """The p+1 cut offsets [0, c_1, ..., c_{p-1}, n] for p-1 pivots.

    Pivots must be non-decreasing (they come from a sorted sample).  All
    p-1 cuts are found by one joint memoized descent over the block tree
    (:func:`_joint_lower_bounds`); each cut equals what
    :func:`lower_bound_offset` would return for that pivot alone, with
    strictly fewer block reads whenever pivots share search paths.
    """
    piv = list(pivots)
    for a, b in zip(piv, piv[1:]):
        if a > b:
            raise ValueError("pivots must be non-decreasing")
    n = sorted_file.n_items
    out = [n] * len(piv)  # "no block has last > pivot" => everything <= pivot
    if piv and sorted_file.n_blocks:
        _joint_lower_bounds(
            sorted_file, np.asarray(piv), mem, out, 0, len(piv), 0,
            sorted_file.n_blocks - 1,
        )
    cuts = [0, *out, n]
    for a, b in zip(cuts, cuts[1:]):
        assert a <= b, "cut offsets must be monotone"
    return cuts


def partition_refs(sorted_file: BlockFile, cuts: Sequence[int]) -> list[RunRef]:
    """Zero-copy partitions: item ranges of the sorted file."""
    return [
        RunRef(sorted_file, cuts[j], cuts[j + 1]) for j in range(len(cuts) - 1)
    ]


def materialize_partitions(
    sorted_file: BlockFile,
    cuts: Sequence[int],
    disk: SimDisk,
    mem: MemoryManager,
    name_prefix: str = "part",
) -> list[BlockFile]:
    """Copy each partition range into its own file (paper-faithful step 3).

    Costs one streaming read + write of the whole portion
    (``<= 2 * Q / B`` block I/Os, the paper's bound).
    """
    out: list[BlockFile] = []
    for j in range(len(cuts) - 1):
        f = disk.new_file(
            sorted_file.B,
            sorted_file.dtype,
            name=disk.next_file_name(f"{name_prefix}{j}_"),
        )
        ref = RunRef(sorted_file, cuts[j], cuts[j + 1])
        cur = RunCursor(ref, mem)
        try:
            with BlockWriter(f, mem) as w:
                while not cur.exhausted:
                    w.write(cur.take_upto(sorted_file.B))
        finally:
            cur.drop()
        out.append(f)
    return out


def partition_array(
    sorted_data: np.ndarray, pivots: Sequence
) -> list[np.ndarray]:
    """In-core analogue (used by the in-core PSRS baseline)."""
    piv = np.asarray(list(pivots))
    cuts = np.concatenate(  # repro: noqa REP006(O(p) cut-index vector, metadata not record data)
        ([0], np.searchsorted(sorted_data, piv, side="right"), [sorted_data.size])
    )
    return [sorted_data[cuts[j] : cuts[j + 1]] for j in range(len(cuts) - 1)]

