"""In-core heterogeneous PSRS (paper §3 — the foundation this work extends).

The same four canonical phases as the external algorithm, but portions
live in node RAM: local numpy sort, hetero-aware regular sampling,
partitioning by searchsorted, one alltoallv, and an in-core p-way merge.
Serves as (a) the reference the external algorithm is validated against,
(b) the baseline for the in-core-vs-out-of-core cost comparisons, and
(c) the counterpart of the author's earlier HiPC'2000 algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.machine import Cluster
from repro.core.incore import (
    concat_for_verification,
    concat_in_memory,
    merge_in_memory,
    sort_in_memory,
)
from repro.core.partition import partition_array
from repro.core.perf import PerfVector
from repro.core.sampling import (
    regular_sample_positions,
    sample_count,
    sample_interval,
    select_pivots,
)


@dataclass
class InCorePSRSResult:
    """Sorted per-node arrays plus the same metrics as the external run."""

    outputs: list[np.ndarray]
    perf: PerfVector
    n_items: int
    elapsed: float
    step_times: dict[str, float]
    pivots: np.ndarray
    received_sizes: list[int]
    optimal_sizes: list[float]

    @property
    def expansions(self) -> list[float]:
        return [
            r / o if o > 0 else 1.0
            for r, o in zip(self.received_sizes, self.optimal_sizes)
        ]

    @property
    def s_max(self) -> float:
        return max(self.expansions)

    def to_array(self) -> np.ndarray:
        return concat_for_verification(self.outputs)


def sort_in_core(
    cluster: Cluster,
    perf: PerfVector,
    portions: Sequence[np.ndarray],
    oversample: int = 4,
) -> InCorePSRSResult:
    """Run heterogeneous in-core PSRS over per-node arrays."""
    p = cluster.p
    if perf.p != p or len(portions) != p:
        raise ValueError(
            f"perf ({perf.p}) and portions ({len(portions)}) must match the "
            f"cluster size ({p})"
        )
    n_items = sum(a.size for a in portions)

    # Phase 1: local sort.
    local_sorted: list[np.ndarray] = []
    with cluster.step("1:local-sort"):
        for node, arr in zip(cluster.nodes, portions):
            local_sorted.append(sort_in_memory(np.asarray(arr), node))

    # Phase 2: sampling + pivots on the designated node.
    with cluster.step("2:pivots"):
        samples = []
        for node, s in zip(cluster.nodes, local_sorted):
            if p == 1:
                samples.append(np.empty(0, dtype=s.dtype))
                continue
            off = sample_interval(s.size, perf[node.rank], p, oversample)
            pos = regular_sample_positions(
                s.size, off, sample_count(perf[node.rank], p, oversample)
            )
            node.compute(float(pos.size))
            samples.append(s[pos])
        if p > 1:
            gathered = cluster.comm.gather(samples, root=0)
            pivots = select_pivots(
                concat_in_memory(gathered, cluster.nodes[0]),
                perf,
                compute=cluster.nodes[0].compute,
                oversample=oversample,
            )
            pivots = cluster.comm.bcast(pivots, root=0)[0]
        else:
            pivots = np.empty(0, dtype=local_sorted[0].dtype)

    # Phase 3: partition by binary search (in core).
    with cluster.step("3:partition"):
        parts: list[list[np.ndarray]] = []
        for node, s in zip(cluster.nodes, local_sorted):
            node.compute(len(pivots) * float(np.log2(max(2, s.size))))
            parts.append(partition_array(s, pivots))

    # Phase 4: one all-to-all exchange.
    with cluster.step("4:exchange"):
        matrix = [[parts[i][j] for j in range(p)] for i in range(p)]
        recv = cluster.comm.alltoallv(matrix)

    # Phase 5: p-way merge of the received sorted pieces.
    outputs: list[np.ndarray] = []
    received_sizes: list[int] = []
    with cluster.step("5:merge"):
        for j, node in enumerate(cluster.nodes):
            pieces = [recv[j][i] for i in range(p) if recv[j][i] is not None]
            pieces = [q for q in pieces if q.size]
            if pieces:
                merged = merge_in_memory(pieces, node)
            else:
                merged = np.empty(0, dtype=local_sorted[j].dtype)
            outputs.append(merged)
            received_sizes.append(int(merged.size))

    elapsed = cluster.barrier()
    return InCorePSRSResult(
        outputs=outputs,
        perf=perf,
        n_items=n_items,
        elapsed=elapsed,
        step_times=cluster.trace.summary(),
        pivots=np.asarray(pivots),
        received_sizes=received_sizes,
        optimal_sizes=[perf.optimal_share(n_items, i) for i in range(p)],
    )


def sort_array_in_core(
    cluster: Cluster, perf: PerfVector, data: np.ndarray, oversample: int = 4
) -> InCorePSRSResult:
    """Distribute ``data`` perf-proportionally (untimed) and sort in core."""
    portions = perf.portions(data.size)
    arrays = []
    start = 0
    for l_i in portions:
        arrays.append(np.asarray(data[start : start + l_i]))
        start += l_i
    cluster.reset()
    return sort_in_core(cluster, perf, arrays, oversample=oversample)
