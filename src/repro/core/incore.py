"""Bounded, charged in-core primitives for the comparison engines.

The three dedicated in-core comparators (:mod:`~repro.core.in_core_psrs`,
:mod:`~repro.core.hyperquicksort`, :mod:`~repro.core.overpartition`) hold
whole portions in node RAM *by design* — they are the paper's baselines,
not out-of-core code.  What still must hold is the cost model: every
buffer is pinned against the owning node's
:class:`~repro.pdm.memory.MemoryManager` while it is alive, and every
comparison is charged to the node's clock.  This module is the one
sanctioned site for those operations (``REP002`` exempts it, exactly the
way ``extsort/runs.py`` is exempt for run formation), so the comparators
themselves stay lint-clean without per-line annotations or baseline
entries.

The two ``*_for_verification`` accessors at the bottom are the opposite
case: deliberately *uncharged* reads used only by tests and result
inspection, documented as such in place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.cluster.node import SimNode
    from repro.pdm.blockfile import BlockFile


def sort_ops(n: int) -> float:
    """The charged comparison count of an n-item sort: ``n * log2(n)``."""
    return n * float(np.log2(n)) if n > 1 else float(n)


def sort_in_memory(arr: np.ndarray, node: "SimNode") -> np.ndarray:
    """Stable-sort ``arr`` in ``node``'s RAM, pinned and charged.

    The returned array is a sorted copy; the working set (input + copy
    share the same item count bound) is reserved against the node's
    memory budget for the duration of the sort, and ``n log2 n``
    comparisons are charged to the node's clock.
    """
    a = np.asarray(arr)
    with node.mem.reserve(int(a.size)):
        out = np.sort(a, kind="stable")
    node.compute(sort_ops(int(out.size)))
    return out


def merge_in_memory(pieces: Sequence[np.ndarray], node: "SimNode") -> np.ndarray:
    """Merge ``k`` sorted pieces in ``node``'s RAM, charged as a k-way merge.

    ``pieces`` must be non-empty.  The merged buffer is pinned while it
    is formed and the node is charged ``n * log2(k)`` comparisons — the
    cost of an in-core k-way merge, matching the charge the external
    merge engines apply per item.
    """
    if not pieces:
        raise ValueError("merge_in_memory needs at least one piece")
    from repro.extsort.losertree import kway_merge_sorted

    arrs = [np.asarray(q) for q in pieces]
    total = int(sum(int(a.size) for a in arrs))
    with node.mem.reserve(total):
        merged = kway_merge_sorted(arrs)
    node.compute(merged.size * float(np.log2(max(2, len(arrs)))))
    return merged


def concat_in_memory(pieces: Sequence[np.ndarray], node: "SimNode") -> np.ndarray:
    """Concatenate buffers in ``node``'s RAM under a memory reservation.

    A data move, not a comparison pass: nothing is charged to the clock
    beyond what the caller charges, but the combined buffer is pinned
    against the node's budget while it is built.  ``pieces`` must be
    non-empty.
    """
    if not pieces:
        raise ValueError("concat_in_memory needs at least one piece")
    arrs = [np.asarray(q) for q in pieces]
    total = int(sum(int(a.size) for a in arrs))
    with node.mem.reserve(total):
        return np.concatenate(arrs)


def concat_for_verification(arrays: Iterable[np.ndarray]) -> np.ndarray:
    """Charge-free concatenation for result accessors and tests.

    Used by the ``to_array()`` verification accessors of the result
    dataclasses — outside the simulated run, after the barrier, so no
    node is charged and no budget applies.
    """
    arrs = [np.asarray(a) for a in arrays]
    return np.concatenate(arrs) if arrs else np.empty(0)  # repro: noqa REP006(verification accessor; outside the simulated run)


def files_to_array(files: Iterable["BlockFile"]) -> np.ndarray:
    """Charge-free gather of per-node output files, for verification only."""
    parts = [f.to_array() for f in files]  # repro: noqa REP005(verification accessor; documented charge-free)
    return concat_for_verification(parts)
