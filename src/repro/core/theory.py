"""Theoretical bounds the paper states, used by tests and reports.

* the PSRS load-balance theorem, heterogeneous form (paper §4): the
  final amount of data on node i is at most ``2 * l_i`` (its initial
  performance-proportional portion) plus ``d`` for duplicate keys
  (§3.1: "the upper bound with d duplicates becomes U + d");
* the per-step I/O bounds of Algorithm 1;
* the PDM sort bound of Theorem 1 (delegated to
  :class:`~repro.pdm.model.PDMConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.perf import PerfVector
from repro.pdm.model import PDMConfig


def load_balance_bound(n: int, perf: PerfVector, i: int, d_duplicates: int = 0) -> float:
    """Max items node i may handle in the final merge: ``2*l_i + d``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if d_duplicates < 0:
        raise ValueError(f"d_duplicates must be >= 0, got {d_duplicates}")
    return 2.0 * perf.optimal_share(n, i) + d_duplicates


def max_duplicate_count(data: np.ndarray) -> int:
    """The paper's ``d``: multiplicity of the most duplicated key."""
    arr = np.asarray(data)
    if arr.size == 0:
        return 0
    _, counts = np.unique(arr, return_counts=True)
    return int(counts.max())


@dataclass(frozen=True)
class StepIOBounds:
    """Per-step item-I/O upper bounds of Algorithm 1 for one node."""

    step1_local_sort: float
    step2_sampling: float
    step3_partition: float
    step4_redistribute: float
    step5_final_merge: float

    @property
    def total(self) -> float:
        return (
            self.step1_local_sort
            + self.step2_sampling
            + self.step3_partition
            + self.step4_redistribute
            + self.step5_final_merge
        )


def step_io_bounds(
    l_i: int,
    perf: PerfVector,
    i: int,
    M: int,
    B: int,
    d_duplicates: int = 0,
) -> StepIOBounds:
    """Paper §4 per-step bounds, in item I/Os, for node i.

    * step 1: ``2 l_i (1 + ceil(log_m l_i))``,
    * step 2: ``L = (p-1) perf[i]`` sample reads ("very inferior" to step 1),
    * step 3: ``2 Q`` where Q = l_i (read + write of the portion),
    * step 4: ``2 l_i'`` with l_i' the received volume, itself <= the
      load-balance bound,
    * step 5: ``2 l_i' (1 + ceil(log_m l_i'))`` with l_i' <= 2 l_i + d.
    """
    cfg = PDMConfig(N=max(l_i, 1), M=M, B=B)
    received_bound = load_balance_bound(
        # l_i is node i's share of n; reconstruct n from it for the bound
        # n * perf[i]/total = l_i  =>  n = l_i * total / perf[i]
        round(l_i * perf.total / perf[i]) if l_i else 0,
        perf,
        i,
        d_duplicates,
    )
    return StepIOBounds(
        step1_local_sort=cfg.step1_io_bound(l_i),
        step2_sampling=float((perf.p - 1) * perf[i]),
        step3_partition=2.0 * l_i,
        step4_redistribute=2.0 * received_bound,
        step5_final_merge=cfg.step1_io_bound(int(np.ceil(received_bound))),
    )


def ideal_speedup(perf: PerfVector) -> float:
    """Speedup of the hetero-aware parallel sort over the *slowest* node
    running alone, if load balance and communication were perfect.

    The slowest node alone processes n at speed min(perf); the cluster
    processes n at aggregate speed sum(perf): ratio = total/min.
    """
    return perf.total / min(perf.values)


def ideal_speedup_vs_fastest(perf: PerfVector) -> float:
    """Speedup over the *fastest* node running alone: total/max."""
    return perf.total / max(perf.values)


def homogeneous_waste_factor(perf: PerfVector) -> float:
    """Slowdown from treating a hetero cluster as homogeneous.

    With equal shares, the slowest node (speed min) gets n/p and finishes
    last in time ~ (n/p)/min; with perf-proportional shares every node
    finishes in ~ n/total.  Ratio = total / (p * min) — e.g. 2.5x for
    {1,1,4,4}; Table 3 measures ~2x (constant offsets dampen it).
    """
    return perf.total / (perf.p * min(perf.values))
