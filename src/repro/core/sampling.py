"""Heterogeneity-aware regular sampling and pivot selection (paper step 2).

Each node i picks ``L_i = c * (p-1) * perf[i]`` samples from its
*sorted* local portion at the fixed interval

    off = l_i // L_i  =  (k * lcm * perf[i]) // (c * (p-1) * perf[i])
                      =  k * lcm // (c * (p-1))

which, thanks to Eq. 2, is the *same offset on every node* — between any
two consecutive samples there is the same number of sorted elements
cluster-wide, and node i contributes candidates proportional to its data
share.  This is the paper's generalisation of PSRS regular sampling
(``c=1`` is the paper's literal count; the default ``c=4`` refines the
candidate grid, see :func:`sample_count`).

The designated node sorts the gathered candidates and picks ``p - 1``
pivots at the cumulative-performance ranks

    rank_j = c * (p-1) * sum(perf[:j]) - 1

aiming pivot j at the global quantile ``sum(perf[:j]) / sum(perf)`` —
the boundary of node j's performance-proportional share (see
:func:`pivot_ranks` for the derivation).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.perf import PerfVector
from repro.pdm.blockfile import BlockFile
from repro.pdm.memory import MemoryManager


def sample_count(perf_i: int, p: int, oversample: int = 4) -> int:
    """Per-node candidate count ``L_i = c * (p-1) * perf[i]``.

    ``oversample=1`` is the paper's literal ``(p-1) * perf[i]``; the
    default ``c=4`` refines the candidate quantile grid fourfold, which
    the sampling ablation shows is needed to reach the paper's measured
    S(max) (the candidate grid must nearly contain the cumulative-perf
    boundary quantiles; see pivot_ranks).
    """
    if perf_i < 1 or p < 1:
        raise ValueError(f"perf_i and p must be >= 1, got {perf_i}, {p}")
    if oversample < 1:
        raise ValueError(f"oversample must be >= 1, got {oversample}")
    return oversample * (p - 1) * perf_i


def sample_interval(l_i: int, perf_i: int, p: int, oversample: int = 4) -> int:
    """Sampling offset ``off = l_i // L_i`` (>= 1); identical across
    nodes when l_i satisfies Eq. 2."""
    if l_i < 0:
        raise ValueError(f"l_i must be >= 0, got {l_i}")
    L = sample_count(perf_i, p, oversample)
    if L == 0:
        return max(1, l_i)
    return max(1, l_i // L)


def regular_sample_positions(l_i: int, off: int, max_samples: int) -> np.ndarray:
    """Positions ``off-1, 2*off-1, ...`` (at most ``max_samples`` of them,
    all < l_i) — the paper's fseek/fread loop."""
    if off < 1:
        raise ValueError(f"off must be >= 1, got {off}")
    if max_samples < 0:
        raise ValueError(f"max_samples must be >= 0, got {max_samples}")
    if l_i <= 0 or max_samples == 0:
        return np.empty(0, dtype=np.int64)
    count = min(max_samples, l_i // off)  # j*off - 1 < l_i  <=>  j <= l_i // off
    pos = (np.arange(1, count + 1, dtype=np.int64) * off) - 1
    return pos


def read_samples(
    sorted_file: BlockFile, positions: Sequence[int], mem: MemoryManager
) -> np.ndarray:
    """Read the items at ``positions`` from a sorted block file.

    Charges one block read per *distinct* block touched (the paper's
    fseek/fread loop enjoys the same locality: consecutive sample
    positions often share a block).
    """
    pos = np.asarray(list(positions), dtype=np.int64)
    if pos.size == 0:
        return np.empty(0, dtype=sorted_file.dtype)
    if pos.min() < 0 or pos.max() >= sorted_file.n_items:
        raise IndexError(f"sample positions out of range [0, {sorted_file.n_items})")
    B = sorted_file.B
    out = np.empty(pos.size, dtype=sorted_file.dtype)
    blocks = pos // B
    for b in np.unique(blocks):
        with mem.reserve(sorted_file.inspect_block(int(b)).size):
            blk = sorted_file.read_block(int(b))
            sel = blocks == b
            out[sel] = blk[pos[sel] - b * B]
    return out


def regular_sample(
    sorted_file: BlockFile,
    perf: PerfVector,
    node: int,
    mem: MemoryManager,
    oversample: int = 4,
) -> np.ndarray:
    """Node ``node``'s regular sample of its sorted portion (paper step 2)."""
    if not (0 <= node < perf.p):
        raise IndexError(f"node {node} out of range 0..{perf.p - 1}")
    l_i = sorted_file.n_items
    if perf.p == 1:
        return np.empty(0, dtype=sorted_file.dtype)
    off = sample_interval(l_i, perf[node], perf.p, oversample)
    L = sample_count(perf[node], perf.p, oversample)
    positions = regular_sample_positions(l_i, off, L)
    return read_samples(sorted_file, positions, mem)


def random_sample(
    file: BlockFile,
    n_samples: int,
    mem: MemoryManager,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform random positions — the oversampling variant's sampler."""
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    n = file.n_items
    if n == 0 or n_samples == 0:
        return np.empty(0, dtype=file.dtype)
    positions = np.sort(rng.integers(0, n, size=min(n_samples, n)))  # repro: noqa REP002(sorts O(s) sample positions, metadata not records)
    return read_samples(file, positions, mem)


def pivot_ranks(perf: PerfVector, oversample: int = 4) -> np.ndarray:
    """Ranks of the p-1 pivots among the gathered candidates.

    With samples taken at chunk *ends* (positions off-1, 2*off-1, ...),
    the candidate at sorted rank r has about ``(r+1) * off`` items at or
    below it cluster-wide (stratified sampling), so the pivot aimed at
    the cumulative-performance boundary ``n * cum_perf_j / total`` sits
    at rank ``c * (p-1) * cum_perf_j - 1``.  All-ones perf recovers the
    classic PSRS regular positions.
    """
    p = perf.p
    if p == 1:
        return np.empty(0, dtype=np.int64)
    if oversample < 1:
        raise ValueError(f"oversample must be >= 1, got {oversample}")
    cum = np.cumsum(perf.values)[:-1]
    total_candidates = oversample * (p - 1) * perf.total
    ranks = oversample * (p - 1) * cum - 1
    return np.clip(ranks, 0, max(0, total_candidates - 1)).astype(np.int64)


def select_pivots(
    candidates: np.ndarray,
    perf: PerfVector,
    compute: Optional[Callable[[float], None]] = None,
    oversample: int = 4,
) -> np.ndarray:
    """Sort the gathered candidates and pick the p-1 regular pivots.

    The candidate array must be the concatenation of all nodes' samples
    (any order); this runs in core on the designated node — the paper
    notes the sample is tiny relative to M.
    """
    cand = np.sort(np.asarray(candidates), kind="stable")  # repro: noqa REP002(pivot candidates are tiny vs M per the paper; charged via compute below)
    if compute is not None and cand.size > 1:
        compute(cand.size * float(np.log2(cand.size)))
    if perf.p == 1:
        return np.empty(0, dtype=cand.dtype)
    if cand.size == 0:
        raise ValueError("cannot select pivots from an empty candidate set")
    ranks = np.minimum(pivot_ranks(perf, oversample), cand.size - 1)
    return cand[ranks]
