"""DeWitt-Naughton-Schneider probabilistic-splitting sort (§2 comparator).

The paper calls this "the closest algorithm in spirit to parallel
sampling techniques ... for the D disk model": a *randomized two-step
distribution sort*.

    "First they define N buckets for an N-process program.  Then, each
    program reads its initial segment of the data and sends each element
    to the appropriate bucket (other process).  All elements received
    are written to disks as small sorted runs.  Second, each process
    merge-sorts its runs."

Differences from external PSRS that the comparison bench measures:

* **no local pre-sort**: data is routed from the *unsorted* input, so
  step 1's ``2 l_i (1 + log)`` pass disappears — but every receiver ends
  up with *many short runs* (one per arriving message) instead of p long
  ones, so the final merge-sort pays the passes back;
* **probabilistic splitting**: splitters come from a random sample of
  the unsorted data (no order information captured), so the balance is
  noticeably looser than regular sampling's — the paper's §3 argument.

The heterogeneous twist matches the rest of this library: splitters aim
at cumulative-performance quantiles so node i's bucket carries ~perf[i]
of the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cluster.machine import Cluster
from repro.cluster.node import SimNode
from repro.core.external_psrs import distribute_array, merge_many
from repro.core.incore import concat_in_memory, files_to_array, sort_in_memory
from repro.core.perf import PerfVector
from repro.extsort.multiway import RunRef
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.stats import IOStats


@dataclass(frozen=True)
class DeWittConfig:
    """Tunables of the DeWitt-style sort."""

    block_items: int = 1024
    message_items: int = 8192
    oversample: int = 16  # random sample size per splitter
    engine: str = "vector"
    root: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.block_items < 1:
            raise ValueError(f"block_items must be >= 1, got {self.block_items}")
        if self.message_items < 1:
            raise ValueError(f"message_items must be >= 1, got {self.message_items}")
        if self.oversample < 1:
            raise ValueError(f"oversample must be >= 1, got {self.oversample}")


@dataclass
class DeWittResult:
    """Outputs plus the metrics shared with :class:`PSRSResult`."""

    outputs: list[BlockFile]
    perf: PerfVector
    n_items: int
    elapsed: float
    step_times: dict[str, float]
    splitters: np.ndarray
    received_sizes: list[int]
    optimal_sizes: list[float]
    runs_per_node: list[int]
    io: IOStats = field(default_factory=IOStats)
    network_bytes: int = 0
    network_messages: int = 0

    @property
    def expansions(self) -> list[float]:
        return [
            r / o if o > 0 else 1.0
            for r, o in zip(self.received_sizes, self.optimal_sizes)
        ]

    @property
    def s_max(self) -> float:
        return max(self.expansions)

    def to_array(self) -> np.ndarray:
        return files_to_array(self.outputs)


def _splitters_from_random_sample(
    cluster: Cluster,
    perf: PerfVector,
    inputs: Sequence[BlockFile],
    config: DeWittConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Random (unsorted-data) sample -> cumulative-perf splitters."""
    p = cluster.p
    samples = []
    for node, f in zip(cluster.nodes, inputs):
        if f.n_blocks == 0:
            samples.append(np.empty(0, dtype=f.dtype))
            continue
        want = max(1, config.oversample * (p - 1) * perf[node.rank])
        # Sample whole blocks (sequential-friendly), then items.
        n_blocks = min(f.n_blocks, max(1, -(-want // f.B)))
        idxs = rng.choice(f.n_blocks, size=n_blocks, replace=False)
        parts = []
        for b in sorted(int(x) for x in idxs):  # repro: noqa REP002(orders O(n/B) sampled block indices, metadata not records)
            with node.mem.reserve(f.inspect_block(b).size):
                parts.append(f.read_block(b))
        pool = np.concatenate(parts)
        take = min(want, pool.size)
        samples.append(pool[rng.integers(0, pool.size, size=take)])
    gathered = cluster.comm.gather(samples, root=config.root)
    root_node = cluster.nodes[config.root]
    cand = sort_in_memory(concat_in_memory(gathered, root_node), root_node)
    if cand.size == 0:
        raise ValueError("cannot pick splitters from an empty input")
    cum = np.cumsum(perf.values)[:-1] / perf.total
    ranks = np.clip((cum * cand.size).astype(np.int64), 0, cand.size - 1)
    splitters = cand[ranks]
    return cluster.comm.bcast(splitters, root=config.root)[0]


def sort_dewitt_distributed(
    cluster: Cluster,
    perf: PerfVector,
    inputs: Sequence[BlockFile],
    config: DeWittConfig = DeWittConfig(),
) -> DeWittResult:
    """Run the two-step probabilistic-splitting sort on per-node inputs."""
    p = cluster.p
    if perf.p != p or len(inputs) != p:
        raise ValueError("perf/inputs must match the cluster size")
    n_items = sum(f.n_items for f in inputs)
    io_before = cluster.io_stats()
    rng = np.random.default_rng(config.seed)
    B = config.block_items

    # ---- Step 1a: splitters from a random sample --------------------------
    with cluster.step("1:splitters"):
        if p > 1:
            splitters = _splitters_from_random_sample(
                cluster, perf, inputs, config, rng
            )
        else:
            splitters = np.empty(0, dtype=inputs[0].dtype)

    # Per-destination outgoing buffer size: p buffers + one input block
    # must fit in memory on the sender, and a message must fit at the
    # receiver next to its write buffer.
    def _msg_cap(node: SimNode) -> int:
        cap = config.message_items
        if node.mem.capacity is not None:
            cap = min(cap, max(1, (node.mem.capacity - 2 * B) // max(1, p)))
        return cap

    # ---- Step 1b: route every element to its bucket ------------------------
    # Receivers write each arriving message as one small sorted run.
    runs: list[list[BlockFile]] = [[] for _ in range(p)]

    def deliver(src_rank: int, dst_rank: int, chunk: np.ndarray) -> None:
        if chunk.size == 0:
            return
        src, dst = cluster.nodes[src_rank], cluster.nodes[dst_rank]
        if src_rank != dst_rank:
            cluster.network.transfer(src, dst, chunk.nbytes, item_bytes=chunk.dtype.itemsize)
        run = sort_in_memory(chunk, dst)
        f = dst.disk.new_file(B, run.dtype, name=dst.disk.next_file_name("dwrun"))
        with dst.mem.reserve(run.size):
            with BlockWriter(f, dst.mem) as w:
                w.write(run)
        runs[dst_rank].append(f)

    with cluster.step("2:route"):
        for node, f in zip(cluster.nodes, inputs):
            cap = _msg_cap(node)
            pending: list[list[np.ndarray]] = [[] for _ in range(p)]
            pending_n = [0] * p
            for b in range(f.n_blocks):
                with node.mem.reserve(f.inspect_block(b).size):
                    block = f.read_block(b)
                    which = np.searchsorted(splitters, block, side="right")
                    node.compute(block.size * float(np.log2(max(2, p))))
                    for j in range(p):
                        sel = block[which == j]
                        if sel.size == 0:
                            continue
                        pending[j].append(sel.copy())
                        pending_n[j] += sel.size
                        if pending_n[j] >= cap:
                            deliver(node.rank, j, np.concatenate(pending[j]))
                            pending[j], pending_n[j] = [], 0
            for j in range(p):
                if pending_n[j]:
                    deliver(node.rank, j, np.concatenate(pending[j]))

    received_sizes = [sum(f.n_items for f in runs[j]) for j in range(p)]
    runs_per_node = [len(runs[j]) for j in range(p)]

    # ---- Step 2: each process merge-sorts its runs --------------------------
    outputs: list[BlockFile] = []
    with cluster.step("3:merge-runs"):
        for j, node in enumerate(cluster.nodes):
            refs = [RunRef.whole(f) for f in runs[j] if f.n_items > 0]
            out = merge_many(
                refs, node, config.engine, name=f"dwout{j}", B=config.block_items
            )
            for f in runs[j]:
                if f is not out:
                    f.clear()
            outputs.append(out)

    elapsed = cluster.barrier()
    return DeWittResult(
        outputs=outputs,
        perf=perf,
        n_items=n_items,
        elapsed=elapsed,
        step_times=cluster.trace.summary(),
        splitters=np.asarray(splitters),
        received_sizes=received_sizes,
        optimal_sizes=[perf.optimal_share(n_items, i) for i in range(p)],
        runs_per_node=runs_per_node,
        io=cluster.io_stats() - io_before,
        network_bytes=cluster.network.bytes_sent,
        network_messages=cluster.network.messages_sent,
    )


def sort_array_dewitt(
    cluster: Cluster,
    perf: PerfVector,
    data: np.ndarray,
    config: DeWittConfig = DeWittConfig(),
) -> DeWittResult:
    """Distribute ``data`` (untimed) and run the DeWitt-style sort."""
    inputs = distribute_array(cluster, perf, data, config.block_items)
    return sort_dewitt_distributed(cluster, perf, inputs, config)
