"""Redistribution of the partitions (paper step 4).

Sublist j of every node travels to node j, in messages that are (a) a
multiple of the block size B and (b) small enough to fit in both the
local and the remote memory — the paper's two message-formation rules.
The schedule is the p-1 round rotation of
:meth:`~repro.cluster.mpi.SimComm.alltoallv`, but streaming: each
message chunk is read from the sender's disk, transferred (charging the
link and both NIC channels) and written to a per-sender run file on the
receiver's disk, so the per-node I/O stays within the paper's
``2 * l_i / B`` bound (read on the sender side + write on the receiver
side).

The result at node j is a list of p sorted run files — one per sender,
including its own partition — ready for the step-5 merge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Cluster
from repro.extsort.multiway import RunCursor, RunRef
from repro.pdm.blockfile import BlockFile, BlockWriter, close_all


@dataclass
class RedistributionReport:
    """Counters from one redistribution phase."""

    messages: int = 0
    bytes_moved: int = 0
    items_moved: int = 0
    max_message_items: int = 0


def message_items_for(
    message_items: int, B: int, memory_capacity: int | None
) -> int:
    """Clamp the configured message size to the paper's rules.

    Messages of at least one block are rounded down to a multiple of B
    (step 4: "the size is also a multiple of the block size B"); smaller
    requests are kept as-is — the paper's in-text packet-size experiment
    sweeps down to 8-integer messages, far below a block.  Either way the
    message is capped so it fits in memory on both ends alongside a
    working block.
    """
    if message_items < 1:
        raise ValueError(f"message_items must be >= 1, got {message_items}")
    size = (message_items // B) * B if message_items >= B else message_items
    if memory_capacity is not None:
        cap = max(1, memory_capacity // 2)
        if cap >= B:
            cap = (cap // B) * B
        size = min(size, cap)
    return size


def redistribute(
    cluster: Cluster,
    partitions: list[list[RunRef]],
    message_items: int,
) -> tuple[list[list[BlockFile]], RedistributionReport]:
    """Run the all-to-all of partitions; returns per-node received runs.

    ``partitions[i][j]`` is node i's sublist destined to node j (a range
    of node i's sorted file, materialized or not).  Returns
    ``received[j][i]`` = the run file on node j's disk holding what node
    i sent (``received[j][j]`` is node j's own partition, moved locally
    without network cost).
    """
    p = cluster.p
    if len(partitions) != p or any(len(row) != p for row in partitions):
        raise ValueError(f"partitions must be a {p}x{p} structure")
    report = RedistributionReport()
    received: list[list[BlockFile]] = [[None] * p for _ in range(p)]  # type: ignore[list-item]

    def recv_file(j: int, i: int) -> BlockFile:
        node_j = cluster.nodes[j]
        f = node_j.disk.new_file(
            partitions[i][j].file.B,
            partitions[i][j].file.dtype,
            name=node_j.disk.next_file_name(f"recv_from{i}_"),
        )
        received[j][i] = f
        return f

    # The rotation schedule gives every receiver exactly one sender per
    # round, so each receiving file is written start-to-finish within its
    # round by a single writer — one receive buffer in memory at a time,
    # independent of p.
    #
    # Round 0: local partitions (no network, charged as a disk copy).
    for i in range(p):
        writer = BlockWriter(recv_file(i, i), cluster.nodes[i].mem)
        try:
            _stream_local(cluster, i, partitions[i][i], writer, message_items, report)
        finally:
            writer.close()
    # Rounds 1..p-1: node i sends to (i + r) mod p.
    for r in range(1, p):
        round_writers = []
        try:
            for i in range(p):
                j = (i + r) % p
                writer = BlockWriter(recv_file(j, i), cluster.nodes[j].mem)
                round_writers.append(writer)
                try:
                    _stream_remote(
                        cluster, i, j, partitions[i][j], writer, message_items, report
                    )
                finally:
                    writer.close()
                    round_writers.pop()
        finally:
            close_all(round_writers)
    return received, report


def _chunk_size(cluster: Cluster, i: int, j: int, message_items: int, B: int) -> int:
    cap_i = cluster.nodes[i].mem.capacity
    cap_j = cluster.nodes[j].mem.capacity
    cap = None
    if cap_i is not None or cap_j is not None:
        cap = min(c for c in (cap_i, cap_j) if c is not None)
    return message_items_for(message_items, B, cap)


def _take_chunk(cur: RunCursor, size: int) -> np.ndarray:
    """Gather up to ``size`` items from the cursor (spanning blocks).

    Fills one preallocated message buffer instead of accumulating a list
    of per-block slices and concatenating — a single allocation per
    message regardless of how many blocks it spans.
    """
    out = np.empty(size, dtype=cur.run.file.dtype)  # repro: noqa REP006(message-sized chunk; receiver reserves before writing it)
    got = 0
    while got < size and not cur.exhausted:
        part = cur.take_upto(size - got)
        out[got : got + part.size] = part
        got += part.size
    return out[:got]


def _stream_local(
    cluster: Cluster,
    i: int,
    ref: RunRef,
    writer: BlockWriter,
    message_items: int,
    report: RedistributionReport,
) -> None:
    """Node i's own partition: disk-to-disk copy on the same host."""
    node = cluster.nodes[i]
    size = _chunk_size(cluster, i, i, message_items, ref.file.B)
    cur = RunCursor(ref, node.mem)
    try:
        while not cur.exhausted:
            chunk = _take_chunk(cur, size)
            with node.mem.reserve(chunk.size):
                writer.write(chunk)
            report.items_moved += chunk.size
            report.max_message_items = max(report.max_message_items, chunk.size)
    finally:
        cur.drop()


def _stream_remote(
    cluster: Cluster,
    i: int,
    j: int,
    ref: RunRef,
    writer: BlockWriter,
    message_items: int,
    report: RedistributionReport,
) -> None:
    src, dst = cluster.nodes[i], cluster.nodes[j]
    size = _chunk_size(cluster, i, j, message_items, ref.file.B)
    cur = RunCursor(ref, src.mem)
    itemsize = ref.file.itemsize
    try:
        while not cur.exhausted:
            chunk = _take_chunk(cur, size)
            if chunk.size == 0:
                continue
            cluster.network.transfer(src, dst, chunk.size * itemsize, item_bytes=itemsize)
            with dst.mem.reserve(chunk.size):
                writer.write(chunk)
            report.messages += 1
            report.bytes_moved += chunk.size * itemsize
            report.items_moved += chunk.size
            report.max_message_items = max(report.max_message_items, chunk.size)
    finally:
        cur.drop()
