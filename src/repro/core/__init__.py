"""The paper's contribution: out-of-core PSRS for heterogeneous clusters.

* :mod:`~repro.core.perf` — the perf vector and the Eq.-2 size condition,
* :mod:`~repro.core.sampling` — hetero-aware regular sampling + pivots,
* :mod:`~repro.core.partition` — binary partitioning of sorted portions,
* :mod:`~repro.core.redistribute` — block-multiple message redistribution,
* :mod:`~repro.core.external_psrs` — Algorithm 1 end to end,
* :mod:`~repro.core.in_core_psrs` — the in-core foundation (§3),
* :mod:`~repro.core.overpartition` — the Li & Sevcik comparator (§3.3),
* :mod:`~repro.core.calibration` — the Table-2 perf-filling protocol,
* :mod:`~repro.core.theory` — the stated bounds, for tests and reports.
"""

from repro.core.calibration import CalibrationResult, calibrate, sequential_sort_table
from repro.core.dewitt import (
    DeWittConfig,
    DeWittResult,
    sort_array_dewitt,
    sort_dewitt_distributed,
)
from repro.core.external_psrs import (
    PSRSConfig,
    PSRSResult,
    distribute_array,
    gather_output,
    merge_many,
    sort_array,
    sort_distributed,
)
from repro.core.hyperquicksort import (
    HyperquicksortResult,
    sort_array_hyperquicksort,
    sort_hyperquicksort,
    split_group,
)
from repro.core.in_core_psrs import InCorePSRSResult, sort_array_in_core, sort_in_core
from repro.core.overpartition import (
    OverpartitionResult,
    assign_buckets,
    sort_array_overpartitioned,
    sort_overpartitioned,
)
from repro.core.perf import PerfVector
from repro.core.quantiles import (
    QuantileSearchReport,
    boundary_targets,
    exact_quantile_pivots,
    global_count_leq,
)
from repro.core.sampling import (
    pivot_ranks,
    regular_sample,
    sample_count,
    sample_interval,
    select_pivots,
)
from repro.core.theory import (
    StepIOBounds,
    homogeneous_waste_factor,
    ideal_speedup,
    ideal_speedup_vs_fastest,
    load_balance_bound,
    max_duplicate_count,
    step_io_bounds,
)

__all__ = [
    "CalibrationResult",
    "DeWittConfig",
    "DeWittResult",
    "sort_array_dewitt",
    "sort_dewitt_distributed",
    "HyperquicksortResult",
    "QuantileSearchReport",
    "boundary_targets",
    "exact_quantile_pivots",
    "global_count_leq",
    "sort_array_hyperquicksort",
    "sort_hyperquicksort",
    "split_group",
    "InCorePSRSResult",
    "OverpartitionResult",
    "PSRSConfig",
    "PSRSResult",
    "PerfVector",
    "StepIOBounds",
    "assign_buckets",
    "calibrate",
    "distribute_array",
    "gather_output",
    "homogeneous_waste_factor",
    "ideal_speedup",
    "ideal_speedup_vs_fastest",
    "load_balance_bound",
    "max_duplicate_count",
    "merge_many",
    "pivot_ranks",
    "regular_sample",
    "sample_count",
    "sample_interval",
    "select_pivots",
    "sequential_sort_table",
    "sort_array",
    "sort_array_in_core",
    "sort_array_overpartitioned",
    "sort_distributed",
    "sort_in_core",
    "sort_overpartitioned",
    "step_io_bounds",
]
