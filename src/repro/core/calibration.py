"""The paper's perf-vector calibration protocol (§5, Table 2).

    "for an input size of N integers on a p > 1 processors machine, we
    first execute the sequential external sort used in the parallel code
    on N/p data [on every node] ... the ratios to the slower execution
    time allow us to fill the perf array."

:func:`calibrate` runs the polyphase sort of ``N/p`` items on each node
of a cluster (independently, from a reset clock), measures the simulated
times, and rounds the time ratios into a :class:`~repro.core.perf.PerfVector`.
:func:`sequential_sort_table` regenerates Table 2's grid of (node x
input size) timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.cluster.kernel import ExecutionKernel
from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.perf import PerfVector
from repro.extsort.polyphase import polyphase_sort
from repro.metrics.timing import TrialStats
from repro.pdm.blockfile import BlockWriter
from repro.workloads.generators import make_benchmark


@dataclass
class CalibrationResult:
    """Outcome of the perf-filling protocol."""

    times: list[float]
    speeds: list[float]
    perf: PerfVector

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rows = ", ".join(f"{t:.2f}s" for t in self.times)
        return f"CalibrationResult(times=[{rows}], perf={self.perf.values})"


def _sequential_sort_time(
    cluster: Cluster,
    node_rank: int,
    n_items: int,
    block_items: int,
    n_tapes: Optional[int],
    seed: int,
    benchmark: int | str = 0,
) -> float:
    """Simulated time for one node to externally sort ``n_items`` alone."""
    node = cluster.nodes[node_rank]
    data = make_benchmark(benchmark, n_items, seed=seed)
    f = node.disk.new_file(block_items, data.dtype, name=node.disk.next_file_name("cal"))
    with BlockWriter(f, node.mem) as w:
        w.write(data)  # repro: noqa REP105(input creation; excluded from the measurement by the reset below)
    node.reset()  # input creation is not part of the measurement
    t0 = node.clock.time
    polyphase_sort(
        f, node.disk, node.mem, n_tapes=n_tapes, compute=node.compute
    )
    return node.clock.time - t0


def calibrate(
    spec: ClusterSpec,
    n_items: int,
    block_items: int = 1024,
    n_tapes: Optional[int] = None,
    seed: int = 0,
    benchmark: int | str = 0,
    kernel: Union[str, ExecutionKernel] = "event",
) -> CalibrationResult:
    """Fill the perf array by timing the sequential external sort.

    Each node sorts ``n_items / p`` items on a fresh simulated cluster
    (so there is no cross-node interference, as in the paper's protocol).
    """
    if n_items < spec.p:
        raise ValueError(f"n_items={n_items} too small for p={spec.p}")
    per_node = n_items // spec.p
    times: list[float] = []
    for rank in range(spec.p):
        cluster = Cluster(spec, kernel=kernel)
        cluster.reset()
        times.append(
            _sequential_sort_time(cluster, rank, per_node, block_items, n_tapes, seed, benchmark)
        )
    slowest = max(times)
    speeds = [slowest / t for t in times]
    return CalibrationResult(times=times, speeds=speeds, perf=PerfVector.from_speeds(speeds))


@dataclass
class SequentialSortRow:
    """One (node, input size) cell of Table 2."""

    node: str
    n_items: int
    stats: TrialStats


def sequential_sort_table(
    spec: ClusterSpec,
    sizes: Sequence[int],
    repeats: int = 3,
    block_items: int = 1024,
    n_tapes: Optional[int] = None,
    benchmark: int | str = 0,
    kernel: Union[str, ExecutionKernel] = "event",
) -> list[SequentialSortRow]:
    """Regenerate the Table-2 grid: per node, per size, time mean ± std."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    rows: list[SequentialSortRow] = []
    for rank in range(spec.p):
        for n in sizes:
            vals = []
            for r in range(repeats):
                cluster = Cluster(spec, kernel=kernel)
                cluster.reset()
                vals.append(
                    _sequential_sort_time(
                        cluster, rank, n, block_items, n_tapes, seed=r, benchmark=benchmark
                    )
                )
            rows.append(
                SequentialSortRow(spec.nodes[rank].name, n, TrialStats(tuple(vals)))
            )
    return rows
