"""Algorithm 1: external PSRS for heterogeneous clusters.

The five steps of the paper, executed on a simulated
:class:`~repro.cluster.machine.Cluster` with BSP barriers between steps:

1. **local sort** — each node polyphase-merge-sorts its portion ``l_i``;
2. **pivot selection** — heterogeneity-aware regular sampling, gather on
   the designated node, pivot pick, broadcast;
3. **partition** — binary partitioning of the sorted portion into p
   sublists;
4. **redistribution** — sublist j travels to node j in block-multiple
   messages;
5. **final merge** — each node externally merges the p received runs
   (reusing the polyphase machinery's k-way merge).

The PSRS load-balance theorem carries over (paper §4): no node receives
more than twice its performance-proportional share (+ the duplicate
count d) — checked by the test suite via the returned metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional, Sequence

import numpy as np

from repro.cluster.machine import Cluster
from repro.core.partition import materialize_partitions, partition_offsets, partition_refs
from repro.core.perf import PerfVector
from repro.core.redistribute import RedistributionReport, redistribute
from repro.core.sampling import random_sample, regular_sample, sample_count, select_pivots
from repro.extsort.multiway import RunRef, max_merge_order, merge_runs
from repro.extsort.polyphase import polyphase_sort
from repro.extsort.runs import RunPolicy
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.stats import IOStats


@dataclass(frozen=True)
class PSRSConfig:
    """Tunables of the external PSRS run.

    Attributes
    ----------
    block_items:
        The PDM block size B, in items.
    message_items:
        Step-4 message size, in items (the paper's best: 8K integers;
        Table 3 uses 32 Kb = 8K integers).  Clamped to a multiple of B.
    n_tapes:
        Polyphase file count for steps 1/5 (Table 3 uses 15; default
        picks from the memory budget).
    run_policy:
        Run formation in step 1: ``"load"`` or ``"replacement"``.
    engine:
        Merge engine: ``"vector"`` or ``"itemwise"``.
    materialize_partitions:
        Step 3 paper-faithful sublist files (True) or zero-copy ranges
        (False) — an ablation.
    pivot_method:
        ``"regular"`` (the paper), ``"random"`` (oversampling flavour)
        or ``"quantile"`` (exact boundaries by distributed counting
        search — the §3.2 extension; best balance, more step-2 I/O).
    oversample:
        Sample-count multiplier c (L_i = c*(p-1)*perf[i]); c=1 is the
        paper's literal count, the default c=4 refines the pivot grid.
    root:
        The designated pivot-selection node.
    seed:
        RNG seed (used only by ``pivot_method="random"``).
    """

    block_items: int = 1024
    message_items: int = 8192
    n_tapes: Optional[int] = None
    run_policy: RunPolicy = "load"
    engine: str = "vector"
    materialize_partitions: bool = True
    pivot_method: Literal["regular", "random", "quantile"] = "regular"
    oversample: int = 4
    root: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.block_items < 1:
            raise ValueError(f"block_items must be >= 1, got {self.block_items}")
        if self.message_items < 1:
            raise ValueError(f"message_items must be >= 1, got {self.message_items}")
        if self.pivot_method not in ("regular", "random", "quantile"):
            raise ValueError(f"unknown pivot_method {self.pivot_method!r}")
        if self.oversample < 1:
            raise ValueError(f"oversample must be >= 1, got {self.oversample}")


@dataclass
class PSRSResult:
    """Everything the paper's Table 3 reports, plus diagnostics."""

    outputs: list[BlockFile]
    perf: PerfVector
    n_items: int
    elapsed: float
    step_times: dict[str, float]
    pivots: np.ndarray
    received_sizes: list[int]
    optimal_sizes: list[float]
    io: IOStats
    network_bytes: int
    network_messages: int
    redistribution: RedistributionReport = field(default_factory=RedistributionReport)
    step_io: dict[str, IOStats] = field(default_factory=dict)

    @property
    def mean_partition(self) -> float:
        """Mean final partition size (paper Table 3 'Mean')."""
        return float(np.mean(self.received_sizes))

    @property
    def max_partition(self) -> int:
        """Largest final partition (paper Table 3 'Max')."""
        return max(self.received_sizes)

    @property
    def expansions(self) -> list[float]:
        """Per-node received/optimal ratio (perf-normalised)."""
        return [
            r / o if o > 0 else 1.0
            for r, o in zip(self.received_sizes, self.optimal_sizes)
        ]

    @property
    def s_max(self) -> float:
        """The sublist-expansion metric S(max) = max_i received_i/optimal_i."""
        return max(self.expansions)

    def to_array(self) -> np.ndarray:
        """Charge-free concatenation of the global sorted output."""
        parts = [f.to_array() for f in self.outputs]
        return np.concatenate(parts) if parts else np.empty(0)


def sort_distributed(
    cluster: Cluster,
    perf: PerfVector,
    inputs: Sequence[BlockFile],
    config: PSRSConfig = PSRSConfig(),
) -> PSRSResult:
    """Run Algorithm 1 on per-node input files already on the node disks.

    ``inputs[i]`` must live on ``cluster.nodes[i]``'s disk and its size
    should be node i's portion ``l_i`` (use :meth:`PerfVector.portions`).
    """
    p = cluster.p
    if perf.p != p:
        raise ValueError(f"perf has {perf.p} entries for a {p}-node cluster")
    if len(inputs) != p:
        raise ValueError(f"need {p} input files, got {len(inputs)}")
    n_items = sum(f.n_items for f in inputs)
    io_before = cluster.io_stats()
    rng = np.random.default_rng(config.seed)
    step_io: dict[str, IOStats] = {}
    _io_mark = [io_before]

    def _snap(step: str) -> None:
        now = cluster.io_stats()
        step_io[step] = now - _io_mark[0]
        _io_mark[0] = now

    # ---- Step 1: local external sort -------------------------------------
    sorted_files: list[BlockFile] = []
    with cluster.step("1:local-sort"):
        for node, f in zip(cluster.nodes, inputs):
            res = polyphase_sort(
                f,
                node.disk,
                node.mem,
                n_tapes=config.n_tapes,
                run_policy=config.run_policy,
                compute=node.compute,
                engine=config.engine,
            )
            sorted_files.append(res.output)
    _snap("1:local-sort")

    # ---- Step 2: pivot selection ------------------------------------------
    with cluster.step("2:pivots"):
        if p == 1:
            pivots = np.empty(0, dtype=sorted_files[0].dtype)
        elif config.pivot_method == "quantile":
            from repro.core.quantiles import exact_quantile_pivots

            pivots, _report = exact_quantile_pivots(
                cluster, perf, sorted_files, root=config.root
            )
        else:
            samples = []
            for node, sf in zip(cluster.nodes, sorted_files):
                if config.pivot_method == "regular":
                    s = regular_sample(sf, perf, node.rank, node.mem, config.oversample)
                else:
                    s = random_sample(
                        sf,
                        max(1, sample_count(perf[node.rank], p, config.oversample)),
                        node.mem,
                        rng,
                    )
                samples.append(s)
            gathered = cluster.comm.gather(samples, root=config.root)
            candidates = np.concatenate(gathered)
            pivots = select_pivots(
                candidates,
                perf,
                compute=cluster.nodes[config.root].compute,
                oversample=config.oversample,
            )
            pivots = cluster.comm.bcast(pivots, root=config.root)[0]
    _snap("2:pivots")

    # ---- Step 3: binary partitioning --------------------------------------
    partitions: list[list[RunRef]] = []
    with cluster.step("3:partition"):
        for node, sf in zip(cluster.nodes, sorted_files):
            cuts = partition_offsets(sf, pivots, node.mem)
            if config.materialize_partitions:
                files = materialize_partitions(sf, cuts, node.disk, node.mem)
                partitions.append([RunRef.whole(f) for f in files])
            else:
                partitions.append(partition_refs(sf, cuts))
    _snap("3:partition")

    # Linear-space discipline (PDM: "algorithms should use O(n) blocks of
    # storage"): once a phase's files are consumed, reclaim them.
    if config.materialize_partitions:
        for sf in sorted_files:
            sf.clear()  # partitions hold the data now

    # ---- Step 4: redistribution --------------------------------------------
    with cluster.step("4:redistribute"):
        received, redist_report = redistribute(
            cluster, partitions, config.message_items
        )
    for row in partitions:
        for ref in row:
            if ref.start == 0 and ref.stop == ref.file.n_items:
                ref.file.clear()  # receivers hold the data now
    if not config.materialize_partitions:
        for sf in sorted_files:
            sf.clear()
    _snap("4:redistribute")

    received_sizes = [
        sum(f.n_items for f in received[j]) for j in range(p)
    ]

    # ---- Step 5: final external merge ---------------------------------------
    outputs: list[BlockFile] = []
    with cluster.step("5:final-merge"):
        for j, node in enumerate(cluster.nodes):
            refs = [RunRef.whole(f) for f in received[j] if f.n_items > 0]
            out = merge_many(
                refs, node, config.engine, name=f"out{j}"
            )
            for f in received[j]:
                if f is not out:
                    f.clear()
            outputs.append(out)
    _snap("5:final-merge")

    elapsed = cluster.barrier()
    optimal = [perf.optimal_share(n_items, i) for i in range(p)]
    return PSRSResult(
        outputs=outputs,
        perf=perf,
        n_items=n_items,
        elapsed=elapsed,
        step_times=cluster.trace.summary(),
        pivots=np.asarray(pivots),
        received_sizes=received_sizes,
        optimal_sizes=optimal,
        io=cluster.io_stats() - io_before,
        network_bytes=cluster.network.bytes_sent,
        network_messages=cluster.network.messages_sent,
        redistribution=redist_report,
        step_io=step_io,
    )


def merge_many(refs: list[RunRef], node, engine: str, name: str = "out") -> BlockFile:
    """Merge any number of sorted runs on one node, multi-pass if needed.

    Step 5 merges p runs; when p exceeds the memory-feasible merge order
    the runs are merged in groups (this re-uses the same k-way machinery
    polyphase uses, as the paper prescribes).
    """
    disk, mem = node.disk, node.mem
    if not refs:
        return disk.new_file(1024, np.uint32, name=disk.next_file_name(name))
    B = refs[0].file.B
    dtype = refs[0].file.dtype
    k = max_merge_order(mem, B)
    level = list(refs)
    while True:
        if len(level) == 1 and level[0].start == 0 and level[0].stop == level[0].file.n_items:
            return level[0].file
        nxt: list[RunRef] = []
        for i in range(0, len(level), k):
            group = level[i : i + k]
            out = disk.new_file(B, dtype, name=disk.next_file_name(name))
            merge_runs(group, out, mem, compute=node.compute, engine=engine)
            nxt.append(RunRef.whole(out))
        level = nxt


def distribute_array(
    cluster: Cluster,
    perf: PerfVector,
    data: np.ndarray,
    block_items: int,
    timed: bool = False,
) -> list[BlockFile]:
    """Deal ``data`` onto the node disks in perf-proportional portions.

    The paper's measurements exclude the initial distribution; with
    ``timed=False`` (default) all clocks and counters are reset after the
    files are written.
    """
    portions = perf.portions(data.size)
    files: list[BlockFile] = []
    start = 0
    for node, l_i in zip(cluster.nodes, portions):
        f = node.disk.new_file(
            block_items, data.dtype, name=node.disk.next_file_name("input")
        )
        with BlockWriter(f, node.mem) as w:
            w.write(data[start : start + l_i])
        start += l_i
        files.append(f)
    if not timed:
        cluster.reset()
    return files


def sort_array(
    cluster: Cluster,
    perf: PerfVector,
    data: np.ndarray,
    config: PSRSConfig = PSRSConfig(),
) -> PSRSResult:
    """Convenience wrapper: distribute ``data`` (untimed), then sort."""
    inputs = distribute_array(cluster, perf, data, config.block_items)
    return sort_distributed(cluster, perf, inputs, config)


def gather_output(
    cluster: Cluster,
    result: PSRSResult,
    root: int = 0,
    message_items: int = 8192,
) -> BlockFile:
    """Collect the sorted per-node outputs onto the root node's disk.

    The paper *excludes* this from its timings ("the execution time does
    not comprise ... the gather time"), so it is a separate utility; it
    still charges the model (root-serialized receives, block-multiple
    messages), letting experiments quantify exactly what was excluded.
    Node outputs are already globally ordered by rank, so the gather is
    a concatenation.
    """
    from repro.extsort.multiway import RunCursor

    root_node = cluster.nodes[root]
    B = result.outputs[0].B if result.outputs else 1024
    dtype = result.outputs[0].dtype if result.outputs else np.uint32
    out = root_node.disk.new_file(
        B, dtype, name=root_node.disk.next_file_name("gathered")
    )
    with cluster.step("gather"):
        with BlockWriter(out, root_node.mem) as w:
            for rank, f in enumerate(result.outputs):
                if f.n_items == 0:
                    continue
                src = cluster.nodes[rank]
                cur = RunCursor(RunRef.whole(f), src.mem)
                from repro.core.redistribute import message_items_for

                caps = [
                    c
                    for c in (src.mem.capacity, root_node.mem.capacity)
                    if c is not None
                ]
                size = message_items_for(
                    message_items, f.B, min(caps) if caps else None
                )
                while not cur.exhausted:
                    parts, got = [], 0
                    while got < size and not cur.exhausted:
                        part = cur.take_upto(size - got)
                        got += part.size
                        parts.append(part)
                    chunk = parts[0] if len(parts) == 1 else np.concatenate(parts)
                    if rank != root:
                        cluster.network.transfer(src, root_node, chunk.nbytes)
                    with root_node.mem.reserve(chunk.size):
                        w.write(chunk)
    return out
