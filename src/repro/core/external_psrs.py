"""Algorithm 1: external PSRS for heterogeneous clusters.

The five steps of the paper, executed on a simulated
:class:`~repro.cluster.machine.Cluster` with BSP barriers between steps:

1. **local sort** — each node polyphase-merge-sorts its portion ``l_i``;
2. **pivot selection** — heterogeneity-aware regular sampling, gather on
   the designated node, pivot pick, broadcast;
3. **partition** — binary partitioning of the sorted portion into p
   sublists;
4. **redistribution** — sublist j travels to node j in block-multiple
   messages;
5. **final merge** — each node externally merges the p received runs
   (reusing the polyphase machinery's k-way merge).

The PSRS load-balance theorem carries over (paper §4): no node receives
more than twice its performance-proportional share (+ the duplicate
count d) — checked by the test suite via the returned metrics.

Fault tolerance (docs/FAULTS.md)
--------------------------------
Passing ``faults=`` (a :class:`~repro.faults.plan.FaultPlan` or an
installed :class:`~repro.faults.injector.FaultInjector`) and/or
``retry=`` (a :class:`~repro.faults.plan.RetryPolicy`) turns on
step-level recovery:

* every step's inputs are *checkpointed* at the preceding barrier (the
  sorted-run files, the pivots, the partition refs stay on disk until the
  sort commits), so a step that raises a transient
  :class:`~repro.faults.plan.FaultError` is simply re-run after the
  policy's backoff — charged to the simulated clocks;
* a node killed during steps 2-5 triggers *degraded mode*: its
  checkpointed sorted run is salvaged onto the fastest survivor, the
  perf vector is rescaled over the survivors, and steps 2-5 re-run on
  the survivor subcluster — the 2x bound then holds against the
  rescaled shares (``PSRSResult.optimal_sizes``);
* a node killed during step 1 is unrecoverable (no checkpoint exists
  yet) and raises :class:`~repro.faults.plan.NodeKilledError`.

Without these arguments the behaviour (and the charged cost model) is
bit-identical to the fault-free implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional, Sequence, Union

import numpy as np

from repro.cluster.machine import Cluster, ClusterView
from repro.cluster.node import SimNode
from repro.core.incore import files_to_array
from repro.core.partition import materialize_partitions, partition_offsets, partition_refs
from repro.core.perf import PerfVector
from repro.core.redistribute import RedistributionReport, message_items_for, redistribute
from repro.core.sampling import random_sample, regular_sample, sample_count, select_pivots
from repro.extsort.multiway import RunCursor, RunRef, max_merge_order, merge_runs
from repro.extsort.polyphase import polyphase_sort
from repro.extsort.runs import RunPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultCounters, FaultPlan, NodeKilledError, RetryPolicy
from repro.faults.recovery import StepRunner
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.stats import IOStats

FaultsArg = Union[FaultPlan, FaultInjector, None]


@dataclass(frozen=True)
class PSRSConfig:
    """Tunables of the external PSRS run.

    Attributes
    ----------
    block_items:
        The PDM block size B, in items.
    message_items:
        Step-4 message size, in items (the paper's best: 8K integers;
        Table 3 uses 32 Kb = 8K integers).  Clamped to a multiple of B.
    n_tapes:
        Polyphase file count for steps 1/5 (Table 3 uses 15; default
        picks from the memory budget).
    run_policy:
        Run formation in step 1: ``"load"`` or ``"replacement"``.
    engine:
        Merge engine: ``"vector"`` or ``"itemwise"``.
    materialize_partitions:
        Step 3 paper-faithful sublist files (True) or zero-copy ranges
        (False) — an ablation.
    pivot_method:
        ``"regular"`` (the paper), ``"random"`` (oversampling flavour)
        or ``"quantile"`` (exact boundaries by distributed counting
        search — the §3.2 extension; best balance, more step-2 I/O).
    oversample:
        Sample-count multiplier c (L_i = c*(p-1)*perf[i]); c=1 is the
        paper's literal count, the default c=4 refines the pivot grid.
    root:
        The designated pivot-selection node (falls back to the fastest
        survivor if it dies in degraded mode).
    seed:
        RNG seed (used only by ``pivot_method="random"``).
    """

    block_items: int = 1024
    message_items: int = 8192
    n_tapes: Optional[int] = None
    run_policy: RunPolicy = "load"
    engine: str = "vector"
    materialize_partitions: bool = True
    pivot_method: Literal["regular", "random", "quantile"] = "regular"
    oversample: int = 4
    root: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.block_items < 1:
            raise ValueError(f"block_items must be >= 1, got {self.block_items}")
        if self.message_items < 1:
            raise ValueError(f"message_items must be >= 1, got {self.message_items}")
        if self.pivot_method not in ("regular", "random", "quantile"):
            raise ValueError(f"unknown pivot_method {self.pivot_method!r}")
        if self.oversample < 1:
            raise ValueError(f"oversample must be >= 1, got {self.oversample}")


@dataclass
class PSRSResult:
    """Everything the paper's Table 3 reports, plus diagnostics.

    In degraded mode the per-node lists (``outputs``, ``received_sizes``,
    ``optimal_sizes``) cover the *surviving* nodes only — ``active_ranks``
    maps positions back to original cluster ranks and ``perf`` is the
    rescaled survivor perf vector.
    """

    outputs: list[BlockFile]
    perf: PerfVector
    n_items: int
    elapsed: float
    step_times: dict[str, float]
    pivots: np.ndarray
    received_sizes: list[int]
    optimal_sizes: list[float]
    io: IOStats
    network_bytes: int
    network_messages: int
    redistribution: RedistributionReport = field(default_factory=RedistributionReport)
    step_io: dict[str, IOStats] = field(default_factory=dict)
    faults: FaultCounters = field(default_factory=FaultCounters)
    active_ranks: list[int] = field(default_factory=list)

    @property
    def mean_partition(self) -> float:
        """Mean final partition size (paper Table 3 'Mean')."""
        return float(np.mean(self.received_sizes))

    @property
    def max_partition(self) -> int:
        """Largest final partition (paper Table 3 'Max')."""
        return max(self.received_sizes)

    @property
    def expansions(self) -> list[float]:
        """Per-node received/optimal ratio (perf-normalised)."""
        return [
            r / o if o > 0 else 1.0
            for r, o in zip(self.received_sizes, self.optimal_sizes)
        ]

    @property
    def s_max(self) -> float:
        """The sublist-expansion metric S(max) = max_i received_i/optimal_i."""
        return max(self.expansions)

    def to_array(self) -> np.ndarray:
        """Charge-free concatenation of the global sorted output."""
        return files_to_array(self.outputs)


def sort_distributed(
    cluster: Cluster,
    perf: PerfVector,
    inputs: Sequence[BlockFile],
    config: PSRSConfig = PSRSConfig(),
    *,
    faults: FaultsArg = None,
    retry: Optional[RetryPolicy] = None,
) -> PSRSResult:
    """Run Algorithm 1 on per-node input files already on the node disks.

    ``inputs[i]`` must live on ``cluster.nodes[i]``'s disk and its size
    should be node i's portion ``l_i`` (use :meth:`PerfVector.portions`).

    ``faults`` injects a :class:`~repro.faults.plan.FaultPlan` for the
    duration of the sort (an already-installed
    :class:`~repro.faults.injector.FaultInjector` is used as-is);
    ``retry`` enables step-level retry of transient faults.  Either
    argument switches the sort into checkpointed, recoverable execution.
    """
    injector: Optional[FaultInjector] = None
    installed_here = False
    if faults is not None:
        injector = faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        if not injector.installed:
            injector.install(cluster)
            installed_here = True
    try:
        return _sort_impl(cluster, perf, inputs, config, injector, retry)
    finally:
        if installed_here:
            injector.uninstall()


def _sort_impl(
    cluster: Cluster,
    perf: PerfVector,
    inputs: Sequence[BlockFile],
    config: PSRSConfig,
    injector: Optional[FaultInjector],
    retry: Optional[RetryPolicy],
) -> PSRSResult:
    p = cluster.p
    if perf.p != p:
        raise ValueError(f"perf has {perf.p} entries for a {p}-node cluster")
    if len(inputs) != p:
        raise ValueError(f"need {p} input files, got {len(inputs)}")
    n_items = sum(f.n_items for f in inputs)
    io_before = cluster.io_stats()
    rng = np.random.default_rng(config.seed)
    step_io: dict[str, IOStats] = {}
    _io_mark = [io_before]

    def _snap(step: str) -> None:
        now = cluster.io_stats()
        delta = now - _io_mark[0]
        step_io[step] = step_io[step] + delta if step in step_io else delta
        _io_mark[0] = now

    counters = injector.counters if injector is not None else FaultCounters()
    recovery = injector is not None or retry is not None
    runner = StepRunner(retry, counters)

    active = list(range(p))
    view = cluster.view(active)
    aperf = perf

    # ---- Step 1: local external sort -------------------------------------
    # With recovery on, the sorted runs double as the step-1 checkpoint:
    # they stay on disk until the sort commits, so any later step (or a
    # survivor taking over a dead node's portion) can restart from them.
    def _step1() -> list[BlockFile]:
        files: list[BlockFile] = []
        for node, f in zip(view.nodes, inputs):
            res = polyphase_sort(
                f,
                node.disk,
                node.mem,
                n_tapes=config.n_tapes,
                run_policy=config.run_policy,
                compute=node.compute,
                engine=config.engine,
            )
            files.append(res.output)
        return files

    sorted_by_rank = dict(zip(active, runner.run(view, "1:local-sort", _step1)))
    _snap("1:local-sort")

    # ---- Steps 2-5, re-entered from step 2 in degraded mode ---------------
    while True:
        sorted_files = [sorted_by_rank[r] for r in active]
        try:
            pivots = runner.run(
                view,
                "2:pivots",
                lambda: _pivot_step(view, aperf, sorted_files, config, rng),
            )
            _snap("2:pivots")

            partitions = runner.run(
                view,
                "3:partition",
                lambda: _partition_step(view, sorted_files, pivots, config),
            )
            _snap("3:partition")

            # Linear-space discipline (PDM: "algorithms should use O(n)
            # blocks of storage"): once a phase's files are consumed,
            # reclaim them.  With recovery on, reclamation is deferred to
            # the commit point — the consumed files are the checkpoint.
            if not recovery and config.materialize_partitions:
                for sf in sorted_files:
                    sf.clear()  # partitions hold the data now

            received, redist_report = runner.run(
                view,
                "4:redistribute",
                lambda: redistribute(view, partitions, config.message_items),
            )
            if not recovery:
                for row in partitions:
                    for ref in row:
                        if ref.start == 0 and ref.stop == ref.file.n_items:
                            ref.file.clear()  # receivers hold the data now
                if not config.materialize_partitions:
                    for sf in sorted_files:
                        sf.clear()
            _snap("4:redistribute")

            received_sizes = [
                sum(f.n_items for f in received[j]) for j in range(view.p)
            ]

            outputs = runner.run(
                view,
                "5:final-merge",
                lambda: _merge_step(view, received, config, clear_inputs=not recovery),
            )
            _snap("5:final-merge")
            break
        except NodeKilledError as exc:
            if not recovery or exc.step < 2:
                raise  # no checkpoint before the step-1 barrier
            counters.degraded = True
            active = [r for r in active if r != exc.rank]
            if not active:
                raise
            # The fastest survivor absorbs the dead node's portion.
            buddy = max(active, key=lambda r: (perf[r], -r))
            view = cluster.view(active)
            aperf = perf.subset(active)
            dead_file = sorted_by_rank.pop(exc.rank)
            sorted_by_rank[buddy] = _salvage_step(
                cluster,
                view,
                runner,
                exc.rank,
                buddy,
                dead_file,
                sorted_by_rank[buddy],
                config,
            )
            _snap("recover:salvage")

    if recovery:
        # Commit: the sort succeeded, reclaim every checkpointed file.
        for sf in sorted_files:
            sf.clear()
        for row in partitions:
            for ref in row:
                if ref.start == 0 and ref.stop == ref.file.n_items:
                    ref.file.clear()
        for j in range(view.p):
            for f in received[j]:
                if f is not outputs[j]:
                    f.clear()

    elapsed = view.barrier()
    optimal = [aperf.optimal_share(n_items, i) for i in range(view.p)]
    return PSRSResult(
        outputs=outputs,
        perf=aperf,
        n_items=n_items,
        elapsed=elapsed,
        step_times=cluster.trace.summary(),
        pivots=np.asarray(pivots),
        received_sizes=received_sizes,
        optimal_sizes=optimal,
        io=cluster.io_stats() - io_before,
        network_bytes=cluster.network.bytes_sent,
        network_messages=cluster.network.messages_sent,
        redistribution=redist_report,
        step_io=step_io,
        faults=counters,
        active_ranks=list(active),
    )


def _pivot_step(
    view: ClusterView,
    perf: PerfVector,
    sorted_files: Sequence[BlockFile],
    config: PSRSConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Step 2 on the (possibly degraded) node set; positional indexing."""
    p = view.p
    if p == 1:
        return np.empty(0, dtype=sorted_files[0].dtype)
    root = view.ranks.index(config.root) if config.root in view.ranks else 0
    if config.pivot_method == "quantile":
        from repro.core.quantiles import exact_quantile_pivots

        pivots, _report = exact_quantile_pivots(view, perf, sorted_files, root=root)
        return pivots
    samples = []
    for pos, (node, sf) in enumerate(zip(view.nodes, sorted_files)):
        if config.pivot_method == "regular":
            s = regular_sample(sf, perf, pos, node.mem, config.oversample)
        else:
            s = random_sample(
                sf,
                max(1, sample_count(perf[pos], p, config.oversample)),
                node.mem,
                rng,
            )
        samples.append(s)
    gathered = view.comm.gather(samples, root=root)
    candidates = np.concatenate(gathered)
    pivots = select_pivots(
        candidates,
        perf,
        compute=view.nodes[root].compute,
        oversample=config.oversample,
    )
    return view.comm.bcast(pivots, root=root)[0]


def _partition_step(
    view: ClusterView,
    sorted_files: Sequence[BlockFile],
    pivots: np.ndarray,
    config: PSRSConfig,
) -> list[list[RunRef]]:
    """Step 3: per-node binary partitioning of the sorted portions."""
    partitions: list[list[RunRef]] = []
    for node, sf in zip(view.nodes, sorted_files):
        cuts = partition_offsets(sf, pivots, node.mem)
        if config.materialize_partitions:
            files = materialize_partitions(sf, cuts, node.disk, node.mem)
            partitions.append([RunRef.whole(f) for f in files])
        else:
            partitions.append(partition_refs(sf, cuts))
    return partitions


def _merge_step(
    view: ClusterView,
    received: Sequence[list[BlockFile]],
    config: PSRSConfig,
    clear_inputs: bool,
) -> list[BlockFile]:
    """Step 5: every node merges its received runs."""
    outputs: list[BlockFile] = []
    for j, node in enumerate(view.nodes):
        refs = [RunRef.whole(f) for f in received[j] if f.n_items > 0]
        out = merge_many(
            refs, node, config.engine, name=f"out{j}", B=config.block_items
        )
        if clear_inputs:
            for f in received[j]:
                if f is not out:
                    f.clear()
        outputs.append(out)
    return outputs


def _salvage_step(
    cluster: Cluster,
    view: ClusterView,
    runner: StepRunner,
    dead_rank: int,
    buddy_rank: int,
    dead_file: BlockFile,
    buddy_file: BlockFile,
    config: PSRSConfig,
) -> BlockFile:
    """Recover a dead node's checkpointed sorted run onto a survivor.

    The node process is dead but its disk is not (a crash is not media
    loss): the buddy streams the dead node's step-1 run over the network
    in block-multiple messages — charged to the dead disk, the link and
    the buddy's disk — then k-way-merges it with its own run so the
    survivor set again holds one sorted portion per active node.
    """
    dead = cluster.nodes[dead_rank]
    buddy = cluster.nodes[buddy_rank]

    def _salvage() -> BlockFile:
        out = buddy.disk.new_file(
            dead_file.B, dead_file.dtype, name=buddy.disk.next_file_name("salvage")
        )
        size = message_items_for(
            config.message_items, dead_file.B, buddy.mem.capacity
        )
        cur = RunCursor(RunRef.whole(dead_file), buddy.mem)
        try:
            with BlockWriter(out, buddy.mem) as w:
                while not cur.exhausted:
                    parts, got = [], 0
                    while got < size and not cur.exhausted:
                        part = cur.take_upto(size - got)
                        got += part.size
                        parts.append(part)
                    if not got:
                        continue
                    chunk = parts[0] if len(parts) == 1 else np.concatenate(parts)
                    cluster.network.transfer(dead, buddy, chunk.nbytes, item_bytes=chunk.dtype.itemsize)
                    with buddy.mem.reserve(chunk.size):
                        w.write(chunk)
        finally:
            cur.drop()
        return out

    salvaged = runner.run(view, "recover:salvage", _salvage)

    def _remerge() -> BlockFile:
        refs = [RunRef.whole(f) for f in (buddy_file, salvaged) if f.n_items > 0]
        if not refs:
            return buddy_file
        if len(refs) == 1:
            return refs[0].file
        return merge_many(refs, buddy, config.engine, name="resort")

    merged = runner.run(view, "recover:remerge", _remerge)
    for f in (dead_file, buddy_file, salvaged):
        if f is not merged:
            f.clear()
    return merged


def merge_many(
    refs: list[RunRef],
    node: SimNode,
    engine: str,
    name: str = "out",
    B: int | None = None,
    dtype: np.dtype | type = np.uint32,
) -> BlockFile:
    """Merge any number of sorted runs on one node, multi-pass if needed.

    Step 5 merges p runs; when p exceeds the memory-feasible merge order
    the runs are merged in groups (this re-uses the same k-way machinery
    polyphase uses, as the paper prescribes).  ``B`` / ``dtype`` shape the
    output file only when ``refs`` is empty (a node that received
    nothing); otherwise the geometry comes from the runs themselves.
    """
    disk, mem = node.disk, node.mem
    if not refs:
        if B is None:
            raise ValueError("merge_many with no runs needs an explicit B")
        return disk.new_file(B, dtype, name=disk.next_file_name(name))
    B = refs[0].file.B
    dtype = refs[0].file.dtype
    k = max_merge_order(mem, B)
    level = list(refs)
    while True:
        if len(level) == 1 and level[0].start == 0 and level[0].stop == level[0].file.n_items:
            return level[0].file
        nxt: list[RunRef] = []
        for i in range(0, len(level), k):
            group = level[i : i + k]
            out = disk.new_file(B, dtype, name=disk.next_file_name(name))
            merge_runs(group, out, mem, compute=node.compute, engine=engine)
            nxt.append(RunRef.whole(out))
        level = nxt


def distribute_array(
    cluster: Cluster,
    perf: PerfVector,
    data: np.ndarray,
    block_items: int,
    timed: bool = False,
) -> list[BlockFile]:
    """Deal ``data`` onto the node disks in perf-proportional portions.

    The paper's measurements exclude the initial distribution; with
    ``timed=False`` (default) all clocks and counters are reset after the
    files are written.
    """
    portions = perf.portions(data.size)
    files: list[BlockFile] = []
    start = 0
    for node, l_i in zip(cluster.nodes, portions):
        f = node.disk.new_file(
            block_items, data.dtype, name=node.disk.next_file_name("input")
        )
        with BlockWriter(f, node.mem) as w:
            w.write(data[start : start + l_i])  # repro: noqa REP105(setup distribution; excluded from measurement, clocks reset below unless timed)
        start += l_i
        files.append(f)
    if not timed:
        cluster.reset()
    return files


def sort_array(
    cluster: Cluster,
    perf: PerfVector,
    data: np.ndarray,
    config: PSRSConfig = PSRSConfig(),
    *,
    faults: FaultsArg = None,
    retry: Optional[RetryPolicy] = None,
) -> PSRSResult:
    """Convenience wrapper: distribute ``data`` (untimed), then sort."""
    inputs = distribute_array(cluster, perf, data, config.block_items)
    return sort_distributed(cluster, perf, inputs, config, faults=faults, retry=retry)


def gather_output(
    cluster: Cluster,
    result: PSRSResult,
    root: int = 0,
    message_items: int = 8192,
) -> BlockFile:
    """Collect the sorted per-node outputs onto the root node's disk.

    The paper *excludes* this from its timings ("the execution time does
    not comprise ... the gather time"), so it is a separate utility; it
    still charges the model (root-serialized receives, block-multiple
    messages), letting experiments quantify exactly what was excluded.
    Node outputs are already globally ordered by rank, so the gather is
    a concatenation.  In degraded mode ``result.active_ranks`` maps the
    outputs back to their owning nodes.
    """
    from repro.extsort.multiway import RunCursor

    root_node = cluster.nodes[root]
    B = result.outputs[0].B if result.outputs else 1024
    dtype = result.outputs[0].dtype if result.outputs else np.uint32
    ranks = result.active_ranks or list(range(len(result.outputs)))
    out = root_node.disk.new_file(
        B, dtype, name=root_node.disk.next_file_name("gathered")
    )
    with cluster.step("gather"):
        with BlockWriter(out, root_node.mem) as w:
            for rank, f in zip(ranks, result.outputs):
                if f.n_items == 0:
                    continue
                src = cluster.nodes[rank]
                cur = RunCursor(RunRef.whole(f), src.mem)
                from repro.core.redistribute import message_items_for

                caps = [
                    c
                    for c in (src.mem.capacity, root_node.mem.capacity)
                    if c is not None
                ]
                size = message_items_for(
                    message_items, f.B, min(caps) if caps else None
                )
                while not cur.exhausted:
                    parts, got = [], 0
                    while got < size and not cur.exhausted:
                        part = cur.take_upto(size - got)
                        got += part.size
                        parts.append(part)
                    chunk = parts[0] if len(parts) == 1 else np.concatenate(parts)
                    if rank != root:
                        cluster.network.transfer(src, root_node, chunk.nbytes, item_bytes=chunk.dtype.itemsize)
                    with root_node.mem.reserve(chunk.size):
                        w.write(chunk)
    return out
