"""Heterogeneous hyperquicksort — the paper's stated future work (§6).

    "It is still challenging to explore in deep quicksort based
    approaches ... in the context of non homogeneous clusters."

This module explores exactly that, in core, as a comparator for the
expansion/ablation benches.  Classic hyperquicksort (Quinn '89) works on
a hypercube: at each level the node group picks a pivot, the lower half
of the group keeps keys <= pivot and the upper half the rest, then each
half recurses; after ~log2(p) levels each node holds a contiguous key
range and sorts it locally.

Heterogeneous twist implemented here:

* the group splits so the two halves' *aggregate performance* is as even
  as possible (so p need not be a power of two),
* the pivot targets the quantile matching the lower half's performance
  share (a plain median drowns a {4,4,1,1} machine's slow pair),
* parts arriving into a half are assigned to its least-loaded member
  relative to perf.

The structural weakness versus PSRS is inherent: every level's pivot is
estimated from a fresh small sample and errors *compound* across levels,
so the expansion is noticeably worse than one-step regular sampling —
one concrete reason the paper stuck with sampling algorithms (see the
sampling ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.machine import Cluster
from repro.core.incore import (
    concat_for_verification,
    concat_in_memory,
    merge_in_memory,
    sort_in_memory,
)
from repro.core.perf import PerfVector


@dataclass
class HyperquicksortResult:
    """Sorted per-node arrays plus load-balance metrics."""

    outputs: list[np.ndarray]
    perf: PerfVector
    n_items: int
    elapsed: float
    levels: int
    received_sizes: list[int]
    optimal_sizes: list[float]

    @property
    def expansions(self) -> list[float]:
        return [
            r / o if o > 0 else 1.0
            for r, o in zip(self.received_sizes, self.optimal_sizes)
        ]

    @property
    def s_max(self) -> float:
        return max(self.expansions)

    def to_array(self) -> np.ndarray:
        return concat_for_verification(self.outputs)


def split_group(group: list[int], perf: PerfVector) -> tuple[list[int], list[int], float]:
    """Split a contiguous rank group so both halves' aggregate perf is as
    even as possible; returns ``(low, high, low_perf_share)``."""
    if len(group) < 2:
        raise ValueError("cannot split a group of fewer than 2 nodes")
    total = sum(perf[i] for i in group)
    best_cut, best_gap = 1, float("inf")
    for cut in range(1, len(group)):
        low_share = sum(perf[i] for i in group[:cut]) / total
        gap = abs(low_share - 0.5)
        if gap < best_gap:
            best_cut, best_gap = cut, gap
    low, high = group[:best_cut], group[best_cut:]
    return low, high, sum(perf[i] for i in low) / total


def sort_hyperquicksort(
    cluster: Cluster,
    perf: PerfVector,
    portions: Sequence[np.ndarray],
    sample_per_node: int = 64,
    seed: int = 0,
) -> HyperquicksortResult:
    """Run heterogeneous hyperquicksort over per-node arrays (in core)."""
    p = cluster.p
    if perf.p != p or len(portions) != p:
        raise ValueError("perf/portions must match the cluster size")
    if sample_per_node < 1:
        raise ValueError(f"sample_per_node must be >= 1, got {sample_per_node}")
    n_items = sum(np.asarray(a).size for a in portions)
    rng = np.random.default_rng(seed)
    dtype = np.asarray(portions[0]).dtype if portions else np.dtype(np.uint32)

    # Initial local sort (as in classic hyperquicksort).
    data: list[np.ndarray] = []
    with cluster.step("1:local-sort"):
        for node, arr in zip(cluster.nodes, portions):
            data.append(sort_in_memory(np.asarray(arr), node))

    levels = 0
    groups = [list(range(p))]
    while any(len(g) > 1 for g in groups):
        levels += 1
        next_groups: list[list[int]] = []
        with cluster.step(f"level-{levels}"):
            for group in groups:
                if len(group) == 1:
                    next_groups.append(group)
                    continue
                low, high, low_share = split_group(group, perf)
                _exchange_level(
                    cluster, perf, data, group, low, high, low_share,
                    sample_per_node, rng, dtype,
                )
                next_groups.extend([low, high])
        groups = next_groups

    elapsed = cluster.barrier()
    received = [int(a.size) for a in data]
    return HyperquicksortResult(
        outputs=data,
        perf=perf,
        n_items=n_items,
        elapsed=elapsed,
        levels=levels,
        received_sizes=received,
        optimal_sizes=[perf.optimal_share(n_items, i) for i in range(p)],
    )


def _exchange_level(
    cluster: Cluster,
    perf: PerfVector,
    data: list[np.ndarray],
    group: list[int],
    low: list[int],
    high: list[int],
    low_share: float,
    sample_per_node: int,
    rng: np.random.Generator,
    dtype: np.dtype,
) -> None:
    """One hyperquicksort level on one group: pivot, split, exchange, merge."""
    leader = group[0]

    # Pivot from a random sample, at the low half's performance quantile.
    samples = []
    for i in group:
        arr = data[i]
        k = min(arr.size, sample_per_node)
        pick = arr[rng.integers(0, arr.size, size=k)] if k else arr[:0]
        cluster.nodes[i].compute(float(k))
        if i != leader and pick.size:
            # The leader works on its *received* copy, not the sender's array.
            pick = cluster.comm.send(i, leader, pick)
        samples.append(pick)
    root = cluster.nodes[leader]
    cand = sort_in_memory(concat_in_memory(samples, root), root)
    if cand.size == 0:
        return  # group holds no data; nothing to exchange
    pivot_local = cand[min(cand.size - 1, int(low_share * cand.size))]
    # Every member splits on its own received copy of the pivot; copies are
    # identical, so the leader's suffices for the loop below.
    pivot = cluster.comm.bcast(np.asarray([pivot_local]), root=leader)[leader][0]

    # Split every member's sorted holdings at the pivot.
    lows: dict[int, np.ndarray] = {}
    highs: dict[int, np.ndarray] = {}
    for i in group:
        arr = data[i]
        cut = int(np.searchsorted(arr, pivot, side="right"))
        cluster.nodes[i].compute(float(np.log2(max(2, arr.size))))
        lows[i], highs[i] = arr[:cut], arr[cut:]

    # Route misplaced parts to the least-loaded (relative to perf) member
    # of the destination half, then merge at each receiver.
    incoming: dict[int, list[np.ndarray]] = {i: [] for i in group}
    kept = {i: (lows[i] if i in low else highs[i]) for i in group}
    load = {i: kept[i].size / perf[i] for i in group}

    def route(part: np.ndarray, src: int, half: list[int]) -> None:
        if not part.size:
            return
        dst = min(half, key=lambda j: load[j])
        if dst != src:
            # The receiver merges its own copy of the part.
            part = cluster.comm.send(src, dst, part)
        incoming[dst].append(part)
        load[dst] += part.size / perf[dst]

    for i in high:
        route(lows[i], i, low)
    for i in low:
        route(highs[i], i, high)

    for i in group:
        pieces = [kept[i]] + incoming[i]
        pieces = [q for q in pieces if q.size]
        if pieces:
            data[i] = merge_in_memory(pieces, cluster.nodes[i])
        else:
            data[i] = np.empty(0, dtype=dtype)


def sort_array_hyperquicksort(
    cluster: Cluster,
    perf: PerfVector,
    data: np.ndarray,
    sample_per_node: int = 64,
    seed: int = 0,
) -> HyperquicksortResult:
    """Distribute ``data`` perf-proportionally (untimed) and sort."""
    portions = perf.portions(data.size)
    arrays, start = [], 0
    for l_i in portions:
        arrays.append(np.asarray(data[start : start + l_i]))
        start += l_i
    cluster.reset()
    return sort_hyperquicksort(
        cluster, perf, arrays, sample_per_node=sample_per_node, seed=seed
    )
