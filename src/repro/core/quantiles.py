"""Exact quantile pivots by distributed counting search (§3.2 extension).

The paper notes (citing the author's HiPC'2000 work) that *quantiles*
"can be used to partition the inputs in chunks of almost equal sizes and
lead to an algorithm that is less memory consuming than the original
PSRS with equal time performances."  This module implements the
out-of-core version: instead of sampling, the designated node finds each
performance-proportional boundary *exactly* by binary search on the key
space, where each probe value ``v`` is resolved into a global rank by
asking every node for ``|{x <= v}|`` on its sorted file (a charged
O(log n_blocks) binary search per node per probe).

Trade-off (measured in the sampling ablation bench): S(max) becomes
1 + O(p/l_i) — essentially perfect — at the price of
O(p * log(key range) * log(n_blocks)) extra step-2 block reads and one
small message round-trip per probe round, where sampling needs a single
gather.  Memory: only the p-1 search intervals, no candidate buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.machine import Cluster
from repro.core.partition import lower_bound_offset
from repro.core.perf import PerfVector
from repro.pdm.blockfile import BlockFile


@dataclass
class QuantileSearchReport:
    """Diagnostics of one pivot search."""

    rounds: int = 0
    probes: int = 0

    def bump(self, n_probes: int) -> None:
        self.rounds += 1
        self.probes += n_probes


def boundary_targets(perf: PerfVector, n: int) -> list[int]:
    """Global ranks the p-1 pivots must realise: ``round(n*cum_j/total)``."""
    cum = np.cumsum(perf.values)[:-1]
    return [int(round(n * c / perf.total)) for c in cum]


def global_count_leq(
    cluster: Cluster, files: Sequence[BlockFile], value: "int | np.generic"
) -> int:
    """Cluster-wide ``|{x <= value}|`` (charges every node's disk)."""
    total = 0
    with cluster.step("count-leq"):
        for node, f in zip(cluster.nodes, files):
            total += lower_bound_offset(f, value, node.mem)
    return total


def _key_space(cluster: Cluster, files: Sequence[BlockFile]) -> tuple[int, int]:
    """Global [min, max] keys, read (charged) from each file's end blocks."""
    lo, hi = None, None
    for node, f in zip(cluster.nodes, files):
        if f.n_items == 0:
            continue
        with node.mem.reserve(f.inspect_block(0).size):
            first = int(f.read_block(0)[0])
        with node.mem.reserve(f.inspect_block(f.n_blocks - 1).size):
            last = int(f.read_block(f.n_blocks - 1)[-1])
        lo = first if lo is None else min(lo, first)
        hi = last if hi is None else max(hi, last)
    if lo is None:
        raise ValueError("cannot take quantiles of an empty input")
    return lo, hi


def exact_quantile_pivots(
    cluster: Cluster,
    perf: PerfVector,
    sorted_files: Sequence[BlockFile],
    root: int = 0,
) -> tuple[np.ndarray, QuantileSearchReport]:
    """Find the p-1 exact boundary keys for integer-keyed sorted files.

    For each boundary target t, returns the smallest key v with
    ``count_leq(v) >= t`` — the upper-bound partitioning rule the rest of
    the pipeline uses (``side='right'``), so the realised partition
    sizes differ from the targets only by duplicate ties at v.

    Communication per round: the root broadcasts the unresolved probe
    values and gathers one count per node (tiny messages); the per-node
    counting reads are charged to each node's disk and clock.
    """
    p = cluster.p
    if perf.p != p or len(sorted_files) != p:
        raise ValueError("perf/files must match the cluster size")
    dtype = sorted_files[0].dtype
    report = QuantileSearchReport()
    if p == 1:
        return np.empty(0, dtype=dtype), report

    n = sum(f.n_items for f in sorted_files)
    if n == 0:
        raise ValueError("cannot take quantiles of an empty input")
    targets = boundary_targets(perf, n)
    key_lo, key_hi = _key_space(cluster, sorted_files)

    lo = [key_lo - 1] * len(targets)  # invariant: count_leq(lo) < target
    hi = [key_hi] * len(targets)  # invariant: count_leq(hi) >= target
    while True:
        unresolved = [j for j in range(len(targets)) if lo[j] + 1 < hi[j]]
        if not unresolved:
            break
        mids = {j: (lo[j] + hi[j]) // 2 for j in unresolved}
        # Root broadcasts probes; every node answers with local counts.
        probe_arr = np.asarray(sorted(set(mids.values())), dtype=np.int64)
        probes_by_rank = cluster.comm.bcast(probe_arr, root=root)
        counts = {int(v): 0 for v in probe_arr}
        local = []
        for pos, (node, f) in enumerate(zip(cluster.nodes, sorted_files)):
            # Each node answers from its own received copy of the probes.
            # Collectives index by *position* in the (possibly degraded)
            # view, not by global rank — a survivor view of ranks [0, 2]
            # returns a 2-element list.
            probes = probes_by_rank[pos]
            row = np.asarray(
                [lower_bound_offset(f, dtype.type(v), node.mem) for v in probes],
                dtype=np.int64,
            )
            local.append(row)
        gathered = cluster.comm.gather(local, root=root)
        for row in gathered:
            for v, c in zip(probe_arr, row):
                counts[int(v)] += int(c)
        for j in unresolved:
            if counts[mids[j]] >= targets[j]:
                hi[j] = mids[j]
            else:
                lo[j] = mids[j]
        report.bump(len(unresolved))

    pivots = np.asarray(hi, dtype=dtype)
    pivots = cluster.comm.bcast(pivots, root=root)[0]
    return pivots, report
