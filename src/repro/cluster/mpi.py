"""mpi4py-shaped collectives over the simulated network.

The simulation executes all ranks in one Python process, so a
"collective" here both moves the payload (plain numpy arrays handed
across) and charges the network/clock model with the same message
schedule a real MPI implementation would use:

* gather — every rank sends to the root, root-serialized,
* bcast — binomial tree (log2 p rounds),
* scatter — root sends each rank its slice,
* alltoall(v) — p-1 rotation rounds; in round ``r`` rank ``i`` exchanges
  with ranks ``i±r`` (the classic "phased" schedule), each message
  contending for the NIC channels in :class:`~repro.cluster.network.Network`.

Payloads are numpy arrays; byte counts come from ``arr.nbytes``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster.network import Network
from repro.cluster.node import SimNode


class SimComm:
    """A communicator over a fixed list of nodes."""

    def __init__(self, nodes: Sequence[SimNode], network: Network) -> None:
        if not nodes:
            raise ValueError("communicator needs at least one node")
        self.nodes = list(nodes)
        self.network = network
        # Ranks inside the communicator are *positions* in ``nodes``; the
        # nodes keep their global ranks for NIC-channel bookkeeping, which
        # is what lets a survivor subset (degraded mode) form a smaller
        # communicator over the same network.
        seen: set[int] = set()
        for nd in self.nodes:
            if nd.rank in seen:
                raise ValueError(f"node rank {nd.rank} appears twice")
            seen.add(nd.rank)

    @property
    def size(self) -> int:
        return len(self.nodes)

    # -- point to point ------------------------------------------------------

    def send(self, src: int, dst: int, payload: np.ndarray) -> np.ndarray:
        """Move ``payload`` from rank src to dst (copies; charges the model)."""
        arr = np.asarray(payload)
        self.network.transfer(self.nodes[src], self.nodes[dst], arr.nbytes, item_bytes=arr.itemsize)
        return arr.copy()

    # -- collectives ---------------------------------------------------------

    def gather(self, payloads: Sequence[np.ndarray], root: int = 0) -> list[np.ndarray]:
        """Every rank's payload arrives at ``root``; returns the list."""
        self._check_rank(root)
        if len(payloads) != self.size:
            raise ValueError(f"need {self.size} payloads, got {len(payloads)}")
        out: list[np.ndarray] = []
        for i, arr in enumerate(payloads):
            arr = np.asarray(arr)
            if i != root:
                self.network.transfer(self.nodes[i], self.nodes[root], arr.nbytes, item_bytes=arr.itemsize)
            out.append(arr.copy())
        return out

    def bcast(self, payload: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Binomial-tree broadcast; returns per-rank copies."""
        self._check_rank(root)
        arr = np.asarray(payload)
        p = self.size
        # Work in root-relative rank space: relative 0 is the root.
        have = {0}
        step = 1
        while step < p:
            for rel in sorted(have):
                peer = rel + step
                if peer < p and peer not in have:
                    src = (root + rel) % p
                    dst = (root + peer) % p
                    self.network.transfer(self.nodes[src], self.nodes[dst], arr.nbytes, item_bytes=arr.itemsize)
                    have.add(peer)
            step *= 2
        return [arr.copy() for _ in range(p)]

    def scatter(self, payloads: Sequence[np.ndarray], root: int = 0) -> list[np.ndarray]:
        """Root sends slice i to rank i; returns per-rank arrays."""
        self._check_rank(root)
        if len(payloads) != self.size:
            raise ValueError(f"need {self.size} payloads, got {len(payloads)}")
        out: list[np.ndarray] = []
        for i, arr in enumerate(payloads):
            arr = np.asarray(arr)
            if i != root:
                self.network.transfer(self.nodes[root], self.nodes[i], arr.nbytes, item_bytes=arr.itemsize)
            out.append(arr.copy())
        return out

    def alltoallv(
        self, matrix: Sequence[Sequence[Optional[np.ndarray]]]
    ) -> list[list[Optional[np.ndarray]]]:
        """``matrix[i][j]`` goes from rank i to rank j; returns the transpose.

        Messages follow the rotation schedule: round r moves every
        ``i -> (i + r) mod p`` message; NIC contention is resolved by the
        network's channel model.  ``None`` entries send nothing.
        """
        p = self.size
        if len(matrix) != p or any(len(row) != p for row in matrix):
            raise ValueError(f"matrix must be {p}x{p}")
        recv: list[list[Optional[np.ndarray]]] = [[None] * p for _ in range(p)]
        for i in range(p):
            if matrix[i][i] is not None:
                recv[i][i] = np.asarray(matrix[i][i]).copy()
        for r in range(1, p):
            for i in range(p):
                j = (i + r) % p
                arr = matrix[i][j]
                if arr is None:
                    continue
                arr = np.asarray(arr)
                self.network.transfer(self.nodes[i], self.nodes[j], arr.nbytes, item_bytes=arr.itemsize)
                recv[j][i] = arr.copy()
        return recv

    def barrier(self) -> float:
        """Synchronise all clocks (BSP superstep boundary)."""
        from repro.cluster.simclock import barrier as _barrier

        return _barrier([n.clock for n in self.nodes])

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self.size):
            raise ValueError(f"rank {r} out of range 0..{self.size - 1}")
