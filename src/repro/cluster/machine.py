"""Cluster assembly: specs, construction, step orchestration.

:func:`paper_cluster` recreates the paper's Table-1 machine: four Alpha
21164 nodes with SCSI work disks, two of them loaded to run ~4x slower,
on Fast-Ethernet (optionally Myrinet).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence, Union

from repro.cluster.kernel import ExecutionKernel, make_kernel
from repro.cluster.mpi import SimComm
from repro.cluster.network import FAST_ETHERNET, LinkModel, Network
from repro.cluster.node import CpuParams, SimNode
from repro.cluster.trace import Trace
from repro.obs.bus import TelemetryBus
from repro.pdm.disk import DiskParams
from repro.pdm.stats import IOStats


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one node."""

    name: str
    speed: float = 1.0
    memory_items: Optional[int] = None
    disk: DiskParams = field(default_factory=DiskParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    io_scaled_by_speed: bool = True
    n_disks: int = 1


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster."""

    nodes: tuple[NodeSpec, ...]
    link: LinkModel = FAST_ETHERNET
    packet_bytes: int = 32 * 1024

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")

    @property
    def p(self) -> int:
        return len(self.nodes)

    def with_link(self, link: LinkModel) -> "ClusterSpec":
        return replace(self, link=link)

    def with_packet_bytes(self, packet_bytes: int) -> "ClusterSpec":
        return replace(self, packet_bytes=packet_bytes)

    def with_memory(self, memory_items: Optional[int]) -> "ClusterSpec":
        return replace(
            self, nodes=tuple(replace(n, memory_items=memory_items) for n in self.nodes)
        )


def _synced_barrier(
    kernel: ExecutionKernel, nodes: Sequence[SimNode], bus: TelemetryBus
) -> float:
    """Kernel sync with per-participant ``BarrierWait`` telemetry."""
    before = [kernel.node_time(n) for n in nodes]
    t1 = kernel.sync(nodes)
    name = bus.current_step or "sync"
    for n, t0 in zip(nodes, before):
        bus.record_barrier_wait(name, n.rank, t1, t1 - t0)
    return t1


class Cluster:
    """A live simulated cluster built from a :class:`ClusterSpec`.

    ``kernel`` selects the execution scheduler (see
    :mod:`repro.cluster.kernel`): ``"event"`` (default) lets nodes
    advance independently between true synchronization points with
    overlap-aware disk service; ``"lockstep"`` reproduces the original
    barrier-per-step BSP semantics bit for bit.
    """

    def __init__(
        self, spec: ClusterSpec, kernel: Union[str, ExecutionKernel] = "event"
    ) -> None:
        self.spec = spec
        self.nodes: list[SimNode] = [
            SimNode(
                rank=i,
                speed=ns.speed,
                memory_items=ns.memory_items,
                disk_params=ns.disk,
                cpu_params=ns.cpu,
                name=ns.name,
                io_scaled_by_speed=ns.io_scaled_by_speed,
                n_disks=ns.n_disks,
            )
            for i, ns in enumerate(spec.nodes)
        ]
        self.network = Network(spec.link, spec.p, spec.packet_bytes)
        self.comm = SimComm(self.nodes, self.network)
        #: The cluster's telemetry bus — single source of truth for step
        #: intervals (the :attr:`trace` view), phase-attributed I/O
        #: counters and every exported event stream.
        self.bus = TelemetryBus()
        self.network.bus = self.bus
        #: Execution kernel: owns the cost-to-clock mapping and the
        #: synchronization semantics of every step and barrier.
        self.kernel = make_kernel(kernel)
        self.kernel.attach(self.nodes)
        for node in self.nodes:
            node.disk.bus = self.bus
            node.mem.bus = self.bus
            node.bus = self.bus
        #: Callbacks fired (with the step name) at the start of every
        #: :meth:`step`; the fault injector's node kills are raised here.
        self.step_observers: list = []

    @property
    def trace(self) -> Trace:
        """Per-step interval view derived from the telemetry bus."""
        return self.bus.trace

    @property
    def p(self) -> int:
        return len(self.nodes)

    @property
    def speeds(self) -> list[float]:
        return [n.speed for n in self.nodes]

    def elapsed(self) -> float:
        """Simulated wall time = the furthest node, pending work included."""
        return max(self.kernel.node_time(n) for n in self.nodes)

    def barrier(self) -> float:
        """True synchronization point (settles pending work under the
        event kernel, then jumps every clock to the maximum).

        Emits one ``BarrierWait`` per participant — the wait is measured
        from the node's *pending-work-inclusive* time, so write-behind
        that is still draining counts as busy, not idle.  These events
        are what gives the profiler explicit rendezvous points under the
        event kernel (step boundaries are barrier-free there).
        """
        return _synced_barrier(self.kernel, self.nodes, self.bus)

    @contextmanager
    def step(self, name: str) -> Iterator[None]:
        """Kernel-delimited algorithm step; publishes step telemetry.

        Emits per-node ``StepBegin`` / ``StepEnd`` events on the bus
        (the ``StepEnd`` records also maintain the :attr:`trace` view)
        and attributes every event emitted inside the body to ``name``
        via the bus's step scope.  Under the lockstep kernel the step is
        barrier-delimited and per-node ``BarrierWait`` events are
        emitted; under the event kernel nodes flow through the boundary
        at their own clocks.  A body that raises (an injected fault)
        leaves no end events, matching the pre-bus trace semantics:
        only completed attempts are timed.
        """
        self.kernel.step_enter(self.nodes)
        for obs in list(self.step_observers):
            obs(name)
        starts = [n.clock.time for n in self.nodes]
        for n in self.nodes:
            self.bus.record_step_begin(name, n.rank, starts[n.rank])
        with self.bus.step_scope(name):
            yield
        ends = [n.clock.time for n in self.nodes]
        for n in self.nodes:
            self.bus.record_step_end(name, n.rank, starts[n.rank], ends[n.rank])
        t1 = self.kernel.step_exit(self.nodes)
        if t1 is not None:
            for n in self.nodes:
                self.bus.record_barrier_wait(name, n.rank, t1, t1 - ends[n.rank])

    def io_stats(self) -> IOStats:
        """Aggregate disk counters across all nodes."""
        return IOStats.merge([n.disk.stats for n in self.nodes])

    def view(self, ranks: Sequence[int]) -> "ClusterView":
        """A live view over a subset of nodes (degraded-mode survivors)."""
        return ClusterView(self, ranks)

    def reset(self) -> None:
        """Zero clocks, counters, network channels and the trace.

        Used after untimed setup (the paper excludes the initial data
        distribution from its measurements).
        """
        for n in self.nodes:
            n.reset()
        self.network.reset()
        self.kernel.reset()
        self.bus.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(f"{n.name}(x{n.speed:g})" for n in self.nodes)
        return f"Cluster[{names}] over {self.spec.link.name}"


class ClusterView:
    """A subset of a cluster's nodes presented with the Cluster interface.

    Degraded mode runs steps 2-5 over the surviving nodes only: the view
    shares the parent's network, trace and step observers, but its
    ``nodes`` / ``comm`` / ``barrier`` cover the chosen ranks, so every
    algorithm step written against a :class:`Cluster` runs unchanged over
    the survivors.  A full-range view (``ranks == range(p)``) behaves
    identically to the cluster itself.
    """

    def __init__(self, cluster: Cluster, ranks: Sequence[int]) -> None:
        ranks = list(ranks)
        if not ranks:
            raise ValueError("a cluster view needs at least one node")
        if any(not (0 <= r < cluster.p) for r in ranks):
            raise ValueError(f"ranks {ranks} out of range for a {cluster.p}-node cluster")
        self.cluster = cluster
        self.ranks = ranks
        self.nodes = [cluster.nodes[r] for r in ranks]
        self.network = cluster.network
        self.comm = SimComm(self.nodes, cluster.network)
        self.spec = cluster.spec

    @property
    def p(self) -> int:
        return len(self.nodes)

    @property
    def trace(self) -> Trace:
        return self.cluster.trace

    @property
    def bus(self) -> TelemetryBus:
        return self.cluster.bus

    @property
    def kernel(self) -> ExecutionKernel:
        return self.cluster.kernel

    def elapsed(self) -> float:
        return max(self.kernel.node_time(n) for n in self.nodes)

    def barrier(self) -> float:
        return _synced_barrier(self.kernel, self.nodes, self.bus)

    @contextmanager
    def step(self, name: str) -> Iterator[None]:
        """Kernel-delimited step over the view's nodes only."""
        self.kernel.step_enter(self.nodes)
        for obs in list(self.cluster.step_observers):
            obs(name)
        bus = self.cluster.bus
        starts = [n.clock.time for n in self.nodes]
        for start, n in zip(starts, self.nodes):
            bus.record_step_begin(name, n.rank, start)
        with bus.step_scope(name):
            yield
        ends = [n.clock.time for n in self.nodes]
        for start, end, n in zip(starts, ends, self.nodes):
            bus.record_step_end(name, n.rank, start, end)
        t1 = self.kernel.step_exit(self.nodes)
        if t1 is not None:
            for end, n in zip(ends, self.nodes):
                bus.record_barrier_wait(name, n.rank, t1, t1 - end)

    def io_stats(self) -> IOStats:
        return IOStats.merge([n.disk.stats for n in self.nodes])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterView(ranks={self.ranks})"


def paper_cluster(
    loaded: bool = True,
    memory_items: Optional[int] = None,
    link: LinkModel = FAST_ETHERNET,
    packet_bytes: int = 32 * 1024,
) -> ClusterSpec:
    """The paper's Table-1 machine.

    Four Alpha 21164 (533 MHz) nodes with SCSI work disks.  With
    ``loaded=True`` (the paper's protocol) siegrune and rossweisse carry
    forked load and run ~4x slower, so relative speeds are {4,4,1,1}
    (the paper writes the perf vector {1,1,4,4} with the loaded pair
    first; order here follows Table 2's host listing).
    """
    # seek_time here is the *effective per-block overhead* of the mostly
    # sequential access patterns external sorting generates: streaming
    # reads/writes amortise the 8 ms random-access latency down to
    # track-to-track + rotational slices (readahead, write-behind).
    scsi = DiskParams(seek_time=5e-4, bandwidth=15e6)
    alpha = CpuParams(seconds_per_op=2e-8)
    slow = 0.25 if loaded else 1.0
    mk = lambda name, speed: NodeSpec(  # noqa: E731 - local literal helper
        name=name,
        speed=speed,
        memory_items=memory_items,
        disk=scsi,
        cpu=alpha,
    )
    return ClusterSpec(
        nodes=(
            mk("helmvige", 1.0),
            mk("grimgerde", 1.0),
            mk("siegrune", slow),
            mk("rossweisse", slow),
        ),
        link=link,
        packet_bytes=packet_bytes,
    )


def homogeneous_cluster(
    p: int,
    memory_items: Optional[int] = None,
    link: LinkModel = FAST_ETHERNET,
    packet_bytes: int = 32 * 1024,
    disk: DiskParams = DiskParams(),
    cpu: CpuParams = CpuParams(),
) -> ClusterSpec:
    """A p-node homogeneous cluster (the perf = {1,...,1} configuration)."""
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(name=f"node{i}", speed=1.0, memory_items=memory_items, disk=disk, cpu=cpu)
            for i in range(p)
        ),
        link=link,
        packet_bytes=packet_bytes,
    )


def heterogeneous_cluster(
    speeds: Sequence[float],
    memory_items: Optional[int] = None,
    link: LinkModel = FAST_ETHERNET,
    packet_bytes: int = 32 * 1024,
    disk: DiskParams = DiskParams(),
    cpu: CpuParams = CpuParams(),
) -> ClusterSpec:
    """A cluster with the given relative speeds (the perf vector)."""
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(name=f"node{i}", speed=s, memory_items=memory_items, disk=disk, cpu=cpu)
            for i, s in enumerate(speeds)
        ),
        link=link,
        packet_bytes=packet_bytes,
    )
