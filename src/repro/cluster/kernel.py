"""Execution kernels: how charged model costs become virtual-clock time.

The cluster supports two interchangeable schedulers:

* :class:`LockstepKernel` — the original BSP semantics.  Every charged
  disk access advances the owning node's clock synchronously by the full
  ``seek + transfer`` service time, and every :meth:`Cluster.step` is
  barrier-delimited, so all clocks march in lockstep from superstep to
  superstep.
* :class:`EventKernel` — an event-queue scheduler.  Nodes advance
  independently between *true* synchronization points (explicit
  barriers and network rendezvous); there are no implicit barriers at
  step boundaries.  Disk service is modelled per drive with a free-time
  timeline and a pending-completion heap of ``(time, seq, rank, event)``
  entries:

  - **sequential-stream seek amortization** — a block access that
    continues a stream (same file, next block index) pays only the
    transfer term; the seek is charged when a stream starts or jumps.
    This models the readahead/write-behind buffering real drives and
    OS caches provide for the mostly sequential access patterns
    external sorting generates (the same rationale as
    :func:`~repro.cluster.machine.paper_cluster`'s effective seek).
  - **write-behind** — a block write occupies the drive (its free-time
    timeline moves forward) but does not block the node: completion is
    pushed on the event heap and folded into the node's clock at the
    next read on that drive (which must wait for the queue to drain)
    or at the next synchronization point.

Both kernels charge the *same I/O operations in the same order* — only
the mapping from operations to simulated time differs.  Block and item
counts, fault triggers, audit verdicts and the sorted output are
therefore kernel-independent, which is what the differential harness
(``tests/test_differential_kernel.py``) proves run by run.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from repro.cluster.simclock import barrier

if TYPE_CHECKING:
    from repro.cluster.node import SimNode
    from repro.pdm.disk import SimDisk

#: Registry of kernel names accepted by :func:`make_kernel`.
KERNELS = ("event", "lockstep")


class ExecutionKernel:
    """Scheduling policy for a simulated cluster.

    A kernel receives every charged block I/O (:meth:`on_io`) and every
    synchronization request (:meth:`sync`), and decides how virtual
    clocks advance.  ``step_enter`` / ``step_exit`` hook the
    :meth:`~repro.cluster.machine.Cluster.step` boundaries; a kernel
    that returns ``None`` from ``step_exit`` declares the boundary
    barrier-free (no ``BarrierWait`` telemetry is emitted).
    """

    name = "base"

    def attach(self, nodes: Sequence["SimNode"]) -> None:
        """Wire the kernel into a cluster's nodes (called by Cluster)."""
        for node in nodes:
            node.disk.kernel = self

    def on_io(
        self,
        disk: "SimDisk",
        op: str,
        n_items: int,
        itemsize: int,
        stream: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> float:
        """Charge one block access; returns the recorded service time."""
        raise NotImplementedError

    def step_enter(self, nodes: Sequence["SimNode"]) -> None:
        """Called at every step entry, before the step observers."""

    def step_exit(self, nodes: Sequence["SimNode"]) -> Optional[float]:
        """Called at every step exit; a time means a barrier happened."""
        return None

    def sync(self, nodes: Sequence["SimNode"]) -> float:
        """True synchronization point: settle pending work, barrier."""
        raise NotImplementedError

    def node_time(self, node: "SimNode") -> float:
        """The node's time including any not-yet-settled pending work."""
        return node.clock.time

    def reset(self) -> None:
        """Drop pending events and stream state (cluster reset)."""


class LockstepKernel(ExecutionKernel):
    """The original BSP semantics: synchronous I/O, step barriers.

    Timing is bit-identical to the pre-kernel simulator: every access
    costs ``access_cost(nbytes) * slowdown / parallelism`` and advances
    the owning clock immediately; every step is barrier-delimited.
    """

    name = "lockstep"

    def on_io(
        self,
        disk: "SimDisk",
        op: str,
        n_items: int,
        itemsize: int,
        stream: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> float:
        cost = (
            disk.params.access_cost(n_items * itemsize)
            * disk.slowdown
            / disk.parallelism
        )
        if disk.observer is not None:
            disk.observer(cost)
        return cost

    def step_enter(self, nodes: Sequence["SimNode"]) -> None:
        barrier([n.clock for n in nodes])

    def step_exit(self, nodes: Sequence["SimNode"]) -> Optional[float]:
        return barrier([n.clock for n in nodes])

    def sync(self, nodes: Sequence["SimNode"]) -> float:
        return barrier([n.clock for n in nodes])


class EventKernel(ExecutionKernel):
    """Event-queue scheduler: overlap-aware I/O, no step barriers."""

    name = "event"

    def __init__(self) -> None:
        #: Pending write completions: (time, seq, rank, disk_name).
        self._pending: list[tuple[float, int, int, str]] = []
        self._seq = 0
        #: Per-drive free time (when the last queued access completes).
        self._disk_free: dict[str, float] = {}
        #: Per-(drive, stream) next sequential block offset.
        self._streams: dict[tuple[str, str], int] = {}
        #: Per-rank high-water mark of queued write completions.
        self._rank_free: dict[int, float] = {}

    # -- cost model --------------------------------------------------------

    def _service_time(
        self,
        disk: "SimDisk",
        n_items: int,
        itemsize: int,
        stream: Optional[str],
        offset: Optional[int],
    ) -> float:
        nbytes = n_items * itemsize
        seek = disk.params.seek_time
        if stream is not None and offset is not None:
            key = (disk.name, stream)
            if self._streams.get(key) == offset:
                seek = 0.0  # readahead/write-behind: sequential continuation
            self._streams[key] = offset + 1
        return (seek + nbytes / disk.params.bandwidth) * disk.slowdown / disk.parallelism

    # -- I/O ---------------------------------------------------------------

    def on_io(
        self,
        disk: "SimDisk",
        op: str,
        n_items: int,
        itemsize: int,
        stream: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> float:
        cost = self._service_time(disk, n_items, itemsize, stream, offset)
        owner = disk.owner
        if owner is None:
            # Standalone drive (no cluster): behave synchronously.
            if disk.observer is not None:
                disk.observer(cost)
            return cost
        clock = owner.clock
        start = max(clock.time, self._disk_free.get(disk.name, 0.0))
        end = start + cost
        self._disk_free[disk.name] = end
        # Expose the drive-timeline busy interval [start, end] to the
        # telemetry bus: the disk publishes it as the event's ``queued``.
        disk.last_queued = start
        if op == "read":
            # The node blocks until the data is in memory — which also
            # waits out every queued write-behind on the same drive.
            clock.advance_to(end)
        else:
            # Write-behind: the drive is busy until ``end`` but the node
            # continues; completion is settled at the next sync point.
            self._seq += 1
            heapq.heappush(self._pending, (end, self._seq, owner.rank, disk.name))
            prev = self._rank_free.get(owner.rank, 0.0)
            if end > prev:
                self._rank_free[owner.rank] = end
        return cost

    # -- synchronization ---------------------------------------------------

    def _settle(self, nodes: Sequence["SimNode"]) -> None:
        """Fold pending write completions into the given nodes' clocks."""
        ranks = {n.rank: n for n in nodes}
        keep: list[tuple[float, int, int, str]] = []
        while self._pending:
            t, seq, rank, disk_name = heapq.heappop(self._pending)
            node = ranks.get(rank)
            if node is None:
                keep.append((t, seq, rank, disk_name))
                continue
            node.clock.advance_to(t)
        for entry in keep:
            heapq.heappush(self._pending, entry)
        for rank, node in ranks.items():
            self._rank_free.pop(rank, None)

    def sync(self, nodes: Sequence["SimNode"]) -> float:
        self._settle(nodes)
        return barrier([n.clock for n in nodes])

    def node_time(self, node: "SimNode") -> float:
        return max(node.clock.time, self._rank_free.get(node.rank, 0.0))

    def drive_free_times(self) -> dict[str, float]:
        """Per-drive timeline snapshot: when each drive's queue drains."""
        return dict(self._disk_free)

    def reset(self) -> None:
        self._pending.clear()
        self._disk_free.clear()
        self._streams.clear()
        self._rank_free.clear()
        self._seq = 0


def make_kernel(kernel: Union[str, ExecutionKernel]) -> ExecutionKernel:
    """Resolve a kernel argument (name or instance) to an instance."""
    if isinstance(kernel, ExecutionKernel):
        return kernel
    if kernel == "event":
        return EventKernel()
    if kernel == "lockstep":
        return LockstepKernel()
    raise ValueError(f"unknown kernel {kernel!r}; have {list(KERNELS)}")


def settle_all(kernel: ExecutionKernel, nodes: Iterable["SimNode"]) -> None:
    """Settle every node's pending work without a barrier (reset paths)."""
    if isinstance(kernel, EventKernel):
        kernel._settle(list(nodes))
