"""Event tracing for cluster runs.

Records per-node, per-step intervals so experiments can report where the
simulated time went (local sort vs pivots vs partition vs redistribution
vs final merge) — the breakdown behind the paper's claim that the
algorithm is communication-light.

Since the telemetry bus landed (:mod:`repro.obs.bus`), a cluster's trace
is a *view* maintained by the bus from its ``StepEnd`` events; this class
stays the stable query API (``summary()``, ``imbalance()``, ``render()``)
and can still be used standalone.  All queries are served from per-step
indexes maintained on :meth:`record`, so ``summary()``/``imbalance()``
no longer rescan the full event list per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One recorded interval of one node inside one algorithm step."""

    step: str
    node: int
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class Trace:
    """Ordered collection of trace events with summary helpers.

    ``events`` is the public, append-ordered record; the private
    per-step indexes (event lists, per-node busy totals, step spans) are
    derived state kept in sync by :meth:`record` / :meth:`extend` — use
    those to add events, never ``events.append``.
    """

    events: list[TraceEvent] = field(default_factory=list)
    _by_step: dict[str, list[TraceEvent]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _busy: dict[str, dict[int, float]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _span: dict[str, tuple[float, float]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for e in self.events:
            self._index(e)

    def _index(self, e: TraceEvent) -> None:
        self._by_step.setdefault(e.step, []).append(e)
        busy = self._busy.setdefault(e.step, {})
        busy[e.node] = busy.get(e.node, 0.0) + e.duration
        span = self._span.get(e.step)
        if span is None:
            self._span[e.step] = (e.t_start, e.t_end)
        else:
            self._span[e.step] = (min(span[0], e.t_start), max(span[1], e.t_end))

    def record(self, step: str, node: int, t_start: float, t_end: float) -> None:
        if t_end < t_start:
            raise ValueError(f"t_end {t_end} < t_start {t_start}")
        e = TraceEvent(step, node, t_start, t_end)
        self.events.append(e)
        self._index(e)

    def steps(self) -> list[str]:
        """Step names ordered by when each step's span starts.

        Arrival-order independent: under the event kernel nodes flow
        through step boundaries at their own clocks, so events for a
        later step on a fast node may be recorded before events of an
        earlier step on a slow node.  Ordering by span start (ties by
        span end) recovers the algorithmic step order regardless.
        """
        return sorted(self._by_step, key=lambda s: self._span[s])

    def for_step(self, step: str) -> list[TraceEvent]:
        """Events of one step, sorted by (t_start, t_end, node).

        A canonical order rather than arrival order, so results do not
        depend on which node's telemetry reached the bus first.
        """
        return sorted(
            self._by_step.get(step, ()),
            key=lambda e: (e.t_start, e.t_end, e.node),
        )

    def step_duration(self, step: str) -> float:
        """Wall (barrier-to-barrier) duration of a step: max node interval."""
        span = self._span.get(step)
        if span is None:
            return 0.0
        return span[1] - span[0]

    def node_busy(self, step: str, node: int) -> float:
        return self._busy.get(step, {}).get(node, 0.0)

    def summary(self) -> dict[str, float]:
        """Step name -> barrier-to-barrier duration."""
        return {s: self.step_duration(s) for s in self.steps()}

    def imbalance(self, step: str) -> float:
        """max/mean node busy time within a step (1.0 = perfectly balanced)."""
        busy = self._busy.get(step)
        if not busy:
            return 1.0
        values = list(busy.values())
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean

    def render(self) -> str:
        """Human-readable per-step table."""
        lines = [f"{'step':<22}{'duration (s)':>14}{'imbalance':>12}"]
        for s in self.steps():
            lines.append(
                f"{s:<22}{self.step_duration(s):>14.4f}{self.imbalance(s):>12.3f}"
            )
        return "\n".join(lines)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for e in events:
            self.events.append(e)
            self._index(e)
