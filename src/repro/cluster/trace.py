"""Event tracing for cluster runs.

Records per-node, per-step intervals so experiments can report where the
simulated time went (local sort vs pivots vs partition vs redistribution
vs final merge) — the breakdown behind the paper's claim that the
algorithm is communication-light.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One recorded interval of one node inside one algorithm step."""

    step: str
    node: int
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class Trace:
    """Ordered collection of trace events with summary helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, step: str, node: int, t_start: float, t_end: float) -> None:
        if t_end < t_start:
            raise ValueError(f"t_end {t_end} < t_start {t_start}")
        self.events.append(TraceEvent(step, node, t_start, t_end))

    def steps(self) -> list[str]:
        """Step names in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.step, None)
        return list(seen)

    def for_step(self, step: str) -> list[TraceEvent]:
        return [e for e in self.events if e.step == step]

    def step_duration(self, step: str) -> float:
        """Wall (barrier-to-barrier) duration of a step: max node interval."""
        evs = self.for_step(step)
        if not evs:
            return 0.0
        return max(e.t_end for e in evs) - min(e.t_start for e in evs)

    def node_busy(self, step: str, node: int) -> float:
        return sum(e.duration for e in self.for_step(step) if e.node == node)

    def summary(self) -> dict[str, float]:
        """Step name -> barrier-to-barrier duration."""
        return {s: self.step_duration(s) for s in self.steps()}

    def imbalance(self, step: str) -> float:
        """max/mean node busy time within a step (1.0 = perfectly balanced)."""
        evs = self.for_step(step)
        if not evs:
            return 1.0
        nodes = sorted({e.node for e in evs})
        busy = [self.node_busy(step, n) for n in nodes]
        mean = sum(busy) / len(busy)
        if mean == 0:
            return 1.0
        return max(busy) / mean

    def render(self) -> str:
        """Human-readable per-step table."""
        lines = [f"{'step':<22}{'duration (s)':>14}{'imbalance':>12}"]
        for s in self.steps():
            lines.append(
                f"{s:<22}{self.step_duration(s):>14.4f}{self.imbalance(s):>12.3f}"
            )
        return "\n".join(lines)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for e in events:
            self.events.append(e)
