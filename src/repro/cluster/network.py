"""Interconnect cost models and channel-serialized message transfer.

A message of ``nbytes`` split into packets of ``packet_bytes`` costs

    ceil(nbytes / packet_bytes) * latency  +  nbytes / bandwidth

Per-packet latency is what makes the paper's in-text experiment tick:
with 8-integer (32-byte) packets over Fast-Ethernet the latency term
dwarfs everything and the parallel sort loses to the sequential one;
with 8K-integer packets it vanishes.

The :class:`Network` additionally serializes each node's NIC: a node
transmits one message at a time and receives one message at a time,
which is what makes the all-to-all redistribution phase cost realistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.analysis.sanitizers import active_sanitizer
from repro.cluster.node import SimNode

if TYPE_CHECKING:
    from repro.obs.bus import TelemetryBus


@dataclass(frozen=True)
class LinkModel:
    """Point-to-point link cost model.

    Attributes
    ----------
    latency:
        Per-packet software + wire latency, seconds.
    bandwidth:
        Payload bandwidth, bytes/second.
    name:
        Label used in reports ("Fast-Ethernet", "Myrinet", ...).
    small_message_overhead:
        Extra fixed cost charged to messages smaller than one MTU.
        Kernel-TCP stacks of the paper's era stall sub-MTU sends
        (Nagle/delayed-ACK interaction, per-syscall overhead), which is
        what turns the paper's 8-integer-message run into a catastrophe
        (~0.5 ms effective per tiny message); user-level interconnects
        (Myrinet GM) bypass the kernel and have no such cliff.
    mtu_bytes:
        Threshold below which the small-message overhead applies.
    """

    latency: float
    bandwidth: float
    name: str = "link"
    small_message_overhead: float = 0.0
    mtu_bytes: int = 1500

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.small_message_overhead < 0:
            raise ValueError(
                f"small_message_overhead must be >= 0, got {self.small_message_overhead}"
            )
        if self.mtu_bytes < 1:
            raise ValueError(f"mtu_bytes must be >= 1, got {self.mtu_bytes}")

    def message_time(self, nbytes: int, packet_bytes: int) -> float:
        """Model transfer time of one message."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return self.latency + self.small_message_overhead
        if packet_bytes < 1:
            raise ValueError(f"packet_bytes must be >= 1, got {packet_bytes}")
        n_packets = -(-nbytes // packet_bytes)
        t = n_packets * self.latency + nbytes / self.bandwidth
        if nbytes < self.mtu_bytes:
            t += self.small_message_overhead
        return t


#: 100 Mb/s switched Ethernet, MPI over kernel TCP (~1999): ~90 us
#: per-packet latency plus the sub-MTU small-send stall.
FAST_ETHERNET = LinkModel(
    latency=90e-6,
    bandwidth=12.5e6,
    name="Fast-Ethernet",
    small_message_overhead=2e-3,
)

#: Myrinet (1.28 Gb/s): low-latency user-level messaging, no TCP cliff.
MYRINET = LinkModel(latency=9e-6, bandwidth=160e6, name="Myrinet")


class Network:
    """Channel-serialized point-to-point transport between nodes.

    Every node has one outbound and one inbound channel; a message
    occupies the sender's outbound channel and the receiver's inbound
    channel for its whole duration.  Sends are synchronous (the paper
    moves bulk data and MPI switches to rendezvous mode at these sizes).
    """

    def __init__(
        self, link: LinkModel, n_nodes: int, packet_bytes: int = 32 * 1024
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if packet_bytes < 1:
            raise ValueError(f"packet_bytes must be >= 1, got {packet_bytes}")
        self.link = link
        self.packet_bytes = packet_bytes
        self._out_free = [0.0] * n_nodes
        self._in_free = [0.0] * n_nodes
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional fault-injection hook ``(src, dst, nbytes, duration) ->
        #: extra_seconds``; may raise
        #: :class:`~repro.faults.plan.NetworkFaultError` (hard failure,
        #: the message is not delivered or counted) or return extra
        #: service time (drops charged as retransmissions, delays).
        self.fault_hook: Optional[
            Callable[[SimNode, SimNode, int, float], float]
        ] = None
        #: Telemetry bus (wired by the owning Cluster); every completed
        #: message is published as a ``NetTransfer`` event.
        self.bus: Optional["TelemetryBus"] = None

    def transfer(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: int,
        item_bytes: Optional[int] = None,
    ) -> float:
        """Charge one ``src -> dst`` message; returns its completion time.

        Advances both clocks: the sender blocks for the transmission, the
        receiver blocks until the data has fully arrived.

        ``item_bytes`` optionally declares the record width of the
        payload; the runtime sanitizer then checks the message moves a
        whole number of items (no torn records, paper step 4).
        """
        san = active_sanitizer()
        if san is not None:
            san.on_transfer(self, src, dst, nbytes, item_bytes)
        if src.rank == dst.rank:
            return src.clock.time  # local "transfer" is free (same host)
        dur = self.link.message_time(nbytes, self.packet_bytes)
        if self.fault_hook is not None:
            extra = self.fault_hook(src, dst, nbytes, dur)
            if extra:
                dur += extra
        start = max(src.clock.time, self._out_free[src.rank], self._in_free[dst.rank])
        end = start + dur
        self._out_free[src.rank] = end
        self._in_free[dst.rank] = end
        src.clock.advance_to(end)
        dst.clock.advance_to(end)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.bus is not None:
            self.bus.record_net_transfer(
                src=src.rank, dst=dst.rank, t_end=end, nbytes=nbytes, duration=dur
            )
        return end

    def reset(self) -> None:
        self._out_free = [0.0] * len(self._out_free)
        self._in_free = [0.0] * len(self._in_free)
        self.messages_sent = 0
        self.bytes_sent = 0
