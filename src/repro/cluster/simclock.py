"""Per-node virtual clocks and BSP barriers.

The simulation executes node work sequentially (rank order) inside each
algorithm step while each node's *virtual* clock advances by model
costs; a barrier at the end of a step synchronises every clock to the
maximum — the bulk-synchronous semantics of the paper's one-step
communication algorithms (and of its authors' earlier BSP codes).
"""

from __future__ import annotations

from typing import Iterable


class VirtualClock:
    """A monotone simulated-seconds clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self.time = float(start)

    def advance(self, dt: float) -> float:
        """Add ``dt`` seconds (must be >= 0); returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative time {dt}")
        self.time += dt
        return self.time

    def advance_to(self, t: float) -> float:
        """Move forward to at least ``t`` (never backwards)."""
        if t > self.time:
            self.time = t
        return self.time

    def reset(self) -> None:
        self.time = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock({self.time:.6f}s)"


def barrier(clocks: Iterable[VirtualClock]) -> float:
    """BSP barrier: every clock jumps to the maximum; returns that time."""
    clocks = list(clocks)
    if not clocks:
        return 0.0
    t = max(c.time for c in clocks)
    for c in clocks:
        c.advance_to(t)
    return t
