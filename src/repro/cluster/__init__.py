"""Heterogeneous cluster simulation substrate.

The paper's testbed is a 4-node Alpha cluster in which two nodes were
artificially loaded to run ~4x slower (Table 1/2), connected by
Fast-Ethernet and Myrinet, programmed in MPI.  This package simulates
that class of machine deterministically:

* each :class:`~repro.cluster.node.SimNode` owns a virtual clock, a CPU
  cost model, a simulated disk and a memory budget; a node's *speed*
  factor scales its CPU and I/O service times (the paper's heterogeneity
  is exactly such a multiplicative factor),
* the :class:`~repro.cluster.network.Network` charges per-message time
  ``n_packets * latency + bytes / bandwidth`` with NIC channel
  serialization (small packets reproduce the paper's 8-int-message
  disaster),
* :class:`~repro.cluster.mpi.SimComm` provides the mpi4py-shaped
  collectives (gather / bcast / alltoall) the algorithm uses,
* BSP-style barriers close every algorithm step: elapsed time is the max
  over node clocks (:mod:`~repro.cluster.simclock`),
* :class:`~repro.cluster.machine.Cluster` wires it all together from a
  :class:`~repro.cluster.machine.ClusterSpec`; ``paper_cluster()``
  recreates Table 1.
"""

from repro.cluster.machine import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
)
from repro.cluster.mpi import SimComm
from repro.cluster.network import FAST_ETHERNET, MYRINET, LinkModel, Network
from repro.cluster.node import CpuParams, SimNode
from repro.cluster.simclock import VirtualClock, barrier
from repro.cluster.trace import Trace, TraceEvent

__all__ = [
    "Cluster",
    "ClusterSpec",
    "CpuParams",
    "FAST_ETHERNET",
    "LinkModel",
    "MYRINET",
    "Network",
    "NodeSpec",
    "SimComm",
    "SimNode",
    "Trace",
    "TraceEvent",
    "VirtualClock",
    "barrier",
    "heterogeneous_cluster",
    "homogeneous_cluster",
    "paper_cluster",
]
