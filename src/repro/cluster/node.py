"""Simulated cluster node.

A node bundles a virtual clock, a CPU cost model, one attached simulated
disk (the paper's organisation: one disk per processor, used
independently) and a memory budget.  The node's ``speed`` is the paper's
``perf[i]`` semantics: *relative performance*, higher = faster.  Every
CPU operation and (by default) every disk access is charged
``base_cost / speed`` — precisely the "performances correlated by a
multiplicative factor" machine class of §1, which the paper realises by
forking load onto some nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cluster.simclock import VirtualClock
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager

if TYPE_CHECKING:
    from repro.obs.bus import TelemetryBus


@dataclass(frozen=True)
class CpuParams:
    """CPU cost model.

    ``seconds_per_op`` is the simulated cost of one abstract operation
    (a key comparison / move inside a sort or merge) at ``speed == 1``.
    The default is calibrated so the Table-2 scale (tens to hundreds of
    seconds for 2^21..2^25 items on a late-90s node) comes out in the
    right ballpark.
    """

    seconds_per_op: float = 2e-8

    def __post_init__(self) -> None:
        if self.seconds_per_op <= 0:
            raise ValueError(
                f"seconds_per_op must be > 0, got {self.seconds_per_op}"
            )


class SimNode:
    """One cluster node: clock + CPU + disk + memory.

    Parameters
    ----------
    rank:
        Node index in the cluster.
    speed:
        Relative performance (the paper's ``perf[i]``); service times
        scale by ``1/speed``.
    memory_items:
        The PDM parameter M for this node, in items (``None`` = in-core).
    disk_params / cpu_params:
        Device cost models at ``speed == 1``.
    name:
        Host name (defaults to ``node<rank>``).
    io_scaled_by_speed:
        If True (default, matching the paper's *loaded processors*
        protocol, where forked spinners slow everything down), the disk
        is slowed by ``1/speed`` too; if False only CPU work is scaled
        (a cluster of equal disks but unequal CPUs).
    n_disks:
        Independent drives behind this node's storage (the PDM's D;
        Figure 1 (b) generalised).  Service time divides by D.
    """

    def __init__(
        self,
        rank: int,
        speed: float = 1.0,
        memory_items: Optional[int] = None,
        disk_params: DiskParams = DiskParams(),
        cpu_params: CpuParams = CpuParams(),
        name: Optional[str] = None,
        io_scaled_by_speed: bool = True,
        n_disks: int = 1,
    ) -> None:
        if rank < 0:
            raise ValueError(f"rank must be >= 0, got {rank}")
        if speed <= 0:
            raise ValueError(f"speed must be > 0, got {speed}")
        self.rank = rank
        self.speed = float(speed)
        self.name = name if name is not None else f"node{rank}"
        self.cpu = cpu_params
        self.clock = VirtualClock()
        self.mem = MemoryManager(memory_items)
        self.mem.owner = self  # telemetry events carry rank + clock time
        io_slowdown = (1.0 / self.speed) if io_scaled_by_speed else 1.0
        self.disk = SimDisk(
            disk_params,
            name=f"{self.name}.disk",
            slowdown=io_slowdown,
            observer=self.clock.advance,
            parallelism=n_disks,
        )
        self.disk.owner = self  # sanitizer node-isolation checks
        #: Telemetry bus (wired by the owning Cluster); charged CPU work
        #: is published as ``Compute`` events at capture level "full",
        #: which is what lets the profiler re-cost it under a different
        #: perf vector.
        self.bus: Optional["TelemetryBus"] = None
        self.ops_charged = 0.0
        #: False once the node is declared dead by fault injection.  Its
        #: clock stops being part of barriers; its disk remains readable
        #: (a node crash is not media loss — degraded mode salvages the
        #: checkpointed runs from it).
        self.alive = True
        #: Step label at which the node died (diagnostics).
        self.failed_at: Optional[str] = None

    def mark_dead(self, step: str = "") -> None:
        """Declare this node dead (it stops participating in the sort)."""
        self.alive = False
        self.failed_at = step or None

    def compute(self, ops: float) -> None:
        """Charge ``ops`` abstract CPU operations to this node's clock."""
        if ops < 0:
            raise ValueError(f"ops must be >= 0, got {ops}")
        self.ops_charged += ops
        seconds = ops * self.cpu.seconds_per_op / self.speed
        self.clock.advance(seconds)
        if self.bus is not None:
            self.bus.record_compute(
                node=self.rank, t=self.clock.time, seconds=seconds, ops=ops
            )

    def reset(self) -> None:
        """Zero the clock and counters (e.g. after untimed input setup)."""
        self.clock.reset()
        self.disk.stats.reset()
        self.ops_charged = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimNode(rank={self.rank}, name={self.name!r}, speed={self.speed}, "
            f"t={self.clock.time:.4f}s)"
        )
