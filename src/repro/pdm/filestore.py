"""Real-file-backed block files.

:class:`DiskBackedBlockFile` keeps block payloads in an actual operating
system file instead of process memory, so the library can sort datasets
larger than host RAM *for real* (the simulation's cost model is
unchanged — the SimDisk still charges model time; the OS file is the
storage plane).  Used by the out-of-core example and the persistence
tests; the in-memory store remains the default because the test suite's
thousands of tiny files are faster that way.

A :class:`FileStore` owns a spill directory and hands out backed files;
it is also a context manager that removes the directory on exit.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Optional

import numpy as np

from repro.pdm.blockfile import BlockFile
from repro.pdm.disk import SimDisk


class DiskBackedBlockFile(BlockFile):
    """A BlockFile whose payload lives in one binary file on the host FS.

    Blocks are appended sequentially; the block-size invariant (all full
    except possibly the last) makes item offsets computable, so a block
    read is a single ``seek + read``.
    """

    def __init__(
        self,
        disk: SimDisk,
        B: int,
        dtype: np.dtype | type = np.uint32,
        name: Optional[str] = None,
        path: Optional[str] = None,
        directory: Optional[str] = None,
    ) -> None:
        if path is None:
            fd, path = tempfile.mkstemp(suffix=".blk", dir=directory)
            os.close(fd)
            self._owns_path = True
        else:
            self._owns_path = False
        self.path = path
        super().__init__(disk, B, dtype, name)

    # -- storage hooks -----------------------------------------------------

    def _init_store(self) -> None:
        with open(self.path, "wb"):
            pass  # truncate

    def _store_append(self, arr: np.ndarray) -> None:
        with open(self.path, "ab") as fh:
            fh.write(np.ascontiguousarray(arr, dtype=self.dtype).tobytes())

    def _store_load(self, index: int) -> np.ndarray:
        if not (0 <= index < len(self._block_sizes)):
            raise IndexError(f"block {index} out of range 0..{len(self._block_sizes) - 1}")
        offset = index * self.B * self.itemsize
        count = self._block_sizes[index]
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            raw = fh.read(count * self.itemsize)
        return np.frombuffer(raw, dtype=self.dtype)

    def _store_clear(self) -> None:
        with open(self.path, "wb"):
            pass

    # -- lifecycle ----------------------------------------------------------

    def delete(self) -> None:
        """Remove the backing file from the host filesystem."""
        if self._owns_path and os.path.exists(self.path):
            os.unlink(self.path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskBackedBlockFile({self.name!r} -> {self.path!r}, "
            f"{self.n_items} items)"
        )


class FileStore:
    """A spill directory that manufactures disk-backed block files.

    Plug it into a node with ``node.disk`` and pass ``store.create`` where
    a fresh file is needed; or use :func:`use_file_backed_files` to make a
    whole cluster spill to real storage.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            self.directory = tempfile.mkdtemp(prefix="repro-spill-")
            self._owns_dir = True
        else:
            os.makedirs(directory, exist_ok=True)
            self.directory = directory
            self._owns_dir = False
        self._count = 0

    def create(
        self,
        disk: SimDisk,
        B: int,
        dtype: np.dtype | type = np.uint32,
        name: Optional[str] = None,
    ) -> DiskBackedBlockFile:
        self._count += 1
        path = os.path.join(self.directory, f"f{self._count:06d}.blk")
        return DiskBackedBlockFile(disk, B, dtype, name=name, path=path)

    @property
    def files_created(self) -> int:
        return self._count

    def bytes_on_disk(self) -> int:
        """Total size of the spill directory's current contents."""
        total = 0
        for entry in os.scandir(self.directory):
            if entry.is_file():
                total += entry.stat().st_size
        return total

    def cleanup(self) -> None:
        if self._owns_dir and os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "FileStore":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()
