"""D-disk striping (PDM Figure 1, organisation (a): P=1, D disks).

The paper's cluster uses organisation (b) — one disk per processor, used
independently — but quotes the PDM bound for general ``D``.  This module
implements the classic striped layout so the Figure-1 bench can contrast
the two regimes: with striping, ``D`` consecutive blocks live on ``D``
distinct drives and one "parallel I/O" moves all of them simultaneously;
the elapsed model time of a stripe access is the *maximum* of the member
drives' service times, not their sum.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.pdm.blockfile import BlockFile
from repro.pdm.disk import SimDisk
from repro.pdm.stats import IOStats


class StripedFile:
    """A logical file whose blocks are striped round-robin over D disks.

    Logical block ``i`` lives on disk ``i mod D``.  :meth:`append_stripe`
    and :meth:`read_stripe` move up to ``D`` blocks in one parallel I/O
    and return the elapsed (max-over-drives) model time; the per-drive
    counters still record every block individually, so total block I/Os
    remain the PDM measure.
    """

    def __init__(
        self,
        disks: Sequence[SimDisk],
        B: int,
        dtype: np.dtype | type = np.uint32,
        name: str = "striped",
    ) -> None:
        if not disks:
            raise ValueError("need at least one disk")
        self.disks = list(disks)
        self.B = B
        self.dtype = np.dtype(dtype)
        self.name = name
        self._members = [
            BlockFile(d, B, dtype, name=f"{name}@{d.name}") for d in self.disks
        ]
        self._n_blocks = 0
        self._n_items = 0

    @property
    def D(self) -> int:
        return len(self.disks)

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def n_items(self) -> int:
        return self._n_items

    def append_stripe(self, blocks: Sequence[np.ndarray]) -> float:
        """Write up to D blocks in one parallel I/O; returns elapsed time.

        Only the final stripe of a file may be shorter than D blocks, and
        only its final block may be partial (compact packing, as in
        :class:`~repro.pdm.blockfile.BlockFile`).
        """
        if not (1 <= len(blocks) <= self.D):
            raise ValueError(f"a stripe holds 1..{self.D} blocks, got {len(blocks)}")
        elapsed = 0.0
        for blk in blocks:
            member = self._members[self._n_blocks % self.D]
            before = member.disk.stats.busy_time
            member.append_block(blk)
            elapsed = max(elapsed, member.disk.stats.busy_time - before)
            self._n_blocks += 1
            self._n_items += len(blk)
        return elapsed

    def read_stripe(self, stripe_index: int) -> tuple[list[np.ndarray], float]:
        """Read the D (or fewer, at EOF) blocks of one stripe in parallel.

        Returns ``(blocks, elapsed_time)`` with blocks in logical order.
        """
        first = stripe_index * self.D
        if not (0 <= first < self._n_blocks):
            raise IndexError(f"stripe {stripe_index} out of range")
        out: list[np.ndarray] = []
        elapsed = 0.0
        for logical in range(first, min(first + self.D, self._n_blocks)):
            member = self._members[logical % self.D]
            local = logical // self.D
            before = member.disk.stats.busy_time
            out.append(member.read_block(local))
            elapsed = max(elapsed, member.disk.stats.busy_time - before)
        return out, elapsed

    @property
    def n_stripes(self) -> int:
        return -(-self._n_blocks // self.D)

    def iter_stripes(self) -> Iterator[tuple[list[np.ndarray], float]]:
        for s in range(self.n_stripes):
            yield self.read_stripe(s)

    def stats(self) -> IOStats:
        """Aggregate counters over the member drives."""
        return IOStats.merge([d.stats for d in self.disks])

    def to_array(self) -> np.ndarray:
        """Charge-free logical content, for validation only."""
        parts = [
            self._members[i % self.D].inspect_block(i // self.D)
            for i in range(self._n_blocks)
        ]
        if not parts:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate(parts)
