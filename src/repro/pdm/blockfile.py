"""Block-structured files on simulated disks.

A :class:`BlockFile` is the unit of on-disk storage for every external
algorithm in this package: a growable sequence of ``B``-item blocks (all
full except possibly the last) living on one :class:`~repro.pdm.disk.SimDisk`.
Payloads are numpy arrays; every block-level access charges the disk's
cost model and counters.

:class:`BlockWriter` and :class:`BlockReader` provide the buffered
streaming interfaces the sorting engines use; both pin exactly one block
of internal memory while open, which is how the
:class:`~repro.pdm.memory.MemoryManager` budget is made honest.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.analysis.sanitizers import active_sanitizer
from repro.pdm.disk import SimDisk
from repro.pdm.memory import MemoryManager


def _charged_write(
    disk: SimDisk,
    n_items: int,
    itemsize: int,
    stream: Optional[str] = None,
    offset: Optional[int] = None,
) -> None:
    """One block write, sanitizer-bracketed (charged exactly once)."""
    san = active_sanitizer()
    if san is None:
        disk.charge_write(n_items, itemsize, stream=stream, offset=offset)
        return
    with san.expect_block_charge(disk, "write"):
        disk.charge_write(n_items, itemsize, stream=stream, offset=offset)


def _charged_read(
    disk: SimDisk,
    n_items: int,
    itemsize: int,
    stream: Optional[str] = None,
    offset: Optional[int] = None,
) -> None:
    """One block read, sanitizer-bracketed (charged exactly once)."""
    san = active_sanitizer()
    if san is None:
        disk.charge_read(n_items, itemsize, stream=stream, offset=offset)
        return
    with san.expect_block_charge(disk, "read"):
        disk.charge_read(n_items, itemsize, stream=stream, offset=offset)


class BlockFile:
    """A file of fixed-size blocks on a simulated disk.

    Invariant: every block holds exactly ``B`` items except possibly the
    last.  Item-compact packing is what makes the paper's per-step block
    I/O counts (`2 Q / B` etc.) well defined.

    Direct use of :meth:`append_block` / :meth:`read_block` charges the
    disk; the charge-free ``inspect_*`` / :meth:`to_array` accessors exist
    for tests and validation only and must not be used by algorithms.
    """

    def __init__(
        self,
        disk: SimDisk,
        B: int,
        dtype: np.dtype | type = np.uint32,
        name: Optional[str] = None,
    ) -> None:
        if B < 1:
            raise ValueError(f"B must be >= 1, got {B}")
        self.disk = disk
        self.B = B
        self.dtype = np.dtype(dtype)
        self.name = name if name is not None else disk.next_file_name()
        self._block_sizes: list[int] = []
        self._n_items = 0
        self._init_store()

    # -- storage hooks (overridden by DiskBackedBlockFile) ----------------

    def _init_store(self) -> None:
        self._blocks: list[np.ndarray] = []

    def _store_append(self, arr: np.ndarray) -> None:
        self._blocks.append(arr.copy())

    def _store_load(self, index: int) -> np.ndarray:
        return self._blocks[index]

    def _store_clear(self) -> None:
        self._blocks.clear()

    # -- metadata (free: directory information, not data I/O) ------------

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def n_blocks(self) -> int:
        return len(self._block_sizes)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def __len__(self) -> int:
        return self._n_items

    # -- charged block I/O ------------------------------------------------

    def append_block(self, items: np.ndarray) -> None:
        """Append one block (<= B items).  Charges one block write.

        Appending after a partial final block is rejected — writers must
        pack items compactly (use :class:`BlockWriter`).

        The write is charged *before* the payload is stored: block writes
        are atomic, so an injected disk fault (raised from the charge)
        leaves the file unchanged — a retried step never sees phantom
        data from a failed attempt.
        """
        arr = np.asarray(items, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError(f"blocks must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            return
        if arr.size > self.B:
            raise ValueError(f"block of {arr.size} items exceeds B={self.B}")
        if self._block_sizes and self._block_sizes[-1] < self.B:
            raise ValueError(
                f"file {self.name!r} already ends in a partial block; "
                "blocks must be packed compactly"
            )
        _charged_write(
            self.disk,
            arr.size,
            self.itemsize,
            stream=self.name,
            offset=len(self._block_sizes),
        )
        self._store_append(arr)
        self._block_sizes.append(arr.size)
        self._n_items += arr.size

    def read_block(self, index: int) -> np.ndarray:
        """Read block ``index``.  Charges one block read."""
        blk = self._store_load(index)  # IndexError propagates
        _charged_read(self.disk, blk.size, self.itemsize, stream=self.name, offset=index)
        return blk.copy()

    def clear(self) -> None:
        """Truncate to empty (metadata operation, not charged)."""
        self._store_clear()
        self._block_sizes.clear()
        self._n_items = 0

    # -- charge-free accessors (validation / tests only) -------------------

    def inspect_block(self, index: int) -> np.ndarray:
        """Charge-free read-only view of a block.  *Not* for algorithms."""
        return self._store_load(index)

    def to_array(self) -> np.ndarray:
        """Charge-free concatenation of the whole file.  *Not* for algorithms."""
        if not self._block_sizes:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate([self._store_load(i) for i in range(self.n_blocks)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockFile({self.name!r}, {self._n_items} items in {self.n_blocks} blocks)"


class BlockWriter:
    """Buffered item-stream writer: packs items into full B-item blocks.

    Pins one block (B items) of memory in ``mem`` while open.  Use as a
    context manager, or call :meth:`close` explicitly to flush the final
    partial block and release the buffer.
    """

    def __init__(self, file: BlockFile, mem: MemoryManager) -> None:
        self.file = file
        self.mem = mem
        self._buf = np.empty(file.B, dtype=file.dtype)
        self._fill = 0
        self._closed = False
        self.items_written = 0
        mem.acquire(file.B)

    def write(self, items: np.ndarray) -> None:
        """Append a 1-D array of items to the stream."""
        if self._closed:
            raise ValueError("writer is closed")
        arr = np.asarray(items, dtype=self.file.dtype).ravel()
        pos = 0
        B = self.file.B
        while pos < arr.size:
            take = min(B - self._fill, arr.size - pos)
            self._buf[self._fill : self._fill + take] = arr[pos : pos + take]
            self._fill += take
            pos += take
            if self._fill == B:
                self.file.append_block(self._buf)
                self._fill = 0
        self.items_written += arr.size

    def write_one(self, item) -> None:
        """Append a single item (used by item-at-a-time merges)."""
        if self._closed:
            raise ValueError("writer is closed")
        self._buf[self._fill] = item
        self._fill += 1
        if self._fill == self.file.B:
            self.file.append_block(self._buf)
            self._fill = 0
        self.items_written += 1

    def close(self) -> None:
        """Flush the final partial block and release the buffer.

        The buffer reservation is released even if the flush write
        fails, so a disk fault cannot leak memory accounting.
        """
        if self._closed:
            return
        try:
            if self._fill:
                self.file.append_block(self._buf[: self._fill])
                self._fill = 0
        finally:
            self.mem.release(self.file.B)
            self._closed = True

    def abandon(self) -> None:
        """Discard any buffered items and release the buffer (no flush).

        For error paths: after a failure the partial output is useless
        and flushing it could fault again.
        """
        if self._closed:
            return
        self._fill = 0
        self.mem.release(self.file.B)
        self._closed = True

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def close_all(writers) -> None:
    """Close every writer, attempting all even if one flush faults.

    Re-raises the first failure after the sweep; each writer's memory
    reservation is released regardless (see :meth:`BlockWriter.close`).
    """
    first: Exception | None = None
    for w in writers:
        try:
            w.close()
        except Exception as exc:
            if first is None:
                first = exc
    if first is not None:
        raise first


class BlockReader:
    """Buffered block-stream reader over a :class:`BlockFile` range.

    Iterating yields blocks; each block is charged as one read and pins
    one block of memory for the duration of the loop body.  ``start`` /
    ``stop`` are block indices, enabling several readers over disjoint
    regions of one file (how partitions are streamed out in step 3).
    """

    def __init__(
        self,
        file: BlockFile,
        mem: MemoryManager,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        self.file = file
        self.mem = mem
        self.start = start
        self.stop = file.n_blocks if stop is None else stop
        if not (0 <= self.start <= self.stop <= file.n_blocks):
            raise ValueError(
                f"invalid block range [{start}, {stop}) for {file.n_blocks}-block file"
            )

    def __iter__(self) -> Iterator[np.ndarray]:
        B = self.file.B
        for i in range(self.start, self.stop):
            with self.mem.reserve(B):
                yield self.file.read_block(i)

    def read_all(self) -> np.ndarray:
        """Read the whole range into one array.

        Reserves the full range size — only legal when it fits in memory
        (the in-core fast path the paper uses for the pivot sample).
        """
        n = sum(
            self.file.inspect_block(i).size for i in range(self.start, self.stop)
        )
        out = np.empty(n, dtype=self.file.dtype)
        with self.mem.reserve(n):
            pos = 0
            for i in range(self.start, self.stop):
                blk = self.file.read_block(i)
                out[pos : pos + blk.size] = blk
                pos += blk.size
        return out
