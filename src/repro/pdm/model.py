"""PDM parameter bundle and theoretical I/O bounds (paper §2).

The paper states (Theorem 1, after Aggarwal & Vitter / Nodine & Vitter)
that the average- and worst-case number of I/Os required to sort
``N = nB`` items with ``D`` disks is

    Sort(N) = Theta((n / D) * log_m(n))

where ``n = N/B`` and ``m = M/B``.  In practice the ``log_m n`` term is a
small constant; the bounds here are used by the test suite to check the
measured I/O counters of the external sorting engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PDMConfig:
    """Parameters of the Parallel Disk Model.

    Attributes
    ----------
    N:
        Problem size, in items.
    M:
        Internal memory size, in items.  An out-of-core algorithm may
        never hold more than ``M`` items in core at once.
    B:
        Block transfer size, in items.  Disks move whole blocks.
    D:
        Number of independent disk drives.
    P:
        Number of CPUs.  The paper uses the ``P = D`` organisation
        (Figure 1 (b)): one disk attached to each cluster node.
    """

    N: int
    M: int
    B: int
    D: int = 1
    P: int = 1

    def __post_init__(self) -> None:
        if self.N < 0:
            raise ValueError(f"N must be >= 0, got {self.N}")
        if self.B < 1:
            raise ValueError(f"B must be >= 1, got {self.B}")
        if self.M < 2 * self.B:
            raise ValueError(
                f"M must be >= 2*B (need room for at least one input and one "
                f"output block), got M={self.M}, B={self.B}"
            )
        if self.D < 1:
            raise ValueError(f"D must be >= 1, got {self.D}")
        if self.P < 1:
            raise ValueError(f"P must be >= 1, got {self.P}")

    @property
    def n(self) -> int:
        """Problem size in blocks, ``ceil(N / B)``."""
        return -(-self.N // self.B)

    @property
    def m(self) -> int:
        """Memory size in blocks, ``floor(M / B)``."""
        return self.M // self.B

    @property
    def is_out_of_core(self) -> bool:
        """True when the problem does not fit in internal memory."""
        return self.N > self.M

    def satisfies_practical_constraint(self) -> bool:
        """Paper §2: ``1 <= D*B <= M/2`` "for practical reasons and to
        match existing systems"."""
        return 1 <= self.D * self.B <= self.M / 2

    def merge_order(self) -> int:
        """Largest merge arity sustainable in memory ``M``.

        A k-way external merge needs one B-item input buffer per run plus
        one B-item output buffer, so ``k = m - 1`` (at least 2).
        """
        return max(2, self.m - 1)

    def merge_passes(self, n_items: int | None = None) -> int:
        """Number of merge passes over the data, ``ceil(log_m n)``.

        This is the ``(1 + ceil(log_m l_i))`` factor (minus the initial
        run-formation pass) in the paper's step-1 I/O bound.
        """
        N = self.N if n_items is None else n_items
        if N <= self.M:
            return 0
        n_runs = -(-N // self.M)  # initial memory-load runs
        k = self.merge_order()
        return max(1, math.ceil(math.log(n_runs, k)))

    def sort_io_bound(self, n_items: int | None = None) -> float:
        """Theorem 1: ``Sort(N) = (n/D) * max(1, log_m n)`` block I/Os.

        Returned as a float (the Theta-bound ignores constant factors; the
        tests compare measured counts against a small multiple of this).
        """
        N = self.N if n_items is None else n_items
        n = -(-N // self.B)
        if n == 0:
            return 0.0
        m = max(2, self.m)
        return (n / self.D) * max(1.0, math.log(n, m))

    def step1_io_bound(self, l_i: int) -> float:
        """Paper step 1 bound: ``2 * l_i * (1 + ceil(log_m l_i))`` I/Os.

        The paper counts I/Os in items here (read + write of every item
        once per pass); divide by ``B`` for block I/Os.
        """
        if l_i <= 0:
            return 0.0
        return 2.0 * l_i * (1 + self.merge_passes(l_i))

    def with_(self, **kwargs: int) -> "PDMConfig":
        """Return a copy with some parameters replaced."""
        cur = {"N": self.N, "M": self.M, "B": self.B, "D": self.D, "P": self.P}
        cur.update(kwargs)
        return PDMConfig(**cur)
