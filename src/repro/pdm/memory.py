"""Internal-memory budget enforcement.

The whole point of an out-of-core algorithm is that it never holds more
than ``M`` items in core.  :class:`MemoryManager` makes that a *checked*
property: every buffer the sorting engines pin goes through
:meth:`MemoryManager.reserve`, and exceeding the budget raises
:class:`MemoryBudgetError` instead of silently cheating.

The test suite runs the external sorts with tiny budgets (tens to a few
hundreds of items) to force genuinely out-of-core execution paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.sanitizers import active_sanitizer

if TYPE_CHECKING:
    from repro.cluster.node import SimNode
    from repro.obs.bus import TelemetryBus


class MemoryBudgetError(RuntimeError):
    """Raised when an algorithm tries to pin more than M items in core."""


class MemoryManager:
    """Tracks in-core item usage against a capacity of ``M`` items.

    Parameters
    ----------
    capacity:
        The PDM parameter ``M`` in items.  ``None`` means unlimited
        (useful for in-core baselines).
    """

    def __init__(self, capacity: int | None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.in_use = 0
        self.high_water = 0
        self.total_reservations = 0
        #: Owning :class:`~repro.cluster.node.SimNode` (set by the node);
        #: used to stamp telemetry events with rank and clock time.
        self.owner: Optional["SimNode"] = None
        #: Telemetry bus (wired by the owning Cluster).  Reservations are
        #: published as ``MemReserve``/``MemRelease`` at the ``"full"``
        #: capture level only.
        self.bus: Optional["TelemetryBus"] = None
        san = active_sanitizer()
        if san is not None:
            san.on_manager_created(self)  # leak tracking (SAN-MEM-LEAK)

    @property
    def available(self) -> int:
        if self.capacity is None:
            return 2**62
        return self.capacity - self.in_use

    def acquire(self, n_items: int) -> None:
        """Pin ``n_items`` items in core; raises if over budget."""
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        if self.capacity is not None and self.in_use + n_items > self.capacity:
            raise MemoryBudgetError(
                f"memory budget exceeded: in_use={self.in_use} + "
                f"request={n_items} > M={self.capacity}"
            )
        self.in_use += n_items
        self.total_reservations += 1
        if self.in_use > self.high_water:
            self.high_water = self.in_use
        if self.bus is not None:
            self._publish("reserve", n_items)

    def release(self, n_items: int) -> None:
        """Unpin ``n_items`` previously acquired items."""
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        if n_items > self.in_use:
            raise ValueError(
                f"releasing {n_items} items but only {self.in_use} are in use"
            )
        self.in_use -= n_items
        if self.bus is not None:
            self._publish("release", n_items)

    @contextmanager
    def reserve(self, n_items: int) -> Iterator[None]:
        """Context-managed acquire/release of ``n_items`` items."""
        self.acquire(n_items)
        try:
            yield
        finally:
            self.release(n_items)

    def _publish(self, op: str, n_items: int) -> None:
        """Publish one reservation change to the telemetry bus."""
        bus = self.bus
        if bus is None or not bus.captures_memory:
            return
        owner = self.owner
        bus.record_mem(
            op,
            node=owner.rank if owner is not None else -1,
            t=owner.clock.time if owner is not None else 0.0,
            n_items=n_items,
            in_use=self.in_use,
        )

    def checkpoint(self) -> int:
        """Current usage, for leak assertions in tests."""
        return self.in_use

    @staticmethod
    def unlimited() -> "MemoryManager":
        return MemoryManager(None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"MemoryManager(in_use={self.in_use}/{cap}, high_water={self.high_water})"
