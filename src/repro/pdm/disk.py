"""Simulated block device.

A :class:`SimDisk` does not store bytes itself (block payloads live in the
:class:`~repro.pdm.blockfile.BlockFile` objects created on it); it is the
*cost and accounting* surface: every block read or write is counted in
:class:`~repro.pdm.stats.IOStats` and charged a model service time of

    cost = seek_time + payload_bytes / bandwidth

optionally scaled by the owning node's I/O slowdown (heterogeneity), and
reported to an observer callback so the node's virtual clock advances.

Default constants approximate the paper's late-90s SCSI drives (Table 1):
~8 ms average access, ~20 MB/s sustained transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.analysis.sanitizers import active_sanitizer
from repro.pdm.stats import IOStats

if TYPE_CHECKING:
    import numpy as np

    from repro.cluster.kernel import ExecutionKernel
    from repro.cluster.node import SimNode
    from repro.obs.bus import TelemetryBus
    from repro.pdm.blockfile import BlockFile

#: Signature of :attr:`SimDisk.file_factory` — how a disk manufactures
#: block files (in-memory by default, host-spilled via FileStore.create).
FileFactory = Callable[["SimDisk", int, "np.dtype | type", str], "BlockFile"]


@dataclass(frozen=True)
class DiskParams:
    """Service-time model of one drive.

    Attributes
    ----------
    seek_time:
        Fixed overhead per block access, seconds.  Covers seek +
        rotational latency + command overhead.
    bandwidth:
        Sustained transfer rate, bytes/second.
    """

    seek_time: float = 8e-3
    bandwidth: float = 20e6

    def __post_init__(self) -> None:
        if self.seek_time < 0:
            raise ValueError(f"seek_time must be >= 0, got {self.seek_time}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    def access_cost(self, nbytes: int) -> float:
        """Model service time for one block access of ``nbytes`` payload."""
        return self.seek_time + nbytes / self.bandwidth


#: Paper-era SCSI drive (Table 1: 8 GB / 4 GB SCSI disks).
SCSI_1999 = DiskParams(seek_time=8e-3, bandwidth=20e6)

#: A fast modern-ish drive, for sensitivity experiments.
FAST_DISK = DiskParams(seek_time=1e-4, bandwidth=500e6)


class SimDisk:
    """One simulated independent drive (the PDM's ``D`` dimension).

    Parameters
    ----------
    params:
        Service-time model.
    name:
        Human-readable label (shows up in traces and error messages).
    slowdown:
        Multiplicative service-time factor (>= 0).  The paper's loaded
        nodes are slower at *everything*, including their I/O; a node's
        heterogeneity factor is applied here.
    observer:
        Called with the service time of every I/O; the owning
        :class:`~repro.cluster.node.SimNode` uses this to advance its
        virtual clock.

    Fault injection
    ---------------
    :attr:`fault_hook`, when set, is called as
    ``hook(disk, op, n_items, itemsize)`` before every block I/O is
    charged; raising from the hook aborts the access before any counter
    or payload state changes (block I/Os are atomic: a faulted write
    leaves the file untouched).  The
    :class:`~repro.faults.injector.FaultInjector` installs hooks from a
    declarative :class:`~repro.faults.plan.FaultPlan`.
    """

    def __init__(
        self,
        params: DiskParams = SCSI_1999,
        name: str = "disk",
        slowdown: float = 1.0,
        observer: Optional[Callable[[float], None]] = None,
        parallelism: int = 1,
    ) -> None:
        if slowdown < 0:
            raise ValueError(f"slowdown must be >= 0, got {slowdown}")
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.params = params
        self.name = name
        self.slowdown = slowdown
        self.observer = observer
        #: Number of independent drives behind this logical device (the
        #: PDM's D).  Streaming access amortises across the stripe, so
        #: service time divides by D while the block-I/O *count* — the
        #: PDM cost measure — is unchanged (Theorem 1's n/D factor).
        self.parallelism = parallelism
        self.stats = IOStats()
        self.file_factory: Optional[FileFactory] = None
        #: Owning :class:`~repro.cluster.node.SimNode`, set by the node at
        #: construction.  The runtime sanitizer uses it for node-isolation
        #: checks (a dead node's disk is salvage-readable, never writable).
        self.owner: Optional["SimNode"] = None
        #: Optional fault-injection hook ``(disk, op, n_items, itemsize) -> None``;
        #: may raise :class:`~repro.faults.plan.DiskFaultError`.
        self.fault_hook: Optional[Callable[["SimDisk", str, int, int], None]] = None
        #: Telemetry bus (wired by the owning Cluster).  Every charged
        #: block I/O is published as a ``BlockRead``/``BlockWrite`` event
        #: and attributed, via ``stats.bump``, to the bus's current step.
        self.bus: Optional["TelemetryBus"] = None
        #: Execution kernel (wired by the owning Cluster).  When set it
        #: owns the cost-to-clock mapping of every charged access; a
        #: standalone disk falls back to the synchronous legacy model.
        self.kernel: Optional["ExecutionKernel"] = None
        #: Drive-timeline service start of the most recent access, set
        #: by the kernel per charge (``-1.0`` = synchronous semantics,
        #: where service start is completion minus cost).  Published on
        #: each block event as its ``queued`` field.
        self.last_queued: float = -1.0
        self._file_counter = 0

    def next_file_name(self, prefix: str = "f") -> str:
        """Fresh unique file name on this disk (for temp run files)."""
        self._file_counter += 1
        return f"{self.name}/{prefix}{self._file_counter}"

    def new_file(
        self, B: int, dtype: "np.dtype | type", name: Optional[str] = None
    ) -> "BlockFile":
        """Create a block file on this disk through its file factory.

        By default files store their payload in process memory; install a
        :class:`~repro.pdm.filestore.FileStore`'s ``create`` via
        :attr:`file_factory` to spill every file this disk manufactures
        to real host storage (true out-of-core operation).
        """
        if name is None:
            name = self.next_file_name()
        if self.file_factory is not None:
            return self.file_factory(self, B, dtype, name)
        from repro.pdm.blockfile import BlockFile

        return BlockFile(self, B, dtype, name=name)

    def charge_read(
        self,
        n_items: int,
        itemsize: int,
        stream: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> float:
        """Account one block read of ``n_items`` items; returns its cost.

        ``stream`` / ``offset`` optionally identify the access as block
        ``offset`` of file ``stream`` so an attached execution kernel can
        detect sequential continuation (seek amortization); block counts
        and fault triggers are independent of them.
        """
        san = active_sanitizer()
        if san is not None:
            san.on_disk_charge(self, "read", n_items, itemsize)
        if self.fault_hook is not None:
            self.fault_hook(self, "read", n_items, itemsize)
        cost = self._serve("read", n_items, itemsize, stream, offset)
        self.stats.record_read(n_items, cost)
        if self.bus is not None:
            self._publish("read", n_items, itemsize, cost, stream, offset)
        return cost

    def charge_write(
        self,
        n_items: int,
        itemsize: int,
        stream: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> float:
        """Account one block write of ``n_items`` items; returns its cost."""
        san = active_sanitizer()
        if san is not None:
            san.on_disk_charge(self, "write", n_items, itemsize)
        if self.fault_hook is not None:
            self.fault_hook(self, "write", n_items, itemsize)
        cost = self._serve("write", n_items, itemsize, stream, offset)
        self.stats.record_write(n_items, cost)
        if self.bus is not None:
            self._publish("write", n_items, itemsize, cost, stream, offset)
        return cost

    def _serve(
        self,
        op: str,
        n_items: int,
        itemsize: int,
        stream: Optional[str],
        offset: Optional[int],
    ) -> float:
        """Map one access to simulated time via the attached kernel.

        Without a kernel (standalone drives, unit tests) the legacy
        synchronous model applies: full ``seek + transfer`` service time,
        observer (the owning clock) advanced immediately.
        """
        self.last_queued = -1.0  # synchronous unless the kernel says otherwise
        if self.kernel is not None:
            return self.kernel.on_io(self, op, n_items, itemsize, stream, offset)
        cost = (
            self.params.access_cost(n_items * itemsize)
            * self.slowdown
            / self.parallelism
        )
        if self.observer is not None:
            self.observer(cost)
        return cost

    def _publish(
        self,
        op: str,
        n_items: int,
        itemsize: int,
        cost: float,
        stream: Optional[str],
        offset: Optional[int],
    ) -> None:
        """Publish one completed block I/O to the telemetry bus.

        Called after the stats and observer updates so the event's
        timestamp is the access's *completion* time on the owning node's
        clock (standalone disks fall back to their accumulated busy
        time, which is equally monotone).  Writes under the event kernel
        are the exception: the clock is not advanced, so ``t`` is the
        issue time and ``queued`` carries the drive-timeline start.
        """
        bus = self.bus
        if bus is None:  # pragma: no cover - guarded by callers
            return
        step = bus.current_step
        if step:
            self.stats.bump(step)
        owner = self.owner
        t = owner.clock.time if owner is not None else self.stats.busy_time
        queued = self.last_queued if self.last_queued >= 0.0 else t - cost
        bus.record_block_io(
            op,
            disk=self.name,
            node=owner.rank if owner is not None else -1,
            t=t,
            n_items=n_items,
            itemsize=itemsize,
            cost=cost,
            queued=queued,
            stream=stream if stream is not None else "",
            offset=offset if offset is not None else -1,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimDisk({self.name!r}, {self.stats})"
