"""I/O accounting for simulated block devices.

Every :class:`~repro.pdm.disk.SimDisk` owns an :class:`IOStats`; the
external-sorting engines and the parallel algorithm report these counters,
and the test suite checks them against the theoretical bounds in
:mod:`repro.pdm.model` and :mod:`repro.core.theory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Counters for one block device (or an aggregate of several).

    ``blocks_read``/``blocks_written`` count block-granularity operations
    (the PDM cost measure); ``items_read``/``items_written`` count the
    payload items actually moved, which is what the paper's per-step item
    bounds (e.g. ``2 l_i (1 + ceil(log_m l_i))``) are phrased in.
    """

    blocks_read: int = 0
    blocks_written: int = 0
    items_read: int = 0
    items_written: int = 0
    seeks: int = 0
    busy_time: float = 0.0
    faults: int = 0
    labels: dict[str, int] = field(default_factory=dict)

    @property
    def block_ios(self) -> int:
        """Total block I/O operations (the PDM complexity measure)."""
        return self.blocks_read + self.blocks_written

    @property
    def item_ios(self) -> int:
        """Total items moved to or from the device."""
        return self.items_read + self.items_written

    def record_read(self, n_items: int, cost: float) -> None:
        self.blocks_read += 1
        self.items_read += n_items
        self.seeks += 1
        self.busy_time += cost

    def record_write(self, n_items: int, cost: float) -> None:
        self.blocks_written += 1
        self.items_written += n_items
        self.seeks += 1
        self.busy_time += cost

    def record_fault(self) -> None:
        """Count one injected I/O fault (the aborted access is *not*
        counted in the read/write counters — it never completed)."""
        self.faults += 1

    def bump(self, label: str, amount: int = 1) -> None:
        """Increment a free-form named counter (phase attribution)."""
        self.labels[label] = self.labels.get(label, 0) + amount

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        s = IOStats(
            blocks_read=self.blocks_read,
            blocks_written=self.blocks_written,
            items_read=self.items_read,
            items_written=self.items_written,
            seeks=self.seeks,
            busy_time=self.busy_time,
            faults=self.faults,
        )
        s.labels = dict(self.labels)
        return s

    def reset(self) -> None:
        self.blocks_read = 0
        self.blocks_written = 0
        self.items_read = 0
        self.items_written = 0
        self.seeks = 0
        self.busy_time = 0.0
        self.faults = 0
        self.labels.clear()

    def __add__(self, other: "IOStats") -> "IOStats":
        out = self.snapshot()
        out.blocks_read += other.blocks_read
        out.blocks_written += other.blocks_written
        out.items_read += other.items_read
        out.items_written += other.items_written
        out.seeks += other.seeks
        out.busy_time += other.busy_time
        out.faults += other.faults
        for k, v in other.labels.items():
            out.labels[k] = out.labels.get(k, 0) + v
        return out

    def __sub__(self, other: "IOStats") -> "IOStats":
        """Counter delta (``self`` must be a later snapshot of ``other``)."""
        out = IOStats(
            blocks_read=self.blocks_read - other.blocks_read,
            blocks_written=self.blocks_written - other.blocks_written,
            items_read=self.items_read - other.items_read,
            items_written=self.items_written - other.items_written,
            seeks=self.seeks - other.seeks,
            busy_time=self.busy_time - other.busy_time,
            faults=self.faults - other.faults,
        )
        for k, v in self.labels.items():
            d = v - other.labels.get(k, 0)
            if d:
                out.labels[k] = d
        return out

    @staticmethod
    def merge(stats: "list[IOStats] | tuple[IOStats, ...]") -> "IOStats":
        """Aggregate several devices' counters into one.

        Accumulates in place on a single fresh instance — O(total
        counters), no per-iteration snapshots of the accumulator.
        """
        out = IOStats()
        for s in stats:
            out.blocks_read += s.blocks_read
            out.blocks_written += s.blocks_written
            out.items_read += s.items_read
            out.items_written += s.items_written
            out.seeks += s.seeks
            out.busy_time += s.busy_time
            out.faults += s.faults
            for k, v in s.labels.items():
                out.labels[k] = out.labels.get(k, 0) + v
        return out

    def __str__(self) -> str:
        parts = [
            f"blocks r/w={self.blocks_read}/{self.blocks_written}",
            f"items r/w={self.items_read}/{self.items_written}",
            f"busy={self.busy_time:.4f}s",
        ]
        if self.labels:
            pairs = sorted(self.labels.items())
            inner = ", ".join(f"{k}: {v}" for k, v in pairs)
            parts.append("labels{" + inner + "}")
        return "IOStats(" + ", ".join(parts) + ")"
