"""Parallel Disk Model (PDM) substrate.

Implements the storage model the paper measures against: Vitter's
parallel disk model (PDM), in which an algorithm's cost is the number
of *block* I/O operations it performs.  The model parameters are

    N  problem size (items)
    M  internal memory size (items)
    B  block transfer size (items)
    D  number of independent disk drives
    P  number of CPUs

with the shortcuts ``n = N/B`` and ``m = M/B``.

This package provides:

* :class:`~repro.pdm.model.PDMConfig` — the parameter bundle and the
  theoretical I/O bounds (paper Theorem 1),
* :class:`~repro.pdm.disk.SimDisk` — a simulated block device that counts
  I/Os and charges model time (seek + transfer) per block access,
* :class:`~repro.pdm.blockfile.BlockFile` — a growable file of B-item
  blocks living on a disk, plus buffered readers/writers,
* :class:`~repro.pdm.memory.MemoryManager` — enforcement of the M-item
  in-core budget (out-of-core algorithms must never pin more),
* :class:`~repro.pdm.striping.StripedFile` — D-disk striping (Figure 1,
  organisation (a)),
* :class:`~repro.pdm.stats.IOStats` — I/O accounting.
"""

from repro.pdm.blockfile import BlockFile, BlockReader, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.filestore import DiskBackedBlockFile, FileStore
from repro.pdm.memory import MemoryBudgetError, MemoryManager
from repro.pdm.model import PDMConfig
from repro.pdm.stats import IOStats
from repro.pdm.striping import StripedFile

__all__ = [
    "BlockFile",
    "BlockReader",
    "BlockWriter",
    "DiskBackedBlockFile",
    "DiskParams",
    "FileStore",
    "IOStats",
    "MemoryBudgetError",
    "MemoryManager",
    "PDMConfig",
    "SimDisk",
    "StripedFile",
]
