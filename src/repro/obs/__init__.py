"""Unified observability layer: telemetry bus, exporters, bounds audit.

Every instrumented component (:class:`~repro.pdm.disk.SimDisk`,
:class:`~repro.cluster.network.Network`,
:class:`~repro.pdm.memory.MemoryManager`, the fault injector and the
barrier-delimited cluster steps) publishes typed, SimClock-stamped
events onto one :class:`~repro.obs.bus.TelemetryBus` per cluster.  The
legacy :class:`~repro.cluster.trace.Trace` and the per-disk
``IOStats.labels`` phase attribution are *views* over this stream — the
bus is the single source of truth.

On top of the stream:

* :mod:`repro.obs.exporters` — JSONL event log, Chrome-trace/Perfetto
  JSON, Prometheus-style text snapshot;
* :mod:`repro.obs.audit` — fold the stream into per-step, per-node I/O
  counters and check them against the paper's Algorithm-1 bounds.

See ``docs/OBSERVABILITY.md`` for the event taxonomy and formats.
"""

from repro.obs.bus import TelemetryBus
from repro.obs.events import (
    BarrierWait,
    BlockRead,
    BlockWrite,
    Event,
    FaultInjected,
    MemRelease,
    MemReserve,
    NetTransfer,
    Retry,
    StepBegin,
    StepEnd,
    event_from_dict,
)

__all__ = [
    "BarrierWait",
    "BlockRead",
    "BlockWrite",
    "Event",
    "FaultInjected",
    "MemRelease",
    "MemReserve",
    "NetTransfer",
    "Retry",
    "StepBegin",
    "StepEnd",
    "TelemetryBus",
    "event_from_dict",
]
