"""Dynamic trace conformance against a static protocol schema.

The protocol extractor (``repro lint --protocol --emit-schema``) turns
each algorithm entry point into a per-step *op tree* — a small grammar
of ``gather/bcast/scatter/alltoallv/send/transfer`` primitives composed
with ``seq`` (repeat/optional) and ``alt`` nodes.  This module closes
the loop: it parses the ``NetTransfer`` events of a recorded telemetry
JSONL run against that grammar, step by step, so a drift between what
the code *says* it communicates and what the simulation *actually*
charges is caught in CI (``repro audit RUN.jsonl --protocol SCHEMA``).

Each primitive consumes transfers by its hardware footprint (the
network model publishes one ``NetTransfer`` per cross-node message,
in call order, and none for same-node moves):

* ``gather`` — 1..k messages into one common destination, distinct
  sources (the root's own contribution is a free local move);
* ``scatter`` — 1..k messages out of one common source, distinct
  destinations;
* ``bcast`` — a binomial tree: the first message leaves the root, and
  every later source must already hold the payload;
* ``alltoallv`` — 1..k arbitrary cross-node messages;
* ``send``/``transfer`` — exactly one message.

A collective's ``root`` expression is *bound* to the observed physical
node on first use and must resolve to the same node at every later use
inside one step round — the dynamic analogue of REP202.  Rounds of a
``may_repeat`` step (degraded re-runs) re-bind from scratch, because
recovery legitimately elects a new root.

Runs that injected faults are checked leniently: step rounds interrupted
mid-flight by a node kill leave partial transfer sequences, so failures
on such runs are reported as informational (``enforced=False``), exactly
like the bounds auditor treats degraded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.metrics.report import Table
from repro.obs.events import Event, FaultInjected, NetTransfer

#: matcher state-set cap; beyond this the step is reported ambiguous
_MAX_STATES = 4096


@dataclass(frozen=True)
class Transfer:
    """One observed cross-node message (global node ranks)."""

    src: int
    dst: int


# a matcher state: position in the transfer list + root bindings
_State = tuple[int, frozenset[tuple[str, int]]]


class _Ambiguous(Exception):
    """Raised when the state set exceeds :data:`_MAX_STATES`."""


def _bind(bindings: frozenset[tuple[str, int]], expr: Optional[str],
          node: int) -> Optional[frozenset[tuple[str, int]]]:
    """Bind ``expr`` to the observed ``node``; None on contradiction."""
    if expr is None:
        return bindings
    for name, bound in bindings:
        if name == expr:
            return bindings if bound == node else None
    return bindings | {(expr, node)}


def _match_prim(op: dict, ts: Sequence[Transfer], state: _State) -> set[_State]:
    pos, bindings = state
    kind = op["kind"]
    root_expr = op.get("root")
    out: set[_State] = set()
    if kind == "barrier":
        return {state}
    if kind in ("send", "transfer"):
        if pos < len(ts) and (kind == "transfer" or ts[pos].src != ts[pos].dst):
            out.add((pos + 1, bindings))
        return out
    if kind == "gather" or kind == "scatter":
        if pos >= len(ts):
            return out
        hub = ts[pos].dst if kind == "gather" else ts[pos].src
        bound = _bind(bindings, root_expr, hub)
        if bound is None:
            return out
        seen: set[int] = set()
        i = pos
        while i < len(ts):
            t = ts[i]
            spoke = t.src if kind == "gather" else t.dst
            same_hub = (t.dst if kind == "gather" else t.src) == hub
            if not same_hub or spoke == hub or spoke in seen:
                break
            seen.add(spoke)
            i += 1
            out.add((i, bound))
        return out
    if kind == "bcast":
        if pos >= len(ts):
            return out
        root = ts[pos].src
        bound = _bind(bindings, root_expr, root)
        if bound is None:
            return out
        holders = {root}
        i = pos
        while i < len(ts):
            t = ts[i]
            if t.src not in holders or t.dst in holders:
                break
            holders.add(t.dst)
            i += 1
            out.add((i, bound))
        return out
    if kind == "alltoallv":
        i = pos
        while i < len(ts) and ts[i].src != ts[i].dst:
            i += 1
            out.add((i, bindings))
        return out
    raise ValueError(f"unknown schema op kind {kind!r}")


def _match_op(op: dict, ts: Sequence[Transfer], state: _State) -> set[_State]:
    kind = op["kind"]
    if kind == "seq":
        once = _match_ops(op["ops"], ts, {state})
        results = set(once)
        if op.get("repeat"):
            frontier = once
            while frontier:
                nxt = _match_ops(op["ops"], ts, frontier) - results
                results |= nxt
                # progress guard: zero-length iterations add no new states
                frontier = nxt
                if len(results) > _MAX_STATES:
                    raise _Ambiguous
        if op.get("optional"):
            results.add(state)
        return results
    if kind == "alt":
        results = set()
        for arm in op["arms"]:
            results |= _match_ops(arm, ts, {state})
        return results
    return _match_prim(op, ts, state)


def _match_ops(ops: Iterable[dict], ts: Sequence[Transfer],
               states: set[_State]) -> set[_State]:
    for op in ops:
        nxt: set[_State] = set()
        for state in states:
            nxt |= _match_op(op, ts, state)
            if len(nxt) > _MAX_STATES:
                raise _Ambiguous
        states = nxt
        if not states:
            break
    return states


def _match_step(ops: list[dict], ts: Sequence[Transfer],
                may_repeat: bool) -> bool:
    """Can the step's transfer list be fully parsed by its op tree?

    ``may_repeat`` steps run as back-to-back rounds (degraded re-runs);
    root bindings reset between rounds, positions do not.
    """
    starts: set[int] = {0}
    seen: set[int] = set()
    while starts:
        pos = starts.pop()
        if pos in seen:
            continue
        seen.add(pos)
        ends = _match_ops(ops, ts, {(pos, frozenset())})
        if len(ts) in {p for p, _ in ends}:
            return True
        if may_repeat:
            starts |= {p for p, _ in ends if p > pos}
    return False


@dataclass
class StepConformance:
    """Verdict for one schema step (or one unexpected trace step)."""

    step: str
    transfers: int
    ok: bool
    enforced: bool
    note: str = ""


@dataclass
class ConformanceReport:
    """Aggregate verdict of one run against one schema."""

    algorithm: str
    faulty: bool
    rows: list[StepConformance] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.rows if r.enforced)

    @property
    def violations(self) -> list[StepConformance]:
        return [r for r in self.rows if r.enforced and not r.ok]

    def table(self) -> Table:
        t = Table(
            f"Protocol conformance: {self.algorithm}"
            + (" (faulty run — informational)" if self.faulty else ""),
            ["Step", "Transfers", "Verdict", "Note"],
        )
        for r in self.rows:
            verdict = "ok" if r.ok else ("FAIL" if r.enforced else "fail?")
            t.add_row(r.step, r.transfers, verdict, r.note)
        return t

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "faulty": self.faulty,
            "ok": self.ok,
            "steps": [
                {
                    "step": r.step,
                    "transfers": r.transfers,
                    "ok": r.ok,
                    "enforced": r.enforced,
                    "note": r.note,
                }
                for r in self.rows
            ],
        }


def _group_transfers(events: Sequence[Event]) -> dict[str, list[Transfer]]:
    """Per-step transfer sequences, in publication (call) order."""
    by_step: dict[str, list[Transfer]] = {}
    for ev in events:
        if isinstance(ev, NetTransfer):
            step = ev.step if ev.step is not None else ""
            by_step.setdefault(step, []).append(Transfer(ev.src, ev.dst))
    return by_step


def check_conformance(schema: dict, events: Sequence[Event]) -> ConformanceReport:
    """Validate a recorded run's net events against a protocol schema."""
    faulty = any(isinstance(ev, FaultInjected) for ev in events)
    by_step = _group_transfers(events)
    report = ConformanceReport(
        algorithm=str(schema.get("algorithm", "?")), faulty=faulty
    )
    schema_steps = {s["name"]: s for s in schema.get("steps", [])}
    for name, spec in schema_steps.items():
        ts = by_step.pop(name, [])
        if not ts and spec.get("optional"):
            continue  # an optional step that never ran: nothing to check
        # a fault can interrupt a step mid-round, leaving partial traffic
        enforced = not faulty
        try:
            # fault-free runs execute exactly one round of every step;
            # multi-round parses are only admitted for degraded re-runs
            ok = _match_step(
                spec.get("ops", []), ts, bool(spec.get("may_repeat")) and faulty
            )
            note = "" if ok else "transfers do not parse as the declared ops"
        except _Ambiguous:
            ok, enforced = False, False
            note = "match too ambiguous; not enforced"
        report.rows.append(
            StepConformance(
                step=name, transfers=len(ts), ok=ok, enforced=enforced,
                note=note,
            )
        )
    for name, ts in sorted(by_step.items()):
        report.rows.append(
            StepConformance(
                step=name or "<unattributed>",
                transfers=len(ts),
                ok=False,
                enforced=False,
                note="step not in schema (informational)",
            )
        )
    return report
