"""Event-stream exporters: JSONL log, Chrome trace, Prometheus text.

Three machine-readable renderings of one
:class:`~repro.obs.bus.TelemetryBus` stream:

* **JSONL** — one JSON object per line; an optional first ``run_meta``
  line carries the run parameters the bounds auditor needs, so a saved
  log replays with ``repro audit run.jsonl``.
* **Chrome trace** — the ``traceEvents`` JSON format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev: one process (pid)
  per node, one thread (tid) per track (steps, barrier, each disk, net,
  faults), complete (``"X"``) spans in microseconds.
* **Prometheus text** — a counter snapshot in the exposition format,
  for diffing runs or scraping from a wrapper service.

All timestamps are simulated seconds from the bus; the Chrome exporter
converts to microseconds (the format's unit) and emits spans sorted by
start time, so ``ts`` is non-decreasing across the file.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Optional, Sequence

from repro.obs.events import (
    BarrierWait,
    BlockRead,
    BlockWrite,
    Event,
    FaultInjected,
    MemRelease,
    MemReserve,
    NetTransfer,
    Retry,
    StepEnd,
    event_from_dict,
)
from repro.obs.profiler.timeline import merge_intervals

#: pid used in Chrome traces for cluster-wide events (``node == -1``).
CLUSTER_PID = 10_000

_US = 1e6  # seconds -> microseconds


# -- JSONL ------------------------------------------------------------------


def events_to_jsonl(
    events: Iterable[Event], meta: Optional[Mapping[str, object]] = None
) -> str:
    """Serialise events (and an optional leading run_meta line) to JSONL."""
    lines = []
    if meta is not None:
        record = {"kind": "run_meta"}
        record.update(meta)
        lines.append(json.dumps(record))
    for e in events:
        lines.append(json.dumps(e.to_dict()))
    return "\n".join(lines) + "\n"


def write_jsonl(
    path: str, events: Iterable[Event], meta: Optional[Mapping[str, object]] = None
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(events_to_jsonl(events, meta))


def read_jsonl(path: str) -> tuple[Optional[dict], list[Event]]:
    """Parse a JSONL event log; returns ``(run_meta or None, events)``."""
    meta: Optional[dict] = None
    events: list[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("kind") == "run_meta":
                meta = {k: v for k, v in data.items() if k != "kind"}
            else:
                events.append(event_from_dict(data))
    return meta, events


# -- Chrome trace -----------------------------------------------------------


def to_chrome_trace(
    events: Sequence[Event],
    node_names: Optional[Mapping[int, str]] = None,
    critical: Optional[Sequence] = None,
) -> dict:
    """Fold an event stream into a Chrome-trace/Perfetto JSON object.

    Layout: pid = node rank (``CLUSTER_PID`` for node -1), tid = track
    within the node — ``steps`` and ``barrier`` first, then one track
    per disk, ``net``, and ``faults``.  Step/barrier/IO/net events
    become complete (``X``) spans whose ``ts`` is the *start* time
    (event timestamps are completion times); memory events become ``C``
    counter samples; faults and retries become instants (``i``).

    Each ``NetTransfer`` renders on *both* ends — a ``send->dst`` span
    on the sender's net track and a ``recv<-src`` span on the
    receiver's — joined by a flow (``ph: "s"``/``"f"``) arrow, so the
    message's causal hop is visible across node tracks in Perfetto.

    ``critical`` optionally takes the segments of a
    :class:`~repro.obs.profiler.critical.CriticalPath` (any iterable of
    objects with ``node``/``t0``/``t1``/``kind``/``step``); they render
    as a ``critical path`` track on each node, highlighting which spans
    gate the run end-to-end.
    """
    names = dict(node_names or {})
    tids: dict[tuple[int, str], int] = {}
    process_meta: dict[int, dict] = {}
    thread_meta: list[dict] = []
    spans: list[dict] = []

    def pid_of(node: int) -> int:
        return node if node >= 0 else CLUSTER_PID

    def ensure_process(node: int) -> int:
        pid = pid_of(node)
        if pid not in process_meta:
            name = names.get(node, f"node{node}") if node >= 0 else "cluster"
            process_meta[pid] = {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        return pid

    def tid_of(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tid = sum(1 for p, _ in tids if p == pid)
            tids[key] = tid
            thread_meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tids[key]

    def span(name, cat, ts, dur, pid, tid, args) -> dict:
        return {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts * _US,
            "dur": dur * _US,
            "pid": pid,
            "tid": tid,
            "args": args,
        }

    flow_id = 0
    for e in events:
        pid = ensure_process(e.node)
        if isinstance(e, StepEnd):
            tid = tid_of(pid, "steps")
            spans.append(
                span(e.step, "step", e.t - e.duration, e.duration, pid, tid, {})
            )
        elif isinstance(e, BarrierWait):
            tid = tid_of(pid, "barrier")
            spans.append(
                span(f"wait:{e.step}", "barrier", e.t - e.wait, e.wait, pid, tid, {})
            )
        elif isinstance(e, (BlockRead, BlockWrite)):
            tid = tid_of(pid, f"disk:{e.disk}")
            op = "read" if isinstance(e, BlockRead) else "write"
            spans.append(
                span(
                    op,
                    "io",
                    e.t - e.cost,
                    e.cost,
                    pid,
                    tid,
                    {"items": e.n_items, "itemsize": e.itemsize, "step": e.step},
                )
            )
        elif isinstance(e, NetTransfer):
            flow_id += 1
            start = e.t - e.duration
            args = {"bytes": e.nbytes, "step": e.step}
            tid = tid_of(pid, "net")
            spans.append(span(f"send->{e.dst}", "net", start, e.duration, pid, tid, args))
            dst_pid = ensure_process(e.dst)
            dst_tid = tid_of(dst_pid, "net")
            spans.append(
                span(f"recv<-{e.src}", "net", start, e.duration, dst_pid, dst_tid, args)
            )
            # Flow arrow linking the send to its receive: the start
            # binds inside the send span, the end (bp: "e") binds to
            # the end of the enclosing recv span.
            spans.append(
                {
                    "name": "msg",
                    "cat": "net",
                    "ph": "s",
                    "id": flow_id,
                    "ts": start * _US,
                    "pid": pid,
                    "tid": tid,
                }
            )
            spans.append(
                {
                    "name": "msg",
                    "cat": "net",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": e.t * _US,
                    "pid": dst_pid,
                    "tid": dst_tid,
                }
            )
        elif isinstance(e, (MemReserve, MemRelease)):
            spans.append(
                {
                    "name": "mem_in_use",
                    "cat": "mem",
                    "ph": "C",
                    "ts": e.t * _US,
                    "pid": pid,
                    "args": {"items": e.in_use},
                }
            )
        elif isinstance(e, FaultInjected):
            tid = tid_of(pid, "faults")
            spans.append(
                {
                    "name": f"fault:{e.category}",
                    "cat": "fault",
                    "ph": "i",
                    "ts": e.t * _US,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": {"detail": e.detail, "step": e.step},
                }
            )
        elif isinstance(e, Retry):
            tid = tid_of(pid, "faults")
            spans.append(
                {
                    "name": f"retry:{e.step}",
                    "cat": "fault",
                    "ph": "i",
                    "ts": e.t * _US,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": {"attempt": e.attempt, "backoff": e.backoff},
                }
            )
        # StepBegin carries no information a StepEnd span doesn't.

    for seg in critical or ():
        pid = ensure_process(seg.node)
        tid = tid_of(pid, "critical path")
        spans.append(
            span(
                seg.kind,
                "critical",
                seg.t0,
                seg.t1 - seg.t0,
                pid,
                tid,
                {"step": seg.step},
            )
        )

    spans.sort(key=lambda s: s["ts"])  # stable: ties keep emission order
    trace_events = [process_meta[pid] for pid in sorted(process_meta)]
    trace_events.extend(thread_meta)
    trace_events.extend(spans)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    events: Sequence[Event],
    node_names: Optional[Mapping[int, str]] = None,
    critical: Optional[Sequence] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(events, node_names, critical=critical), fh, indent=1)
        fh.write("\n")


# -- Prometheus text --------------------------------------------------------


def _metric(v: object) -> str:
    if isinstance(v, float):
        return format(v, ".10g")
    return str(v)


def to_prometheus(events: Iterable[Event]) -> str:
    """Fold an event stream into a Prometheus-exposition-format snapshot."""
    counters: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    kinds: dict[str, tuple[str, str]] = {}
    #: (node, disk) -> raw drive-timeline busy intervals, merged at the
    #: end into true occupancy (write-behind queues the drive while the
    #: node runs ahead, so summed service time != wall occupancy).
    busy_iv: dict[tuple[str, str], list[tuple[float, float]]] = {}

    def add(name, labels, value, mtype, help_text) -> None:
        kinds[name] = (mtype, help_text)
        series = counters.setdefault(name, {})
        key = tuple(sorted(labels.items()))
        series[key] = series.get(key, 0.0) + value

    def put(name, labels, value, mtype, help_text) -> None:
        kinds[name] = (mtype, help_text)
        series = counters.setdefault(name, {})
        key = tuple(sorted(labels.items()))
        series[key] = max(series.get(key, 0.0), value)

    for e in events:
        node = str(e.node)
        if isinstance(e, (BlockRead, BlockWrite)):
            op = "read" if isinstance(e, BlockRead) else "write"
            lab = {"node": node, "disk": e.disk}
            add(f"repro_blocks_{op}_total", lab, 1, "counter",
                f"Block {op}s charged on simulated disks")
            add(f"repro_items_{op}_total", lab, e.n_items, "counter",
                f"Items moved by block {op}s")
            add("repro_io_busy_seconds_total", lab, e.cost, "counter",
                "Simulated disk service time")
            queued = e.queued if e.queued >= 0.0 else e.t - e.cost
            busy_iv.setdefault((node, e.disk), []).append((queued, queued + e.cost))
        elif isinstance(e, NetTransfer):
            lab = {"src": str(e.src), "dst": str(e.dst)}
            add("repro_net_messages_total", lab, 1, "counter",
                "Point-to-point messages sent")
            add("repro_net_bytes_total", lab, e.nbytes, "counter",
                "Payload bytes sent")
        elif isinstance(e, StepEnd):
            add("repro_step_busy_seconds_total", {"step": e.step, "node": node},
                e.duration, "counter", "Per-node busy time inside each step")
        elif isinstance(e, BarrierWait):
            add("repro_barrier_wait_seconds_total", {"step": e.step, "node": node},
                e.wait, "counter", "Per-node idle time at step exit barriers")
            add("repro_node_barrier_wait_seconds_total", {"node": node},
                e.wait, "counter", "Per-node idle time across all barriers")
        elif isinstance(e, (MemReserve, MemRelease)):
            put("repro_mem_in_use_peak_items", {"node": node}, e.in_use,
                "gauge", "Peak observed in-core reservation")
        elif isinstance(e, FaultInjected):
            add("repro_faults_total", {"category": e.category}, 1, "counter",
                "Injected faults that fired")
        elif isinstance(e, Retry):
            add("repro_retries_total", {"step": e.step}, 1, "counter",
                "Step attempts re-run after transient faults")

    for (node, disk), intervals in busy_iv.items():
        occupancy = sum(t1 - t0 for t0, t1 in merge_intervals(intervals))
        add("repro_drive_busy_seconds_total", {"node": node, "disk": disk},
            occupancy, "counter",
            "Wall-clock drive occupancy from the kernel's per-drive timeline")

    lines: list[str] = []
    for name in sorted(counters):
        mtype, help_text = kinds[name]
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        for key in sorted(counters[name]):
            label_text = ",".join(f'{k}="{v}"' for k, v in key)
            lines.append(f"{name}{{{label_text}}} {_metric(counters[name][key])}")
    return "\n".join(lines) + "\n"
