"""Model-driven replay: re-cost a recorded operation sequence.

The what-if engine's core.  A recorded run is reduced to its *operation
sequence* — every compute charge, block access, message and rendezvous,
in emission order — and re-executed against the same scheduling
semantics the kernels implement (write-behind drive timelines, seek
amortization, channel-serialized rendezvous transfers), but with costs
recomputed from a :class:`ReplayParams` instead of read from the log.

Replaying with the run's own recorded parameters reproduces its elapsed
time up to the stream's untracked residue; replaying with modified
parameters predicts the elapsed time of the hypothetical run — valid as
long as the change keeps the operation *sequence* itself invariant
(uniform speed scaling, disk count, any network change).  Changes that
alter scheduling decisions (block size changes the merge arity, perf
ratios move partition boundaries) are first-order approximations and
are flagged as such by the what-if layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from repro.cluster.network import LinkModel
from repro.obs.events import (
    BarrierWait,
    BlockRead,
    BlockWrite,
    Compute,
    Event,
    NetTransfer,
    Retry,
    StepBegin,
)
from repro.obs.profiler.model import HardwareMeta

# -- operation sequence ------------------------------------------------------


@dataclass(frozen=True)
class Op:
    """One replayable operation (a tagged union, ``kind`` discriminates)."""

    kind: str  # "compute" | "read" | "write" | "xfer" | "barrier" | "backoff"
    node: int = -1
    step: str = ""
    ops: float = 0.0           # compute
    disk: str = ""             # read/write
    nbytes: int = 0            # read/write/xfer
    stream: str = ""           # read/write
    offset: int = -1           # read/write
    dst: int = -1              # xfer
    extra: float = 0.0         # xfer fault surcharge / backoff pause
    ranks: tuple[int, ...] = ()  # barrier participants


def extract_ops(events: Iterable[Event], hw: HardwareMeta) -> list[Op]:
    """Reduce a recorded stream to its replayable operation sequence."""
    stream = list(events)
    link = LinkModel(
        latency=hw.link_latency,
        bandwidth=hw.link_bandwidth,
        small_message_overhead=hw.link_small_overhead,
        mtu_bytes=hw.link_mtu_bytes,
    )
    ops: list[Op] = []
    i = 0
    while i < len(stream):
        ev = stream[i]
        if isinstance(ev, BarrierWait):
            ranks: list[int] = []
            j = i
            while (
                j < len(stream)
                and isinstance(stream[j], BarrierWait)
                and stream[j].t == ev.t
                and stream[j].node not in ranks
            ):
                ranks.append(stream[j].node)
                j += 1
            ops.append(Op(kind="barrier", step=ev.step, ranks=tuple(ranks)))
            i = j
            continue
        if isinstance(ev, StepBegin):
            # Lockstep entry barriers show up as same-timestamp runs.
            members: list[int] = []
            j = i
            while (
                j < len(stream)
                and isinstance(stream[j], StepBegin)
                and stream[j].step == ev.step
            ):
                if stream[j].t == ev.t:
                    members.append(stream[j].node)
                j += 1
            if len(members) >= 2 and hw.kernel == "lockstep":
                ops.append(Op(kind="barrier", step=ev.step, ranks=tuple(members)))
            i = j
            continue
        if isinstance(ev, Compute):
            ops.append(Op(kind="compute", node=ev.node, step=ev.step, ops=ev.ops))
        elif isinstance(ev, (BlockRead, BlockWrite)):
            ops.append(
                Op(
                    kind="read" if isinstance(ev, BlockRead) else "write",
                    node=ev.node,
                    step=ev.step,
                    disk=ev.disk,
                    nbytes=ev.n_items * ev.itemsize,
                    stream=ev.stream,
                    offset=ev.offset,
                )
            )
        elif isinstance(ev, NetTransfer):
            base = link.message_time(ev.nbytes, hw.packet_bytes)
            # Injected network faults (drops, delays) inflate the
            # recorded duration beyond the link model; carry the excess
            # verbatim so faulty runs replay faithfully.
            surcharge = max(0.0, ev.duration - base)
            ops.append(
                Op(
                    kind="xfer",
                    node=ev.src,
                    dst=ev.dst,
                    step=ev.step,
                    nbytes=ev.nbytes,
                    extra=surcharge,
                )
            )
        elif isinstance(ev, Retry):
            ops.append(Op(kind="backoff", node=ev.node, step=ev.step, extra=ev.backoff))
        i += 1
    return ops


# -- replay parameters -------------------------------------------------------


@dataclass(frozen=True)
class ReplayParams:
    """Cost-model parameters for one replay (baseline or hypothetical)."""

    kernel: str
    speeds: tuple[float, ...]
    io_scaled_by_speed: bool
    seek_time: float
    disk_bandwidth: float
    n_disks: int
    seconds_per_op: float
    link: LinkModel
    packet_bytes: int
    #: Per-node data-volume ratio vs. the recorded run (first-order
    #: correction when a perf change moves the partition shares).
    volume_scale: tuple[float, ...] = ()
    #: Block-access count multiplier (block-size what-ifs): each
    #: recorded access is treated as ``io_split`` accesses moving the
    #: same total payload.
    io_split: float = 1.0

    @staticmethod
    def from_hw(hw: HardwareMeta) -> "ReplayParams":
        return ReplayParams(
            kernel=hw.kernel,
            speeds=tuple(hw.speeds),
            io_scaled_by_speed=hw.io_scaled_by_speed,
            seek_time=hw.seek_time,
            disk_bandwidth=hw.disk_bandwidth,
            n_disks=hw.n_disks,
            seconds_per_op=hw.seconds_per_op,
            link=LinkModel(
                latency=hw.link_latency,
                bandwidth=hw.link_bandwidth,
                name=hw.link_name,
                small_message_overhead=hw.link_small_overhead,
                mtu_bytes=hw.link_mtu_bytes,
            ),
            packet_bytes=hw.packet_bytes,
        )

    def speed(self, node: int) -> float:
        if 0 <= node < len(self.speeds):
            return self.speeds[node]
        return 1.0

    def volume(self, node: int) -> float:
        if 0 <= node < len(self.volume_scale):
            return self.volume_scale[node]
        return 1.0


def with_speeds(params: ReplayParams, speeds: Sequence[float]) -> ReplayParams:
    """Swap the perf vector, deriving the first-order volume correction.

    The algorithm partitions data proportionally to relative speed, so
    changing the *ratios* moves each node's share; the recorded byte
    counts are scaled by ``new_share / old_share`` as a first-order
    model.  Uniform scaling leaves every share — and the operation
    sequence — untouched.
    """
    old = params.speeds
    if len(speeds) != len(old) or not old:
        return replace(params, speeds=tuple(speeds))
    sum_old = sum(old)
    sum_new = sum(speeds)
    scale = tuple(
        (s / sum_new) / (o / sum_old) if o > 0 else 1.0 for s, o in zip(speeds, old)
    )
    return replace(params, speeds=tuple(speeds), volume_scale=scale)


# -- the replay machine ------------------------------------------------------


@dataclass
class ReplayResult:
    elapsed: float
    #: Per-node finish times (pending write-behind included).
    node_times: list[float]
    compute_seconds: float = 0.0
    io_seconds: float = 0.0
    net_seconds: float = 0.0


class _Machine:
    """Mirror of the kernels' scheduling state, driven by an op list."""

    def __init__(self, params: ReplayParams, n_nodes: int) -> None:
        self.p = params
        self.n = n_nodes
        self.clock = [0.0] * n_nodes
        self.rank_free = [0.0] * n_nodes
        self.out_free = [0.0] * n_nodes
        self.in_free = [0.0] * n_nodes
        self.disk_free: dict[str, float] = {}
        self.streams: dict[tuple[str, str], int] = {}
        self.compute_seconds = 0.0
        self.io_seconds = 0.0
        self.net_seconds = 0.0

    def _slowdown(self, node: int) -> float:
        return (1.0 / self.p.speed(node)) if self.p.io_scaled_by_speed else 1.0

    def _io_cost(self, op: Op) -> float:
        """Service time of one recorded access under the replay params."""
        p = self.p
        nbytes = op.nbytes * p.volume(op.node)
        seek = p.seek_time
        if p.kernel == "event" and op.stream and op.offset >= 0:
            key = (op.disk, op.stream)
            if self.streams.get(key) == op.offset:
                seek = 0.0  # sequential continuation: seek amortized
            self.streams[key] = op.offset + 1
        if p.io_split != 1.0:
            # Block-size what-if: the same payload moves in io_split
            # accesses, each paying the (possibly amortized) seek.
            seek *= max(1.0, p.io_split)
        cost = (seek + nbytes / p.disk_bandwidth) * self._slowdown(op.node) / p.n_disks
        return cost

    def run(self, ops: Iterable[Op]) -> ReplayResult:
        for op in ops:
            getattr(self, "_op_" + op.kind)(op)
        times = [max(c, f) for c, f in zip(self.clock, self.rank_free)]
        return ReplayResult(
            elapsed=max(times, default=0.0),
            node_times=times,
            compute_seconds=self.compute_seconds,
            io_seconds=self.io_seconds,
            net_seconds=self.net_seconds,
        )

    # -- op handlers -------------------------------------------------------

    def _op_compute(self, op: Op) -> None:
        seconds = op.ops * self.p.volume(op.node) * self.p.seconds_per_op / self.p.speed(op.node)
        self.clock[op.node] += seconds
        self.compute_seconds += seconds

    def _op_read(self, op: Op) -> None:
        cost = self._io_cost(op)
        self.io_seconds += cost
        n = op.node
        if self.p.kernel == "event":
            start = max(self.clock[n], self.disk_free.get(op.disk, 0.0))
            end = start + cost
            self.disk_free[op.disk] = end
            self.clock[n] = max(self.clock[n], end)
        else:
            self.clock[n] += cost

    def _op_write(self, op: Op) -> None:
        cost = self._io_cost(op)
        self.io_seconds += cost
        n = op.node
        if self.p.kernel == "event":
            start = max(self.clock[n], self.disk_free.get(op.disk, 0.0))
            end = start + cost
            self.disk_free[op.disk] = end
            if end > self.rank_free[n]:
                self.rank_free[n] = end
        else:
            self.clock[n] += cost

    def _op_xfer(self, op: Op) -> None:
        src, dst = op.node, op.dst
        scale = self.p.volume(dst)
        nbytes = int(round(op.nbytes * scale)) if scale != 1.0 else op.nbytes
        dur = self.p.link.message_time(nbytes, self.p.packet_bytes) + op.extra
        self.net_seconds += dur
        start = max(self.clock[src], self.out_free[src], self.in_free[dst])
        end = start + dur
        self.out_free[src] = end
        self.in_free[dst] = end
        self.clock[src] = max(self.clock[src], end)
        self.clock[dst] = max(self.clock[dst], end)

    def _op_barrier(self, op: Op) -> None:
        ranks = [r for r in op.ranks if 0 <= r < self.n]
        if not ranks:
            return
        t1 = max(max(self.clock[r], self.rank_free[r]) for r in ranks)
        for r in ranks:
            self.clock[r] = t1
            self.rank_free[r] = 0.0

    def _op_backoff(self, op: Op) -> None:
        ranks = range(self.n) if op.node < 0 else [op.node]
        for r in ranks:
            self.clock[r] += op.extra


def replay(
    ops: Sequence[Op], params: ReplayParams, n_nodes: Optional[int] = None
) -> ReplayResult:
    """Re-execute an operation sequence under the given parameters."""
    if n_nodes is None:
        n_nodes = len(params.speeds)
        for op in ops:
            n_nodes = max(n_nodes, op.node + 1, op.dst + 1, *(r + 1 for r in op.ranks or (0,)))
    return _Machine(params, n_nodes).run(ops)
