"""Per-(step, node) blame decomposition of a reconstructed run.

Each node's recorded step span is clipped against its timeline segments
and the clipped durations are rolled up into the five blame components
(compute / disk / net / barrier / other).  Because the timeline tiles
every node's clock without gaps, the components of one (step, node)
cell always sum to the cell's span — the report conserves time exactly,
it never estimates it.

The report also carries the two heterogeneity figures the paper's
analysis revolves around:

* per-step *time skew* — ``max_i span_i / mean_i span_i``, the wall-time
  analogue of the item-count imbalance ``s_max / (n/p)``;
* a run-level *straggler index* — the same max/mean ratio over each
  node's total productive (compute + disk + net) time across the
  numbered steps.  The paper's Theorem 1 bounds the *item* imbalance by
  2; the straggler index says how close the run came to that bound in
  time, which is what actually determines the finish line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.profiler.model import BARRIER, COMPONENT_OF, COMPONENTS
from repro.obs.profiler.timeline import Timeline

#: Components counted as productive work for the straggler index.
_PRODUCTIVE = ("compute", "disk", "net")


@dataclass(frozen=True)
class StepBlame:
    """One step's decomposition: per-node spans and component splits."""

    step: str
    #: node -> component -> seconds (components sum to the node's span).
    by_node: dict[int, dict[str, float]]
    #: node -> recorded span length (sum of the node's step intervals).
    spans: dict[int, float]
    #: max span / mean span over participating nodes (>= 1).
    time_skew: float

    @property
    def span_max(self) -> float:
        return max(self.spans.values(), default=0.0)

    def totals(self) -> dict[str, float]:
        out = {c: 0.0 for c in COMPONENTS}
        for comps in self.by_node.values():
            for c, v in comps.items():
                out[c] = out.get(c, 0.0) + v
        return out

    def dominant(self) -> str:
        totals = self.totals()
        return max(COMPONENTS, key=lambda c: totals.get(c, 0.0))


@dataclass(frozen=True)
class BlameReport:
    """The whole run's blame decomposition."""

    steps: list[StepBlame]
    elapsed: float
    #: Run-level component totals over the *whole* timeline (all nodes,
    #: in-step and between steps alike) — they sum to n_nodes * elapsed.
    #: With the event kernel a node's StepEnd fires at its own finish
    #: time, so barrier idle sits between step spans; it shows up here
    #: and in ``barrier_seconds`` even though in-step cells report 0.
    totals: dict[str, float]
    #: Barrier idle summed over nodes, keyed by the rendezvous's step
    #: label ("(between steps)" when the barrier carried none).
    barrier_seconds: dict[str, float]
    #: max/mean per-node productive time over the numbered steps (>= 1);
    #: the time-domain counterpart of the paper's 2x bound.
    straggler_index: float
    straggler_reference: float = field(default=2.0)

    def step(self, name: str) -> StepBlame:
        for sb in self.steps:
            if sb.step == name:
                return sb
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "elapsed_seconds": self.elapsed,
            "straggler_index": self.straggler_index,
            "straggler_reference": self.straggler_reference,
            "totals": {c: self.totals.get(c, 0.0) for c in COMPONENTS},
            "barrier_seconds": dict(sorted(self.barrier_seconds.items())),
            "steps": [
                {
                    "step": sb.step,
                    "time_skew": sb.time_skew,
                    "span_max": sb.span_max,
                    "dominant": sb.dominant(),
                    "by_node": {
                        str(node): {
                            "span": sb.spans[node],
                            **{c: comps.get(c, 0.0) for c in COMPONENTS},
                        }
                        for node, comps in sorted(sb.by_node.items())
                    },
                }
                for sb in self.steps
            ],
        }


def _clip_components(
    tl: Timeline, node: int, intervals: list[tuple[float, float]]
) -> tuple[dict[str, float], float]:
    """Component split of ``node``'s segments clipped to ``intervals``."""
    comps = {c: 0.0 for c in COMPONENTS}
    span = 0.0
    segs = tl.segments.get(node, [])
    for t0, t1 in intervals:
        span += t1 - t0
        for seg in segs:
            lo = max(seg.t0, t0)
            hi = min(seg.t1, t1)
            if hi > lo:
                comps[seg.component] += hi - lo
    return comps, span


def _is_numbered(step: str) -> bool:
    return bool(step) and step[0].isdigit()


def blame_report(tl: Timeline) -> BlameReport:
    """Decompose a reconstructed run into a per-(step, node) blame report."""
    steps: list[StepBlame] = []
    totals = {c: 0.0 for c in COMPONENTS}
    for kind, seconds in tl.total_by_kind().items():
        totals[COMPONENT_OF.get(kind, "other")] += seconds
    barrier_seconds: dict[str, float] = {}
    for segs in tl.segments.values():
        for seg in segs:
            if seg.kind == BARRIER:
                key = seg.step or "(between steps)"
                barrier_seconds[key] = barrier_seconds.get(key, 0.0) + seg.duration
    productive = [0.0] * tl.n_nodes
    for step, per_node in tl.step_spans.items():
        by_node: dict[int, dict[str, float]] = {}
        spans: dict[int, float] = {}
        for node, intervals in sorted(per_node.items()):
            comps, span = _clip_components(tl, node, intervals)
            by_node[node] = comps
            spans[node] = span
            if _is_numbered(step) and node < tl.n_nodes:
                productive[node] += sum(comps[c] for c in _PRODUCTIVE)
        values = list(spans.values())
        mean = sum(values) / len(values) if values else 0.0
        skew = (max(values) / mean) if mean > 0 else 1.0
        steps.append(StepBlame(step=step, by_node=by_node, spans=spans, time_skew=skew))
    busy = [p for p in productive if p > 0.0]
    mean_busy = sum(busy) / len(busy) if busy else 0.0
    straggler = (max(busy) / mean_busy) if mean_busy > 0 else 1.0
    return BlameReport(
        steps=steps,
        elapsed=tl.elapsed,
        totals=totals,
        barrier_seconds=barrier_seconds,
        straggler_index=straggler,
    )
