"""Causal critical-path profiler with what-if speedup prediction.

Entry point: :class:`RunProfile` — build one from a live cluster's bus
(:meth:`RunProfile.from_cluster`) or from a saved JSONL log's events +
``run_meta`` (:func:`profile_from_jsonl_meta`), then read:

* ``profile.timeline`` — per-node segment tilings (happens-before DAG
  flattened onto each node's clock, causal links on waits);
* ``profile.critical`` — the critical path; its total equals the run's
  elapsed time whenever the walk completes;
* ``profile.blame`` — per-(step, node) compute/disk/net/barrier split,
  per-step time skew and the run-level straggler index;
* ``profile.what_if("disks=4")`` — predicted elapsed under a change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from repro.obs.events import Event
from repro.obs.profiler.blame import BlameReport, StepBlame, blame_report
from repro.obs.profiler.critical import CriticalPath, critical_path
from repro.obs.profiler.model import (
    COMPONENT_OF,
    COMPONENTS,
    BarrierGroup,
    HardwareMeta,
    Segment,
)
from repro.obs.profiler.replay import (
    Op,
    ReplayParams,
    ReplayResult,
    extract_ops,
    replay,
)
from repro.obs.profiler.timeline import Timeline, build_timeline, merge_intervals
from repro.obs.profiler.whatif import WhatIfError, WhatIfResult, predict

if TYPE_CHECKING:
    from repro.cluster.machine import Cluster

__all__ = [
    "BarrierGroup",
    "BlameReport",
    "COMPONENTS",
    "COMPONENT_OF",
    "CriticalPath",
    "HardwareMeta",
    "Op",
    "ReplayParams",
    "ReplayResult",
    "RunProfile",
    "Segment",
    "StepBlame",
    "Timeline",
    "WhatIfError",
    "WhatIfResult",
    "blame_report",
    "build_timeline",
    "critical_path",
    "extract_ops",
    "merge_intervals",
    "predict",
    "profile_from_jsonl_meta",
    "replay",
]


class RunProfile:
    """One recorded run, reconstructed and ready for questioning."""

    def __init__(
        self,
        events: Iterable[Event],
        hw: Optional[HardwareMeta] = None,
        block_items: Optional[int] = None,
    ) -> None:
        self.events = list(events)
        self.hw = hw if hw is not None else HardwareMeta()
        self.block_items = block_items
        self.timeline = build_timeline(self.events, self.hw)
        self.critical = critical_path(self.timeline)
        self.blame = blame_report(self.timeline)
        self._ops: Optional[list[Op]] = None

    @staticmethod
    def from_cluster(
        cluster: "Cluster", block_items: Optional[int] = None
    ) -> "RunProfile":
        """Profile a just-finished run straight off its cluster's bus."""
        return RunProfile(
            list(cluster.bus.events),
            hw=HardwareMeta.from_cluster(cluster),
            block_items=block_items,
        )

    @property
    def elapsed(self) -> float:
        return self.timeline.elapsed

    @property
    def ops(self) -> list[Op]:
        """The replayable operation sequence (extracted lazily)."""
        if self._ops is None:
            self._ops = extract_ops(self.events, self.hw)
        return self._ops

    def baseline_replay(self) -> ReplayResult:
        """Model replay under the run's own parameters (fidelity check)."""
        return replay(
            self.ops, ReplayParams.from_hw(self.hw), n_nodes=self.timeline.n_nodes
        )

    def what_if(self, spec: str) -> WhatIfResult:
        """Predicted elapsed time under a hypothetical change."""
        return predict(
            self.ops,
            ReplayParams.from_hw(self.hw),
            spec,
            recorded_elapsed=self.elapsed,
            n_nodes=self.timeline.n_nodes,
            block_items=self.block_items,
        )

    def to_dict(self, whatifs: Iterable[str] = ()) -> dict:
        """JSON-ready report (what the CLI's ``--format json`` prints)."""
        out = {
            "elapsed_seconds": self.elapsed,
            "n_nodes": self.timeline.n_nodes,
            "capture_has_compute": self.timeline.has_compute,
            "critical_path": self.critical.to_dict(),
            "blame": self.blame.to_dict(),
            "drive_busy_seconds": {
                f"{node}:{disk}": sum(t1 - t0 for t0, t1 in intervals)
                for (node, disk), intervals in self.timeline.drive_busy.items()
            },
        }
        predictions = [self.what_if(spec).to_dict() for spec in whatifs]
        if predictions:
            out["what_if"] = predictions
        return out


def profile_from_jsonl_meta(
    meta: Optional[Mapping[str, object]], events: Iterable[Event]
) -> RunProfile:
    """Build a profile from ``exporters.read_jsonl`` output.

    The ``hw`` key of the run_meta line (written by ``repro sort
    --events``) restores the hardware model; ``block_items`` enables the
    ``block=`` what-if.  Both degrade gracefully when absent (older
    logs): reconstruction and blame still work, what-ifs assume the
    stock hardware.
    """
    hw = None
    block_items = None
    if meta:
        raw_hw = meta.get("hw")
        if isinstance(raw_hw, Mapping):
            hw = HardwareMeta.from_dict(raw_hw)
        raw_b = meta.get("block_items")
        if isinstance(raw_b, (int, float)):
            block_items = int(raw_b)
    return RunProfile(events, hw=hw, block_items=block_items)
