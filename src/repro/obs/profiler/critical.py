"""Backward critical-path walk over a reconstructed timeline.

Starting from the node that defines the run's end, walk time backwards.
On a productive segment the path absorbs it and continues down the same
node; on a wait-type segment the path *jumps* — at the same instant — to
the node whose progress ended the wait (a barrier's gating node, the
transfer that occupied a channel).  Because a jump loses no time and an
absorbed segment always ends exactly where the previous one began, the
path's total duration equals the run's elapsed time whenever the walk
reaches t = 0 — the profiler's first conservation property.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.profiler.model import BARRIER, COMPONENTS, NET_WAIT, Segment
from repro.obs.profiler.timeline import EPS, Timeline


@dataclass(frozen=True)
class CriticalPath:
    """The run's longest dependency chain, as clipped timeline segments."""

    segments: tuple[Segment, ...]
    #: Sum of segment durations == elapsed when ``complete``.
    total: float
    by_kind: dict[str, float]
    by_component: dict[str, float]
    by_step: dict[str, float]
    #: True when the walk reached t = 0 (the path covers the whole run).
    complete: bool

    def to_dict(self) -> dict:
        return {
            "total_seconds": self.total,
            "complete": self.complete,
            "by_component": {k: self.by_component.get(k, 0.0) for k in COMPONENTS},
            "by_kind": dict(sorted(self.by_kind.items())),
            "by_step": dict(sorted(self.by_step.items())),
            "n_segments": len(self.segments),
        }


def critical_path(tl: Timeline) -> CriticalPath:
    """Extract the critical path of a reconstructed run."""
    if tl.n_nodes == 0 or tl.elapsed <= 0.0:
        return CriticalPath((), 0.0, {}, {}, {}, True)
    # Start at the node whose own cursor defines the run's end (ties to
    # the lowest rank); trailing idle padding never sits on the path.
    node = min(
        range(tl.n_nodes),
        key=lambda r: (-(tl.final_times[r]), r),
    )
    t = tl.elapsed
    tol = EPS * max(1.0, tl.elapsed)
    out: list[Segment] = []
    total_segs = sum(len(s) for s in tl.segments.values())
    max_iter = 10 * total_segs + 100
    complete = False
    #: Jump targets visited at the current instant (cycle guard for
    #: mutually-linked waits); cleared whenever time moves.
    jumped: set[int] = set()
    for _ in range(max_iter):
        if t <= tol:
            complete = True
            break
        seg = tl.segment_at(node, t)
        if seg is None:
            break
        absorb = True
        if seg.link is not None and seg.kind in (BARRIER, NET_WAIT):
            peer = seg.link[0]
            t_jump = t if seg.kind == BARRIER else seg.link[1]
            if peer != node and peer not in jumped and 0 <= peer < tl.n_nodes:
                jumped.add(node)
                node = peer
                if t_jump < t - tol:
                    # A wait's cause ends where the wait began: the time
                    # in between is covered by the wait itself.
                    out.append(
                        Segment(
                            node=seg.node,
                            t0=t_jump,
                            t1=t,
                            kind=seg.kind,
                            step=seg.step,
                            link=seg.link,
                        )
                    )
                    t = t_jump
                    jumped = {seg.node}
                absorb = False
        if absorb:
            t0 = max(seg.t0, 0.0)
            if t0 >= t - tol:
                # Zero-width residue: step past it to avoid stalling.
                nt = min(t, seg.t0)
                t = nt if nt < t else t - tol
                continue
            out.append(
                Segment(
                    node=seg.node, t0=t0, t1=t, kind=seg.kind, step=seg.step, link=seg.link
                )
            )
            t = t0
            jumped = set()
    out.reverse()
    by_kind: dict[str, float] = {}
    by_component: dict[str, float] = {}
    by_step: dict[str, float] = {}
    for s in out:
        by_kind[s.kind] = by_kind.get(s.kind, 0.0) + s.duration
        by_component[s.component] = by_component.get(s.component, 0.0) + s.duration
        key = s.step or "(outside steps)"
        by_step[key] = by_step.get(key, 0.0) + s.duration
    total = sum(s.duration for s in out)
    return CriticalPath(tuple(out), total, by_kind, by_component, by_step, complete)
