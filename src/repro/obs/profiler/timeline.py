"""Per-node timeline reconstruction from a recorded telemetry stream.

The profiler's foundation: replay a run's event stream (in emission
order) keeping one time cursor per node, and tile every node's clock
from 0 to the run's end with typed :class:`~repro.obs.profiler.model.Segment`
intervals.  The reconstruction is *recorded-timestamp driven* — segment
boundaries come from the events' own clock stamps, never from re-running
the cost model — so two invariants hold by construction:

* every node's segments tile ``[0, elapsed]`` without gaps or overlaps;
* clipping segments to a step's recorded span always sums exactly to
  that span (the blame report's conservation property).

Cross-node causality is preserved as ``link`` annotations on wait-type
segments (who released this barrier, which transfer blocked this send),
which is all the critical-path walk needs.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.obs.events import (
    BarrierWait,
    BlockRead,
    BlockWrite,
    Compute,
    Event,
    NetTransfer,
    Retry,
    StepBegin,
    StepEnd,
)
from repro.obs.profiler.model import (
    BACKOFF,
    BARRIER,
    COMPUTE,
    DISK,
    DISK_FLUSH,
    DISK_QUEUE,
    IDLE,
    NET_RECV,
    NET_SEND,
    NET_WAIT,
    OTHER,
    BarrierGroup,
    HardwareMeta,
    Segment,
)

#: Intervals shorter than this are dropped (float noise, not time).
EPS = 1e-12


@dataclass
class Timeline:
    """The reconstructed run: per-node segment tilings + causal anchors."""

    n_nodes: int
    #: Per-node segments, time-ascending, tiling ``[0, elapsed]``.
    segments: dict[int, list[Segment]]
    #: Merged busy intervals per ``(node, disk_name)`` drive timeline.
    drive_busy: dict[tuple[int, str], list[tuple[float, float]]]
    #: Every rendezvous observed (explicit barriers + lockstep entries).
    barrier_groups: list[BarrierGroup]
    #: ``step -> node -> [(t0, t1), ...]`` recorded step spans.
    step_spans: dict[str, dict[int, list[tuple[float, float]]]]
    #: End of the run: the furthest any node's cursor reached.
    elapsed: float
    #: Per-node cursor position before trailing-idle padding.
    final_times: list[float]
    #: True when the stream carried ``Compute`` events (capture level
    #: "full"); without them, pre-I/O gaps are untracked compute and are
    #: labelled ``other`` instead of ``disk-queue``.
    has_compute: bool
    _ends: dict[int, list[float]] = field(default_factory=dict, repr=False)

    def segment_at(self, node: int, t: float) -> Optional[Segment]:
        """The segment of ``node`` covering ``(t0, t]`` for time ``t``."""
        segs = self.segments.get(node)
        if not segs:
            return None
        ends = self._ends.get(node)
        if ends is None or len(ends) != len(segs):
            ends = [s.t1 for s in segs]
            self._ends[node] = ends
        tol = EPS * max(1.0, abs(t))
        idx = bisect_left(ends, t - tol)
        if idx >= len(segs):
            return None
        seg = segs[idx]
        if seg.t0 > t + tol:
            return None
        return seg

    def total_by_kind(self) -> dict[str, float]:
        """Summed duration per segment kind across all nodes."""
        out: dict[str, float] = {}
        for segs in self.segments.values():
            for s in segs:
                out[s.kind] = out.get(s.kind, 0.0) + s.duration
        return out


class _Builder:
    """Stream interpreter: one cursor per node, causal bookkeeping."""

    def __init__(self, n_nodes: int, has_compute: bool) -> None:
        self.n = n_nodes
        self.has_compute = has_compute
        self.tau = [0.0] * n_nodes
        #: Furthest write-behind completion queued since the last sync.
        self.pending_flush = [0.0] * n_nodes
        self.segs: dict[int, list[Segment]] = {r: [] for r in range(n_nodes)}
        self.drive_busy: dict[tuple[int, str], list[tuple[float, float]]] = {}
        self.groups: list[BarrierGroup] = []
        self.step_spans: dict[str, dict[int, list[tuple[float, float]]]] = {}
        #: Last completed transfer into each rank: ``dst -> (end, src)``.
        self.in_channel: dict[int, tuple[float, int]] = {}

    # -- segment emission --------------------------------------------------

    def advance(
        self,
        node: int,
        t: float,
        kind: str,
        step: str,
        link: Optional[tuple[int, float]] = None,
    ) -> None:
        """Move ``node``'s cursor forward to ``t``, labelling the interval."""
        t0 = self.tau[node]
        if t <= t0 + EPS * max(1.0, abs(t)):
            self.tau[node] = max(t0, t)
            return
        self.segs[node].append(Segment(node=node, t0=t0, t1=t, kind=kind, step=step, link=link))
        self.tau[node] = t

    def busy(self, node: int, disk: str, t0: float, t1: float) -> None:
        if t1 > t0:
            self.drive_busy.setdefault((node, disk), []).append((t0, t1))

    # -- event handlers ----------------------------------------------------

    def on_compute(self, ev: Compute) -> None:
        start = ev.t - ev.seconds
        self.advance(ev.node, start, OTHER, ev.step)
        self.advance(ev.node, ev.t, COMPUTE, ev.step)

    def on_read(self, ev: BlockRead) -> None:
        queued = ev.queued if ev.queued >= 0.0 else ev.t - ev.cost
        gap_kind = DISK_QUEUE if self.has_compute else OTHER
        self.advance(ev.node, queued, gap_kind, ev.step)
        self.advance(ev.node, ev.t, DISK, ev.step)
        self.busy(ev.node, ev.disk, queued, queued + ev.cost)
        # A read drains the drive's queue: nothing is pending any more.
        self.pending_flush[ev.node] = 0.0

    def on_write(self, ev: BlockWrite) -> None:
        queued = ev.queued if ev.queued >= 0.0 else ev.t - ev.cost
        self.busy(ev.node, ev.disk, queued, queued + ev.cost)
        # Discriminate write-behind (t = issue time, service starts at or
        # after it) from synchronous writes (t = completion, service was
        # [t - cost, t]) by where the service interval sits relative to t.
        write_behind = ev.cost <= 0.0 or queued > ev.t - ev.cost * 0.5
        if write_behind:
            end = queued + ev.cost
            if end > self.pending_flush[ev.node]:
                self.pending_flush[ev.node] = end
            self.advance(ev.node, ev.t, OTHER, ev.step)
        else:
            gap_kind = DISK_QUEUE if self.has_compute else OTHER
            self.advance(ev.node, queued, gap_kind, ev.step)
            self.advance(ev.node, ev.t, DISK, ev.step)

    def on_transfer(self, ev: NetTransfer) -> None:
        start = ev.t - ev.duration
        src, dst = ev.src, ev.dst
        # Sender side: a gap before the transmission means the message
        # waited for the receiver's inbound channel — the previous
        # transfer into ``dst`` is the cause (the sender's own outbound
        # channel is never behind its clock after a synchronous send).
        if src < self.n:
            prev = self.in_channel.get(dst)
            tol = EPS * max(1.0, abs(start))
            if prev is not None and abs(prev[0] - start) <= tol:
                cause = (prev[1], start)
            else:
                cause = (dst, start)
            self.advance(src, start, NET_WAIT, ev.step, link=cause)
            self.advance(src, ev.t, NET_SEND, ev.step)
        # Receiver side: blocked until the data fully arrived; any gap
        # before the transfer started is waiting on the sender.
        if dst < self.n and self.tau[dst] < ev.t:
            self.advance(dst, start, NET_WAIT, ev.step, link=(src, start))
            self.advance(dst, ev.t, NET_RECV, ev.step)
        self.in_channel[dst] = (ev.t, src)

    def on_barrier_group(self, group: Sequence[BarrierWait]) -> None:
        t1 = group[0].t
        waits = [(ev.node, ev.wait) for ev in group]
        bg = BarrierGroup(t=t1, step=group[0].step, waits=waits)
        gating = bg.gating_node()
        for ev in group:
            node = ev.node
            if node >= self.n:
                continue
            arrival = max(self.tau[node], t1 - ev.wait)
            flush = self.pending_flush[node]
            if flush > self.tau[node]:
                self.advance(node, min(flush, arrival), DISK_FLUSH, ev.step)
            self.advance(node, arrival, OTHER, ev.step)
            self.advance(node, t1, BARRIER, ev.step, link=(gating, t1))
            self.pending_flush[node] = 0.0
        self.groups.append(bg)

    def on_step_begin_group(self, group: Sequence[StepBegin]) -> None:
        # Under the lockstep kernel step entry is a barrier: members
        # share one timestamp and the gap up to it is rendezvous idle.
        # Under the event kernel timestamps differ per node and any gap
        # is just untracked residue.
        by_t: dict[float, list[StepBegin]] = {}
        for ev in group:
            by_t.setdefault(ev.t, []).append(ev)
        for t, members in by_t.items():
            if len(members) >= 2:
                waits = [(ev.node, t - self.tau[ev.node]) for ev in members if ev.node < self.n]
                if not waits:
                    continue
                bg = BarrierGroup(t=t, step=group[0].step, waits=waits)
                gating = bg.gating_node()
                emitted = False
                for ev in members:
                    if ev.node >= self.n:
                        continue
                    before = len(self.segs[ev.node])
                    self.advance(ev.node, t, BARRIER, ev.step, link=(gating, t))
                    emitted = emitted or len(self.segs[ev.node]) > before
                if emitted:
                    self.groups.append(bg)
            else:
                for ev in members:
                    if ev.node < self.n:
                        self.advance(ev.node, t, OTHER, ev.step)

    def on_step_end(self, ev: StepEnd) -> None:
        spans = self.step_spans.setdefault(ev.step, {})
        spans.setdefault(ev.node, []).append((ev.t - ev.duration, ev.t))
        self.advance(ev.node, ev.t, OTHER, ev.step)

    def on_retry(self, ev: Retry) -> None:
        # Backoff is charged to every node's clock from where it stands.
        ranks = range(self.n) if ev.node < 0 else [ev.node]
        for r in ranks:
            self.advance(r, self.tau[r] + ev.backoff, BACKOFF, ev.step)


def build_timeline(
    events: Iterable[Event], hw: Optional[HardwareMeta] = None
) -> Timeline:
    """Reconstruct per-node timelines from a recorded event stream."""
    stream = list(events)
    ranks: set[int] = set()
    has_compute = False
    for ev in stream:
        if ev.node >= 0:
            ranks.add(ev.node)
        if isinstance(ev, NetTransfer):
            ranks.add(ev.src)
            ranks.add(ev.dst)
        elif isinstance(ev, Compute):
            has_compute = True
    if hw is not None and hw.speeds:
        ranks.update(range(len(hw.speeds)))
    n = (max(ranks) + 1) if ranks else 0
    b = _Builder(n, has_compute)

    i = 0
    while i < len(stream):
        ev = stream[i]
        if isinstance(ev, BarrierWait):
            group: list[BarrierWait] = []
            seen: set[int] = set()
            j = i
            tol = EPS * max(1.0, abs(ev.t))
            while (
                j < len(stream)
                and isinstance(stream[j], BarrierWait)
                and abs(stream[j].t - ev.t) <= tol
                and stream[j].node not in seen
            ):
                group.append(stream[j])  # type: ignore[arg-type]
                seen.add(stream[j].node)
                j += 1
            b.on_barrier_group(group)
            i = j
            continue
        if isinstance(ev, StepBegin):
            sgroup: list[StepBegin] = []
            j = i
            while (
                j < len(stream)
                and isinstance(stream[j], StepBegin)
                and stream[j].step == ev.step
            ):
                sgroup.append(stream[j])  # type: ignore[arg-type]
                j += 1
            b.on_step_begin_group(sgroup)
            i = j
            continue
        if isinstance(ev, Compute):
            b.on_compute(ev)
        elif isinstance(ev, BlockRead):
            b.on_read(ev)
        elif isinstance(ev, BlockWrite):
            b.on_write(ev)
        elif isinstance(ev, NetTransfer):
            b.on_transfer(ev)
        elif isinstance(ev, StepEnd):
            b.on_step_end(ev)
        elif isinstance(ev, Retry):
            b.on_retry(ev)
        # FaultInjected / MemReserve / MemRelease carry no clock advance.
        i += 1

    final_times = list(b.tau)
    elapsed = max(final_times) if final_times else 0.0
    # Trailing idle: nodes that finished early (or died) pad to the end
    # so every timeline tiles the same [0, elapsed] axis.
    for r in range(n):
        b.advance(r, elapsed, IDLE, "")
    busy = {
        key: merge_intervals(iv) for key, iv in sorted(b.drive_busy.items())
    }
    return Timeline(
        n_nodes=n,
        segments=b.segs,
        drive_busy=busy,
        barrier_groups=b.groups,
        step_spans=b.step_spans,
        elapsed=elapsed,
        final_times=final_times,
        has_compute=has_compute,
    )


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Coalesce overlapping/adjacent intervals (drive busy accounting)."""
    out: list[tuple[float, float]] = []
    for t0, t1 in sorted(intervals):
        if out and t0 <= out[-1][1] + EPS:
            if t1 > out[-1][1]:
                out[-1] = (out[-1][0], t1)
        else:
            out.append((t0, t1))
    return out
