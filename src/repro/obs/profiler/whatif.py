"""What-if engine: predict virtual speedups without re-running.

A scenario is a small spec string, e.g. ``perf=2,2,8,8``, ``disks=4``,
``net=myrinet`` or ``net.latency=1e-3``; clauses combine with ``;`` or
whitespace (``"disks=4; net=myrinet"``).  The engine edits the run's
:class:`~repro.obs.profiler.replay.ReplayParams` accordingly, replays
the recorded operation sequence twice — once with the run's own
parameters, once with the edit — and scales the recorded elapsed time
by the ratio of the two model times:

    predicted = recorded_elapsed * T_model(edited) / T_model(baseline)

The ratio form cancels the model's systematic drift (untracked residue,
coalesced compute), which is what keeps predictions within a few
percent of actual re-runs for sequence-preserving changes.

Supported clauses
-----------------
``perf=s0,s1,...``     new relative-speed vector (must keep length)
``disks=D``            drives per node
``net=NAME``           link preset (``fast-ethernet`` or ``myrinet``)
``net.latency=S``      per-packet latency, seconds
``net.bandwidth=B``    link bandwidth, bytes/second
``net.overhead=S``     sub-MTU small-message overhead, seconds
``packet=BYTES``       message packetisation size
``disk.seek=S``        per-access seek/overhead, seconds
``disk.bandwidth=B``   drive bandwidth, bytes/second
``cpu=S``              seconds per abstract operation
``block=ITEMS``        block size (approximate: the merge order of the
                       real algorithm depends on B, which a replay
                       cannot reproduce)

Changes that move partition shares (non-uniform ``perf`` edits) apply a
first-order per-node volume correction and are flagged ``approximate``,
as is ``block=``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.cluster.network import FAST_ETHERNET, MYRINET
from repro.obs.profiler.replay import (
    Op,
    ReplayParams,
    replay,
    with_speeds,
)

#: Link presets addressable from a scenario spec.
LINK_PRESETS = {
    "fast-ethernet": FAST_ETHERNET,
    "ethernet": FAST_ETHERNET,
    "myrinet": MYRINET,
}


class WhatIfError(ValueError):
    """A scenario spec could not be parsed or applied."""


@dataclass(frozen=True)
class WhatIfResult:
    """One scenario's prediction."""

    scenario: str
    predicted_elapsed: float
    recorded_elapsed: float
    #: recorded / predicted: > 1 means the change helps.
    speedup: float
    #: True when the change may alter the real run's operation sequence
    #: (the replay is a first-order approximation, not a prediction
    #: backed by identical scheduling).
    approximate: bool
    baseline_model: float
    whatif_model: float

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "predicted_elapsed_seconds": self.predicted_elapsed,
            "recorded_elapsed_seconds": self.recorded_elapsed,
            "speedup": self.speedup,
            "approximate": self.approximate,
            "model_baseline_seconds": self.baseline_model,
            "model_whatif_seconds": self.whatif_model,
        }


def _clauses(spec: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    for raw in spec.replace(";", " ").split():
        if "=" not in raw:
            raise WhatIfError(f"what-if clause {raw!r} is not key=value")
        key, value = raw.split("=", 1)
        out.append((key.strip().lower(), value.strip()))
    if not out:
        raise WhatIfError("empty what-if spec")
    return out


def apply_spec(
    params: ReplayParams, spec: str, block_items: Optional[int] = None
) -> tuple[ReplayParams, bool]:
    """Apply a scenario spec; returns (edited params, approximate flag)."""
    approximate = False
    for key, value in _clauses(spec):
        try:
            if key == "perf":
                speeds = tuple(float(v) for v in value.split(","))
                if params.speeds and len(speeds) != len(params.speeds):
                    raise WhatIfError(
                        f"perf needs {len(params.speeds)} values, got {len(speeds)}"
                    )
                if any(s <= 0 for s in speeds):
                    raise WhatIfError("perf values must be > 0")
                old_shares = _shares(params.speeds)
                params = with_speeds(params, speeds)
                approximate = approximate or _shares(speeds) != old_shares
            elif key == "disks":
                d = int(value)
                if d < 1:
                    raise WhatIfError("disks must be >= 1")
                params = replace(params, n_disks=d)
            elif key == "net":
                preset = LINK_PRESETS.get(value.lower())
                if preset is None:
                    raise WhatIfError(
                        f"unknown link preset {value!r}; have {sorted(LINK_PRESETS)}"
                    )
                params = replace(params, link=preset)
            elif key == "net.latency":
                params = replace(params, link=replace(params.link, latency=float(value)))
            elif key == "net.bandwidth":
                params = replace(params, link=replace(params.link, bandwidth=float(value)))
            elif key == "net.overhead":
                params = replace(
                    params, link=replace(params.link, small_message_overhead=float(value))
                )
            elif key == "packet":
                params = replace(params, packet_bytes=int(value))
            elif key == "disk.seek":
                params = replace(params, seek_time=float(value))
            elif key == "disk.bandwidth":
                params = replace(params, disk_bandwidth=float(value))
            elif key == "cpu":
                params = replace(params, seconds_per_op=float(value))
            elif key == "block":
                new_b = int(value)
                if new_b < 1:
                    raise WhatIfError("block must be >= 1 item")
                if block_items is None:
                    raise WhatIfError(
                        "block= what-if needs the run's block size "
                        "(run_meta.block_items missing from the log)"
                    )
                params = replace(params, io_split=block_items / new_b)
                approximate = True
            else:
                raise WhatIfError(f"unknown what-if key {key!r}")
        except WhatIfError:
            raise
        except ValueError as exc:
            raise WhatIfError(f"bad value for {key!r}: {value!r} ({exc})") from exc
    return params, approximate


def predict(
    ops: Sequence[Op],
    baseline: ReplayParams,
    spec: str,
    recorded_elapsed: float,
    n_nodes: Optional[int] = None,
    block_items: Optional[int] = None,
) -> WhatIfResult:
    """Predict the elapsed time of a run under a hypothetical change."""
    edited, approximate = apply_spec(baseline, spec, block_items=block_items)
    base = replay(ops, baseline, n_nodes=n_nodes)
    what = replay(ops, edited, n_nodes=n_nodes)
    if base.elapsed > 0:
        predicted = recorded_elapsed * what.elapsed / base.elapsed
    else:
        predicted = what.elapsed
    speedup = (recorded_elapsed / predicted) if predicted > 0 else float("inf")
    return WhatIfResult(
        scenario=spec,
        predicted_elapsed=predicted,
        recorded_elapsed=recorded_elapsed,
        speedup=speedup,
        approximate=approximate,
        baseline_model=base.elapsed,
        whatif_model=what.elapsed,
    )


def _shares(speeds: tuple[float, ...]) -> tuple[float, ...]:
    total = sum(speeds)
    if total <= 0:
        return speeds
    return tuple(round(s / total, 12) for s in speeds)
