"""Shared data model of the critical-path profiler.

Two kinds of objects live here:

* :class:`HardwareMeta` — the run's hardware/cost-model parameters
  (speeds, disk and link models, kernel name), serialised into the
  JSONL ``run_meta`` line under the ``"hw"`` key.  The bounds auditor's
  :class:`~repro.obs.audit.RunMeta` describes the *algorithm*
  configuration; ``HardwareMeta`` describes the *machine*, which is
  what the what-if engine needs to re-cost a recorded run.
* :class:`Segment` — one contiguous interval of one node's time, with
  a *kind* (compute, disk service, network, barrier idle, ...).  The
  timeline reconstruction tiles every node's clock from 0 to the run's
  end with segments; the critical-path walk and the blame report are
  folds over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:
    from repro.cluster.machine import Cluster

# -- segment kinds ----------------------------------------------------------

COMPUTE = "compute"          #: charged CPU work
DISK = "disk"                #: drive service time the node blocked on
DISK_QUEUE = "disk-queue"    #: waiting for the drive's queue to drain
DISK_FLUSH = "disk-flush"    #: write-behind draining before a barrier
NET_SEND = "net-send"        #: transmitting a message
NET_RECV = "net-recv"        #: receiving a message (in flight)
NET_WAIT = "net-wait"        #: waiting for a peer or a busy channel
BARRIER = "barrier"          #: idle at a rendezvous point
BACKOFF = "fault-backoff"    #: retry backoff pause after a transient fault
IDLE = "idle"                #: trailing idle (node finished before the run did)
OTHER = "other"              #: unattributed clock advance (low capture level)

#: Blame component each segment kind rolls up into.
COMPONENT_OF: dict[str, str] = {
    COMPUTE: "compute",
    DISK: "disk",
    DISK_QUEUE: "disk",
    DISK_FLUSH: "disk",
    NET_SEND: "net",
    NET_RECV: "net",
    NET_WAIT: "net",
    BARRIER: "barrier",
    BACKOFF: "other",
    IDLE: "other",
    OTHER: "other",
}

#: Blame components in report order.
COMPONENTS = ("compute", "disk", "net", "barrier", "other")


@dataclass(frozen=True)
class Segment:
    """One contiguous interval of one node's simulated time.

    ``link`` on wait-type segments names the *cause*: ``(peer_rank,
    time)`` — the node whose progress ended this wait, and when.  The
    critical-path walk follows these links backward.
    """

    node: int
    t0: float
    t1: float
    kind: str
    step: str = ""
    link: Optional[tuple[int, float]] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def component(self) -> str:
        return COMPONENT_OF.get(self.kind, "other")


@dataclass(frozen=True)
class HardwareMeta:
    """Hardware/cost-model parameters of a recorded run.

    Serialised under the ``"hw"`` key of the JSONL ``run_meta`` line;
    every field has a default matching the CLI's stock configuration, so
    logs written before the profiler existed still replay (with a
    fidelity warning when re-costing is requested).
    """

    kernel: str = "event"
    speeds: tuple[float, ...] = ()
    io_scaled_by_speed: bool = True
    seek_time: float = 8e-3
    disk_bandwidth: float = 20e6
    n_disks: int = 1
    seconds_per_op: float = 2e-8
    link_latency: float = 90e-6
    link_bandwidth: float = 12.5e6
    link_small_overhead: float = 2e-3
    link_mtu_bytes: int = 1500
    link_name: str = "Fast-Ethernet"
    packet_bytes: int = 32 * 1024

    @staticmethod
    def from_cluster(cluster: "Cluster") -> "HardwareMeta":
        """Snapshot a live cluster's cost-model parameters."""
        node0 = cluster.nodes[0]
        spec0 = cluster.spec.nodes[0]
        link = cluster.spec.link
        return HardwareMeta(
            kernel=cluster.kernel.name,
            speeds=tuple(n.speed for n in cluster.nodes),
            io_scaled_by_speed=spec0.io_scaled_by_speed,
            seek_time=node0.disk.params.seek_time,
            disk_bandwidth=node0.disk.params.bandwidth,
            n_disks=node0.disk.parallelism,
            seconds_per_op=node0.cpu.seconds_per_op,
            link_latency=link.latency,
            link_bandwidth=link.bandwidth,
            link_small_overhead=link.small_message_overhead,
            link_mtu_bytes=link.mtu_bytes,
            link_name=link.name,
            packet_bytes=cluster.network.packet_bytes,
        )

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "speeds": list(self.speeds),
            "io_scaled_by_speed": self.io_scaled_by_speed,
            "seek_time": self.seek_time,
            "disk_bandwidth": self.disk_bandwidth,
            "n_disks": self.n_disks,
            "seconds_per_op": self.seconds_per_op,
            "link_latency": self.link_latency,
            "link_bandwidth": self.link_bandwidth,
            "link_small_overhead": self.link_small_overhead,
            "link_mtu_bytes": self.link_mtu_bytes,
            "link_name": self.link_name,
            "packet_bytes": self.packet_bytes,
        }

    @staticmethod
    def from_dict(data: Optional[Mapping[str, object]]) -> "HardwareMeta":
        """Lenient inverse of :meth:`to_dict` (missing keys use defaults)."""
        if not data:
            return HardwareMeta()
        base = HardwareMeta()
        return HardwareMeta(
            kernel=str(data.get("kernel", base.kernel)),
            speeds=tuple(float(v) for v in data.get("speeds", ())),  # type: ignore[union-attr]
            io_scaled_by_speed=bool(data.get("io_scaled_by_speed", True)),
            seek_time=float(data.get("seek_time", base.seek_time)),  # type: ignore[arg-type]
            disk_bandwidth=float(data.get("disk_bandwidth", base.disk_bandwidth)),  # type: ignore[arg-type]
            n_disks=int(data.get("n_disks", base.n_disks)),  # type: ignore[arg-type]
            seconds_per_op=float(data.get("seconds_per_op", base.seconds_per_op)),  # type: ignore[arg-type]
            link_latency=float(data.get("link_latency", base.link_latency)),  # type: ignore[arg-type]
            link_bandwidth=float(data.get("link_bandwidth", base.link_bandwidth)),  # type: ignore[arg-type]
            link_small_overhead=float(
                data.get("link_small_overhead", base.link_small_overhead)  # type: ignore[arg-type]
            ),
            link_mtu_bytes=int(data.get("link_mtu_bytes", base.link_mtu_bytes)),  # type: ignore[arg-type]
            link_name=str(data.get("link_name", base.link_name)),
            packet_bytes=int(data.get("packet_bytes", base.packet_bytes)),  # type: ignore[arg-type]
        )


@dataclass
class BarrierGroup:
    """One rendezvous: the participants and the wait each one paid."""

    t: float
    step: str
    waits: list[tuple[int, float]] = field(default_factory=list)

    def gating_node(self) -> int:
        """The participant that arrived last (smallest wait) — the node
        whose progress released the barrier."""
        return min(self.waits, key=lambda nw: nw[1])[0]
