"""The telemetry bus: one append-only event stream per cluster.

A :class:`TelemetryBus` is owned by a
:class:`~repro.cluster.machine.Cluster` (standalone components can be
wired to one by hand) and is the single source of truth for everything
observable about a run:

* the legacy :class:`~repro.cluster.trace.Trace` is maintained here,
  incrementally, from ``StepEnd`` records — ``Cluster.trace`` is a view;
* per-disk ``IOStats.labels`` phase attribution is derived from the
  bus's context-scoped *step stack* (:meth:`step_scope`): a disk charge
  inside ``with bus.step_scope("1:local-sort")`` is attributed to that
  step;
* exporters and the bounds auditor consume :attr:`events` after a run.

Capture levels keep the always-on default cheap: ``"steps"`` records
only step/barrier/fault/retry events (what the Trace view needs),
``"io"`` adds block I/O and network transfers (exporters, audit),
``"full"`` adds memory reserve/release.  Levels only gate *event
object* creation; step attribution for ``IOStats.labels`` works at
every level.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.cluster.trace import Trace
from repro.obs.events import (
    BarrierWait,
    BlockRead,
    BlockWrite,
    Compute,
    Event,
    FaultInjected,
    MemRelease,
    MemReserve,
    NetTransfer,
    Retry,
    StepBegin,
    StepEnd,
)

#: Capture levels, cheapest first; each includes everything before it.
LEVELS: tuple[str, ...] = ("steps", "io", "full")


class TelemetryBus:
    """Append-only, SimClock-stamped event stream with step attribution."""

    def __init__(self, level: str = "steps") -> None:
        self.events: list[Event] = []
        self._level = 0
        self.set_level(level)
        self._step_stack: list[str] = []
        self._subscribers: list[Callable[[Event], None]] = []
        self._trace = Trace()

    # -- capture level -----------------------------------------------------

    @property
    def level(self) -> str:
        return LEVELS[self._level]

    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown capture level {level!r}, expected one of {LEVELS}")
        self._level = LEVELS.index(level)

    @property
    def captures_io(self) -> bool:
        """True when block I/O and network events are recorded."""
        return self._level >= 1

    @property
    def captures_memory(self) -> bool:
        """True when memory reserve/release events are recorded."""
        return self._level >= 2

    @property
    def captures_compute(self) -> bool:
        """True when charged CPU work is recorded (profiler replay input)."""
        return self._level >= 2

    # -- step attribution --------------------------------------------------

    @property
    def current_step(self) -> str:
        """Innermost active step name, ``""`` outside any step."""
        return self._step_stack[-1] if self._step_stack else ""

    @contextmanager
    def step_scope(self, name: str) -> Iterator[None]:
        """Attribute every event emitted inside the body to ``name``."""
        self._step_stack.append(name)
        try:
            yield
        finally:
            self._step_stack.pop()

    # -- views and lifecycle -----------------------------------------------

    @property
    def trace(self) -> Trace:
        """Per-step interval view (the legacy ``Cluster.trace`` API)."""
        return self._trace

    def clear(self) -> None:
        """Drop all events and derived views; the capture level is kept."""
        self.events.clear()
        self._step_stack.clear()
        self._trace = Trace()

    def subscribe(self, fn: Callable[[Event], None]) -> None:
        """Call ``fn`` with every event as it is emitted (live consumers)."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        self._subscribers.remove(fn)

    def emit(self, event: Event) -> None:
        self.events.append(event)
        for fn in list(self._subscribers):
            fn(event)

    # -- typed recorders (the only emit sites components should use) -------

    def record_step_begin(self, name: str, node: int, t: float) -> None:
        self.emit(StepBegin(t=t, node=node, step=name))

    def record_step_end(self, name: str, node: int, t_start: float, t_end: float) -> None:
        """Record one node's step interval; also feeds the Trace view."""
        self._trace.record(name, node, t_start, t_end)
        self.emit(StepEnd(t=t_end, node=node, step=name, duration=t_end - t_start))

    def record_barrier_wait(self, name: str, node: int, t: float, wait: float) -> None:
        self.emit(BarrierWait(t=t, node=node, step=name, wait=wait))

    def record_block_io(
        self,
        op: str,
        *,
        disk: str,
        node: int,
        t: float,
        n_items: int,
        itemsize: int,
        cost: float,
        queued: float = -1.0,
        stream: str = "",
        offset: int = -1,
    ) -> None:
        if not self.captures_io:
            return
        cls = BlockRead if op == "read" else BlockWrite
        self.emit(
            cls(
                t=t,
                node=node,
                step=self.current_step,
                disk=disk,
                n_items=n_items,
                itemsize=itemsize,
                cost=cost,
                queued=queued,
                stream=stream,
                offset=offset,
            )
        )

    def record_compute(
        self, *, node: int, t: float, seconds: float, ops: float
    ) -> None:
        """Record charged CPU work; consecutive same-node charges coalesce.

        Compute charges arrive in tight per-chunk loops; merging a charge
        into a same-node, same-step ``Compute`` event at the stream tail
        keeps the stream bounded by the node interleaving, not the chunk
        count.  Coalesced merges do not re-notify subscribers.
        """
        if not self.captures_compute:
            return
        events = self.events
        if events:
            prev = events[-1]
            if (
                isinstance(prev, Compute)
                and prev.node == node
                and prev.step == self.current_step
            ):
                events[-1] = Compute(
                    t=t,
                    node=node,
                    step=prev.step,
                    seconds=prev.seconds + seconds,
                    ops=prev.ops + ops,
                )
                return
        self.emit(
            Compute(t=t, node=node, step=self.current_step, seconds=seconds, ops=ops)
        )

    def record_net_transfer(
        self, *, src: int, dst: int, t_end: float, nbytes: int, duration: float
    ) -> None:
        if not self.captures_io:
            return
        self.emit(
            NetTransfer(
                t=t_end,
                node=src,
                step=self.current_step,
                src=src,
                dst=dst,
                nbytes=nbytes,
                duration=duration,
            )
        )

    def record_mem(self, op: str, *, node: int, t: float, n_items: int, in_use: int) -> None:
        if not self.captures_memory:
            return
        cls = MemReserve if op == "reserve" else MemRelease
        self.emit(
            cls(t=t, node=node, step=self.current_step, n_items=n_items, in_use=in_use)
        )

    def record_fault(self, category: str, *, node: int, t: float, detail: str = "") -> None:
        """Faults are recorded at every capture level (rare and load-bearing)."""
        self.emit(
            FaultInjected(
                t=t, node=node, step=self.current_step, category=category, detail=detail
            )
        )

    def record_retry(
        self, name: str, *, node: int, t: float, attempt: int, backoff: float
    ) -> None:
        self.emit(Retry(t=t, node=node, step=name, attempt=attempt, backoff=backoff))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TelemetryBus(level={self.level!r}, {len(self.events)} events)"
