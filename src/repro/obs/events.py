"""Typed telemetry events.

Every event is a frozen, keyword-only dataclass carrying the three
attribution fields the whole observability layer is built on:

``t``
    Simulated time (seconds) at which the event *completed*, read from
    the owning node's :class:`~repro.cluster.simclock.VirtualClock`.
``node``
    Rank of the node the event belongs to; ``-1`` for cluster-wide
    events with no single owner (e.g. a retry backoff charged to every
    participant).
``step``
    The algorithm step active when the event fired (the bus's
    context-scoped attribution stack), ``""`` outside any step.

Events serialise losslessly to flat JSON objects (``to_dict`` /
:func:`event_from_dict`), which is what the JSONL exporter writes and
the ``repro audit`` replay reads back.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields
from typing import ClassVar, Mapping


@dataclass(frozen=True, kw_only=True)
class Event:
    """Base of every telemetry event (time + node + step attribution)."""

    kind: ClassVar[str] = "event"

    t: float
    node: int
    step: str

    def to_dict(self) -> dict[str, object]:
        """Flat JSON-ready mapping; ``kind`` discriminates the type."""
        out: dict[str, object] = {"kind": type(self).kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(frozen=True, kw_only=True)
class StepBegin(Event):
    """A node entered a barrier-delimited algorithm step."""

    kind: ClassVar[str] = "step_begin"


@dataclass(frozen=True, kw_only=True)
class StepEnd(Event):
    """A node finished its work inside a step (before the exit barrier)."""

    kind: ClassVar[str] = "step_end"

    duration: float


@dataclass(frozen=True, kw_only=True)
class BarrierWait(Event):
    """Idle time a node spent at a step's exit barrier."""

    kind: ClassVar[str] = "barrier_wait"

    wait: float


@dataclass(frozen=True, kw_only=True)
class BlockRead(Event):
    """One charged block read on a simulated disk.

    ``queued`` is the drive-timeline *service start* of the access (the
    drive is busy over ``[queued, queued + cost]``); ``-1.0`` in logs
    predating the profiler means "unknown, assume ``t - cost``".
    ``stream`` / ``offset`` identify the access as block ``offset`` of
    file ``stream`` (how the event kernel detects sequential
    continuation), ``""`` / ``-1`` when not stream-addressed.
    """

    kind: ClassVar[str] = "block_read"

    disk: str
    n_items: int
    itemsize: int
    cost: float
    queued: float = -1.0
    stream: str = ""
    offset: int = -1


@dataclass(frozen=True, kw_only=True)
class BlockWrite(Event):
    """One charged block write on a simulated disk.

    Same drive-timeline fields as :class:`BlockRead`.  Under the event
    kernel ``t`` is the *issue* time (write-behind does not block the
    node) while ``[queued, queued + cost]`` is when the drive is busy.
    """

    kind: ClassVar[str] = "block_write"

    disk: str
    n_items: int
    itemsize: int
    cost: float
    queued: float = -1.0
    stream: str = ""
    offset: int = -1


@dataclass(frozen=True, kw_only=True)
class NetTransfer(Event):
    """One point-to-point message (``node`` is the sending rank)."""

    kind: ClassVar[str] = "net_transfer"

    src: int
    dst: int
    nbytes: int
    duration: float


@dataclass(frozen=True, kw_only=True)
class Compute(Event):
    """Charged CPU work on a node's clock (capture level ``"full"``).

    ``seconds`` is the simulated clock advance (already scaled by the
    node's speed); ``ops`` is the abstract operation count it was
    charged for, so a replay can re-scale the same work under a
    different perf vector.  Consecutive charges on one node inside one
    step are coalesced by the bus into a single event ending at the
    last charge.
    """

    kind: ClassVar[str] = "compute"

    seconds: float
    ops: float


@dataclass(frozen=True, kw_only=True)
class MemReserve(Event):
    """Items pinned in a node's internal-memory budget."""

    kind: ClassVar[str] = "mem_reserve"

    n_items: int
    in_use: int


@dataclass(frozen=True, kw_only=True)
class MemRelease(Event):
    """Items unpinned from a node's internal-memory budget."""

    kind: ClassVar[str] = "mem_release"

    n_items: int
    in_use: int


@dataclass(frozen=True, kw_only=True)
class FaultInjected(Event):
    """An injected fault fired (disk, network, drop, delay, node kill)."""

    kind: ClassVar[str] = "fault_injected"

    category: str
    detail: str


@dataclass(frozen=True, kw_only=True)
class Retry(Event):
    """A step attempt failed on a transient fault and will be re-run."""

    kind: ClassVar[str] = "retry"

    attempt: int
    backoff: float


#: Registry mapping the JSON ``kind`` discriminator back to its class.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        StepBegin,
        StepEnd,
        BarrierWait,
        BlockRead,
        BlockWrite,
        NetTransfer,
        Compute,
        MemReserve,
        MemRelease,
        FaultInjected,
        Retry,
    )
}


def event_from_dict(data: Mapping[str, object]) -> Event:
    """Inverse of :meth:`Event.to_dict` (used by the JSONL replay)."""
    kind = data.get("kind")
    if not isinstance(kind, str) or kind not in EVENT_TYPES:
        raise ValueError(f"unknown event kind {kind!r}")
    cls = EVENT_TYPES[kind]
    kwargs: dict[str, object] = {}
    for f in fields(cls):
        if f.name in data:
            kwargs[f.name] = data[f.name]
        elif f.default is MISSING:
            # Defaulted fields may be absent (logs written before the
            # field existed deserialise with the default).
            raise ValueError(f"event {kind!r} is missing field {f.name!r}")
    return cls(**kwargs)  # type: ignore[arg-type]
