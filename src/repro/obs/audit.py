"""Bounds auditor: measured per-step I/O vs the paper's Algorithm-1 bounds.

Folds a telemetry event stream (``BlockRead``/``BlockWrite`` with step
attribution) into per-step, per-node item-I/O counters and checks each
numbered PSRS step against the theoretical bound the paper states for
it, using the same formula sources the test suite trusts:
:meth:`repro.pdm.model.PDMConfig.step1_io_bound` and
:func:`repro.core.theory.load_balance_bound`.

The audited bounds are the paper's, adjusted for two *documented*
implementation realities (each noted in the report row):

* **step 1 / step 5** — the paper's ``2·l·(1+⌈log_m l⌉)`` assumes an
  ideal multiway merge; the polyphase engine pads with dummy runs, so a
  ``POLYPHASE_SLACK`` factor (1.3, the same gate the I/O-complexity
  benchmarks enforce) is applied, and the log term is floored at one
  pass (the engine always writes runs and then merges them to the
  output, even when ``l ≤ M``).  Step 5 additionally takes the max
  with the explicit p-run merge depth ``2·l'·⌈log_k p⌉`` (the formula's
  ``l'/M`` run count can undercount when many small runs are merged).
* **step 2** — the sample is read at block granularity, so the bound is
  ``c·(p-1)·perf[i]`` sample *blocks*, i.e. ``·B`` items; the exact
  ``quantile`` pivot method does unbounded-by-this-formula counting
  search I/O and is reported as informational.
* **step 3** — partitioning reads the portion once and writes it once
  (``2·Q``) plus ``p-1`` binary searches, each touching at most
  ``⌊log2 n_blocks⌋+3`` blocks (the search loop's ``⌊log2 nb⌋+1``
  probes, the final cut block, and the partition-boundary block the
  materialising copy re-reads).
* **step 4** — the sender reads its ``l_i`` materialised partition
  items; the receiver writes at most the load-balance bound
  ``2·l_i + d``; partial blocks add at most ``p·B`` items.

Every bound is finally rounded *up to a whole block* (``⌈bound/B⌉·B``):
the engines only do block-granular I/O, so a bound that falls mid-block
cannot be meaningfully violated by a sub-block amount.  (Found by the
scenario fuzzer: a 3-block-memory polyphase run measured 2502 items
against a fractional bound of 2501.2 — a 0.8-item "violation".)

Non-numbered steps (``gather``, ``recover:*``) are outside Algorithm 1
and are reported as informational rows with no bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.core.perf import PerfVector
from repro.core.theory import load_balance_bound
from repro.metrics.report import Table
from repro.obs.events import BlockRead, BlockWrite, Event
from repro.pdm.model import PDMConfig

#: Step-1/5 slack for polyphase dummy-run padding — the same factor the
#: I/O-complexity benchmark gate allows (benchmarks/test_io_complexity.py).
POLYPHASE_SLACK = 1.3


@dataclass(frozen=True)
class RunMeta:
    """Run parameters the auditor needs; serialised into the JSONL head."""

    n_items: int
    perf: tuple[int, ...]
    memory_items: Optional[int]
    block_items: int
    oversample: int
    d_duplicates: int
    pivot_method: str = "regular"

    def to_dict(self) -> dict:
        return {
            "n_items": self.n_items,
            "perf": list(self.perf),
            "memory_items": self.memory_items,
            "block_items": self.block_items,
            "oversample": self.oversample,
            "d_duplicates": self.d_duplicates,
            "pivot_method": self.pivot_method,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "RunMeta":
        try:
            return RunMeta(
                n_items=int(data["n_items"]),  # type: ignore[arg-type]
                perf=tuple(int(v) for v in data["perf"]),  # type: ignore[union-attr]
                memory_items=(
                    None if data["memory_items"] is None else int(data["memory_items"])  # type: ignore[arg-type]
                ),
                block_items=int(data["block_items"]),  # type: ignore[arg-type]
                oversample=int(data["oversample"]),  # type: ignore[arg-type]
                d_duplicates=int(data["d_duplicates"]),  # type: ignore[arg-type]
                pivot_method=str(data.get("pivot_method", "regular")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"invalid run_meta record: {exc}") from exc


@dataclass
class StepNodeIO:
    """Folded I/O counters for one (step, node) cell."""

    items_read: int = 0
    items_written: int = 0
    blocks_read: int = 0
    blocks_written: int = 0

    @property
    def item_ios(self) -> int:
        return self.items_read + self.items_written

    @property
    def block_ios(self) -> int:
        return self.blocks_read + self.blocks_written


def collect_step_io(events: Iterable[Event]) -> dict[tuple[str, int], StepNodeIO]:
    """Fold block I/O events into per-(step, node) counters."""
    out: dict[tuple[str, int], StepNodeIO] = {}
    for e in events:
        if isinstance(e, BlockRead):
            cell = out.setdefault((e.step, e.node), StepNodeIO())
            cell.items_read += e.n_items
            cell.blocks_read += 1
        elif isinstance(e, BlockWrite):
            cell = out.setdefault((e.step, e.node), StepNodeIO())
            cell.items_written += e.n_items
            cell.blocks_written += 1
    return out


@dataclass(frozen=True)
class AuditRow:
    """One (step, node) verdict."""

    step: str
    node: int
    measured_items: int
    bound_items: Optional[float]  # None = informational, no bound applies
    note: str = ""

    @property
    def ok(self) -> bool:
        return self.bound_items is None or self.measured_items <= self.bound_items

    @property
    def ratio(self) -> Optional[float]:
        if self.bound_items is None or self.bound_items == 0:
            return None
        return self.measured_items / self.bound_items


@dataclass
class AuditReport:
    """All verdicts of one audited run."""

    meta: RunMeta
    rows: list[AuditRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.rows)

    @property
    def violations(self) -> list[AuditRow]:
        return [r for r in self.rows if not r.ok]

    @property
    def worst_ratio(self) -> float:
        """Largest measured/bound ratio over the bounded rows (0.0 if none).

        The scenario fuzzer uses this as its corpus score: a run that
        pushes closer to a paper bound is a more interesting neighbour
        to mutate than one that idles in the middle of the envelope.
        """
        return max((r.ratio for r in self.rows if r.ratio is not None), default=0.0)

    @property
    def worst_row(self) -> Optional[AuditRow]:
        """The bounded row with the largest ratio, or None."""
        bounded = [r for r in self.rows if r.ratio is not None]
        if not bounded:
            return None
        return max(bounded, key=lambda r: r.ratio)  # type: ignore[arg-type, return-value]

    def table(self) -> Table:
        t = Table(
            "bounds audit (measured vs paper per-step item I/O)",
            ["step", "node", "measured", "bound", "ratio", "verdict"],
        )
        for r in self.rows:
            if r.bound_items is None:
                t.add_row(r.step, r.node, r.measured_items, "-", "-",
                          f"info ({r.note})" if r.note else "info")
            else:
                t.add_row(
                    r.step,
                    r.node,
                    r.measured_items,
                    round(r.bound_items, 1),
                    f"{r.ratio:.3f}",
                    "ok" if r.ok else "VIOLATION",
                )
        verdict = "PASS" if self.ok else f"FAIL ({len(self.violations)} violation(s))"
        t.add_section(verdict)
        return t

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "meta": self.meta.to_dict(),
            "rows": [
                {
                    "step": r.step,
                    "node": r.node,
                    "measured_items": r.measured_items,
                    "bound_items": r.bound_items,
                    "ratio": r.ratio,
                    "ok": r.ok,
                    "note": r.note,
                }
                for r in self.rows
            ],
        }


def _merge_levels(n_runs: int, k: int) -> int:
    """Passes a k-way merge needs over ``n_runs`` runs."""
    if n_runs <= 1:
        return 0
    return max(1, math.ceil(math.log(n_runs, k)))


def _bound_for(
    step: str,
    node: int,
    meta: RunMeta,
    perf: PerfVector,
    portions: list[int],
    slack: float = POLYPHASE_SLACK,
) -> tuple[Optional[float], str]:
    """The paper bound (in items) for one (step, node) cell, with a note."""
    if node < 0 or node >= perf.p:
        return None, "no owning node"
    l_i = portions[node]
    B = meta.block_items
    M = meta.memory_items
    p = perf.p
    d = meta.d_duplicates
    received_bound = load_balance_bound(meta.n_items, perf, node, d)
    if M is not None:
        cfg = PDMConfig(N=max(meta.n_items, 2 * B), M=M, B=B)
        k = cfg.merge_order()
    else:
        cfg = None
        k = None

    if step == "1:local-sort":
        # The engine always runs a run-formation pass plus >=1 merge/output
        # pass, even when l_i <= M (the formula's log term is then 0).
        base = cfg.step1_io_bound(l_i) if cfg is not None else 0.0
        base = max(base, 4.0 * l_i)
        return slack * base, f"2l(1+max(1,ceil(log_m l))) x{slack:g} polyphase slack"
    if step == "2:pivots":
        if meta.pivot_method == "quantile":
            return None, "quantile search I/O not bounded by the sample formula"
        samples = meta.oversample * (p - 1) * perf[node]
        return float(samples * B), "c(p-1)perf[i] sample blocks"
    if step == "3:partition":
        n_blocks = max(1, -(-l_i // B))
        probes = (p - 1) * (n_blocks.bit_length() + 2)  # floor(log2 nb)+1 reads +2
        return 2.0 * l_i + probes * B, "2Q + pivot binary-search probes"
    if step == "4:redistribute":
        return l_i + received_bound + p * B, "l_i reads + (2l_i+d) writes (+partial blocks)"
    if step == "5:final-merge":
        lb = int(math.ceil(received_bound))
        if cfg is not None and k is not None:
            paper = cfg.step1_io_bound(lb)
            runs = 2.0 * lb * max(1, _merge_levels(p, k))
            base = max(paper, runs)
        else:
            base = 2.0 * lb
        return slack * base + p * B, "2l'(1+ceil(log_m l')) on l'<=2l_i+d"
    return None, "outside Algorithm 1"


def audit_run(
    events: Iterable[Event],
    meta: RunMeta,
    *,
    polyphase_slack: float = POLYPHASE_SLACK,
) -> AuditReport:
    """Check a run's folded per-step I/O against the paper bounds.

    Assumes a fault-free, full-cluster run: in degraded mode the node
    positions and shares are rescaled mid-run and the Algorithm-1
    per-node bounds no longer describe the execution (the CLI skips
    enforcement for degraded runs).

    ``polyphase_slack`` overrides the step-1/5 dummy-run slack factor;
    the scenario fuzzer tightens it toward 1.0 to hunt for runs that
    exceed the paper's *ideal* merge formula, not just the engineering
    envelope.
    """
    if polyphase_slack <= 0:
        raise ValueError(f"polyphase_slack must be > 0, got {polyphase_slack}")
    perf = PerfVector(list(meta.perf))
    portions = perf.portions(meta.n_items)
    report = AuditReport(meta=meta)
    for (step, node), io in sorted(collect_step_io(events).items()):
        bound, note = _bound_for(step, node, meta, perf, portions, polyphase_slack)
        if bound is not None:
            # I/O is block-granular; a mid-block bound is not violable
            # by sub-block amounts.
            bound = float(math.ceil(bound / meta.block_items) * meta.block_items)
        report.rows.append(
            AuditRow(
                step=step,
                node=node,
                measured_items=io.item_ios,
                bound_items=bound,
                note=note,
            )
        )
    return report
