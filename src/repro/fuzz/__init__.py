"""Coverage-guided scenario fuzzer with the bounds auditor as oracle.

The repo's oracle stack — the paper-bounds auditor (:mod:`repro.obs.audit`),
the runtime sanitizers (:mod:`repro.analysis.sanitizers`), output
verification and the degraded-mode invariants — can judge *any* run, but
until now only hand-written scenarios exercised it.  This package closes
the loop, in the spirit of hypofuzz's corpus/novelty architecture:

* :mod:`~repro.fuzz.scenario` — a serializable :class:`Scenario` tuple
  (workload + n + dtype, perf vector, PDM config, pivot method, optional
  fault plan) with validation and a canonical fingerprint;
* :mod:`~repro.fuzz.mutators` — seeded one-axis-at-a-time mutations that
  always produce valid scenarios;
* :mod:`~repro.fuzz.coverage` — deterministic line coverage of
  ``src/repro`` (``sys.monitoring`` on 3.12+, ``sys.settrace`` before);
* :mod:`~repro.fuzz.executor` — run one scenario under sanitizers +
  telemetry, fold the run into coverage and event-signature signals and
  an oracle verdict;
* :mod:`~repro.fuzz.corpus` — size-capped priority corpus scored by
  novelty plus worst measured/bound audit ratio;
* :mod:`~repro.fuzz.shrink` — axis-by-axis minimisation of violating
  scenarios;
* :mod:`~repro.fuzz.engine` — the fuzz loop, replayable JSONL case
  files and the ``repro fuzz`` CLI entry points.

See docs/FUZZING.md for the full design.
"""

from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.coverage import LineCoverage
from repro.fuzz.engine import (
    DEFAULT_SEEDS,
    FuzzCase,
    FuzzConfig,
    FuzzReport,
    ReplayResult,
    ViolationCase,
    fuzz,
    load_case,
    replay_case,
    write_case,
)
from repro.fuzz.executor import RunOutcome, ScenarioExecutor, Violation
from repro.fuzz.mutators import MUTATORS, mutate
from repro.fuzz.scenario import Scenario, ScenarioError
from repro.fuzz.shrink import ShrinkResult, shrink

__all__ = [
    "Corpus",
    "CorpusEntry",
    "DEFAULT_SEEDS",
    "FuzzCase",
    "FuzzConfig",
    "FuzzReport",
    "ReplayResult",
    "LineCoverage",
    "MUTATORS",
    "RunOutcome",
    "Scenario",
    "ScenarioError",
    "ScenarioExecutor",
    "ShrinkResult",
    "Violation",
    "ViolationCase",
    "fuzz",
    "load_case",
    "mutate",
    "replay_case",
    "shrink",
    "write_case",
]
