"""Seeded one-axis-at-a-time scenario mutations.

Every mutator takes ``(rng, scenario)`` and perturbs exactly one axis —
the workload, the input size, one perf entry, one PDM knob, the fault
plan — leaving the rest of the scenario untouched, so a corpus walk
explores the space in small, attributable moves (and the shrinker can
undo them axis by axis).

The mutator set is *closed* over :meth:`Scenario.validate`:
:func:`mutate` only ever returns validated scenarios, retrying with
fresh random draws when a candidate lands outside the envelope (e.g.
shrinking the perf vector under a fault plan that targets the dropped
node).  All randomness flows through the caller's
``numpy.random.Generator``, so a fuzz run is a pure function of its
seed.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

import numpy as np

from repro.faults.plan import DiskFault, FaultPlan, MessageFault, NodeKill
from repro.fuzz.scenario import (
    DTYPES,
    MAX_MEMORY,
    MAX_MESSAGE,
    MAX_N,
    MAX_OVERSAMPLE,
    MAX_P,
    MAX_PERF,
    MAX_RETRIES,
    MIN_BLOCK,
    MAX_BLOCK,
    MIN_MEMORY_BLOCKS,
    MIN_MESSAGE,
    MIN_N,
    PIVOT_METHODS,
    WORKLOADS,
    Scenario,
    ScenarioError,
)

T = TypeVar("T")

Mutator = Callable[[np.random.Generator, Scenario], Scenario]


def _choice(rng: np.random.Generator, seq: Sequence[T]) -> T:
    return seq[int(rng.integers(len(seq)))]


def _other(rng: np.random.Generator, seq: Sequence[T], current: T) -> T:
    options = [v for v in seq if v != current]
    return _choice(rng, options) if options else current


def _scale_int(
    rng: np.random.Generator, value: int, lo: int, hi: int
) -> int:
    """One multiplicative step on a size-like axis, clamped to [lo, hi]."""
    factor = _choice(rng, (0.5, 0.75, 1.5, 2.0))
    return max(lo, min(hi, int(round(value * factor))))


# -- workload axes ----------------------------------------------------------


def mut_benchmark(rng: np.random.Generator, s: Scenario) -> Scenario:
    return s.with_(benchmark=_other(rng, WORKLOADS, s.benchmark))


def mut_dtype(rng: np.random.Generator, s: Scenario) -> Scenario:
    return s.with_(dtype=_other(rng, DTYPES, s.dtype))


def mut_n_items(rng: np.random.Generator, s: Scenario) -> Scenario:
    return s.with_(n_items=_scale_int(rng, s.n_items, MIN_N, MAX_N))


def mut_seed(rng: np.random.Generator, s: Scenario) -> Scenario:
    return s.with_(seed=int(rng.integers(1 << 16)))


# -- cluster axes -----------------------------------------------------------


def mut_perf_value(rng: np.random.Generator, s: Scenario) -> Scenario:
    i = int(rng.integers(s.p))
    perf = list(s.perf)
    perf[i] = int(_other(rng, range(1, MAX_PERF + 1), perf[i]))
    return s.with_(perf=tuple(perf))


def mut_perf_grow(rng: np.random.Generator, s: Scenario) -> Scenario:
    if s.p >= MAX_P:
        return mut_perf_value(rng, s)
    return s.with_(perf=s.perf + (int(rng.integers(1, MAX_PERF + 1)),))


def mut_perf_shrink(rng: np.random.Generator, s: Scenario) -> Scenario:
    if s.p <= 1:
        return mut_perf_value(rng, s)
    i = int(rng.integers(s.p))
    return s.with_(perf=s.perf[:i] + s.perf[i + 1:])


# -- PDM / algorithm axes ---------------------------------------------------


def mut_block(rng: np.random.Generator, s: Scenario) -> Scenario:
    block = _scale_int(rng, s.block_items, MIN_BLOCK, MAX_BLOCK)
    memory = max(s.memory_items, MIN_MEMORY_BLOCKS * block)
    return s.with_(block_items=block, memory_items=min(memory, MAX_MEMORY))


def mut_memory(rng: np.random.Generator, s: Scenario) -> Scenario:
    floor = MIN_MEMORY_BLOCKS * s.block_items
    return s.with_(memory_items=_scale_int(rng, s.memory_items, floor, MAX_MEMORY))


def mut_message(rng: np.random.Generator, s: Scenario) -> Scenario:
    return s.with_(
        message_items=_scale_int(rng, s.message_items, MIN_MESSAGE, MAX_MESSAGE)
    )


def mut_pivot(rng: np.random.Generator, s: Scenario) -> Scenario:
    return s.with_(pivot_method=_other(rng, PIVOT_METHODS, s.pivot_method))


def mut_oversample(rng: np.random.Generator, s: Scenario) -> Scenario:
    return s.with_(
        oversample=int(_other(rng, range(1, MAX_OVERSAMPLE + 1), s.oversample))
    )


def mut_retries(rng: np.random.Generator, s: Scenario) -> Scenario:
    options: list[Optional[int]] = [None, 1, 2, 3, MAX_RETRIES]
    return s.with_(retries=_other(rng, options, s.retries))


# -- fault-plan axes --------------------------------------------------------


def _plan(s: Scenario) -> FaultPlan:
    return s.fault_plan if s.fault_plan is not None else FaultPlan(seed=s.seed)


def mut_fault_disk(rng: np.random.Generator, s: Scenario) -> Scenario:
    plan = _plan(s)
    fault = DiskFault(
        node=int(rng.integers(s.p)),
        after_ios=int(rng.integers(0, 64)),
        count=int(rng.integers(1, 3)),
    )
    return s.with_(
        fault_plan=FaultPlan(
            disk_faults=plan.disk_faults + (fault,),
            message_faults=plan.message_faults,
            node_kills=plan.node_kills,
            seed=plan.seed,
        ),
        # a transient fault needs a retry budget to be recoverable
        retries=s.retries if s.retries is not None else 3,
    )


def mut_fault_message(rng: np.random.Generator, s: Scenario) -> Scenario:
    plan = _plan(s)
    fault = MessageFault(
        fail_after=int(rng.integers(0, 16)),
        count=int(rng.integers(1, 3)),
    )
    return s.with_(
        fault_plan=FaultPlan(
            disk_faults=plan.disk_faults,
            message_faults=plan.message_faults + (fault,),
            node_kills=plan.node_kills,
            seed=plan.seed,
        ),
        retries=s.retries if s.retries is not None else 3,
    )


def mut_fault_kill(rng: np.random.Generator, s: Scenario) -> Scenario:
    plan = _plan(s)
    killed = {k.node for k in plan.node_kills}
    survivors = [r for r in range(s.p) if r not in killed]
    if len(survivors) <= 1:
        return mut_fault_clear(rng, s)
    kill = NodeKill(node=_choice(rng, survivors), step=int(rng.integers(2, 6)))
    return s.with_(
        fault_plan=FaultPlan(
            disk_faults=plan.disk_faults,
            message_faults=plan.message_faults,
            node_kills=plan.node_kills + (kill,),
            seed=plan.seed,
        )
    )


def mut_fault_kill_gap(rng: np.random.Generator, s: Scenario) -> Scenario:
    """Kill an *interior* surviving rank, leaving a non-contiguous
    survivor set ({0, 2, 3}-shaped).

    After such a kill every survivor past the gap has a view position
    different from its global rank — the exact surface the REP206
    protocol rule (and the PR 4/PR 5 dynamic bugs) covers, which a
    random kill only sometimes produces.
    """
    plan = _plan(s)
    killed = {k.node for k in plan.node_kills}
    survivors = [r for r in range(s.p) if r not in killed]
    interior = survivors[1:-1]  # keep both endpoint ranks alive
    if not interior:
        return mut_fault_kill(rng, s)
    kill = NodeKill(node=_choice(rng, interior), step=int(rng.integers(2, 6)))
    return s.with_(
        fault_plan=FaultPlan(
            disk_faults=plan.disk_faults,
            message_faults=plan.message_faults,
            node_kills=plan.node_kills + (kill,),
            seed=plan.seed,
        )
    )


def mut_fault_clear(rng: np.random.Generator, s: Scenario) -> Scenario:
    return s.with_(fault_plan=None)


#: The full mutator set, by stable name (names are recorded in case files
#: so a shrunk violation remembers the path that found it).
MUTATORS: tuple[tuple[str, Mutator], ...] = (
    ("benchmark", mut_benchmark),
    ("dtype", mut_dtype),
    ("n-items", mut_n_items),
    ("seed", mut_seed),
    ("perf-value", mut_perf_value),
    ("perf-grow", mut_perf_grow),
    ("perf-shrink", mut_perf_shrink),
    ("block", mut_block),
    ("memory", mut_memory),
    ("message", mut_message),
    ("pivot", mut_pivot),
    ("oversample", mut_oversample),
    ("retries", mut_retries),
    ("fault-disk", mut_fault_disk),
    ("fault-message", mut_fault_message),
    ("fault-kill", mut_fault_kill),
    ("fault-kill-gap", mut_fault_kill_gap),
    ("fault-clear", mut_fault_clear),
)


def mutate(
    rng: np.random.Generator,
    scenario: Scenario,
    *,
    max_tries: int = 32,
) -> tuple[str, Scenario]:
    """One validated single-axis mutation of ``scenario``.

    Draws a mutator (and fresh axis values) until the candidate both
    passes :meth:`Scenario.validate` and actually differs from the
    input.  Falls back to a seed bump — always valid, always different —
    if ``max_tries`` draws all miss, so the fuzz loop can never stall.
    """
    for _ in range(max_tries):
        name, fn = _choice(rng, MUTATORS)
        try:
            candidate = fn(rng, scenario).validate()
        except ScenarioError:
            continue
        if candidate != scenario:
            return name, candidate
    return "seed", scenario.with_(seed=scenario.seed + 1).validate()
