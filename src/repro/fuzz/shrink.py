"""Axis-by-axis minimisation of a violating scenario.

Given a scenario and a predicate "does this still violate the same
way?", the shrinker greedily simplifies one axis at a time — reset each
config axis to its dataclass default, binary-search ``n_items`` down,
drop perf-vector entries and flatten the survivors to 1, strip the
fault plan fault by fault — and repeats the whole pass until no axis
can shrink further (a fixpoint, like hypothesis' shrink loop but over a
fixed axis order, so the result is deterministic for a deterministic
predicate).

The predicate is only ever called on scenarios that pass
:meth:`Scenario.validate`; candidates outside the envelope are skipped,
and a predicate that *raises* counts as "does not reproduce" (a shrink
must never escalate into a different failure).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.faults.plan import FaultPlan
from repro.fuzz.scenario import DEFAULTS, MIN_N, Scenario, ScenarioError

Predicate = Callable[[Scenario], bool]

#: Config axes reset toward their :data:`DEFAULTS` value, in shrink order.
_DEFAULT_AXES = (
    "benchmark",
    "dtype",
    "pivot_method",
    "oversample",
    "message_items",
    "block_items",
    "memory_items",
    "retries",
    "seed",
)


@dataclass(frozen=True)
class ShrinkResult:
    """The minimal scenario plus the trail of accepted simplifications."""

    scenario: Scenario
    #: ``(axis, before, after)`` for every accepted shrink step.
    steps: tuple[tuple[str, str, str], ...]
    #: Total predicate evaluations spent.
    attempts: int


class _Budget:
    """Caps predicate calls; swallows predicate exceptions as False."""

    def __init__(self, predicate: Predicate, max_attempts: int) -> None:
        self.predicate = predicate
        self.max_attempts = max_attempts
        self.attempts = 0

    @property
    def exhausted(self) -> bool:
        return self.attempts >= self.max_attempts

    def holds(self, candidate: Scenario) -> bool:
        if self.exhausted:
            return False
        try:
            candidate.validate()
        except ScenarioError:
            return False
        self.attempts += 1
        try:
            return bool(self.predicate(candidate))
        except Exception:  # repro: noqa REP007(a raising shrink candidate is a non-reproduction, never a swallowed fault)
            return False


def _shrink_n(s: Scenario, budget: _Budget) -> Scenario:
    """Binary-search the smallest still-violating ``n_items``."""
    if s.n_items <= MIN_N:
        return s
    lo, hi = MIN_N, s.n_items
    while lo < hi and not budget.exhausted:
        mid = (lo + hi) // 2
        if budget.holds(s.with_(n_items=mid)):
            hi = mid
        else:
            lo = mid + 1
    # invariant: the predicate held at `hi` (the original value, or the
    # last accepted midpoint), so no re-test is needed
    return s.with_(n_items=hi)


def _drop_node(s: Scenario, i: int) -> Optional[Scenario]:
    """``s`` without node ``i``, renumbering fault-plan targets above it.

    Returns None when a fault targets node ``i`` itself (dropping the
    node would silently drop the fault — a different scenario, not a
    smaller one).
    """
    plan = s.fault_plan
    if plan is not None:
        if any(f.node == i for f in plan.disk_faults) or any(
            k.node == i for k in plan.node_kills
        ) or any(i in (m.src, m.dst) for m in plan.message_faults):
            return None

        def renum(node: Optional[int]) -> Optional[int]:
            if node is None:
                return None
            return node - 1 if node > i else node

        plan = FaultPlan(
            disk_faults=tuple(
                replace(f, node=renum(f.node)) for f in plan.disk_faults
            ),
            message_faults=tuple(
                replace(m, src=renum(m.src), dst=renum(m.dst))
                for m in plan.message_faults
            ),
            node_kills=tuple(
                replace(k, node=renum(k.node)) for k in plan.node_kills
            ),
            seed=plan.seed,
        )
    return s.with_(perf=s.perf[:i] + s.perf[i + 1:], fault_plan=plan)


def _shrink_perf(s: Scenario, budget: _Budget) -> Scenario:
    # drop one node at a time (restarting after each success)
    changed = True
    while changed and s.p > 1 and not budget.exhausted:
        changed = False
        for i in range(s.p):
            cand = _drop_node(s, i)
            if cand is not None and budget.holds(cand):
                s = cand
                changed = True
                break
    # then flatten surviving entries toward 1
    for i in range(s.p):
        if s.perf[i] != 1:
            cand = s.with_(perf=s.perf[:i] + (1,) + s.perf[i + 1:])
            if budget.holds(cand):
                s = cand
    return s


def _shrink_faults(s: Scenario, budget: _Budget) -> Scenario:
    plan = s.fault_plan
    if plan is None:
        return s
    if budget.holds(s.with_(fault_plan=None)):
        return s.with_(fault_plan=None)
    # drop individual faults, most disruptive first (kills, disk, msgs)
    for attr in ("node_kills", "disk_faults", "message_faults"):
        i = 0
        while i < len(getattr(s.fault_plan, attr)) and not budget.exhausted:
            faults = getattr(s.fault_plan, attr)
            cand_plan = FaultPlan(
                **{
                    "disk_faults": s.fault_plan.disk_faults,
                    "message_faults": s.fault_plan.message_faults,
                    "node_kills": s.fault_plan.node_kills,
                    attr: faults[:i] + faults[i + 1:],
                    "seed": s.fault_plan.seed,
                }
            )
            cand = s.with_(fault_plan=cand_plan)
            if budget.holds(cand):
                s = cand
            else:
                i += 1
    # simplify surviving disk faults' trigger points toward 0
    while s.fault_plan is not None:
        for idx, f in enumerate(s.fault_plan.disk_faults):
            if f.after_ios != 0:
                faults = list(s.fault_plan.disk_faults)
                faults[idx] = replace(f, after_ios=0)
                cand = s.with_(
                    fault_plan=replace(s.fault_plan, disk_faults=tuple(faults))
                )
                if budget.holds(cand):
                    s = cand
                    break
        else:
            break
    return s


def _axis_repr(value: object) -> str:
    return repr(value)


def shrink(
    scenario: Scenario,
    predicate: Predicate,
    *,
    max_attempts: int = 300,
) -> ShrinkResult:
    """Minimise ``scenario`` while ``predicate`` keeps holding.

    ``predicate(scenario)`` must be True on entry; raises ``ValueError``
    otherwise (a shrink of a non-reproducing case is meaningless).
    """
    budget = _Budget(predicate, max_attempts)
    if not budget.holds(scenario.validate()):
        raise ValueError(
            "predicate does not hold on the initial scenario; nothing to shrink"
        )

    steps: list[tuple[str, str, str]] = []

    def note(axis: str, before: object, after: object) -> None:
        if before != after:
            steps.append((axis, _axis_repr(before), _axis_repr(after)))

    changed = True
    while changed and not budget.exhausted:
        changed = False

        cand = _shrink_faults(scenario, budget)
        note("fault_plan", scenario.fault_plan, cand.fault_plan)
        changed |= cand != scenario
        scenario = cand

        cand = _shrink_perf(scenario, budget)
        note("perf", scenario.perf, cand.perf)
        changed |= cand != scenario
        scenario = cand

        cand = _shrink_n(scenario, budget)
        note("n_items", scenario.n_items, cand.n_items)
        changed |= cand != scenario
        scenario = cand

        for axis in _DEFAULT_AXES:
            default = getattr(DEFAULTS, axis)
            current = getattr(scenario, axis)
            if current == default:
                continue
            cand = scenario.with_(**{axis: default})
            if budget.holds(cand):
                note(axis, current, default)
                scenario = cand
                changed = True

    return ShrinkResult(
        scenario=scenario, steps=tuple(steps), attempts=budget.attempts
    )
