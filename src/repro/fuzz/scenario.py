"""The fuzzer's unit of work: one serializable, validated Scenario.

A scenario pins down everything a run depends on — workload spec + n +
dtype, the perf vector, the PDM configuration (M, B, message size), the
pivot method, the RNG seed and an optional :class:`~repro.faults.plan.FaultPlan`
— so executing the same scenario twice is bit-identical and a JSONL case
file replays years later.

Scenarios are *closed under mutation*: every mutator output must pass
:meth:`Scenario.validate`, whose limits encode the real envelope of the
simulator (e.g. the polyphase engine needs ``M >= 3B``, a kill needs a
surviving node, step-1 kills are unrecoverable by design and therefore
excluded from the space).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Mapping, Optional

from repro.faults.plan import FaultPlan, FaultPlanError
from repro.workloads.generators import BENCHMARKS

#: Workload names the scenario space draws from (the 8 paper benchmarks).
WORKLOADS: tuple[str, ...] = tuple(spec.name for spec in BENCHMARKS.values())

#: Key dtypes the fuzzer exercises (a subset of SUPPORTED_KEY_DTYPES).
DTYPES: tuple[str, ...] = ("uint16", "uint32", "int32", "uint64")

PIVOT_METHODS: tuple[str, ...] = ("regular", "random", "quantile")

MIN_N, MAX_N = 64, 1 << 20
MAX_P = 16
MAX_PERF = 8
MIN_BLOCK, MAX_BLOCK = 16, 1024
#: Polyphase external merging needs at least 3 block buffers in core.
MIN_MEMORY_BLOCKS = 3
MAX_MEMORY = 1 << 17
MIN_MESSAGE, MAX_MESSAGE = 32, 1 << 16
MAX_OVERSAMPLE = 8
MAX_RETRIES = 8


class ScenarioError(ValueError):
    """A scenario violates the envelope the simulator supports."""


@dataclass(frozen=True)
class Scenario:
    """One fully-specified fuzz input (pure data, deterministic to run)."""

    benchmark: str = "uniform"
    n_items: int = 4096
    dtype: str = "uint32"
    perf: tuple[int, ...] = (1, 1, 4, 4)
    memory_items: int = 2048
    block_items: int = 256
    message_items: int = 2048
    pivot_method: str = "regular"
    oversample: int = 4
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    retries: Optional[int] = None
    #: Override of the auditor's step-1/5 polyphase slack.  ``None`` uses
    #: the paper-calibrated :data:`~repro.obs.audit.POLYPHASE_SLACK`;
    #: tightening toward 1.0 audits against the *ideal* merge formula —
    #: the knob the planted-violation tests and ``--tighten-slack`` use.
    audit_slack: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "perf", tuple(int(v) for v in self.perf))

    # -- structure ---------------------------------------------------------

    @property
    def p(self) -> int:
        return len(self.perf)

    def with_(self, **kwargs: object) -> "Scenario":
        """A copy with some axes replaced (not validated)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    # -- validation --------------------------------------------------------

    def validate(self) -> "Scenario":
        """Check every axis against the simulator's envelope; returns self."""
        if self.benchmark not in WORKLOADS:
            raise ScenarioError(
                f"unknown benchmark {self.benchmark!r}; have {list(WORKLOADS)}"
            )
        if self.dtype not in DTYPES:
            raise ScenarioError(f"dtype {self.dtype!r} not in {list(DTYPES)}")
        if not (MIN_N <= self.n_items <= MAX_N):
            raise ScenarioError(
                f"n_items {self.n_items} outside [{MIN_N}, {MAX_N}]"
            )
        if not (1 <= self.p <= MAX_P):
            raise ScenarioError(f"p={self.p} outside [1, {MAX_P}]")
        for v in self.perf:
            if not (1 <= v <= MAX_PERF):
                raise ScenarioError(f"perf value {v} outside [1, {MAX_PERF}]")
        if not (MIN_BLOCK <= self.block_items <= MAX_BLOCK):
            raise ScenarioError(
                f"block_items {self.block_items} outside [{MIN_BLOCK}, {MAX_BLOCK}]"
            )
        if self.memory_items < MIN_MEMORY_BLOCKS * self.block_items:
            raise ScenarioError(
                f"memory_items {self.memory_items} < {MIN_MEMORY_BLOCKS}*B "
                f"(polyphase needs {MIN_MEMORY_BLOCKS} block buffers)"
            )
        if self.memory_items > MAX_MEMORY:
            raise ScenarioError(f"memory_items {self.memory_items} > {MAX_MEMORY}")
        if not (MIN_MESSAGE <= self.message_items <= MAX_MESSAGE):
            raise ScenarioError(
                f"message_items {self.message_items} outside "
                f"[{MIN_MESSAGE}, {MAX_MESSAGE}]"
            )
        if self.pivot_method not in PIVOT_METHODS:
            raise ScenarioError(f"pivot_method {self.pivot_method!r} unknown")
        if not (1 <= self.oversample <= MAX_OVERSAMPLE):
            raise ScenarioError(f"oversample {self.oversample} outside [1, {MAX_OVERSAMPLE}]")
        if self.seed < 0:
            raise ScenarioError(f"seed must be >= 0, got {self.seed}")
        if self.retries is not None and not (1 <= self.retries <= MAX_RETRIES):
            raise ScenarioError(f"retries {self.retries} outside [1, {MAX_RETRIES}]")
        if self.audit_slack is not None and not (0.5 <= self.audit_slack <= 4.0):
            raise ScenarioError(
                f"audit_slack {self.audit_slack} outside [0.5, 4.0]"
            )
        if self.fault_plan is not None:
            try:
                self.fault_plan.validate_for(self.p)
            except FaultPlanError as exc:
                raise ScenarioError(str(exc)) from exc
            kills = self.fault_plan.node_kills
            if len(kills) >= self.p:
                raise ScenarioError("a kill plan must leave at least one survivor")
            for k in kills:
                if k.step < 2:
                    raise ScenarioError(
                        "step-1 kills are unrecoverable by design (no checkpoint "
                        "exists yet); the scenario space covers steps 2-5"
                    )
        return self

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "benchmark": self.benchmark,
            "n_items": self.n_items,
            "dtype": self.dtype,
            "perf": list(self.perf),
            "memory_items": self.memory_items,
            "block_items": self.block_items,
            "message_items": self.message_items,
            "pivot_method": self.pivot_method,
            "oversample": self.oversample,
            "seed": self.seed,
            "fault_plan": None if self.fault_plan is None else self.fault_plan.to_dict(),
            "retries": self.retries,
            "audit_slack": self.audit_slack,
        }
        return out

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "Scenario":
        if not isinstance(data, Mapping):
            raise ScenarioError(f"scenario must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in fields(Scenario)}
        extra = set(data) - known
        if extra:
            raise ScenarioError(f"unknown scenario keys: {sorted(extra)}")
        kwargs = dict(data)
        plan = kwargs.get("fault_plan")
        if plan is not None:
            try:
                kwargs["fault_plan"] = FaultPlan.from_dict(plan)  # type: ignore[arg-type]
            except FaultPlanError as exc:
                raise ScenarioError(f"bad fault_plan: {exc}") from exc
        if "perf" in kwargs:
            kwargs["perf"] = tuple(int(v) for v in kwargs["perf"])  # type: ignore[union-attr]
        try:
            return Scenario(**kwargs)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ScenarioError(f"malformed scenario: {exc}") from None

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys — fingerprint input)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_json(text: str) -> "Scenario":
        try:
            return Scenario.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from None

    def fingerprint(self) -> str:
        """Stable 16-hex-digit content id of the canonical JSON."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]


#: The dataclass defaults, used by the shrinker as the "simplest" value
#: of each config axis.
DEFAULTS: Scenario = Scenario()
