"""Deterministic line coverage of ``src/repro`` for novelty scoring.

The fuzzer's first feedback signal is the set of ``(module, line)``
pairs a run executes inside the ``repro`` package — the same signal
coverage.py and hypofuzz's ``cov.py`` build their corpora on.  Two
collector backends:

* **sys.monitoring** (PEP 669, Python >= 3.12) — per-location ``LINE``
  events that self-disable after the first hit, so steady-state
  overhead is near zero;
* **sys.settrace** fallback — a call-filtered local tracer (frames
  outside the package are never line-traced).

Both produce identical line sets for the same run, so corpora built on
different interpreter versions agree.  Collection is single-threaded by
design (the simulator is single-threaded).
"""

from __future__ import annotations

import os
import sys
from types import CodeType, FrameType
from typing import Any, Callable, Optional

#: Absolute directory of the ``repro`` package (what "covered" means).
PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_TOOL_NAME = "repro-fuzz"


class LineCoverage:
    """Context manager collecting executed ``(relpath, lineno)`` pairs.

    ``root`` defaults to the installed ``repro`` package directory;
    paths in :attr:`lines` are stored relative to it (``obs/audit.py``),
    so fingerprints don't depend on where the tree is checked out.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = os.path.abspath(root) if root is not None else PACKAGE_ROOT
        self._prefix = self.root + os.sep
        self.lines: set[tuple[str, int]] = set()
        self._rel_cache: dict[str, Optional[str]] = {}
        self._tool_id: Optional[int] = None
        self._prev_trace: Optional[Callable[..., Any]] = None
        self._active = False

    # -- shared ------------------------------------------------------------

    def _rel(self, filename: str) -> Optional[str]:
        rel = self._rel_cache.get(filename, "")
        if rel == "":
            rel = (
                filename[len(self._prefix):]
                if filename.startswith(self._prefix)
                else None
            )
            self._rel_cache[filename] = rel
        return rel

    def __enter__(self) -> "LineCoverage":
        if self._active:
            raise RuntimeError("LineCoverage is not reentrant")
        self._active = True
        if not self._try_monitoring():
            self._prev_trace = sys.gettrace()
            sys.settrace(self._trace_call)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._tool_id is not None:
            mon = sys.monitoring
            mon.set_events(self._tool_id, 0)
            mon.register_callback(self._tool_id, mon.events.LINE, None)
            mon.free_tool_id(self._tool_id)
            self._tool_id = None
        else:
            sys.settrace(self._prev_trace)
            self._prev_trace = None
        self._active = False

    # -- sys.monitoring backend (3.12+) ------------------------------------

    def _try_monitoring(self) -> bool:
        mon = getattr(sys, "monitoring", None)
        if mon is None:
            return False
        tool_id = None
        for tid in range(6):
            if mon.get_tool(tid) is None:
                tool_id = tid
                break
        if tool_id is None:  # pragma: no cover - all tool slots taken
            return False
        mon.use_tool_id(tool_id, _TOOL_NAME)
        self._tool_id = tool_id

        disable = mon.DISABLE

        def on_line(code: CodeType, lineno: int) -> object:
            rel = self._rel(code.co_filename)
            if rel is not None:
                self.lines.add((rel, lineno))
            # Each (code, line) location only needs to report once per
            # collection window; restart_events() below re-arms them.
            return disable

        mon.register_callback(tool_id, mon.events.LINE, on_line)
        mon.set_events(tool_id, mon.events.LINE)
        # Re-arm locations DISABLEd by a previous collection in this process.
        mon.restart_events()
        return True

    # -- sys.settrace backend ----------------------------------------------

    def _trace_call(
        self, frame: FrameType, event: str, arg: object
    ) -> Optional[Callable[..., Any]]:
        if event != "call":
            return None
        rel = self._rel(frame.f_code.co_filename)
        if rel is None:
            return None  # never line-trace frames outside the package
        return self._trace_line

    def _trace_line(
        self, frame: FrameType, event: str, arg: object
    ) -> Optional[Callable[..., Any]]:
        if event == "line":
            rel = self._rel(frame.f_code.co_filename)
            if rel is not None:
                self.lines.add((rel, frame.f_lineno))
        return self._trace_line
