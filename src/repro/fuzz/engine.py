"""The fuzz loop: seeds, mutation, oracle, shrinking, replayable cases.

One iteration draws a corpus entry (rank-weighted), applies one seeded
mutation, executes it under the full oracle stack
(:class:`~repro.fuzz.executor.ScenarioExecutor`) and banks the outcome
into the priority corpus.  The first outcome of each distinct violation
key is shrunk axis-by-axis to a minimal scenario and written as a
two/three-line JSONL *case file* that replays byte-for-byte:

``{"fuzz_case": 1, "expect": {...}, "note": ...}``
    header — format version plus the expected verdict;
``{"scenario": {...}}``
    the (shrunk) scenario itself;
``{"fuzz_origin": {...}}``
    optionally, the pre-shrink scenario, the mutation trail that found
    it and the shrink statistics — forensics, ignored by replay.

Everything is a pure function of ``FuzzConfig.seed`` when running in
``max_runs`` mode: same seed, same corpus fingerprints, same cases.
Wall-clock only enters (via an explicitly waived monotonic read) when a
``time_budget`` is requested.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.cluster.kernel import KERNELS
from repro.faults.plan import FaultPlan, NodeKill
from repro.fuzz.corpus import Corpus
from repro.fuzz.executor import RunOutcome, ScenarioExecutor, Violation
from repro.fuzz.mutators import mutate
from repro.fuzz.scenario import MAX_N, Scenario, ScenarioError
from repro.fuzz.shrink import shrink

CASE_VERSION = 1

#: Hand-picked starting points spanning the interesting corners of the
#: scenario space (duplicates, skewed perf, tight memory, degradation,
#: multi-pass polyphase merging under bound pressure).
DEFAULT_SEEDS: tuple[Scenario, ...] = (
    Scenario(),
    Scenario(benchmark="zipf", n_items=8192, perf=(8, 1, 1)),
    Scenario(
        benchmark="all_equal",
        n_items=4096,
        perf=(1, 1),
        memory_items=192,
        block_items=64,
        message_items=256,
    ),
    Scenario(
        n_items=4096,
        perf=(1, 1, 4, 4),
        fault_plan=FaultPlan(node_kills=(NodeKill(node=1, step=4),)),
        retries=3,
    ),
    Scenario(
        n_items=8192,
        perf=(1,),
        memory_items=96,
        block_items=32,
        message_items=1024,
    ),
)


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzz run (mirrors the ``repro fuzz`` CLI)."""

    seed: int = 0
    #: Stop after this many post-seed iterations (the deterministic mode).
    max_runs: Optional[int] = 100
    #: Stop after this many wall-clock seconds (overrides determinism).
    time_budget: Optional[float] = None
    #: Load/save corpus and violation cases under this directory.
    corpus_dir: Optional[str] = None
    max_corpus: int = 64
    #: Run every scenario with this auditor polyphase slack (1.0 audits
    #: against the ideal merge formula — the planted-violation knob).
    tighten_slack: Optional[float] = None
    #: Cap on n_items for *mutated* scenarios, so one unlucky draw can't
    #: eat the whole budget (the envelope itself still allows MAX_N).
    max_n: int = 1 << 16
    shrink_attempts: int = 200
    max_violations: int = 10
    #: Execution kernel every scenario runs under (see
    #: :mod:`repro.cluster.kernel`); the oracles are timing-free, so both
    #: kernels must produce identical verdicts — the differential harness
    #: in ``tests/test_differential_kernel.py`` checks exactly that.
    kernel: str = "event"

    def __post_init__(self) -> None:
        if self.max_runs is None and self.time_budget is None:
            raise ValueError("need max_runs or time_budget (or both)")
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r} (choose from {KERNELS})")
        if self.max_runs is not None and self.max_runs < 0:
            raise ValueError(f"max_runs must be >= 0, got {self.max_runs}")
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(f"time_budget must be > 0, got {self.time_budget}")
        if not (1 <= self.max_n <= MAX_N):
            raise ValueError(f"max_n {self.max_n} outside [1, {MAX_N}]")


@dataclass(frozen=True)
class ViolationCase:
    """One shrunk, written-to-disk oracle failure."""

    violation: Violation
    scenario: Scenario  # pre-shrink (as found)
    shrunk: Scenario
    mutations: tuple[str, ...]
    shrink_steps: int
    shrink_attempts: int
    path: Optional[str] = None

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.violation.kind,
            "check": self.violation.check,
            "detail": self.violation.detail,
            "fingerprint": self.shrunk.fingerprint(),
            "mutations": list(self.mutations),
            "shrink_steps": self.shrink_steps,
            "shrink_attempts": self.shrink_attempts,
            "path": self.path,
        }


@dataclass
class FuzzReport:
    """What one fuzz run did; ``to_dict`` is the CLI's JSON output."""

    seed: int
    runs: int = 0
    statuses: dict[str, int] = field(default_factory=dict)
    corpus_fingerprints: list[str] = field(default_factory=list)
    coverage_lines: int = 0
    signatures: int = 0
    violations: list[ViolationCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "runs": self.runs,
            "statuses": dict(sorted(self.statuses.items())),
            "corpus": list(self.corpus_fingerprints),
            "coverage_lines": self.coverage_lines,
            "signatures": self.signatures,
            "violations": [v.to_dict() for v in self.violations],
            "ok": self.ok,
        }


# ---------------------------------------------------------------------------
# Case files
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzCase:
    """A parsed case file: the scenario plus the expected verdict."""

    scenario: Scenario
    expect_status: str = "violation"
    expect_kind: Optional[str] = None
    expect_check: Optional[str] = None
    note: str = ""
    origin: Optional[dict] = None


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a case against its recorded expectation."""

    case: FuzzCase
    outcome: RunOutcome
    matched: bool
    reason: str


def write_case(
    path: str,
    scenario: Scenario,
    *,
    expect_status: str,
    violation: Optional[Violation] = None,
    origin: Optional[dict] = None,
    note: str = "",
) -> None:
    """Write a replayable JSONL case file (see the module docstring)."""
    expect: dict[str, object] = {"status": expect_status}
    if violation is not None:
        expect["kind"] = violation.kind
        expect["check"] = violation.check
        expect["detail"] = violation.detail
    header = {"fuzz_case": CASE_VERSION, "expect": expect, "note": note}
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        fh.write(json.dumps({"scenario": scenario.to_dict()}, sort_keys=True) + "\n")
        if origin is not None:
            fh.write(json.dumps({"fuzz_origin": origin}, sort_keys=True) + "\n")


def load_case(path: str) -> FuzzCase:
    """Parse a case file; raises :class:`ScenarioError` on malformed input."""
    header: Optional[dict] = None
    scenario: Optional[Scenario] = None
    origin: Optional[dict] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ScenarioError(f"{path}:{lineno}: not JSON: {exc}") from None
            if not isinstance(record, dict):
                raise ScenarioError(f"{path}:{lineno}: expected an object")
            if "fuzz_case" in record:
                if record["fuzz_case"] != CASE_VERSION:
                    raise ScenarioError(
                        f"{path}: case version {record['fuzz_case']!r} "
                        f"(this reader understands {CASE_VERSION})"
                    )
                header = record
            elif "scenario" in record:
                scenario = Scenario.from_dict(record["scenario"]).validate()
            elif "fuzz_origin" in record:
                origin = record["fuzz_origin"]
            else:
                raise ScenarioError(
                    f"{path}:{lineno}: unknown record {sorted(record)[:3]}"
                )
    if header is None or scenario is None:
        raise ScenarioError(
            f"{path}: a case needs a fuzz_case header and a scenario line"
        )
    expect = header.get("expect") or {}
    if not isinstance(expect, dict) or "status" not in expect:
        raise ScenarioError(f"{path}: header expect.status is required")
    return FuzzCase(
        scenario=scenario,
        expect_status=str(expect["status"]),
        expect_kind=expect.get("kind"),
        expect_check=expect.get("check"),
        note=str(header.get("note", "")),
        origin=origin,
    )


def replay_case(
    path: str,
    *,
    executor: Optional[ScenarioExecutor] = None,
    kernel: str = "event",
) -> ReplayResult:
    """Re-run a case file and compare the verdict to its expectation."""
    case = load_case(path)
    executor = executor if executor is not None else ScenarioExecutor(kernel=kernel)
    outcome = executor.run(case.scenario)
    matched, reason = _matches(case, outcome)
    return ReplayResult(case=case, outcome=outcome, matched=matched, reason=reason)


def _matches(case: FuzzCase, outcome: RunOutcome) -> tuple[bool, str]:
    if outcome.status != case.expect_status:
        detail = outcome.violation.detail if outcome.violation else ""
        return False, (
            f"expected status {case.expect_status!r}, got {outcome.status!r}"
            + (f" ({detail})" if detail else "")
        )
    if case.expect_status != "violation":
        return True, f"status {outcome.status!r} as expected"
    v = outcome.violation
    assert v is not None
    if case.expect_kind is not None and v.kind != case.expect_kind:
        return False, f"expected {case.expect_kind!r} violation, got {v.kind!r}"
    if case.expect_check is not None and v.check != case.expect_check:
        return False, f"expected check {case.expect_check!r}, got {v.check!r}"
    return True, f"reproduced {v.kind} violation"


# ---------------------------------------------------------------------------
# The loop
# ---------------------------------------------------------------------------


def _same_bug(target: Violation, outcome: RunOutcome) -> bool:
    """Shrink predicate: does the outcome fail the same way as ``target``?

    Sanitizer trips must keep the same check id; the other kinds match
    on kind alone (an audit breach may legally move to another node/row
    while the scenario shrinks under it).
    """
    v = outcome.violation
    if v is None or v.kind != target.kind:
        return False
    if target.kind == "sanitizer":
        return v.check == target.check
    return True


def _apply_slack(scenario: Scenario, config: FuzzConfig) -> Scenario:
    if config.tighten_slack is None:
        return scenario
    return scenario.with_(audit_slack=config.tighten_slack).validate()


def _load_corpus_dir(corpus_dir: str, log: Callable[[str], None]) -> list[Scenario]:
    saved = []
    directory = os.path.join(corpus_dir, "corpus")
    if not os.path.isdir(directory):
        return saved
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                saved.append(Scenario.from_json(fh.read()).validate())
        except (OSError, ScenarioError) as exc:
            log(f"skipping unreadable corpus file {name}: {exc}")
    return saved


def fuzz(
    config: FuzzConfig,
    *,
    executor: Optional[ScenarioExecutor] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run the coverage-guided loop; returns the full report.

    Executes every seed scenario (built-ins plus any saved corpus under
    ``config.corpus_dir``), then ``max_runs`` mutated scenarios (or
    until the time budget runs out).  Each new violation key is shrunk
    and, when a corpus dir is configured, written under
    ``<corpus_dir>/violations/``; the final corpus snapshot lands in
    ``<corpus_dir>/corpus/``.
    """
    log = log if log is not None else (lambda _msg: None)
    executor = (
        executor if executor is not None else ScenarioExecutor(kernel=config.kernel)
    )
    rng = np.random.default_rng(config.seed)
    corpus = Corpus(max_size=config.max_corpus)
    report = FuzzReport(seed=config.seed)
    seen_bugs: set[tuple[str, str]] = set()
    trails: dict[str, tuple[str, ...]] = {}

    deadline: Optional[float] = None
    if config.time_budget is not None:
        deadline = time.monotonic() + config.time_budget  # repro: noqa REP003(wall-clock time budget is the requested stop condition, never affects results)

    def past_deadline() -> bool:
        if deadline is None:
            return False
        return time.monotonic() >= deadline  # repro: noqa REP003(wall-clock time budget is the requested stop condition, never affects results)

    def execute(scenario: Scenario) -> RunOutcome:
        outcome = executor.run(scenario)
        report.runs += 1
        report.statuses[outcome.status] = report.statuses.get(outcome.status, 0) + 1
        corpus.consider(outcome)
        if outcome.violation is not None:
            _handle_violation(outcome, executor, config, report, seen_bugs, trails, log)
        return outcome

    seeds = [_apply_slack(s, config) for s in DEFAULT_SEEDS]
    if config.corpus_dir is not None:
        seeds += [_apply_slack(s, config) for s in _load_corpus_dir(config.corpus_dir, log)]
    for scenario in seeds:
        if past_deadline():
            break
        trails.setdefault(scenario.fingerprint(), ())
        execute(scenario)
    log(
        f"seeded corpus: {len(corpus)} entries, "
        f"{len(corpus.seen_lines)} lines, {len(corpus.seen_signatures)} signatures"
    )

    iterations = 0
    while not past_deadline():
        if config.max_runs is not None and iterations >= config.max_runs:
            break
        iterations += 1
        base = corpus.pick(rng)
        base_scenario = base.scenario if base is not None else seeds[0]
        name, candidate = mutate(rng, base_scenario)
        if candidate.n_items > config.max_n:
            candidate = candidate.with_(n_items=config.max_n).validate()
        candidate = _apply_slack(candidate, config)
        trails[candidate.fingerprint()] = trails.get(
            base_scenario.fingerprint(), ()
        ) + (name,)
        execute(candidate)

    report.corpus_fingerprints = corpus.fingerprints()
    report.coverage_lines = len(corpus.seen_lines)
    report.signatures = len(corpus.seen_signatures)

    if config.corpus_dir is not None:
        directory = os.path.join(config.corpus_dir, "corpus")
        os.makedirs(directory, exist_ok=True)
        for entry in corpus.ranked():
            path = os.path.join(directory, f"{entry.fingerprint}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(entry.scenario.to_json() + "\n")
        with open(
            os.path.join(config.corpus_dir, "report.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    return report


def _handle_violation(
    outcome: RunOutcome,
    executor: ScenarioExecutor,
    config: FuzzConfig,
    report: FuzzReport,
    seen_bugs: set[tuple[str, str]],
    trails: dict[str, tuple[str, ...]],
    log: Callable[[str], None],
) -> None:
    violation = outcome.violation
    assert violation is not None
    key = violation.key()
    if key in seen_bugs or len(report.violations) >= config.max_violations:
        return
    seen_bugs.add(key)
    log(f"violation [{violation.kind}] {violation.detail} — shrinking")

    def predicate(candidate: Scenario) -> bool:
        return _same_bug(violation, executor.run(_apply_slack(candidate, config)))

    result = shrink(
        outcome.scenario, predicate, max_attempts=config.shrink_attempts
    )
    shrunk = _apply_slack(result.scenario, config)
    case = ViolationCase(
        violation=violation,
        scenario=outcome.scenario,
        shrunk=shrunk,
        mutations=trails.get(outcome.scenario.fingerprint(), ()),
        shrink_steps=len(result.steps),
        shrink_attempts=result.attempts,
    )
    if config.corpus_dir is not None:
        directory = os.path.join(config.corpus_dir, "violations")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"{violation.kind}-{shrunk.fingerprint()}.jsonl"
        )
        write_case(
            path,
            shrunk,
            expect_status="violation",
            violation=violation,
            origin={
                "scenario": outcome.scenario.to_dict(),
                "mutations": list(case.mutations),
                "shrink_steps": case.shrink_steps,
                "shrink_attempts": case.shrink_attempts,
            },
            note=f"found by fuzz seed {config.seed}; shrunk from "
            f"n={outcome.scenario.n_items} p={outcome.scenario.p}",
        )
        case = replace(case, path=path)
    report.violations.append(case)
    log(f"minimal case: {shrunk.to_json()}")
