"""The size-capped priority corpus the fuzz loop mutates from.

An outcome earns a seat by *novelty* — lines of ``src/repro`` or
event-signature triples no earlier entry executed — weighted so a new
behavioural triple (25 points) outranks a handful of new lines (1 point
each), plus a bound-pressure bonus (50 x the auditor's worst
measured/bound ratio) that keeps scenarios flirting with the paper
bounds in rotation even when they stop finding new code.

When the corpus is full the lowest-scoring entry is evicted, but the
*seen* line/signature sets are cumulative for the whole run: an evicted
behaviour can't re-enter by looking novel again, so the loop converges
instead of cycling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fuzz.executor import RunOutcome
from repro.fuzz.scenario import Scenario

#: Score weights: one newly-covered line, one new signature triple, one
#: unit of audit bound pressure (measured/bound ratio).
LINE_WEIGHT = 1.0
SIGNATURE_WEIGHT = 25.0
RATIO_WEIGHT = 50.0


@dataclass(frozen=True)
class CorpusEntry:
    """One kept scenario with the evidence that earned its seat."""

    scenario: Scenario
    score: float
    new_lines: int
    new_signatures: int
    worst_ratio: float
    #: Admission ordinal (ties in score break toward older entries).
    ordinal: int

    @property
    def fingerprint(self) -> str:
        return self.scenario.fingerprint()


class Corpus:
    """Priority corpus with cumulative novelty accounting."""

    def __init__(self, max_size: int = 64) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self.entries: list[CorpusEntry] = []
        self.seen_lines: set[tuple[str, int]] = set()
        self.seen_signatures: set[tuple[str, str, str]] = set()
        self._fingerprints: set[str] = set()
        self._next_ordinal = 0

    def __len__(self) -> int:
        return len(self.entries)

    def score(self, outcome: RunOutcome) -> tuple[float, int, int]:
        """(score, new_lines, new_signatures) of an outcome right now."""
        new_lines = len(outcome.coverage - self.seen_lines)
        new_sigs = len(outcome.signature - self.seen_signatures)
        score = (
            LINE_WEIGHT * new_lines
            + SIGNATURE_WEIGHT * new_sigs
            + RATIO_WEIGHT * outcome.worst_ratio
        )
        return score, new_lines, new_sigs

    def consider(self, outcome: RunOutcome) -> Optional[CorpusEntry]:
        """Admit the outcome if it earns a seat; returns the entry or None.

        Novelty is always banked (seen sets grow on every call), even
        for outcomes that don't make the cut — "seen but rejected" must
        not look novel forever.
        """
        score, new_lines, new_sigs = self.score(outcome)
        self.seen_lines |= outcome.coverage
        self.seen_signatures |= outcome.signature

        fp = outcome.scenario.fingerprint()
        if fp in self._fingerprints:
            return None
        novel = new_lines > 0 or new_sigs > 0
        if not novel and len(self.entries) >= self.max_size:
            worst = min(self.entries, key=lambda e: (e.score, -e.ordinal))
            if score <= worst.score:
                return None

        entry = CorpusEntry(
            scenario=outcome.scenario,
            score=score,
            new_lines=new_lines,
            new_signatures=new_sigs,
            worst_ratio=outcome.worst_ratio,
            ordinal=self._next_ordinal,
        )
        self._next_ordinal += 1
        self.entries.append(entry)
        self._fingerprints.add(fp)
        if len(self.entries) > self.max_size:
            evicted = min(self.entries, key=lambda e: (e.score, -e.ordinal))
            self.entries.remove(evicted)
            self._fingerprints.discard(evicted.fingerprint)
        return entry

    def ranked(self) -> list[CorpusEntry]:
        """Entries best-first (score desc, then older-first)."""
        return sorted(self.entries, key=lambda e: (-e.score, e.ordinal))

    def pick(self, rng: np.random.Generator) -> Optional[CorpusEntry]:
        """Rank-weighted draw: the best entry is drawn most, none starve."""
        ranked = self.ranked()
        if not ranked:
            return None
        # harmonic weights 1/(rank+2): 1/2, 1/3, 1/4, ... best-first
        weights = np.array([1.0 / (i + 2) for i in range(len(ranked))])
        weights /= weights.sum()
        return ranked[int(rng.choice(len(ranked), p=weights))]

    def fingerprints(self) -> list[str]:
        """Sorted fingerprints of the kept entries (determinism probe)."""
        return sorted(e.fingerprint for e in self.entries)
