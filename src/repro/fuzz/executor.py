"""Run one scenario under the full oracle stack and fold the signals.

The executor is the fuzzer's measurement instrument.  For a scenario it

1. generates the workload and builds the heterogeneous cluster,
2. runs the external PSRS sort under an installed runtime sanitizer
   with full telemetry capture,
3. verifies the output is a sorted permutation of the input,
4. audits the event stream against the paper bounds (with the
   scenario's optional tightened polyphase slack),

and folds the run into the two feedback signals the corpus scores on —
the executed line set of ``src/repro`` and the event-stream *signature*
(the set of ``(step, event-kind, node-class)`` triples, where a node's
class is its perf value, so two 4-node runs that exercise the same
fast/slow roles look alike) — plus the oracle verdict.

Classification order matters: :class:`SanitizerError` subclasses
``AssertionError`` (so it reads as a failed invariant), which means the
sanitizer arm must be checked *before* the verification arm.  Injected
:class:`FaultError` that survives the retry budget is an expected
outcome of the fault space (status ``"unrecovered"``), not a violation
— unless the scenario injected no faults, in which case it is a crash
like any other.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.analysis.sanitizers import (
    SanitizerError,
    SanitizerTrip,
    install_sanitizers,
    uninstall_sanitizers,
)
from repro.cluster.kernel import ExecutionKernel
from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.cluster.network import FAST_ETHERNET
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.core.theory import max_duplicate_count
from repro.faults.plan import FaultError, RetryPolicy
from repro.fuzz.coverage import LineCoverage
from repro.fuzz.scenario import Scenario
from repro.obs.audit import (
    POLYPHASE_SLACK,
    AuditReport,
    RunMeta,
    audit_run,
    collect_step_io,
)
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

#: ``RunOutcome.status`` values.  ``ok`` means fault-free, verified and
#: within bounds; ``recovered`` means faults fired but the retry layer
#: absorbed them (verified, bounds not enforced — retried steps repeat
#: I/O); ``degraded`` means the sort finished on survivors;
#: ``unrecovered`` means an injected fault exhausted its retry budget.
STATUSES = ("ok", "recovered", "degraded", "unrecovered", "violation")

#: ``Violation.kind`` values, in rough severity order.
VIOLATION_KINDS = ("sanitizer", "verify", "audit", "crash")


@dataclass(frozen=True)
class Violation:
    """One oracle failure: what tripped and the forensic detail."""

    kind: str  # one of VIOLATION_KINDS
    detail: str
    #: Machine-readable check id when one exists (``SAN-...`` for
    #: sanitizer trips, ``"step:node"`` for audit bound breaches).
    check: Optional[str] = None

    def key(self) -> tuple[str, str]:
        """Dedup key: violations with the same key are "the same bug"."""
        return (self.kind, self.check or "")


@dataclass
class RunOutcome:
    """Everything one scenario execution produced."""

    scenario: Scenario
    status: str
    violation: Optional[Violation] = None
    #: Executed ``(relpath, line)`` set of ``src/repro``.
    coverage: frozenset[tuple[str, int]] = frozenset()
    #: Event-stream signature: ``(step, event-kind, node-class)`` triples.
    signature: frozenset[tuple[str, str, str]] = frozenset()
    #: Largest measured/bound ratio the auditor saw (0.0 when not audited).
    worst_ratio: float = 0.0
    #: Sanitizer trip records (kept even though the error is translated).
    trips: tuple[SanitizerTrip, ...] = ()
    #: Simulated (virtual-clock) seconds of the sort, when it finished.
    sim_elapsed: float = 0.0
    n_sorted: int = 0
    #: sha256 of the sorted output bytes — kernel-independent fingerprint
    #: used by the differential harness (empty when the sort didn't finish).
    output_digest: str = ""
    #: Per-(step, node) I/O counters folded to hashable tuples:
    #: ``(step, node, blocks_read, blocks_written, items_read,
    #: items_written)``.  Timing-free, so identical across kernels.
    io_counters: frozenset[tuple[str, int, int, int, int, int]] = frozenset()

    @property
    def is_violation(self) -> bool:
        return self.violation is not None


class _NoCoverage:
    """Stand-in collector when coverage is disabled (replay fast path)."""

    lines: frozenset[tuple[str, int]] = frozenset()

    def __enter__(self) -> "_NoCoverage":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


class ScenarioExecutor:
    """Runs scenarios; stateless between runs (safe to reuse)."""

    def __init__(
        self,
        collect_coverage: bool = True,
        kernel: Union[str, ExecutionKernel] = "event",
    ) -> None:
        self.collect_coverage = collect_coverage
        self.kernel = kernel

    def run(self, scenario: Scenario) -> RunOutcome:
        scenario.validate()
        perf = PerfVector(list(scenario.perf))
        n = perf.nearest_exact(scenario.n_items)
        data = make_benchmark(
            scenario.benchmark, n, seed=scenario.seed, dtype=np.dtype(scenario.dtype)
        )
        cluster = Cluster(
            heterogeneous_cluster(
                [float(v) for v in perf.values],
                memory_items=scenario.memory_items,
                link=FAST_ETHERNET,
            ),
            kernel=self.kernel,
        )
        cluster.bus.set_level("full")
        cfg = PSRSConfig(
            block_items=scenario.block_items,
            message_items=scenario.message_items,
            pivot_method=scenario.pivot_method,
            oversample=scenario.oversample,
            seed=scenario.seed,
        )
        retry = (
            RetryPolicy(max_attempts=scenario.retries)
            if scenario.retries is not None
            else None
        )
        slack = (
            scenario.audit_slack
            if scenario.audit_slack is not None
            else POLYPHASE_SLACK
        )

        status = "ok"
        violation: Optional[Violation] = None
        worst_ratio = 0.0
        sim_elapsed = 0.0
        n_sorted = 0
        output_digest = ""
        res = None
        report: Optional[AuditReport] = None

        collector = LineCoverage() if self.collect_coverage else _NoCoverage()
        san = install_sanitizers()
        try:
            with collector:
                try:
                    res = sort_array(
                        cluster,
                        perf,
                        data,
                        cfg,
                        faults=scenario.fault_plan,
                        retry=retry,
                    )
                    verify_sorted_permutation(data, res.to_array())
                    san.assert_no_leaks()
                except SanitizerError as exc:
                    violation = Violation("sanitizer", str(exc), check=exc.check)
                except FaultError as exc:
                    if scenario.fault_plan is None:
                        # no faults were injected, so none may surface
                        violation = Violation(
                            "crash", f"{type(exc).__name__}: {exc}"
                        )
                    else:
                        status = "unrecovered"
                except AssertionError as exc:
                    violation = Violation("verify", str(exc))
                except Exception as exc:  # noqa: BLE001 - the fuzzer's whole job
                    violation = Violation(
                        "crash", f"{type(exc).__name__}: {exc}"
                    )

                if violation is None and res is not None:
                    sim_elapsed = res.elapsed
                    n_sorted = res.n_items
                    out = np.ascontiguousarray(res.to_array())
                    output_digest = hashlib.sha256(out.tobytes()).hexdigest()
                    if res.faults.degraded:
                        # rescaled shares: Algorithm-1 bounds don't apply
                        status = "degraded"
                    elif res.faults.total_faults or res.faults.total_retries:
                        # recovered run: retried steps legitimately repeat
                        # I/O, so the fault-free bounds don't describe it
                        status = "recovered"
                    else:
                        meta = RunMeta(
                            n_items=res.n_items,
                            perf=tuple(int(v) for v in perf.values),
                            memory_items=scenario.memory_items,
                            block_items=scenario.block_items,
                            oversample=scenario.oversample,
                            d_duplicates=max_duplicate_count(data),
                            pivot_method=scenario.pivot_method,
                        )
                        report = audit_run(
                            cluster.bus.events, meta, polyphase_slack=slack
                        )
                        worst_ratio = report.worst_ratio
                        if not report.ok:
                            worst = report.violations[0]
                            violation = Violation(
                                "audit",
                                f"step {worst.step} node {worst.node}: measured "
                                f"{worst.measured_items} items > bound "
                                f"{worst.bound_items:.1f} ({worst.note}; "
                                f"slack {slack:g})",
                                check=f"{worst.step}:{worst.node}",
                            )
        finally:
            uninstall_sanitizers(san)

        if violation is not None:
            status = "violation"

        return RunOutcome(
            scenario=scenario,
            status=status,
            violation=violation,
            coverage=frozenset(collector.lines),
            signature=_signature(cluster, perf),
            worst_ratio=worst_ratio,
            trips=tuple(san.trips),
            sim_elapsed=sim_elapsed,
            n_sorted=n_sorted,
            output_digest=output_digest,
            io_counters=_io_counters(cluster),
        )


def _io_counters(
    cluster: Cluster,
) -> frozenset[tuple[str, int, int, int, int, int]]:
    """Fold the bus's block I/O events into hashable per-cell tuples."""
    cells = collect_step_io(cluster.bus.events)
    return frozenset(
        (step, node, c.blocks_read, c.blocks_written, c.items_read, c.items_written)
        for (step, node), c in cells.items()
    )


def _signature(
    cluster: Cluster, perf: PerfVector
) -> frozenset[tuple[str, str, str]]:
    """Fold the telemetry stream into ``(step, kind, node-class)`` triples."""
    p = perf.p
    triples: set[tuple[str, str, str]] = set()
    for event in cluster.bus.events:
        rank = event.node
        node_class = f"perf{perf.values[rank]}" if 0 <= rank < p else "cluster"
        triples.add((event.step, type(event).kind, node_class))
    return frozenset(triples)
