"""The eight input benchmarks.

Benchmark 0 (uniform random) is the one the paper's tables report;
benchmarks 1-7 are the classic adversarial inputs of the parallel
sorting literature (duplicates, presortedness, skew) used by the
load-balance and duplicates experiments.

All generators are deterministic in the seed and produce integer keys
(the paper sorts C ``int``s over MPI; we default to unsigned 32-bit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class WorkloadSpec:
    """One named input distribution."""

    benchmark_id: int
    name: str
    description: str
    make: Callable[[int, np.random.Generator, np.dtype], np.ndarray] = field(
        repr=False
    )


def _key_space(dtype: np.dtype) -> int:
    info = np.iinfo(dtype)
    return int(info.max) - int(info.min) + 1


def _uniform(n: int, rng: np.random.Generator, dtype: np.dtype) -> np.ndarray:
    info = np.iinfo(dtype)
    return rng.integers(info.min, int(info.max) + 1, size=n, dtype=dtype)


def _gaussian(n: int, rng: np.random.Generator, dtype: np.dtype) -> np.ndarray:
    info = np.iinfo(dtype)
    mid = (int(info.max) + int(info.min)) / 2.0
    spread = _key_space(dtype) / 8.0
    vals = rng.normal(mid, spread, size=n)
    hi = float(info.max)
    if int(hi) > info.max:
        # float64 rounded a 64-bit max up past the dtype range; clipping
        # there and casting would wrap, so clip to the next float down
        hi = float(np.nextafter(hi, 0.0))
    return np.clip(vals, info.min, hi).astype(dtype)


def _zipf_duplicates(n: int, rng: np.random.Generator, dtype: np.dtype) -> np.ndarray:
    """Heavily duplicated keys: ~sqrt(n) distinct values, Zipf-weighted."""
    n_distinct = max(2, int(np.sqrt(max(n, 4))))
    ranks = rng.zipf(1.3, size=n) % n_distinct
    info = np.iinfo(dtype)
    values = rng.integers(info.min, int(info.max) + 1, size=n_distinct, dtype=dtype)
    return values[ranks]


def _all_equal(n: int, rng: np.random.Generator, dtype: np.dtype) -> np.ndarray:
    info = np.iinfo(dtype)
    v = rng.integers(info.min, int(info.max) + 1, dtype=dtype)
    return np.full(n, v, dtype=dtype)


def _sorted(n: int, rng: np.random.Generator, dtype: np.dtype) -> np.ndarray:
    out = _uniform(n, rng, dtype)
    out.sort()
    return out


def _reverse_sorted(n: int, rng: np.random.Generator, dtype: np.dtype) -> np.ndarray:
    return _sorted(n, rng, dtype)[::-1].copy()


def _nearly_sorted(n: int, rng: np.random.Generator, dtype: np.dtype) -> np.ndarray:
    """Sorted input with ~1% random transpositions."""
    out = _sorted(n, rng, dtype)
    if n < 2:  # nothing to transpose (and rng.integers rejects high=0)
        return out
    n_swaps = max(1, n // 100)
    a = rng.integers(0, n, size=n_swaps)
    b = rng.integers(0, n, size=n_swaps)
    out[a], out[b] = out[b].copy(), out[a].copy()
    return out


def _staggered(n: int, rng: np.random.Generator, dtype: np.dtype) -> np.ndarray:
    """Bucket-skewed ("staggered") input: value range correlates with
    position, defeating naive range partitioning."""
    n_buckets = 16
    out = np.empty(n, dtype=dtype)
    bounds = np.linspace(0, n, n_buckets + 1).astype(int)
    width = _key_space(dtype) // n_buckets
    order = (np.arange(n_buckets) * 7 + 3) % n_buckets  # scrambled bucket order
    # Work in the unsigned offset space [0, key_space) so 64-bit dtypes
    # never overflow the int64 bounds rng.integers accepts; signed
    # dtypes map back by flipping the sign bit (offset 0 == info.min).
    utwin = np.dtype(f"u{dtype.itemsize}")
    sign_bit = utwin.type(1 << (8 * dtype.itemsize - 1))
    for i in range(n_buckets):
        lo, hi = bounds[i], bounds[i + 1]
        start = np.uint64(int(order[i]) * width)
        offs = (rng.integers(0, width, size=hi - lo, dtype=np.uint64) + start).astype(utwin)
        out[lo:hi] = (offs ^ sign_bit).view(dtype) if dtype.kind == "i" else offs
    return out


BENCHMARKS: dict[int, WorkloadSpec] = {
    0: WorkloadSpec(0, "uniform", "uniform random keys (the paper's tables)", _uniform),
    1: WorkloadSpec(1, "gaussian", "gaussian-distributed keys", _gaussian),
    2: WorkloadSpec(2, "zipf", "zipf-weighted heavy duplicates (~sqrt(n) distinct)", _zipf_duplicates),
    3: WorkloadSpec(3, "all_equal", "a single duplicated key (worst-case d)", _all_equal),
    4: WorkloadSpec(4, "sorted", "already sorted ascending", _sorted),
    5: WorkloadSpec(5, "reverse", "sorted descending", _reverse_sorted),
    6: WorkloadSpec(6, "nearly_sorted", "sorted with ~1% transpositions", _nearly_sorted),
    7: WorkloadSpec(7, "staggered", "position-correlated bucket skew", _staggered),
}

_BY_NAME = {spec.name: spec for spec in BENCHMARKS.values()}


def make_benchmark(
    which: int | str,
    n: int,
    seed: int = 0,
    dtype: np.dtype | type = np.uint32,
) -> np.ndarray:
    """Generate benchmark ``which`` (id or name) with ``n`` items."""
    if isinstance(which, str):
        try:
            spec = _BY_NAME[which]
        except KeyError:
            raise KeyError(
                f"unknown benchmark {which!r}; have {sorted(_BY_NAME)}"
            ) from None
    else:
        try:
            spec = BENCHMARKS[which]
        except KeyError:
            raise KeyError(
                f"unknown benchmark id {which}; have {sorted(BENCHMARKS)}"
            ) from None
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    out = spec.make(n, rng, np.dtype(dtype))
    assert out.size == n and out.dtype == np.dtype(dtype)
    return out


def generate(
    name: int | str, n: int, seed: int = 0, dtype: np.dtype | type = np.uint32
) -> np.ndarray:
    """Alias of :func:`make_benchmark` (reads better at call sites)."""
    return make_benchmark(name, n, seed, dtype)
