"""Input workload generators.

The paper's code release shipped "eight different benchmarks
corresponding to eight different inputs"; its tables use *benchmark 0*
(uniform random integers).  This package provides the standard
parallel-sorting input suite under those benchmark ids, plus record
helpers (dtypes, validation).
"""

from repro.workloads.generators import (
    BENCHMARKS,
    WorkloadSpec,
    generate,
    make_benchmark,
)
from repro.workloads.records import (
    checksum,
    is_sorted,
    key_dtype,
    pack_records,
    unpack_records,
    verify_permutation,
    verify_sorted_permutation,
)

__all__ = [
    "BENCHMARKS",
    "WorkloadSpec",
    "checksum",
    "generate",
    "is_sorted",
    "key_dtype",
    "make_benchmark",
    "pack_records",
    "unpack_records",
    "verify_permutation",
    "verify_sorted_permutation",
]
