"""Record/key helpers and output validation.

Every sort run in tests, examples and benches validates its output with
:func:`verify_sorted_permutation`: the result must be non-decreasing and
a true multiset permutation of the input.  For large inputs a
collision-resistant multiset checksum avoids holding two full copies.
"""

from __future__ import annotations

import numpy as np

#: Key widths the engines support (the paper sorts 4-byte MPI_INTs).
SUPPORTED_KEY_DTYPES = (
    np.dtype(np.uint32),
    np.dtype(np.int32),
    np.dtype(np.uint64),
    np.dtype(np.int64),
    np.dtype(np.uint16),
    np.dtype(np.int16),
)


def key_dtype(dtype: np.dtype | type) -> np.dtype:
    """Validate and normalise a key dtype."""
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_KEY_DTYPES:
        raise TypeError(
            f"unsupported key dtype {dt}; supported: "
            f"{[str(d) for d in SUPPORTED_KEY_DTYPES]}"
        )
    return dt


def is_sorted(arr: np.ndarray) -> bool:
    """True if ``arr`` is non-decreasing."""
    a = np.asarray(arr)
    if a.size <= 1:
        return True
    return bool(np.all(a[:-1] <= a[1:]))


_P = (1 << 61) - 1  # Mersenne prime for the multiset hash


def checksum(arr: np.ndarray, salt: int = 0x9E3779B97F4A7C15) -> int:
    """Order-independent multiset checksum.

    Sums ``h(x)`` over items, where ``h`` is a degree-3 polynomial of the
    key in GF(p) — order-insensitive but sensitive to multiplicity, so a
    permutation check reduces to checksum equality plus length equality
    (collisions need adversarial inputs w.r.t. the salt).
    """
    a = np.asarray(arr).astype(np.uint64, copy=False)
    total = 0
    for chunk in np.array_split(a, max(1, a.size // (1 << 20))):
        xs = [int(x) for x in chunk.tolist()]
        for x in xs:
            v = (x + salt) % _P
            total = (total + v + (v * v) % _P + (v * v * v) % _P) % _P
    return total


def pack_records(keys: np.ndarray, payload_ids: np.ndarray) -> np.ndarray:
    """Pack (uint32 key, uint32 payload id) pairs into sortable uint64s.

    The engines sort flat integer keys (as the paper does); real record
    sorting rides along by packing the key into the high 32 bits and a
    payload locator into the low 32: uint64 order == (key, id) order, so
    any engine in this library sorts *records* stably by key.  Unpack at
    the consumer with :func:`unpack_records`.
    """
    k = np.asarray(keys)
    p = np.asarray(payload_ids)
    if k.shape != p.shape:
        raise ValueError(f"keys {k.shape} and payload_ids {p.shape} must match")
    if k.dtype != np.uint32 or p.dtype != np.uint32:
        raise TypeError("pack_records expects uint32 keys and payload ids")
    return (k.astype(np.uint64) << np.uint64(32)) | p.astype(np.uint64)


def unpack_records(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_records`: returns ``(keys, payload_ids)``."""
    arr = np.asarray(packed)
    if arr.dtype != np.uint64:
        raise TypeError(f"expected uint64 packed records, got {arr.dtype}")
    keys = (arr >> np.uint64(32)).astype(np.uint32)
    ids = (arr & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    return keys, ids


def verify_permutation(inp: np.ndarray, out: np.ndarray) -> bool:
    """Exact multiset-equality check (sorts both; use on test-sized data)."""
    a = np.sort(np.asarray(inp), kind="stable")
    b = np.sort(np.asarray(out), kind="stable")
    return a.shape == b.shape and bool(np.array_equal(a, b))


def verify_sorted_permutation(inp: np.ndarray, out: np.ndarray, exact: bool = True) -> None:
    """Assert ``out`` is a sorted permutation of ``inp``; raises AssertionError.

    ``exact=False`` switches to the checksum comparison for large inputs.
    """
    inp = np.asarray(inp)
    out = np.asarray(out)
    if inp.size != out.size:
        raise AssertionError(f"size mismatch: input {inp.size}, output {out.size}")
    if not is_sorted(out):
        bad = int(np.argmax(out[:-1] > out[1:]))
        raise AssertionError(
            f"output not sorted: out[{bad}]={out[bad]} > out[{bad + 1}]={out[bad + 1]}"
        )
    if exact:
        if not verify_permutation(inp, out):
            raise AssertionError("output is not a permutation of the input")
    else:
        if checksum(inp) != checksum(out):
            raise AssertionError("output multiset checksum differs from input")
