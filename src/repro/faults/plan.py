"""Declarative fault plans, typed fault errors and retry policies.

A :class:`FaultPlan` describes *what goes wrong* in one simulated run —
disk faults ("disk on node d fails after k I/Os"), message faults
(drop/delay each message with some probability, or hard-fail the n-th
one) and node kills ("node r dies at the step-s barrier") — all
deterministic under the plan's seed.  The plan is pure data: the
:class:`~repro.faults.injector.FaultInjector` turns it into live hooks
on :class:`~repro.pdm.disk.SimDisk`, :class:`~repro.cluster.network.Network`
and the cluster's step observers.

Every injected failure raises a subclass of :class:`FaultError`, so
callers can distinguish injected faults from genuine bugs.
:class:`DiskFaultError` additionally subclasses :class:`IOError` — the
historical type the ad-hoc ``FaultyDisk`` test double raised — so fault
handling written against the old harness keeps working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence


# ---------------------------------------------------------------------------
# Typed errors
# ---------------------------------------------------------------------------


class FaultError(RuntimeError):
    """Base class of every *injected* failure (never raised by real bugs)."""


class FaultPlanError(ValueError):
    """A fault plan is malformed (bad node index, probability, ...)."""


class DiskFaultError(FaultError, IOError):
    """An injected disk fault fired on a block I/O.

    Subclasses :class:`IOError` for compatibility with code written
    against the original ``FaultyDisk`` test double.
    """

    def __init__(self, disk_name: str, op: str, io_index: int) -> None:
        super().__init__(
            f"injected disk fault on {disk_name!r} ({op} #{io_index})"
        )
        self.disk_name = disk_name
        self.op = op
        self.io_index = io_index


class NetworkFaultError(FaultError):
    """An injected hard failure of one network message."""

    def __init__(self, src: int, dst: int, message_index: int) -> None:
        super().__init__(
            f"injected network fault on message #{message_index} "
            f"({src} -> {dst})"
        )
        self.src = src
        self.dst = dst
        self.message_index = message_index


class NodeKilledError(FaultError):
    """Node ``rank`` was declared dead at the start of algorithm step ``step``."""

    def __init__(self, rank: int, step: int) -> None:
        super().__init__(f"node {rank} killed at step {step}")
        self.rank = rank
        self.step = step


# ---------------------------------------------------------------------------
# Fault specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DiskFault:
    """Fail a node's disk after a number of I/Os.

    Attributes
    ----------
    node:
        Rank of the node whose disk faults (ignored when the fault is
        attached to a standalone disk).
    after_ios:
        Number of block I/Os (counted from arming) that succeed before
        the fault fires: I/O number ``after_ios + 1`` is the first to fail.
    count:
        How many consecutive I/Os fail once triggered; ``None`` means the
        disk never heals (permanent media failure).  ``count=1`` models a
        transient error a retry can get past.
    """

    node: int = 0
    after_ios: int = 0
    count: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultPlanError(f"node must be >= 0, got {self.node}")
        if self.after_ios < 0:
            raise FaultPlanError(f"after_ios must be >= 0, got {self.after_ios}")
        if self.count is not None and self.count < 1:
            raise FaultPlanError(f"count must be >= 1 or None, got {self.count}")


@dataclass(frozen=True)
class MessageFault:
    """Probabilistic drops/delays and deterministic hard message failures.

    A *dropped* message is retransmitted: the transfer succeeds but is
    charged its own duration again plus ``delay`` (the sender's timeout).
    A *delayed* message is charged ``delay`` extra seconds.  A *hard*
    failure (``fail_after``) raises :class:`NetworkFaultError` on the
    matching message — what a retry policy recovers from.

    ``src``/``dst`` restrict the fault to one endpoint pair; ``None``
    matches any rank.
    """

    drop_probability: float = 0.0
    delay_probability: float = 0.0
    delay: float = 0.0
    fail_after: Optional[int] = None
    count: Optional[int] = 1
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop_probability", "delay_probability"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise FaultPlanError(f"{name} must be in [0, 1], got {v}")
        if self.delay < 0:
            raise FaultPlanError(f"delay must be >= 0, got {self.delay}")
        if self.fail_after is not None and self.fail_after < 0:
            raise FaultPlanError(f"fail_after must be >= 0, got {self.fail_after}")
        if self.count is not None and self.count < 1:
            raise FaultPlanError(f"count must be >= 1 or None, got {self.count}")


@dataclass(frozen=True)
class NodeKill:
    """Declare node ``node`` dead at the start of algorithm step ``step`` (1-5)."""

    node: int
    step: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultPlanError(f"node must be >= 0, got {self.node}")
        if not (1 <= self.step <= 5):
            raise FaultPlanError(f"step must be in 1..5, got {self.step}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of every fault to inject in one run."""

    disk_faults: tuple[DiskFault, ...] = ()
    message_faults: tuple[MessageFault, ...] = ()
    node_kills: tuple[NodeKill, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "disk_faults", tuple(self.disk_faults))
        object.__setattr__(self, "message_faults", tuple(self.message_faults))
        object.__setattr__(self, "node_kills", tuple(self.node_kills))
        kills = {}
        for k in self.node_kills:
            if k.node in kills:
                raise FaultPlanError(f"node {k.node} killed more than once")
            kills[k.node] = k

    @property
    def is_empty(self) -> bool:
        return not (self.disk_faults or self.message_faults or self.node_kills)

    def validate_for(self, p: int) -> None:
        """Check every node index against a p-node cluster."""
        for f in self.disk_faults:
            if f.node >= p:
                raise FaultPlanError(f"disk fault on node {f.node} of a {p}-node cluster")
        for k in self.node_kills:
            if k.node >= p:
                raise FaultPlanError(f"kill of node {k.node} of a {p}-node cluster")
        for m in self.message_faults:
            for end in (m.src, m.dst):
                if end is not None and end >= p:
                    raise FaultPlanError(f"message fault endpoint {end} of a {p}-node cluster")

    # -- (de)serialisation (the CLI's --fault-plan format) -----------------

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "disk": [
                {"node": f.node, "after_ios": f.after_ios, "count": f.count}
                for f in self.disk_faults
            ],
            "network": [
                {
                    "drop_probability": m.drop_probability,
                    "delay_probability": m.delay_probability,
                    "delay": m.delay,
                    "fail_after": m.fail_after,
                    "count": m.count,
                    "src": m.src,
                    "dst": m.dst,
                }
                for m in self.message_faults
            ],
            "kills": [{"node": k.node, "step": k.step} for k in self.node_kills],
        }

    @staticmethod
    def from_dict(d: dict[str, object]) -> "FaultPlan":
        if not isinstance(d, dict):
            raise FaultPlanError(f"fault plan must be a JSON object, got {type(d).__name__}")
        known = {"seed", "disk", "network", "kills"}
        extra = set(d) - known
        if extra:
            raise FaultPlanError(f"unknown fault plan keys: {sorted(extra)}")
        try:
            return FaultPlan(
                disk_faults=tuple(DiskFault(**f) for f in d.get("disk", ())),
                message_faults=tuple(MessageFault(**m) for m in d.get("network", ())),
                node_kills=tuple(NodeKill(**k) for k in d.get("kills", ())),
                seed=int(d.get("seed", 0)),
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from None

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            return FaultPlan.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None

    @staticmethod
    def load(path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return FaultPlan.from_json(fh.read())

    def save(self, path: str) -> None:
        """Inverse of :meth:`load`: ``FaultPlan.load(p)`` after ``plan.save(p)``
        returns an equal plan (the fuzzer's shrunk-case files rely on the
        round trip)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")


# ---------------------------------------------------------------------------
# Retry policy and counters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Step-level retry budget with exponential backoff.

    ``backoff * backoff_factor**(attempt-1)`` simulated seconds are
    charged to every surviving node's clock before attempt+1 — failure
    handling costs wall time, exactly like a real MPI job waiting out an
    I/O hiccup.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay(self, attempt: int) -> float:
        """Backoff charged after failed attempt number ``attempt`` (1-based)."""
        return self.backoff * self.backoff_factor ** (attempt - 1)


@dataclass
class FaultCounters:
    """Everything that went wrong (and was recovered from) in one run.

    Shared by the injector (fault side) and the step runner (recovery
    side); surfaced on :class:`~repro.core.external_psrs.PSRSResult` and
    rendered by :func:`repro.metrics.report.fault_table`.
    """

    disk_faults: int = 0
    network_faults: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    node_kills: int = 0
    dead_nodes: list[int] = field(default_factory=list)
    retries: dict[str, int] = field(default_factory=dict)
    backoff_time: float = 0.0
    degraded: bool = False

    @property
    def total_faults(self) -> int:
        return self.disk_faults + self.network_faults + self.node_kills

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def note_retry(self, step: str) -> None:
        self.retries[step] = self.retries.get(step, 0) + 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultCounters(disk={self.disk_faults}, net={self.network_faults}, "
            f"kills={self.node_kills}, retries={self.total_retries}, "
            f"degraded={self.degraded})"
        )


def step_index(name: str) -> Optional[int]:
    """Algorithm step number of a step label like ``\"4:redistribute\"``.

    Recovery-internal steps (``\"recover:salvage\"``) and utility steps
    (``\"gather\"``) have no number and return ``None``.
    """
    head, _, _ = name.partition(":")
    try:
        return int(head)
    except ValueError:
        return None


def expand_faults(faults: Sequence[DiskFault | MessageFault | NodeKill]) -> FaultPlan:
    """Build a plan from a flat mixed list of fault specs (test helper)."""
    return FaultPlan(
        disk_faults=tuple(f for f in faults if isinstance(f, DiskFault)),
        message_faults=tuple(f for f in faults if isinstance(f, MessageFault)),
        node_kills=tuple(f for f in faults if isinstance(f, NodeKill)),
    )
