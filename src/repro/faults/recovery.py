"""Step-level retry execution (the recovery half of the fault subsystem).

The PSRS algorithm is bulk-synchronous: every step ends at a barrier, so
the natural recovery unit is a whole step.  :class:`StepRunner` runs one
step body under a :class:`~repro.faults.plan.RetryPolicy`: a transient
:class:`~repro.faults.plan.FaultError` rolls the attempt back (step
bodies are written against checkpointed inputs, so re-running them is
safe) and the policy's backoff is charged to every participating node's
*simulated* clock — failure handling costs wall time.

:class:`~repro.faults.plan.NodeKilledError` is never retried here: a
dead node cannot be waited back, so it propagates to the orchestrator in
:mod:`repro.core.external_psrs`, which enters degraded mode instead.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

from repro.faults.plan import FaultCounters, FaultError, NodeKilledError, RetryPolicy

T = TypeVar("T")


class StepRunner:
    """Runs barrier-delimited step bodies with retry accounting.

    ``view`` is anything with ``nodes`` and a ``step(name)`` context
    manager — a :class:`~repro.cluster.machine.Cluster` or the survivor
    :class:`~repro.cluster.machine.ClusterView` degraded mode uses.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy],
        counters: Optional[FaultCounters] = None,
    ) -> None:
        self.policy = policy
        self.counters = counters if counters is not None else FaultCounters()

    def run(self, view, name: str, fn: Callable[[], T]) -> T:
        attempt = 1
        while True:
            try:
                with view.step(name):
                    return fn()
            except NodeKilledError:
                raise  # dead nodes are handled by degraded mode, not retry
            except FaultError:
                if self.policy is None or attempt >= self.policy.max_attempts:
                    raise
                self.counters.note_retry(name)
                pause = self.policy.delay(attempt)
                bus = getattr(view, "bus", None)
                if bus is not None:
                    bus.record_retry(
                        name,
                        node=-1,  # backoff is charged cluster-wide
                        t=max(n.clock.time for n in view.nodes),
                        attempt=attempt,
                        backoff=pause,
                    )
                if pause > 0:
                    for node in view.nodes:
                        node.clock.advance(pause)
                    self.counters.backoff_time += pause
                attempt += 1
