"""Turning a :class:`~repro.faults.plan.FaultPlan` into live hooks.

The injector instruments a cluster through the first-class hook points
the simulation layers expose — no subclassing:

* :attr:`SimDisk.fault_hook` — consulted before every block I/O is
  charged; raising aborts the I/O *before* any state or counter changes
  (the sim's block writes are atomic).
* :attr:`Network.fault_hook` — consulted on every message; may raise
  (hard failure) or return extra seconds to charge (drop = retransmit,
  delay = slow link).
* :attr:`Cluster.step_observers` — consulted at every step barrier;
  node kills fire here, marking the node dead and raising
  :class:`~repro.faults.plan.NodeKilledError` so the orchestrator can
  enter degraded mode.

All probabilistic decisions come from one ``numpy`` generator seeded by
the plan, so a given (plan, workload) pair always injects the same
faults — the property the hypothesis suites rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.faults.plan import (
    DiskFault,
    DiskFaultError,
    FaultCounters,
    FaultPlan,
    MessageFault,
    NetworkFaultError,
    NodeKill,
    NodeKilledError,
    step_index,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Cluster
    from repro.pdm.disk import SimDisk


class _DiskArm:
    """Mutable firing state of one :class:`DiskFault`."""

    def __init__(self, fault: DiskFault) -> None:
        self.fault = fault
        self.ios_seen = 0
        self.fired = 0

    def check(self, disk: "SimDisk", op: str, counters: FaultCounters) -> None:
        self.ios_seen += 1
        if self.ios_seen <= self.fault.after_ios:
            return
        if self.fault.count is not None and self.fired >= self.fault.count:
            return  # transient fault exhausted: the disk has healed
        self.fired += 1
        counters.disk_faults += 1
        disk.stats.record_fault()
        bus = disk.bus
        if bus is not None:
            owner = disk.owner
            bus.record_fault(
                "disk",
                node=owner.rank if owner is not None else -1,
                t=owner.clock.time if owner is not None else disk.stats.busy_time,
                detail=f"{disk.name} {op} io#{self.ios_seen}",
            )
        raise DiskFaultError(disk.name, op, self.ios_seen)


class _MessageArm:
    """Mutable firing state of one :class:`MessageFault`."""

    def __init__(self, fault: MessageFault) -> None:
        self.fault = fault
        self.messages_seen = 0
        self.fired = 0

    def matches(self, src_rank: int, dst_rank: int) -> bool:
        f = self.fault
        return (f.src is None or f.src == src_rank) and (
            f.dst is None or f.dst == dst_rank
        )

    def check(
        self,
        src_rank: int,
        dst_rank: int,
        duration: float,
        rng: np.random.Generator,
        counters: FaultCounters,
        bus=None,
        t: float = 0.0,
    ) -> float:
        """Return extra seconds to charge, or raise on a hard failure."""
        f = self.fault
        index = self.messages_seen
        self.messages_seen += 1
        if (
            f.fail_after is not None
            and index >= f.fail_after
            and (f.count is None or self.fired < f.count)
        ):
            self.fired += 1
            counters.network_faults += 1
            if bus is not None:
                bus.record_fault(
                    "network",
                    node=src_rank,
                    t=t,
                    detail=f"{src_rank}->{dst_rank} msg#{index}",
                )
            raise NetworkFaultError(src_rank, dst_rank, index)
        extra = 0.0
        if f.drop_probability > 0 and rng.random() < f.drop_probability:
            counters.messages_dropped += 1
            extra += duration + f.delay  # full retransmission + timeout
            if bus is not None:
                bus.record_fault(
                    "message-drop",
                    node=src_rank,
                    t=t,
                    detail=f"{src_rank}->{dst_rank} msg#{index}",
                )
        if f.delay_probability > 0 and rng.random() < f.delay_probability:
            counters.messages_delayed += 1
            extra += f.delay
            if bus is not None:
                bus.record_fault(
                    "message-delay",
                    node=src_rank,
                    t=t,
                    detail=f"{src_rank}->{dst_rank} msg#{index}",
                )
        return extra


def install_disk_faults(
    disk: "SimDisk",
    faults: Sequence[DiskFault],
    counters: Optional[FaultCounters] = None,
) -> FaultCounters:
    """Arm ``faults`` on one standalone disk (the ``node`` field is ignored).

    I/Os are counted from this call, so arming after setup writes leaves
    the setup uncounted.  Returns the counters the hook updates.  Used by
    the single-disk engine tests and by :meth:`FaultInjector.install`.
    """
    counters = counters if counters is not None else FaultCounters()
    arms = [_DiskArm(f) for f in faults]

    def hook(d: "SimDisk", op: str, n_items: int, itemsize: int) -> None:
        for arm in arms:
            arm.check(d, op, counters)

    disk.fault_hook = hook
    return counters


class FaultInjector:
    """Arms a :class:`FaultPlan` on a live cluster and counts what fires."""

    def __init__(self, plan: FaultPlan, counters: Optional[FaultCounters] = None) -> None:
        self.plan = plan
        self.counters = counters if counters is not None else FaultCounters()
        self._rng = np.random.default_rng(plan.seed)
        self._cluster: Optional["Cluster"] = None
        self._hooked_disks: list["SimDisk"] = []
        self._pending_kills: dict[int, NodeKill] = {}
        self._message_arms: list[_MessageArm] = []

    @property
    def installed(self) -> bool:
        return self._cluster is not None

    def install(self, cluster: "Cluster") -> "FaultInjector":
        """Wire every hook; I/O and message counting starts now."""
        if self._cluster is not None:
            raise RuntimeError("injector is already installed")
        self.plan.validate_for(cluster.p)
        self._cluster = cluster
        by_node: dict[int, list[DiskFault]] = {}
        for f in self.plan.disk_faults:
            by_node.setdefault(f.node, []).append(f)
        for rank, faults in by_node.items():
            disk = cluster.nodes[rank].disk
            install_disk_faults(disk, faults, self.counters)
            self._hooked_disks.append(disk)
        if self.plan.message_faults:
            self._message_arms = [_MessageArm(m) for m in self.plan.message_faults]
            cluster.network.fault_hook = self._on_message
        self._pending_kills = {k.node: k for k in self.plan.node_kills}
        cluster.step_observers.append(self._on_step)
        return self

    def uninstall(self) -> None:
        """Remove every hook this injector installed."""
        if self._cluster is None:
            return
        for disk in self._hooked_disks:
            disk.fault_hook = None
        self._hooked_disks = []
        if self._message_arms:
            self._cluster.network.fault_hook = None
            self._message_arms = []
        try:
            self._cluster.step_observers.remove(self._on_step)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._cluster = None

    # -- hook bodies -------------------------------------------------------

    def _on_message(self, src, dst, nbytes: int, duration: float) -> float:
        bus = self._cluster.bus if self._cluster is not None else None
        extra = 0.0
        for arm in self._message_arms:
            if arm.matches(src.rank, dst.rank):
                extra += arm.check(
                    src.rank,
                    dst.rank,
                    duration,
                    self._rng,
                    self.counters,
                    bus=bus,
                    t=src.clock.time,
                )
        return extra

    def _on_step(self, name: str) -> None:
        step = step_index(name)
        if step is None or not self._pending_kills:
            return
        for rank in sorted(self._pending_kills):
            kill = self._pending_kills[rank]
            if kill.step != step:
                continue
            del self._pending_kills[rank]
            node = self._cluster.nodes[rank]
            if not node.alive:
                continue
            node.mark_dead(name)
            self.counters.node_kills += 1
            self.counters.dead_nodes.append(rank)
            self._cluster.bus.record_fault(
                "node-kill", node=rank, t=node.clock.time, detail=name
            )
            raise NodeKilledError(rank, step)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "installed" if self.installed else "idle"
        return f"FaultInjector({state}, {self.counters})"
