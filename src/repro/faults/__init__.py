"""Fault injection and step-level recovery for the simulated cluster.

See :doc:`docs/FAULTS.md` for the fault model.  Quick tour:

>>> from repro.faults import DiskFault, FaultPlan, RetryPolicy
>>> plan = FaultPlan(disk_faults=(DiskFault(node=1, after_ios=100),))
>>> # sort_array(cluster, perf, data, cfg, faults=plan, retry=RetryPolicy())
"""

from repro.faults.injector import FaultInjector, install_disk_faults
from repro.faults.plan import (
    DiskFault,
    DiskFaultError,
    FaultCounters,
    FaultError,
    FaultPlan,
    FaultPlanError,
    MessageFault,
    NetworkFaultError,
    NodeKill,
    NodeKilledError,
    RetryPolicy,
    expand_faults,
    step_index,
)
from repro.faults.recovery import StepRunner

__all__ = [
    "DiskFault",
    "DiskFaultError",
    "FaultCounters",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "MessageFault",
    "NetworkFaultError",
    "NodeKill",
    "NodeKilledError",
    "RetryPolicy",
    "StepRunner",
    "expand_faults",
    "install_disk_faults",
    "step_index",
]
