"""Run formation for external merge sorting.

Two policies are provided:

* ``"load"`` — memory-load sorting: stream ``L`` items into core, sort
  them (numpy introsort), write them out as one run.  Produces
  ``ceil(N / L)`` runs of length ``L`` (last one shorter).  This is the
  policy the paper's step-1 bound ``2 l_i (1 + ceil(log_m l_i))``
  assumes.
* ``"replacement"`` — replacement selection (Knuth 5.4.1): a selection
  heap of ``H`` items emits the smallest key not below the last emitted
  one; keys that can no longer extend the current run are frozen for the
  next.  On random input the expected run length is ``2H`` — about half
  the merge passes for the same memory (the run-policy ablation bench
  measures exactly this).

Runs are delivered through a sink callback so the caller (polyphase
distribution, balanced merge sort) chooses their physical placement
without an extra copy pass.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Literal, Optional

import numpy as np

from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import SimDisk
from repro.pdm.memory import MemoryManager

RunPolicy = Literal["load", "replacement"]

#: ``compute`` callbacks receive abstract operation counts (comparisons);
#: the cluster layer converts them to model time.
ComputeHook = Optional[Callable[[float], None]]


def _sort_ops(n: int) -> float:
    """Comparison count charged for an in-core sort of n items."""
    if n <= 1:
        return float(n)
    return n * float(np.log2(n))


class RunSink:
    """Receives formed runs; implemented by the consumers of run formation."""

    def start_run(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def write(self, items: np.ndarray) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def end_run(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class CollectingSink(RunSink):
    """Writes each run to its own fresh :class:`BlockFile` on one disk."""

    def __init__(
        self, disk: SimDisk, B: int, dtype: "np.dtype | type", mem: MemoryManager
    ) -> None:
        self.disk = disk
        self.B = B
        self.dtype = dtype
        self.mem = mem
        self.runs: list[BlockFile] = []
        self._writer: Optional[BlockWriter] = None

    def start_run(self) -> None:
        f = self.disk.new_file(self.B, self.dtype, name=self.disk.next_file_name("run"))
        self.runs.append(f)
        self._writer = BlockWriter(f, self.mem)

    def write(self, items: np.ndarray) -> None:
        assert self._writer is not None, "start_run not called"
        self._writer.write(items)

    def end_run(self) -> None:
        assert self._writer is not None, "start_run not called"
        self._writer.close()
        self._writer = None

    def abort(self) -> None:
        """Release the open writer after a mid-run failure (no flush)."""
        if self._writer is not None:
            self._writer.abandon()
            self._writer = None


def form_runs(
    source: BlockFile,
    sink: RunSink,
    mem: MemoryManager,
    policy: RunPolicy = "load",
    compute: ComputeHook = None,
) -> int:
    """Form sorted runs from ``source`` into ``sink``; returns run count."""
    if policy not in ("load", "replacement"):
        raise ValueError(f"unknown run policy {policy!r}")
    try:
        if policy == "load":
            return _form_runs_load(source, sink, mem, compute)
        return _form_runs_replacement(source, sink, mem, compute)
    except BaseException:
        abort = getattr(sink, "abort", None)
        if abort is not None:
            abort()
        raise


def _load_size(mem: MemoryManager, B: int) -> int:
    """Largest memory load leaving room for one output block."""
    if mem.capacity is None:
        return max(B, 1 << 22)
    L = mem.available - B
    if L < B:
        raise ValueError(
            f"memory budget too small for run formation: available="
            f"{mem.available}, B={B} (need >= 2 blocks)"
        )
    return L


def _iter_loads(source: BlockFile, L: int, mem: MemoryManager) -> Iterator[np.ndarray]:
    """Stream the source in consecutive loads of about L items.

    Loads are whole numbers of blocks (block-granular reads), pinned in
    memory for the duration of each yield.
    """
    blocks_per_load = max(1, L // source.B)
    i = 0
    while i < source.n_blocks:
        j = min(i + blocks_per_load, source.n_blocks)
        parts = []
        n = 0
        for b in range(i, j):
            n += source.inspect_block(b).size
        with mem.reserve(n):
            for b in range(i, j):
                parts.append(source.read_block(b))
            yield np.concatenate(parts) if len(parts) > 1 else parts[0]
        i = j


def _form_runs_load(
    source: BlockFile, sink: RunSink, mem: MemoryManager, compute: ComputeHook
) -> int:
    L = _load_size(mem, source.B)
    n_runs = 0
    for load in _iter_loads(source, L, mem):
        load = load.copy()
        load.sort(kind="stable")
        if compute is not None:
            compute(_sort_ops(load.size))
        sink.start_run()
        sink.write(load)
        sink.end_run()
        n_runs += 1
    return n_runs


def _form_runs_replacement(
    source: BlockFile, sink: RunSink, mem: MemoryManager, compute: ComputeHook
) -> int:
    """Replacement selection with a (run_epoch, key) heap.

    Heap capacity ``H = available - 2B`` (one input block, one output
    block).  Items whose key is below the last emitted key are pushed
    with the next run's epoch ("frozen"), so the heap never violates the
    current run's ordering.
    """
    B = source.B
    if mem.capacity is not None:
        H = mem.available - 2 * B
        if H < 1:
            raise ValueError(
                f"memory budget too small for replacement selection: "
                f"available={mem.available}, need > 2*B={2 * B}"
            )
    else:
        H = 1 << 20

    heap: list[tuple[int, int]] = []  # (epoch, key) — ints compare fast

    def input_items() -> Iterator[np.ndarray]:
        for i in range(source.n_blocks):
            with mem.reserve(source.inspect_block(i).size):
                yield source.read_block(i)

    blocks = input_items()
    pending = np.empty(0, dtype=source.dtype)
    pending_pos = 0
    exhausted = False

    def refill() -> None:
        nonlocal pending, pending_pos, exhausted
        if pending_pos < pending.size or exhausted:
            return
        try:
            pending = next(blocks)
            pending_pos = 0
        except StopIteration:
            exhausted = True

    # Prime the heap.
    with mem.reserve(H):
        refill()
        while len(heap) < H and not (exhausted and pending_pos >= pending.size):
            heapq.heappush(heap, (0, int(pending[pending_pos])))
            pending_pos += 1
            refill()
        if compute is not None:
            compute(_sort_ops(len(heap)))

        n_runs = 0
        epoch = 0
        out: Optional[BlockWriter] = None
        ops = 0.0
        while heap:
            e, key = heapq.heappop(heap)
            ops += np.log2(max(2, len(heap) + 1))
            if e != epoch or out is None:
                if out is not None:
                    out.flush()
                    sink.end_run()
                sink.start_run()
                out = _SinkItemWriter(sink)
                epoch = e
                n_runs += 1
            out.write_one(key)
            refill()
            if not (exhausted and pending_pos >= pending.size):
                nxt = int(pending[pending_pos])
                pending_pos += 1
                new_epoch = e if nxt >= key else e + 1
                heapq.heappush(heap, (new_epoch, nxt))
                ops += np.log2(max(2, len(heap)))
        if out is not None:
            out.flush()
            sink.end_run()
        if compute is not None:
            compute(ops)
    return n_runs


class _SinkItemWriter:
    """Small item buffer in front of a sink (keeps sink.write array-based)."""

    _CHUNK = 1024

    def __init__(self, sink: RunSink) -> None:
        self.sink = sink
        self._buf: list[int] = []

    def write_one(self, item: int) -> None:
        self._buf.append(item)
        if len(self._buf) >= self._CHUNK:
            self.flush()

    def flush(self) -> None:
        if self._buf:
            self.sink.write(np.asarray(self._buf))
            self._buf.clear()

    def __del__(self) -> None:  # pragma: no cover - defensive
        try:
            self.flush()
        except Exception:  # repro: noqa REP007(defensive __del__ flush; teardown order is arbitrary)
            pass
