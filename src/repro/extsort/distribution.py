"""External distribution (bucket) sort with sampled splitters.

The §2 baseline: a recursive algorithm in which the input is partitioned
by ``S-1`` splitters into ``S`` buckets, buckets are sorted recursively
(in core once they fit), and the sorted buckets concatenate into the
output.  With splitters that balance the buckets, there are
``log_S(n)`` levels of recursion and the sort meets the PDM bound; the
paper notes the hard part is finding splitters that keep bucket sizes
"within a constant factor of one another" — which is exactly the
weakness the sampled splitters here exhibit under adversarial key
distributions (see the duplicates tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.extsort.balanced import balanced_merge_sort
from repro.extsort.runs import ComputeHook, _sort_ops
from repro.pdm.blockfile import BlockFile, BlockReader, BlockWriter, close_all
from repro.pdm.disk import SimDisk
from repro.pdm.memory import MemoryManager


@dataclass
class DistributionResult:
    """Outcome of :func:`distribution_sort`."""

    output: BlockFile
    n_items: int
    fanout: int
    max_depth: int
    n_fallbacks: int


def _sample_splitters(
    source: BlockFile,
    mem: MemoryManager,
    n_splitters: int,
    oversample: int,
    compute: ComputeHook,
) -> np.ndarray:
    """Pick splitters from evenly-spaced sample blocks (charged reads)."""
    want = max(n_splitters * oversample, n_splitters + 1)
    mem_blocks = (mem.available // source.B) if mem.capacity is not None else 1 << 16
    # Spread the sample over at least ~one block per splitter: reading a
    # single block would make the splitters hostage to that block's key
    # range (catastrophic on presorted inputs, where block 0 holds only
    # the smallest keys).
    n_sample_blocks = min(
        source.n_blocks,
        max(-(-want // source.B), n_splitters + 1),
        max(1, mem_blocks - 2),
    )
    idxs = np.unique(
        np.linspace(0, source.n_blocks - 1, n_sample_blocks).astype(int)
    )
    total = sum(source.inspect_block(int(i)).size for i in idxs)
    with mem.reserve(total):
        parts = [source.read_block(int(i)) for i in idxs]
        sample = np.concatenate(parts)
        del parts
        sample.sort(kind="stable")  # repro: noqa REP002(block sample held under mem.reserve; compute charged below)
        sample = sample.copy()
    if compute is not None:
        compute(_sort_ops(sample.size))
    # Evenly spaced order statistics of the sample.
    pos = (np.arange(1, n_splitters + 1) * sample.size) // (n_splitters + 1)
    return sample[np.clip(pos, 0, sample.size - 1)]


def distribution_sort(
    source: BlockFile,
    disk: SimDisk,
    mem: MemoryManager,
    fanout: Optional[int] = None,
    oversample: int = 8,
    compute: ComputeHook = None,
) -> DistributionResult:
    """Sort ``source`` into a fresh file on ``disk`` by distribution.

    ``fanout`` S defaults to the memory-feasible maximum ``m - 2`` (one
    input block, S bucket writers, one shared output writer).  Buckets
    that fail to shrink (pathological splitters, e.g. a single massive
    duplicate value) fall back to a balanced merge sort — counted in the
    result's ``n_fallbacks``.
    """
    B = source.B
    m = mem.available // B if mem.capacity is not None else 1 << 16
    if m < 4:
        raise ValueError(
            f"memory budget of {mem.available} items (m={m} blocks) is too "
            "small for distribution sort; need at least 4 blocks"
        )
    S = (m - 2) if fanout is None else fanout
    if S < 2:
        raise ValueError(f"fanout must be >= 2, got {S}")
    if mem.capacity is not None and (S + 2) * B > mem.available:
        raise ValueError(
            f"fanout {S} needs {(S + 2) * B} items of memory, "
            f"only {mem.available} available"
        )

    out = disk.new_file(B, source.dtype, name=disk.next_file_name("sorted"))
    stats = {"max_depth": 0, "fallbacks": 0}
    with BlockWriter(out, mem) as writer:
        _sort_into(source, writer, disk, mem, S, oversample, compute, 0, stats)
    return DistributionResult(
        out, out.n_items, S, stats["max_depth"], stats["fallbacks"]
    )


def _sort_into(
    bucket: BlockFile,
    writer: BlockWriter,
    disk: SimDisk,
    mem: MemoryManager,
    S: int,
    oversample: int,
    compute: ComputeHook,
    depth: int,
    stats: dict,
) -> None:
    stats["max_depth"] = max(stats["max_depth"], depth)
    B = bucket.B
    # In-core base case: needs the bucket plus nothing else (writer block
    # already pinned by the caller).
    in_core_cap = (mem.available - B) if mem.capacity is not None else 1 << 62
    if bucket.n_items <= in_core_cap:
        if bucket.n_items:
            data = BlockReader(bucket, mem).read_all()
            data.sort(kind="stable")  # repro: noqa REP002(in-core base case under the read_all reservation; compute charged below)
            if compute is not None:
                compute(_sort_ops(data.size))
            with mem.reserve(data.size):
                writer.write(data)
        return

    parent_n = bucket.n_items
    splitters = _sample_splitters(bucket, mem, S - 1, oversample, compute)
    subfiles = [
        disk.new_file(B, bucket.dtype, name=disk.next_file_name(f"bkt{depth}_"))
        for _ in range(S)
    ]
    sub_writers = [BlockWriter(f, mem) for f in subfiles]
    try:
        for block in BlockReader(bucket, mem):
            which = np.searchsorted(splitters, block, side="right")
            if compute is not None:
                compute(block.size * float(np.log2(max(2, S))))
            for j in range(S):
                sel = block[which == j]
                if sel.size:
                    sub_writers[j].write(sel)
    finally:
        close_all(sub_writers)
    if depth == 0:
        pass  # keep the original input intact
    else:
        bucket.clear()

    for f in subfiles:
        if f.n_items == 0:
            continue
        if _bucket_is_constant(f):
            # A constant bucket is already sorted; stream it through.
            for block in BlockReader(f, mem):
                writer.write(block)
        elif f.n_items < parent_n:
            _sort_into(f, writer, disk, mem, S, oversample, compute, depth + 1, stats)
        else:
            # Splitters failed to split (pathological distribution):
            # escape the recursion with a merge sort of this bucket.
            stats["fallbacks"] += 1
            res = balanced_merge_sort(f, disk, mem, compute=compute)
            for block in BlockReader(res.output, mem):
                writer.write(block)
            res.output.clear()
        f.clear()


def _bucket_is_constant(f: BlockFile) -> bool:
    """Charge-free metadata check: all items equal (min == max)?

    Uses inspect (directory-style metadata the simulation grants for
    free); a real system would track per-bucket min/max while writing.
    """
    lo = f.inspect_block(0)[0]  # repro: noqa REP005(per-bucket min/max a real system tracks at write time)
    hi = f.inspect_block(f.n_blocks - 1)[-1]  # repro: noqa REP005(per-bucket min/max a real system tracks at write time)
    if lo == hi:
        return all(
            f.inspect_block(i).min() == lo and f.inspect_block(i).max() == lo  # repro: noqa REP005(per-bucket min/max a real system tracks at write time)
            for i in range(f.n_blocks)
        )
    return False
