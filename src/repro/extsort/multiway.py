"""Block-buffered k-way merging of sorted runs under a memory budget.

Two engines, identical observable semantics:

* :func:`merge_cursors` — the production engine.  Per round, each run
  holds one buffered block; the safe horizon ``t`` is the minimum of the
  per-run buffer maxima; every buffered item ``<= t`` can be emitted this
  round (any unseen item of run *i* is ``>=`` its buffer max ``>= t``),
  so the round gathers them, sorts the gathered chunk in core and streams
  it out.  At least one whole buffer drains per round, so the number of
  rounds is bounded by the total block count — the Python-level overhead
  is O(blocks·k) while the data plane stays in numpy.
* :func:`merge_cursors_itemwise` — the textbook loser-tree engine
  (ceil(log2 k) comparisons per item).  Used for cross-checking and for
  small merges.

A k-way merge needs k input buffers plus one output buffer in core:
``k <= M/B - 1`` (:func:`max_merge_order`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.extsort.losertree import LoserTree, kway_merge_sorted
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.memory import MemoryManager

ComputeHook = Optional[Callable[[float], None]]


def max_merge_order(mem: MemoryManager, B: int) -> int:
    """Largest k for a k-way merge: k input blocks + 1 output block <= M."""
    if mem.capacity is None:
        return 1 << 16
    k = mem.available // B - 1
    if k < 2:
        raise ValueError(
            f"memory budget too small to merge: available={mem.available}, "
            f"B={B} (need >= 3 blocks)"
        )
    return k


@dataclass(frozen=True)
class RunRef:
    """A sorted run = an item range [start, stop) of a block file."""

    file: BlockFile
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not (0 <= self.start <= self.stop <= self.file.n_items):
            raise ValueError(
                f"run range [{self.start}, {self.stop}) outside file of "
                f"{self.file.n_items} items"
            )

    @property
    def length(self) -> int:
        return self.stop - self.start

    @staticmethod
    def whole(file: BlockFile) -> "RunRef":
        return RunRef(file, 0, file.n_items)


class RunCursor:
    """Buffered forward cursor over one sorted run.

    Reads the underlying file block by block (each read charged to the
    disk), pinning buffered-but-unconsumed items in the memory manager.
    Item addressing exploits the BlockFile invariant that every block
    except the last holds exactly B items.
    """

    def __init__(self, run: RunRef, mem: MemoryManager) -> None:
        self.run = run
        self.mem = mem
        self._pos = run.start  # next unread item offset in the file
        self._buf: Optional[np.ndarray] = None
        self._buf_pos = 0

    @property
    def exhausted(self) -> bool:
        return self._buf is None and self._pos >= self.run.stop

    def _fill(self) -> None:
        """Ensure a non-empty buffer or exhaustion."""
        if self._buf is not None or self._pos >= self.run.stop:
            return
        B = self.run.file.B
        block_index = self._pos // B
        block = self.run.file.read_block(block_index)
        lo = self._pos - block_index * B
        hi = min(block.size, self.run.stop - block_index * B)
        self._buf = block[lo:hi]
        self._buf_pos = 0
        self._pos = block_index * B + hi
        self.mem.acquire(self._buf.size)

    def buffer_max(self) -> np.generic:
        """Largest key currently buffered (fills the buffer if needed)."""
        self._fill()
        if self._buf is None:
            raise RuntimeError("cursor exhausted")
        return self._buf[-1]

    def take_leq(self, t: "int | np.generic") -> np.ndarray:
        """Pop every buffered item ``<= t`` (possibly none)."""
        self._fill()
        if self._buf is None:
            return np.empty(0, dtype=self.run.file.dtype)
        cut = int(np.searchsorted(self._buf, t, side="right"))
        out = self._buf[self._buf_pos : cut]
        taken = cut - self._buf_pos
        if taken:
            self.mem.release(taken)
        self._buf_pos = cut
        if self._buf_pos >= self._buf.size:
            self._buf = None
        return out

    def take_one(self) -> np.generic:
        """Pop a single item (item-at-a-time engine)."""
        self._fill()
        if self._buf is None:
            raise RuntimeError("cursor exhausted")
        item = self._buf[self._buf_pos]
        self._buf_pos += 1
        self.mem.release(1)
        if self._buf_pos >= self._buf.size:
            self._buf = None
        return item

    def take_upto(self, n: int) -> np.ndarray:
        """Pop up to ``n`` items from the current buffer (message chunking)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self._fill()
        if self._buf is None:
            return np.empty(0, dtype=self.run.file.dtype)
        cut = min(self._buf_pos + n, self._buf.size)
        out = self._buf[self._buf_pos : cut]
        self.mem.release(cut - self._buf_pos)
        self._buf_pos = cut
        if self._buf_pos >= self._buf.size:
            self._buf = None
        return out

    def peek(self) -> "np.generic | None":
        """Current head item without consuming, or None if exhausted."""
        self._fill()
        if self._buf is None:
            return None
        return self._buf[self._buf_pos]

    def drop(self) -> None:
        """Release any buffered items (abandon the cursor)."""
        if self._buf is not None:
            self.mem.release(self._buf.size - self._buf_pos)
            self._buf = None


def merge_cursors(
    cursors: Sequence[RunCursor],
    writer: BlockWriter,
    mem: MemoryManager,
    compute: ComputeHook = None,
) -> int:
    """Vectorised k-way merge; returns the number of items written."""
    active = [c for c in cursors if not c.exhausted]
    k = max(1, len(active))
    total = 0
    log_k = float(np.log2(max(2, k)))
    while active:
        t = active[0].buffer_max()
        for c in active[1:]:
            m = c.buffer_max()
            if m < t:
                t = m
        parts = [p for p in (c.take_leq(t) for c in active) if p.size]
        if len(parts) == 1:
            chunk = parts[0]
            with mem.reserve(chunk.size):
                writer.write(chunk)
        else:
            n = sum(p.size for p in parts)
            with mem.reserve(n):
                chunk = kway_merge_sorted(parts)  # block-frontier numpy merge
                writer.write(chunk)
        total += chunk.size
        if compute is not None:
            compute(chunk.size * log_k)
        active = [c for c in active if not c.exhausted]
    return total


def merge_cursors_itemwise(
    cursors: Sequence[RunCursor],
    writer: BlockWriter,
    mem: MemoryManager,
    compute: ComputeHook = None,
) -> int:
    """Loser-tree k-way merge, one item at a time (reference engine)."""
    heads = [c.peek() for c in cursors]
    tree = LoserTree([None if h is None else h for h in heads])
    total = 0
    while not tree.exhausted:
        src = tree.winner
        writer.write_one(cursors[src].take_one())
        total += 1
        tree.replace(src, cursors[src].peek())
    if compute is not None:
        compute(float(tree.comparisons))
    return total


def merge_runs(
    runs: Sequence[RunRef],
    out: BlockFile,
    mem: MemoryManager,
    compute: ComputeHook = None,
    engine: str = "vector",
) -> int:
    """Merge ``runs`` into ``out`` in one k-way pass.

    The caller must guarantee ``len(runs) <= max_merge_order(mem, B)``;
    multi-pass scheduling lives in the sort algorithms.
    """
    k_max = max_merge_order(mem, out.B)
    if len(runs) > k_max:
        raise ValueError(f"{len(runs)} runs exceed merge order {k_max}")
    if engine not in ("vector", "itemwise"):
        raise ValueError(f"unknown merge engine {engine!r}")
    cursors = [RunCursor(r, mem) for r in runs]
    try:
        with BlockWriter(out, mem) as w:
            if engine == "vector":
                return merge_cursors(cursors, w, mem, compute)
            return merge_cursors_itemwise(cursors, w, mem, compute)
    finally:
        for c in cursors:
            c.drop()
