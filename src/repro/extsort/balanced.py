"""Balanced k-way external merge sort (baseline comparator).

The straightforward external sort: form runs, then repeatedly merge
groups of k runs until one remains, writing every item once per pass.
Compared with polyphase (which avoids moving all data every phase), a
balanced sort makes exactly ``ceil(log_k(initial_runs))`` full passes —
the §2/§4 ablation bench contrasts the two engines' measured I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.extsort.multiway import RunRef, max_merge_order, merge_runs
from repro.extsort.runs import CollectingSink, ComputeHook, RunPolicy, form_runs
from repro.pdm.blockfile import BlockFile
from repro.pdm.disk import SimDisk
from repro.pdm.memory import MemoryManager


@dataclass
class BalancedResult:
    """Outcome of :func:`balanced_merge_sort`."""

    output: BlockFile
    n_items: int
    n_initial_runs: int
    merge_order: int
    n_passes: int


def balanced_merge_sort(
    source: BlockFile,
    disk: SimDisk,
    mem: MemoryManager,
    merge_order: Optional[int] = None,
    run_policy: RunPolicy = "load",
    compute: ComputeHook = None,
    engine: str = "vector",
) -> BalancedResult:
    """Sort ``source`` into a fresh file on ``disk`` by balanced merging.

    ``merge_order`` defaults to the largest k the memory budget allows
    (``M/B - 1``).
    """
    B = source.B
    k = max_merge_order(mem, B) if merge_order is None else merge_order
    if k < 2:
        raise ValueError(f"merge order must be >= 2, got {k}")
    if mem.capacity is not None and (k + 1) * B > mem.available:
        raise ValueError(
            f"merge order {k} needs {(k + 1) * B} items of memory, "
            f"only {mem.available} available"
        )

    sink = CollectingSink(disk, B, source.dtype, mem)
    n_runs = form_runs(source, sink, mem, policy=run_policy, compute=compute)

    if n_runs == 0:
        empty = disk.new_file(B, source.dtype, name=disk.next_file_name("sorted"))
        return BalancedResult(empty, 0, 0, k, 0)

    level = [RunRef.whole(f) for f in sink.runs]
    n_passes = 0
    while len(level) > 1:
        nxt: list[RunRef] = []
        for i in range(0, len(level), k):
            group = level[i : i + k]
            if len(group) == 1:
                nxt.append(group[0])
                continue
            out = disk.new_file(B, source.dtype, name=disk.next_file_name("merge"))
            merge_runs(group, out, mem, compute=compute, engine=engine)
            for r in group:
                if r.start == 0 and r.stop == r.file.n_items:
                    r.file.clear()
            nxt.append(RunRef.whole(out))
        level = nxt
        n_passes += 1

    final = level[0]
    return BalancedResult(final.file, final.file.n_items, n_runs, k, n_passes)
