"""Tournament (loser) tree for k-way selection.

The loser tree is the textbook engine for k-way merging (Knuth vol. 3,
§5.4.1): an internal node stores the *loser* of the match between its
subtrees, the overall winner bubbles to the root, and replacing the
winner's leaf replays exactly one root-to-leaf path — ``ceil(log2 k)``
comparisons per extracted item.

Keys may be any comparable Python objects (numpy scalars included);
``None`` is the +infinity sentinel marking an exhausted source.

Alongside the item-at-a-time tree, this module provides the *block*
merge kernels the production engines use: :func:`merge_two_sorted`
interleaves two sorted arrays with a pair of ``np.searchsorted`` scatter
index computations (no Python-level loop, no re-sort), and
:func:`kway_merge_sorted` tournament-reduces k sorted arrays pairwise —
``ceil(log2 k)`` vectorised passes over the data, the block-frontier
analogue of the loser tree's per-item root path.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np


class LoserTree:
    """A k-leaf loser tree with replaceable leaves.

    Parameters
    ----------
    keys:
        Initial key per source; ``None`` marks an already-exhausted
        source (treated as +infinity).
    """

    def __init__(self, keys: Sequence[object]) -> None:
        k = len(keys)
        if k < 1:
            raise ValueError("need at least one source")
        self.k = k
        self._keys: list[object] = list(keys)
        # _losers[0] holds the overall winner; _losers[1..k-1] the match losers.
        self._losers = [0] * k
        self.comparisons = 0
        self._build()

    # -- construction ------------------------------------------------------

    def _beats(self, a: int, b: int) -> bool:
        """True if source ``a`` wins (has the smaller key) against ``b``."""
        ka, kb = self._keys[a], self._keys[b]
        self.comparisons += 1
        if ka is None:
            return False
        if kb is None:
            return True
        return ka <= kb  # ties broken by play order; stability not required

    def _build(self) -> None:
        k = self.k
        # Play a full round-robin-free tournament bottom-up.  Leaf i sits
        # conceptually at internal position k + i; internal node j has
        # children 2j and 2j+1.
        winners = [0] * (2 * k)
        for i in range(k):
            winners[k + i] = i
        for j in range(k - 1, 0, -1):
            a, b = winners[2 * j], winners[2 * j + 1]
            if self._beats(a, b):
                winners[j], self._losers[j] = a, b
            else:
                winners[j], self._losers[j] = b, a
        self._losers[0] = winners[1] if k > 1 else 0

    # -- queries -----------------------------------------------------------

    @property
    def winner(self) -> int:
        """Index of the source holding the current minimum key."""
        return self._losers[0]

    @property
    def winner_key(self) -> object:
        """Current minimum key, or ``None`` if every source is exhausted."""
        return self._keys[self._losers[0]]

    @property
    def exhausted(self) -> bool:
        return self._keys[self._losers[0]] is None

    def key_of(self, source: int) -> object:
        return self._keys[source]

    # -- updates -----------------------------------------------------------

    def replace_winner(self, new_key: Optional[object]) -> None:
        """Replace the winner's key (``None`` = source exhausted) and
        replay its path to the root."""
        self.replace(self._losers[0], new_key)

    def replace(self, source: int, new_key: Optional[object]) -> None:
        """Replace ``source``'s key and replay its root path.

        Replaying an arbitrary (non-winner) leaf is also correct — used by
        replacement selection when a frozen source thaws at a run
        boundary — at the price of one root-to-leaf path of comparisons.
        """
        if not (0 <= source < self.k):
            raise IndexError(f"source {source} out of range 0..{self.k - 1}")
        self._keys[source] = new_key
        if self.k == 1:
            return
        cur = source
        node = (source + self.k) // 2
        while node >= 1:
            opp = self._losers[node]
            if self._beats(opp, cur):
                self._losers[node] = cur
                cur = opp
            node //= 2
        self._losers[0] = cur

    def pop_push(self, new_key: Optional[object]) -> tuple[object, int]:
        """Extract the minimum and replace it in one call.

        Returns ``(min_key, source_index)``.  Raises if exhausted.
        """
        src = self._losers[0]
        key = self._keys[src]
        if key is None:
            raise RuntimeError("all sources exhausted")
        self.replace(src, new_key)
        return key, src


def merge_two_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted 1-D arrays of one dtype into a new sorted array.

    Stable with ``a`` before ``b`` on ties: ``a[i]`` lands after the
    ``b`` elements strictly below it, ``b[j]`` after the ``a`` elements
    at or below it.  Two searchsorted passes + two scatters — O(n log n)
    comparisons but fully vectorised, no per-item Python.
    """
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    out = np.empty(a.size + b.size, dtype=a.dtype)  # repro: noqa REP006(callers reserve the merge working set — multiway.merge_cursors / incore.merge_in_memory)
    out[np.arange(a.size) + np.searchsorted(b, a, side="left")] = a  # repro: noqa REP006(scatter index vector, covered by the caller's reservation)
    out[np.arange(b.size) + np.searchsorted(a, b, side="right")] = b  # repro: noqa REP006(scatter index vector, covered by the caller's reservation)
    return out


def kway_merge_sorted(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Merge k sorted arrays by pairwise tournament reduction.

    Equivalent (including tie order: lower part index first) to a
    stable sort of the concatenation, in ``ceil(log2 k)`` vectorised
    merge passes.  An empty ``parts`` yields an empty uint32 array.
    """
    if not parts:
        return np.empty(0, dtype=np.uint32)
    level = [np.asarray(p) for p in parts]
    if len(level) == 1:
        return level[0].copy()
    while len(level) > 1:
        nxt = [
            merge_two_sorted(level[i], level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def merge_iterables(sources: Sequence, key: Optional[Callable] = None) -> list:
    """Merge already-sorted iterables with a loser tree (reference path).

    A convenience used by tests to cross-check the block-vectorised merge
    engine against the textbook structure.
    """
    iters = [iter(s) for s in sources]

    def pull(i: int) -> object:
        try:
            return next(iters[i])
        except StopIteration:
            return None

    heads = [pull(i) for i in range(len(iters))]
    if not heads:
        return []
    keyed = [None if h is None else (key(h) if key else h) for h in heads]
    values = list(heads)
    tree = LoserTree(keyed)
    out = []
    while not tree.exhausted:
        src = tree.winner
        out.append(values[src])
        nxt = pull(src)
        values[src] = nxt
        tree.replace(src, None if nxt is None else (key(nxt) if key else nxt))
    return out
