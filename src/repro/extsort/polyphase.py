"""Polyphase merge sort (Knuth vol. 3, §5.4.2) — the paper's sequential engine.

Polyphase merging uses ``T`` files to obtain a ``(T-1)``-way merge
*without* a separate redistribution of runs after every pass: initial
runs are dealt onto ``T-1`` files following a generalized-Fibonacci
distribution (padded with *dummy* runs), and each phase merges
``min_j(runs on file j)`` groups of ``T-1`` runs onto the single idle
file, emptying exactly one input file, which becomes the next phase's
output.  The paper (step 1 / step 5) bounds its I/O by
``2 l_i (1 + ceil(log_m l_i))`` item I/Os; Table 3 runs it with "15
intermediate files".

Implementation notes
--------------------
* A *tape* is a queue of :class:`~repro.extsort.multiway.RunRef` plus a
  dummy-run counter, backed by one physical
  :class:`~repro.pdm.blockfile.BlockFile` for the runs written while the
  tape was the output; initial runs live in their own files, so the
  distribution step costs no copy pass.
* A merge needs ``T-1`` input buffers plus one output buffer, so ``T``
  may not exceed ``m = M/B``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.extsort.multiway import RunCursor, RunRef, merge_cursors, merge_cursors_itemwise
from repro.extsort.runs import CollectingSink, ComputeHook, RunPolicy, form_runs
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import SimDisk
from repro.pdm.memory import MemoryManager


def fibonacci_distribution(n_runs: int, n_tapes: int) -> tuple[list[int], int]:
    """Perfect polyphase distribution for ``n_runs`` over ``T-1`` input tapes.

    Returns ``(counts, level)`` where ``counts`` (length ``T-1``, sorted
    descending) is the smallest perfect distribution with
    ``sum(counts) >= n_runs``.  The number of dummy runs to add is
    ``sum(counts) - n_runs``; ``level`` equals the number of merge phases
    a perfect input needs.
    """
    k = n_tapes - 1
    if k < 2:
        raise ValueError(f"polyphase needs at least 3 tapes, got {n_tapes}")
    if n_runs <= 1:
        return [n_runs] + [0] * (k - 1), 0
    a = [1] + [0] * (k - 1)
    level = 0
    while sum(a) < n_runs:
        a = [a[0] + a[i + 1] for i in range(k - 1)] + [a[0]]
        level += 1
    return a, level


@dataclass
class _Tape:
    """One polyphase tape: queued runs, dummies, and a physical file."""

    file: BlockFile
    runs: deque = field(default_factory=deque)
    dummies: int = 0

    @property
    def total(self) -> int:
        return len(self.runs) + self.dummies

    @property
    def real(self) -> int:
        return len(self.runs)


@dataclass
class PolyphaseResult:
    """Outcome of :func:`polyphase_sort`."""

    output: BlockFile
    n_items: int
    n_initial_runs: int
    n_tapes: int
    n_phases: int
    n_dummy_runs: int


def polyphase_sort(
    source: BlockFile,
    disk: SimDisk,
    mem: MemoryManager,
    n_tapes: Optional[int] = None,
    run_policy: RunPolicy = "load",
    compute: ComputeHook = None,
    engine: str = "vector",
) -> PolyphaseResult:
    """Sort ``source`` into a fresh file on ``disk`` with polyphase merging.

    Parameters
    ----------
    source:
        Unsorted input file (left untouched).
    disk:
        Device for run files, tape files and the output.
    mem:
        Memory budget; must allow at least 3 blocks.
    n_tapes:
        Number of files T (merge arity T-1).  Defaults to ``min(m, 8)``;
        capped at ``m = M/B`` so the merge fits in memory.
    run_policy:
        ``"load"`` (memory-load sorting) or ``"replacement"``.
    compute:
        Optional hook receiving abstract comparison counts, for the
        cluster time model.
    engine:
        ``"vector"`` (block-batched) or ``"itemwise"`` (loser tree).
    """
    B = source.B
    m = mem.available // B if mem.capacity is not None else 1 << 16
    if m < 3:
        raise ValueError(
            f"memory budget of {mem.available} items (m={m} blocks) is too "
            "small for external merging; need at least 3 blocks"
        )
    T = min(m, 8) if n_tapes is None else n_tapes
    if T > m:
        raise ValueError(f"n_tapes={T} exceeds the memory budget (m={m} blocks)")
    if T < 3:
        raise ValueError(f"polyphase needs at least 3 tapes, got {T}")

    # -- run formation ------------------------------------------------------
    sink = CollectingSink(disk, B, source.dtype, mem)
    n_runs = form_runs(source, sink, mem, policy=run_policy, compute=compute)

    if n_runs == 0:
        empty = disk.new_file(B, source.dtype, name=disk.next_file_name("sorted"))
        return PolyphaseResult(empty, 0, 0, T, 0, 0)
    if n_runs == 1:
        out = sink.runs[0]
        return PolyphaseResult(out, out.n_items, 1, T, 0, 0)

    # -- distribution (logical: no copy pass) -------------------------------
    counts, _level = fibonacci_distribution(n_runs, T)
    n_dummies = sum(counts) - n_runs
    tapes = [
        _Tape(disk.new_file(B, source.dtype, name=disk.next_file_name("tape")))
        for _ in range(T)
    ]
    run_iter = iter(sink.runs)
    dummies_left = n_dummies
    for j, want in enumerate(counts):
        # Spread dummies as evenly as possible over the input tapes,
        # never exceeding a tape's quota (Knuth: dummies merge first).
        share = min(want, -(-dummies_left // (len(counts) - j)))
        tapes[j].dummies = share
        dummies_left -= share
        for _ in range(want - share):
            f = next(run_iter)
            tapes[j].runs.append(RunRef.whole(f))
    assert dummies_left == 0

    # -- merge phases --------------------------------------------------------
    out_idx = T - 1  # the idle tape
    n_phases = 0
    merge = merge_cursors if engine == "vector" else merge_cursors_itemwise
    while sum(t.real for t in tapes) > 1 or tapes[out_idx].real > 0:
        inputs = [t for i, t in enumerate(tapes) if i != out_idx]
        out_tape = tapes[out_idx]
        phase_merges = min(t.total for t in inputs)
        if phase_merges == 0:
            raise RuntimeError("polyphase phase made no progress (bad distribution)")
        boundaries: list[tuple[int, int]] = []
        writer = BlockWriter(out_tape.file, mem)
        out_dummies = 0
        try:
            for _ in range(phase_merges):
                refs: list[RunRef] = []
                for t in inputs:
                    if t.dummies > 0:
                        t.dummies -= 1
                    else:
                        refs.append(t.runs.popleft())
                if not refs:
                    out_dummies += 1
                    continue
                start = writer.items_written
                cursors = [RunCursor(r, mem) for r in refs]
                try:
                    merge(cursors, writer, mem, compute)
                finally:
                    for c in cursors:
                        c.drop()
                boundaries.append((start, writer.items_written))
                _reclaim_consumed(refs, tapes)
        finally:
            writer.close()
        for start, stop in boundaries:
            out_tape.runs.append(RunRef(out_tape.file, start, stop))
        out_tape.dummies += out_dummies
        n_phases += 1
        # The minimal input tape(s) emptied: reclaim them all, make one
        # the next output (linear-space discipline).
        emptied = [i for i, t in enumerate(tapes) if i != out_idx and t.total == 0]
        if not emptied:
            raise RuntimeError("no tape emptied during polyphase phase")
        for i in emptied:
            tapes[i].file.clear()
        out_idx = emptied[0]

    # The single surviving run.
    survivor = next(t for t in tapes if t.real == 1)
    ref = survivor.runs[0]
    if ref.start == 0 and ref.stop == ref.file.n_items:
        out = ref.file
    else:  # pragma: no cover - defensive; survivor always spans its file
        out = disk.new_file(B, source.dtype, name=disk.next_file_name("sorted"))
        with BlockWriter(out, mem) as w:
            cur = RunCursor(ref, mem)
            while not cur.exhausted:
                w.write(cur.take_leq(cur.buffer_max()))
    return PolyphaseResult(out, out.n_items, n_runs, T, n_phases, n_dummies)


def _reclaim_consumed(refs: list[RunRef], tapes: list[_Tape]) -> None:
    """Free the payload of fully-consumed initial run files.

    Tape files are reclaimed when their tape empties; initial run files
    (one run each, not a tape file) can be dropped right after their
    single consumption.
    """
    tape_files = {id(t.file) for t in tapes}
    for r in refs:
        if id(r.file) not in tape_files and r.start == 0 and r.stop == r.file.n_items:
            r.file.clear()


def theoretical_phase_count(n_runs: int, n_tapes: int) -> int:
    """Phases a perfect distribution needs (for tests/bench reporting)."""
    _, level = fibonacci_distribution(n_runs, n_tapes)
    return level


def polyphase_item_io_bound(n_items: int, n_runs: int, n_tapes: int) -> float:
    """Loose upper bound on item I/Os: ``2 N (1 + phases)``.

    Each phase moves at most all N items once (read + write); polyphase
    moves strictly less in all but the last phase, so measured counters
    must come in under this.
    """
    return 2.0 * n_items * (1 + theoretical_phase_count(n_runs, n_tapes))
