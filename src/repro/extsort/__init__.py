"""Sequential external-sorting substrate.

The paper's Algorithm 1 uses a sequential external sort twice: step 1
(local sort of each node's portion) and step 5 (final merge of the p
received runs).  The paper implements both with **polyphase merge sort**
(Knuth vol. 3): run formation followed by a generalized-Fibonacci tape
schedule that achieves a (T-1)-way merge with T files and no
redistribution pass.

This package provides:

* :mod:`~repro.extsort.runs` — run formation (memory-load sorting and
  replacement selection),
* :mod:`~repro.extsort.losertree` — the tournament (loser) tree used by
  item-at-a-time merging,
* :mod:`~repro.extsort.multiway` — block-buffered k-way merging of sorted
  runs under a memory budget (both a vectorised engine and the textbook
  item-at-a-time engine),
* :mod:`~repro.extsort.polyphase` — polyphase merge sort (the paper's
  sequential engine),
* :mod:`~repro.extsort.balanced` — balanced k-way external merge sort
  (baseline comparator),
* :mod:`~repro.extsort.distribution` — external distribution (bucket)
  sort with sampled splitters (the §2 baseline).
"""

from repro.extsort.balanced import balanced_merge_sort
from repro.extsort.distribution import distribution_sort
from repro.extsort.losertree import LoserTree
from repro.extsort.multiway import (
    RunCursor,
    RunRef,
    max_merge_order,
    merge_cursors,
    merge_cursors_itemwise,
)
from repro.extsort.polyphase import PolyphaseResult, polyphase_sort
from repro.extsort.runs import form_runs

__all__ = [
    "LoserTree",
    "PolyphaseResult",
    "RunCursor",
    "RunRef",
    "balanced_merge_sort",
    "distribution_sort",
    "form_runs",
    "max_merge_order",
    "merge_cursors",
    "merge_cursors_itemwise",
    "polyphase_sort",
]
