"""Append-writer for the machine-readable benchmark artifacts.

``BENCH_sort.json`` used to be overwritten with whichever single summary
ran last, so dashboards diffing the file between commits silently lost
every other configuration.  Version 2 makes the artifact a *keyed run
list*: one document with a schema tag and one entry per
``<n_items>x<perf-vector>`` configuration.  Re-running a configuration
updates its entry in place; new configurations append.  Legacy v1 files
(a bare CLI summary object) are migrated on first touch.
"""

from __future__ import annotations

import json
import os
from typing import Mapping, Optional

#: Schema tag of the keyed-run-list document format.
SCHEMA = "repro-bench-sort/2"


class BenchFormatError(ValueError):
    """A benchmark artifact is structurally invalid."""


def run_key(summary: Mapping[str, object]) -> str:
    """Stable identity of one benchmark configuration.

    ``"131080x1-1-4-4"``: input size times the perf vector — the two
    axes the Table-2/3 experiments sweep.
    """
    try:
        n = int(summary["n_items"])  # type: ignore[arg-type]
        perf = [int(v) for v in summary["perf"]]  # type: ignore[union-attr]
    except (KeyError, TypeError, ValueError) as exc:
        raise BenchFormatError(f"summary lacks n_items/perf: {exc}") from None
    return f"{n}x" + "-".join(str(v) for v in perf)


def _migrate_v1(doc: dict) -> dict:
    """Wrap a legacy single-summary file into the v2 run list."""
    return {"schema": SCHEMA, "runs": [{"key": run_key(doc), **doc}]}


def load_bench(path: str) -> dict:
    """Read (and, for legacy v1 files, migrate) a benchmark document.

    A missing file yields an empty document, so the first append works
    on a fresh checkout.
    """
    if not os.path.exists(path):
        return {"schema": SCHEMA, "runs": []}
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise BenchFormatError(f"{path} is not JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise BenchFormatError(f"{path}: expected a JSON object")
    if doc.get("schema") == SCHEMA:
        validate_bench(doc, path=path)
        return doc
    if "command" in doc and "n_items" in doc:
        return _migrate_v1(doc)
    raise BenchFormatError(
        f"{path}: neither a {SCHEMA} document nor a legacy v1 summary"
    )


def validate_bench(doc: Mapping[str, object], path: str = "<doc>") -> None:
    """Structural check of a v2 document; raises BenchFormatError."""
    if doc.get("schema") != SCHEMA:
        raise BenchFormatError(f"{path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        raise BenchFormatError(f"{path}: 'runs' must be a list")
    seen: set[str] = set()
    for i, entry in enumerate(runs):
        if not isinstance(entry, dict):
            raise BenchFormatError(f"{path}: runs[{i}] is not an object")
        key = entry.get("key")
        if not isinstance(key, str) or not key:
            raise BenchFormatError(f"{path}: runs[{i}] has no key")
        if key != run_key(entry):
            raise BenchFormatError(
                f"{path}: runs[{i}] key {key!r} does not match its "
                f"n_items/perf ({run_key(entry)!r})"
            )
        if key in seen:
            raise BenchFormatError(f"{path}: duplicate run key {key!r}")
        seen.add(key)


def append_run(path: str, summary: Mapping[str, object]) -> dict:
    """Fold one CLI JSON summary into the artifact at ``path``.

    Returns the written document.  The entry for the summary's
    configuration is updated in place when it already exists (latest
    run wins), appended otherwise — earlier configurations survive.
    """
    doc = load_bench(path)
    entry = {"key": run_key(summary), **summary}
    runs = doc["runs"]
    for i, existing in enumerate(runs):
        if existing.get("key") == entry["key"]:
            runs[i] = entry
            break
    else:
        runs.append(entry)
    validate_bench(doc, path=path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


def get_run(doc: Mapping[str, object], key: str) -> Optional[dict]:
    """The run entry with ``key``, or None."""
    for entry in doc.get("runs", ()):  # type: ignore[union-attr]
        if entry.get("key") == key:
            return entry
    return None


def _worst_step(entry: Mapping[str, object]) -> tuple[str, float]:
    """The step that regressed most vs. the best recorded run.

    Compares ``step_seconds`` against ``best_step_seconds`` and returns
    ``(step, delta)`` for the largest positive delta.  Older entries
    without a best-step record fall back to the largest absolute step —
    still a useful pointer, just not a differential one.
    """
    steps = entry.get("step_seconds")
    if not isinstance(steps, Mapping) or not steps:
        return "", 0.0
    best_steps = entry.get("best_step_seconds")
    if isinstance(best_steps, Mapping) and best_steps:
        worst, delta = "", 0.0
        for step, t in steps.items():
            d = float(t) - float(best_steps.get(step, t))  # type: ignore[arg-type]
            if d > delta:
                worst, delta = step, d
        if worst:
            return worst, delta
    worst = max(steps, key=lambda s: float(steps[s]))  # type: ignore[arg-type]
    return worst, 0.0


def _blamed_component(entry: Mapping[str, object], step: str) -> str:
    """Dominant blame component of ``step``, from the entry's profiler
    blame summary (``repro sort --format json``); "unknown" for entries
    recorded before blame summaries existed."""
    blame = entry.get("blame")
    if isinstance(blame, Mapping):
        for sb in blame.get("steps", ()):  # type: ignore[union-attr]
            if isinstance(sb, Mapping) and sb.get("step") == step:
                return str(sb.get("dominant", "unknown"))
    return "unknown"


def report_rows(doc: Mapping[str, object], factor: float = 1.2) -> list[dict]:
    """Regression analysis of every run in a keyed artifact.

    One row per configuration: its elapsed time against the best ever
    recorded, whether it regressed by more than ``factor``, and — when
    it did — which step moved most and which blame component dominates
    that step.  This is what ``repro bench report`` renders.
    """
    rows: list[dict] = []
    for entry in doc.get("runs", ()):  # type: ignore[union-attr]
        elapsed = float(entry.get("elapsed_seconds", 0.0))
        raw_best = entry.get("best_elapsed_seconds")
        best = float(raw_best) if isinstance(raw_best, (int, float)) else elapsed
        ratio = elapsed / best if best > 0 else 1.0
        regressed = best > 0 and elapsed > factor * best
        step, delta = _worst_step(entry)
        rows.append(
            {
                "key": str(entry.get("key", "")),
                "elapsed_seconds": elapsed,
                "best_elapsed_seconds": best,
                "ratio": ratio,
                "regressed": regressed,
                "blamed_step": step,
                "blamed_step_delta_seconds": delta,
                "blamed_component": _blamed_component(entry, step),
            }
        )
    return rows
