"""Repeated-trial statistics.

The paper reports each configuration over 30 experiments with mean and
standard deviation.  The simulation is deterministic given a seed, so a
"trial" here varies the input seed: the spread measures data-dependent
variation (run counts, partition skew), which is exactly what the
paper's deviation column captures net of OS noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


@dataclass(frozen=True)
class TrialStats:
    """Mean / standard deviation / extremes over repeated trials."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("need at least one trial")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0 for a single trial."""
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.5f} ± {self.std:.5f} (n={self.n})"


def repeat_trials(
    fn: Callable[[int], float], seeds: Sequence[int]
) -> TrialStats:
    """Run ``fn(seed)`` for every seed and collect the statistics."""
    if not seeds:
        raise ValueError("need at least one seed")
    return TrialStats(tuple(float(fn(s)) for s in seeds))


def collect_trials(
    fn: Callable[[int], T], seeds: Sequence[int], metric: Callable[[T], float]
) -> tuple[list[T], TrialStats]:
    """Run trials keeping full results; stats over ``metric(result)``."""
    results = [fn(s) for s in seeds]
    return results, TrialStats(tuple(float(metric(r)) for r in results))
