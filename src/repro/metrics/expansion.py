"""Load-balance metrics: partition statistics and sublist expansion.

The paper's Table 3 reports, per configuration:

* ``Mean`` — mean final partition size (over the *fastest* nodes in the
  heterogeneous rows, whose optimal is the interesting one),
* ``Max`` — the largest final partition,
* ``S(max)`` — the sublist-expansion metric: the ratio of the maximum
  partition size to its optimal.  In the homogeneous case the optimal is
  ``n/p`` (Blelloch et al.'s classic definition: max/mean); in the
  heterogeneous case each node's optimal is its performance-proportional
  share ``n * perf[i] / sum(perf)``, so the metric is
  ``max_i received_i / optimal_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.perf import PerfVector


@dataclass(frozen=True)
class PartitionStats:
    """Summary of a final partitioning against its optimum."""

    sizes: tuple[int, ...]
    optimal: tuple[float, ...]
    mean: float
    max: int
    s_max: float
    mean_fastest: float
    s_max_fastest: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionStats(mean={self.mean:.1f}, max={self.max}, "
            f"S(max)={self.s_max:.4f})"
        )


def partition_stats(sizes: Sequence[int], perf: PerfVector, n: int) -> PartitionStats:
    """Compute the Table-3 columns for one run.

    ``sizes[i]`` is the number of items node i handled in the final
    merge; ``n`` the global input size.
    """
    if len(sizes) != perf.p:
        raise ValueError(f"{len(sizes)} sizes for a {perf.p}-node perf vector")
    if any(s < 0 for s in sizes):
        raise ValueError("partition sizes must be >= 0")
    optimal = [perf.optimal_share(n, i) for i in range(perf.p)]
    expansions = [s / o if o > 0 else 1.0 for s, o in zip(sizes, optimal)]
    fastest = max(perf.values)
    fast_idx = [i for i, v in enumerate(perf.values) if v == fastest]
    mean_fast = float(np.mean([sizes[i] for i in fast_idx]))
    s_max_fast = max(expansions[i] for i in fast_idx)
    return PartitionStats(
        sizes=tuple(int(s) for s in sizes),
        optimal=tuple(optimal),
        mean=float(np.mean(sizes)),
        max=int(max(sizes)),
        s_max=float(max(expansions)),
        mean_fastest=mean_fast,
        s_max_fastest=float(s_max_fast),
    )
