"""Plain-text table rendering shaped like the paper's tables.

The bench harness prints its results through these helpers so the
regenerated Table 2 / Table 3 read like the originals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A titled table accumulated row by row."""

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def add_section(self, label: str) -> None:
        """A full-width section header row (the paper's per-config bands)."""
        self.rows.append([f"-- {label}"])

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(c: object) -> str:
    if isinstance(c, float):
        if c == 0:
            return "0"
        if abs(c) >= 1000:
            return f"{c:.1f}"
        if abs(c) >= 1:
            return f"{c:.3f}"
        return f"{c:.5f}"
    return str(c)


def fault_table(counters, title: str = "fault injection") -> Table:
    """Render a :class:`~repro.faults.plan.FaultCounters` as a report table.

    One row per counter that is non-trivial, so a fault-free run prints a
    single "(no faults injected)" band; the ``sort --fault-plan`` CLI and
    the recovery test suite read retries/backoff out of this table.
    """
    table = Table(title, ["counter", "value"])
    if counters.total_faults == 0 and counters.total_retries == 0:
        table.add_section("(no faults injected)")
        return table
    table.add_row("disk faults", counters.disk_faults)
    table.add_row("network faults", counters.network_faults)
    table.add_row("messages dropped", counters.messages_dropped)
    table.add_row("messages delayed", counters.messages_delayed)
    table.add_row("node kills", counters.node_kills)
    table.add_row("dead nodes", str(counters.dead_nodes) if counters.dead_nodes else "-")
    for step in sorted(counters.retries):
        table.add_row(f"retries[{step}]", counters.retries[step])
    table.add_row("total retries", counters.total_retries)
    table.add_row("backoff charged (s)", counters.backoff_time)
    table.add_row("degraded mode", "yes" if counters.degraded else "no")
    return table


def format_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table with column alignment and section bands."""
    ncols = len(columns)
    widths = [len(c) for c in columns]
    for row in rows:
        if len(row) == 1 and row[0].startswith("--"):
            continue
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    total = sum(widths) + 2 * (ncols - 1)
    lines = [title, "=" * max(total, len(title))]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("-" * max(total, len(title)))
    for row in rows:
        if len(row) == 1 and row[0].startswith("--"):
            lines.append(row[0][3:].center(max(total, len(title)), "-"))
        else:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
