"""Metrics, trial statistics, and paper-style table reporting."""

from repro.metrics.expansion import PartitionStats, partition_stats
from repro.metrics.timing import TrialStats, repeat_trials
from repro.metrics.report import Table, fault_table, format_table

__all__ = [
    "PartitionStats",
    "Table",
    "TrialStats",
    "fault_table",
    "format_table",
    "partition_stats",
    "repeat_trials",
]
