"""Incremental lint cache: skip re-analysing unchanged modules.

Results are keyed by content, never by timestamp: a cache entry's key is
the sha256 of the analysed source (plus the engine version and the rule
selection), so a stale hit is impossible — editing a file changes its
key, upgrading an engine changes every key.

Two granularities, matching the two kinds of pass:

* the **shallow** pass (REP001..REP008) is strictly per-module, so each
  file caches independently — editing one module re-analyses one module;
* the **deep** (REP101..REP105) and **protocol** (REP201..REP206)
  passes are interprocedural: a finding in module A can depend on module
  B's source, so their keys include the digest of the *whole* project
  file set.  They hit only when nothing changed — which is still the
  common case in CI re-runs and pre-commit loops.

Entries live under ``.lint-cache/`` (git-ignored) as small JSON files,
written atomically.  ``repro lint --no-cache`` bypasses the cache, and
the JSON report carries a ``cache: {hits, misses, hit_rate}`` line so CI
can track the hit rate.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import (
    AnalysisReport,
    FileReport,
    Finding,
    Suppression,
)

#: default cache directory, relative to the invocation cwd
DEFAULT_CACHE_DIR = ".lint-cache"

#: bump to invalidate every entry on cache-format changes
CACHE_FORMAT = "1"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def cache_key(*parts: str) -> str:
    """Stable key from ordered string parts (NUL-joined, sha256)."""
    blob = "\x00".join((CACHE_FORMAT, *parts))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def project_digest(files: Sequence[tuple[str, str]]) -> str:
    """Digest of a whole file set: ``(display_path, source)`` pairs."""
    h = hashlib.sha256()
    for display, source in sorted(files):
        h.update(display.encode("utf-8"))
        h.update(b"\x00")
        h.update(source_digest(source).encode("ascii"))
        h.update(b"\x01")
    return h.hexdigest()


def rule_selection_token(codes: Sequence[str] | None) -> str:
    """Canonical token for a ``--rule`` selection (``*`` = all rules)."""
    if not codes:
        return "*"
    return ",".join(sorted(c.upper() for c in codes))


# -- FileReport (de)serialisation -------------------------------------------


def _finding_to_dict(f: Finding) -> dict[str, object]:
    return {
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "rule": f.rule,
        "message": f.message,
        "snippet": f.snippet,
    }


def _finding_from_dict(d: dict[str, object]) -> Finding:
    return Finding(
        path=str(d["path"]),
        line=int(d["line"]),  # type: ignore[arg-type]
        col=int(d["col"]),  # type: ignore[arg-type]
        rule=str(d["rule"]),
        message=str(d["message"]),
        snippet=str(d["snippet"]),
    )


def file_report_to_dict(fr: FileReport) -> dict[str, object]:
    return {
        "path": fr.path,
        "findings": [_finding_to_dict(f) for f in fr.findings],
        "suppressed": [
            {"finding": _finding_to_dict(s.finding), "reason": s.reason}
            for s in fr.suppressed
        ],
    }


def file_report_from_dict(d: dict[str, object]) -> FileReport:
    fr = FileReport(path=str(d["path"]))
    fr.findings = [_finding_from_dict(x) for x in d.get("findings", [])]  # type: ignore[union-attr]
    fr.suppressed = [
        Suppression(_finding_from_dict(x["finding"]), str(x["reason"]))
        for x in d.get("suppressed", [])  # type: ignore[union-attr]
    ]
    return fr


def report_to_dict(report: AnalysisReport) -> dict[str, object]:
    return {"files": [file_report_to_dict(fr) for fr in report.files]}


def report_from_dict(d: dict[str, object]) -> AnalysisReport:
    report = AnalysisReport()
    report.files = [file_report_from_dict(x) for x in d.get("files", [])]  # type: ignore[union-attr]
    return report


# -- the cache proper --------------------------------------------------------


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    #: per-pass breakdown (``shallow``/``deep``/``protocol``/``cost``),
    #: populated when callers pass ``pass_name`` to get/put
    passes: dict[str, "CacheStats"] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def record(self, hit: bool, pass_name: Optional[str] = None) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if pass_name is not None:
            sub = self.passes.setdefault(pass_name, CacheStats())
            if hit:
                sub.hits += 1
            else:
                sub.misses += 1

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }
        if self.passes:
            out["passes"] = {
                name: sub.to_dict()
                for name, sub in sorted(self.passes.items())
            }
        return out


@dataclass
class LintCache:
    """Content-addressed JSON store under ``root`` with hit/miss stats.

    All I/O failures degrade to cache misses (a broken cache must never
    break the lint run); writes are atomic (tmp + rename).
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(
        self, key: str, pass_name: Optional[str] = None
    ) -> Optional[dict[str, object]]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.stats.record(False, pass_name)
            return None
        self.stats.record(True, pass_name)
        return payload  # type: ignore[no-any-return]

    def put(self, key: str, payload: dict[str, object]) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(path)
        except OSError:
            pass  # a read-only cache directory is not an error
