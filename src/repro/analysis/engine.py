"""AST-based static-analysis engine for simulation invariants.

The cost model is only trustworthy if every byte moved is charged to the
accounting surfaces (:class:`~repro.pdm.disk.SimDisk`,
:class:`~repro.pdm.memory.MemoryManager`,
:class:`~repro.cluster.network.Network`) and runs are deterministic.
This module is the mechanical half of that guarantee: it parses every
module under ``src/repro`` and hands the tree to a set of
:class:`Rule` objects (REP001..REP008, see :mod:`repro.analysis.rules`)
that codify the invariants as syntax patterns.

Design
------
* :class:`Finding` — one diagnostic: rule code, location, message and
  the stripped source line (the *snippet*, also used for baseline
  fingerprints that survive line-number drift).
* :class:`Rule` — the protocol every check implements: class-level
  metadata (``code``, ``name``, ``rationale``, ``fix_hint``, path
  ``scope`` / ``exempt``) plus ``check(ctx)`` yielding findings.
* :class:`ModuleContext` — parsed tree + source lines + the
  package-relative path, with helpers for building findings.
* ``# repro: noqa`` — the inline escape hatch.  A bare ``noqa``
  suppresses every rule on that line; ``# repro: noqa REP002(charged
  via compute), REP003(...)`` suppresses the named codes and records
  the parenthesised reasons (reported by ``--show-suppressed``).

Suppression is matched against the *first* physical line of the node a
finding is attached to (``node.lineno``), which is where a human
reading the code expects the annotation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import ClassVar, Iterable, Iterator, Sequence


#: Version of the analysis engine, reported in the stable JSON payload.
#: Bumped when rules, fingerprints, or output semantics change.
ENGINE_VERSION = "2.0"


class AnalysisError(RuntimeError):
    """Internal analysis failure (unreadable file, syntax error, bad
    configuration) — mapped to exit code 2 by the CLI, never 1."""


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass(frozen=True)
class Suppression:
    """A finding silenced by an inline ``# repro: noqa`` comment."""

    finding: Finding
    reason: str


# --------------------------------------------------------------------------
# noqa parsing
# --------------------------------------------------------------------------

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>[^#\r\n]*)")
_CODE_RE = re.compile(r"(?P<code>REP\d{3})\s*(?:\((?P<reason>[^)]*)\))?")

#: Sentinel meaning "every rule" for a bare ``# repro: noqa``.
ALL_RULES = "*"


def parse_noqa(lines: Sequence[str]) -> dict[int, dict[str, str]]:
    """Map 1-based line numbers to ``{code: reason}`` suppressions.

    A bare ``# repro: noqa`` maps to ``{ALL_RULES: ""}``.
    """
    out: dict[int, dict[str, str]] = {}
    for i, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        codes = {
            c.group("code"): (c.group("reason") or "").strip()
            for c in _CODE_RE.finditer(m.group("rest"))
        }
        out[i] = codes if codes else {ALL_RULES: ""}
    return out


# --------------------------------------------------------------------------
# Module context
# --------------------------------------------------------------------------


def package_relpath(path: str) -> str:
    """Normalise ``path`` to a posix path relative to the ``repro`` package.

    ``src/repro/core/x.py`` and ``/abs/src/repro/core/x.py`` both become
    ``core/x.py``; paths that never mention ``repro`` are taken to be
    package-relative already (used by the test fixtures).
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        rel = parts[idx + 1 :]
        if rel:
            return str(PurePosixPath(*rel))
    return str(PurePosixPath(Path(path).as_posix()))


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str  # package-relative posix path ("core/sampling.py")
    tree: ast.Module
    lines: Sequence[str]
    display_path: str = ""  # path as given on the command line

    def __post_init__(self) -> None:
        if not self.display_path:
            self.display_path = self.path

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.display_path,
            line=line,
            col=col + 1,
            rule=rule.code,
            message=message,
            snippet=self.source_line(line),
        )


# --------------------------------------------------------------------------
# Rule protocol
# --------------------------------------------------------------------------


class Rule:
    """Base class / protocol for one codified invariant.

    Subclasses set the class-level metadata and implement :meth:`check`.
    ``scope`` restricts the rule to package-relative path prefixes
    (empty = the whole package); ``exempt`` lists sanctioned modules the
    rule never fires in — an entry ending in ``/`` exempts the whole
    directory (documented per rule in ``docs/ANALYSIS.md``).
    """

    code: ClassVar[str] = "REP000"
    name: ClassVar[str] = "base"
    summary: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    fix_hint: ClassVar[str] = ""
    scope: ClassVar[tuple[str, ...]] = ()
    exempt: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, relpath: str) -> bool:
        for entry in self.exempt:
            if entry.endswith("/"):
                if relpath.startswith(entry):  # directory exemption
                    return False
            elif relpath == entry:
                return False
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


# --------------------------------------------------------------------------
# Analysis driver
# --------------------------------------------------------------------------


@dataclass
class FileReport:
    """Per-module analysis result."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Suppression] = field(default_factory=list)


@dataclass
class AnalysisReport:
    """Aggregate result over a set of modules."""

    files: list[FileReport] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        out = [f for fr in self.files for f in fr.findings]
        out.sort()
        return out

    @property
    def suppressed(self) -> list[Suppression]:
        return [s for fr in self.files for s in fr.suppressed]


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    display_path: str | None = None,
) -> FileReport:
    """Run ``rules`` over one module's source text.

    ``path`` is used for scope matching (normalised with
    :func:`package_relpath`); ``display_path`` is what findings report
    (defaults to ``path`` as given).
    """
    relpath = package_relpath(path)
    shown = display_path if display_path is not None else path
    try:
        tree = ast.parse(source, filename=shown)
    except SyntaxError as exc:
        raise AnalysisError(f"{shown}: cannot parse: {exc}") from exc
    lines = source.splitlines()
    ctx = ModuleContext(path=relpath, tree=tree, lines=lines, display_path=shown)
    noqa = parse_noqa(lines)
    report = FileReport(path=shown)
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for finding in rule.check(ctx):
            directives = noqa.get(finding.line)
            if directives is not None and (
                ALL_RULES in directives or finding.rule in directives
            ):
                reason = directives.get(finding.rule, directives.get(ALL_RULES, ""))
                report.suppressed.append(Suppression(finding, reason))
            else:
                report.findings.append(finding)
    report.findings.sort()
    return report


def analyze_file(path: str | Path, rules: Sequence[Rule]) -> FileReport:
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"{p}: cannot read: {exc}") from exc
    return analyze_source(source, str(p), rules, display_path=p.as_posix())


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories to a sorted stream of ``.py`` files."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.is_file():
            yield p
        else:
            raise AnalysisError(f"{p}: no such file or directory")


def analyze_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule]
) -> AnalysisReport:
    report = AnalysisReport()
    for p in iter_python_files(paths):
        report.files.append(analyze_file(p, rules))
    return report
