"""``python -m repro lint`` — the CI gate for simulation invariants.

Exit codes (CI contract, tested):

* ``0`` — clean, or every finding is suppressed/baselined;
* ``1`` — at least one *new* finding;
* ``2`` — internal error (unreadable path, unparsable file, bad rule
  code, malformed baseline), so infrastructure breakage can never be
  mistaken for a clean run.

``--deep`` additionally runs the flow-aware interprocedural rules
(REP101..REP105, :mod:`repro.analysis.flow`), ``--protocol`` the
communication-protocol rules (REP201..REP206,
:mod:`repro.analysis.protocol`) and ``--cost`` the symbolic I/O-cost
certifier (REP301..REP306, :mod:`repro.analysis.cost`) on top of the
syntactic pass — same exit contract, same noqa/baseline machinery; all
findings fingerprint identically, so one baseline file covers every
pass.  ``--all`` enables every pass at once and produces one merged,
stably-sorted report with one combined exit code (the single-job CI
entry point).

``--emit-schema DIR`` writes the statically extracted per-step
communication schema of every known algorithm entry point as
``protocol-<name>.json`` (the input to ``repro audit --protocol``);
``--emit-costs DIR`` writes the derived symbolic per-step I/O bounds as
``costs-<name>.json`` (the input to ``repro audit --certify``);
``--write-cost-baseline`` pins the derived expressions into
``cost-baseline.json`` (the REP305 regression reference).

Results are cached under ``.lint-cache/`` keyed by content sha256 +
engine version (:mod:`repro.analysis.cache`); ``--no-cache`` bypasses,
and the JSON report breaks the hit rate down per pass.

``--format json`` output is stable for tooling: fixed keys, findings
sorted by (path, line, rule), engine version keys, no timestamps or
absolute paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence, TextIO

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, fingerprint
from repro.analysis.cache import (
    DEFAULT_CACHE_DIR,
    LintCache,
    cache_key,
    file_report_from_dict,
    file_report_to_dict,
    project_digest,
    report_from_dict,
    report_to_dict,
    rule_selection_token,
    source_digest,
)
from repro.analysis.engine import (
    ENGINE_VERSION,
    AnalysisError,
    AnalysisReport,
    FileReport,
    Finding,
    analyze_source,
    iter_python_files,
)
from repro.analysis.cost import (
    COST_BASELINE_NAME,
    COST_ENGINE_VERSION,
    COST_RULES_BY_CODE,
    analyze_cost,
    emit_costs,
    get_cost_rules,
    write_cost_baseline,
)
from repro.analysis.flow import (
    DEEP_RULES_BY_CODE,
    FLOW_ENGINE_VERSION,
    analyze_deep,
    get_deep_rules,
    load_project,
)
from repro.analysis.protocol import (
    PROTOCOL_ENGINE_VERSION,
    PROTOCOL_RULES_BY_CODE,
    analyze_protocol,
    emit_schemas,
    get_protocol_rules,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, get_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: the repro package)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="REPxxx",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the flow-aware interprocedural rules (REP101..REP105)",
    )
    parser.add_argument(
        "--protocol",
        action="store_true",
        help="also run the communication-protocol rules (REP201..REP206)",
    )
    parser.add_argument(
        "--cost",
        action="store_true",
        help="also run the symbolic I/O-cost certifier (REP301..REP306)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="all_passes",
        help="run every pass (shallow + --deep + --protocol + --cost) "
        "as one merged report with one exit code",
    )
    parser.add_argument(
        "--emit-schema",
        default=None,
        metavar="DIR",
        help="write per-algorithm protocol schemas (protocol-<name>.json) "
        "extracted from the analysed sources into DIR",
    )
    parser.add_argument(
        "--emit-costs",
        default=None,
        metavar="DIR",
        help="write per-algorithm derived I/O-cost bounds "
        "(costs-<name>.json) into DIR",
    )
    parser.add_argument(
        "--cost-baseline",
        default=None,
        metavar="FILE",
        help=f"cost-regression baseline REP305 compares against "
        f"(default: ./{COST_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--write-cost-baseline",
        action="store_true",
        help=f"pin the currently derived bounds into {COST_BASELINE_NAME} "
        "(then continue linting)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"bypass the incremental result cache ({DEFAULT_CACHE_DIR}/)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="location of the incremental result cache",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is stable for tooling)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by # repro: noqa, with reasons",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _default_paths() -> list[str]:
    import repro

    return [str(Path(repro.__file__).parent)]


def _default_baseline() -> Path | None:
    cwd_candidate = Path(DEFAULT_BASELINE_NAME)
    if cwd_candidate.is_file():
        return cwd_candidate
    import repro

    repo_candidate = Path(repro.__file__).parent.parent.parent / DEFAULT_BASELINE_NAME
    if repo_candidate.is_file():
        return repo_candidate
    return None


def _default_cost_baseline() -> Path | None:
    cwd_candidate = Path(COST_BASELINE_NAME)
    if cwd_candidate.is_file():
        return cwd_candidate
    import repro

    repo_candidate = Path(repro.__file__).parent.parent.parent / COST_BASELINE_NAME
    if repo_candidate.is_file():
        return repo_candidate
    return None


def _list_rules(out: TextIO) -> None:
    deep_rules = tuple(DEEP_RULES_BY_CODE[c] for c in sorted(DEEP_RULES_BY_CODE))
    protocol_rules = tuple(
        PROTOCOL_RULES_BY_CODE[c] for c in sorted(PROTOCOL_RULES_BY_CODE)
    )
    cost_rules = tuple(COST_RULES_BY_CODE[c] for c in sorted(COST_RULES_BY_CODE))
    for rule in (*ALL_RULES, *deep_rules, *protocol_rules, *cost_rules):
        scope = ", ".join(rule.scope) if rule.scope else "whole package"
        if rule.code in COST_RULES_BY_CODE:
            tag = " [cost]"
        elif rule.code in PROTOCOL_RULES_BY_CODE:
            tag = " [protocol]"
        elif rule.code in DEEP_RULES_BY_CODE:
            tag = " [deep]"
        else:
            tag = ""
        out.write(f"{rule.code} {rule.name}{tag}: {rule.summary}\n")
        out.write(f"    scope: {scope}\n")
        if rule.exempt:
            out.write(f"    exempt: {', '.join(rule.exempt)}\n")
        out.write(f"    fix: {rule.fix_hint}\n")


def _split_rule_codes(
    codes: Sequence[str] | None, deep: bool, protocol: bool, cost: bool
) -> tuple[
    Sequence[str] | None,
    Sequence[str] | None,
    Sequence[str] | None,
    Sequence[str] | None,
]:
    """Partition ``--rule`` selections into (shallow, deep, protocol, cost).

    Returns ``None`` for a pass meaning "all its rules"; an empty list
    meaning "skip that pass entirely" (the user filtered it out).
    """
    if not codes:
        return (
            None,
            (None if deep else []),
            (None if protocol else []),
            (None if cost else []),
        )
    shallow: list[str] = []
    deep_codes: list[str] = []
    protocol_codes: list[str] = []
    cost_codes: list[str] = []
    for code in codes:
        upper = code.upper()
        if upper in RULES_BY_CODE:
            shallow.append(code)
        elif upper in DEEP_RULES_BY_CODE:
            deep_codes.append(code)
        elif upper in PROTOCOL_RULES_BY_CODE:
            protocol_codes.append(code)
        elif upper in COST_RULES_BY_CODE:
            cost_codes.append(code)
        else:
            known = (
                sorted(RULES_BY_CODE)
                + sorted(DEEP_RULES_BY_CODE)
                + sorted(PROTOCOL_RULES_BY_CODE)
                + sorted(COST_RULES_BY_CODE)
            )
            raise AnalysisError(
                f"unknown rule {code!r}; have {', '.join(known)}"
            )
    if deep_codes and not deep:
        raise AnalysisError(
            f"rule(s) {', '.join(sorted(c.upper() for c in deep_codes))} "
            "are flow-aware deep rules; pass --deep to enable them"
        )
    if protocol_codes and not protocol:
        raise AnalysisError(
            f"rule(s) {', '.join(sorted(c.upper() for c in protocol_codes))} "
            "are protocol rules; pass --protocol to enable them"
        )
    if cost_codes and not cost:
        raise AnalysisError(
            f"rule(s) {', '.join(sorted(c.upper() for c in cost_codes))} "
            "are I/O-cost rules; pass --cost to enable them"
        )
    return shallow, deep_codes, protocol_codes, cost_codes


def _merge_reports(
    shallow: AnalysisReport, extra: AnalysisReport
) -> AnalysisReport:
    """Fold a later pass into the base report, keyed by display path.

    All passes walk the same files, so file counts must not double;
    findings for the same file are combined and re-sorted.
    """
    by_path: dict[str, FileReport] = {fr.path: fr for fr in shallow.files}
    for fr in extra.files:
        base = by_path.get(fr.path)
        if base is None:
            by_path[fr.path] = fr
            shallow.files.append(fr)
        else:
            base.findings.extend(fr.findings)
            base.findings.sort()
            base.suppressed.extend(fr.suppressed)
    return shallow


# -- cached pass execution ---------------------------------------------------


def _read_sources(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    out = []
    for p in iter_python_files(paths):
        try:
            out.append((p, p.read_text(encoding="utf-8")))
        except OSError as exc:
            raise AnalysisError(f"{p}: cannot read: {exc}") from exc
    return out


def _analyze_shallow(
    sources: Sequence[tuple[Path, str]],
    codes: Sequence[str] | None,
    cache: LintCache | None,
) -> AnalysisReport:
    """The per-module syntactic pass, cached per file."""
    rules = get_rules(codes)
    token = rule_selection_token(codes)
    report = AnalysisReport()
    for path, source in sources:
        display = path.as_posix()
        key = cache_key("shallow", ENGINE_VERSION, token, display,
                        source_digest(source))
        if cache is not None:
            hit = cache.get(key, "shallow")
            if hit is not None:
                report.files.append(file_report_from_dict(hit))
                continue
        fr = analyze_source(source, str(path), rules, display_path=display)
        if cache is not None:
            cache.put(key, file_report_to_dict(fr))
        report.files.append(fr)
    return report


def _analyze_whole_project(
    pass_name: str,
    engine_version: str,
    sources: Sequence[tuple[Path, str]],
    codes: Sequence[str] | None,
    cache: LintCache | None,
    run: Callable[[], AnalysisReport],
    extra_key: str = "",
) -> AnalysisReport:
    """A whole-project (interprocedural) pass, cached by project digest.

    ``extra_key`` folds additional inputs into the key — the cost pass
    uses it for the digest of the cost baseline file, since REP305's
    output depends on that file's content as much as on the sources.
    """
    digest = project_digest([(p.as_posix(), s) for p, s in sources])
    key = cache_key(pass_name, engine_version, rule_selection_token(codes),
                    digest, extra_key)
    if cache is not None:
        hit = cache.get(key, pass_name)
        if hit is not None:
            return report_from_dict(hit)
    report = run()
    if cache is not None:
        cache.put(key, report_to_dict(report))
    return report


# -- rendering ---------------------------------------------------------------


def _render_text(
    out: TextIO,
    new: list[Finding],
    baselined: list[Finding],
    report: AnalysisReport,
    show_suppressed: bool,
) -> None:
    for f in new:
        out.write(f.render() + "\n")
    if show_suppressed:
        for s in report.suppressed:
            reason = f" ({s.reason})" if s.reason else ""
            out.write(f"{s.finding.render()} [suppressed: noqa{reason}]\n")
    out.write(
        f"{len(new)} finding(s), {len(baselined)} baselined, "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.files)} file(s) analysed\n"
    )


def _finding_order(f: Finding) -> tuple[str, int, str, int]:
    """Stable JSON ordering contract: (path, line, rule), then column."""
    return (f.path, f.line, f.rule, f.col)


def _render_json(
    out: TextIO,
    new: list[Finding],
    baselined: list[Finding],
    report: AnalysisReport,
    deep: bool,
    protocol: bool,
    cost: bool,
    cache: LintCache | None,
) -> None:
    payload = {
        "version": 1,
        "engine_version": ENGINE_VERSION,
        "flow_engine_version": FLOW_ENGINE_VERSION if deep else None,
        "protocol_engine_version": PROTOCOL_ENGINE_VERSION if protocol else None,
        "cost_engine_version": COST_ENGINE_VERSION if cost else None,
        "findings": [
            {**f.to_dict(), "fingerprint": fingerprint(f)}
            for f in sorted(new, key=_finding_order)
        ],
        "baselined": [
            {**f.to_dict(), "fingerprint": fingerprint(f)}
            for f in sorted(baselined, key=_finding_order)
        ],
        "suppressed": [
            {**s.finding.to_dict(), "reason": s.reason}
            for s in sorted(report.suppressed, key=lambda s: _finding_order(s.finding))
        ],
        "summary": {
            "files": len(report.files),
            "findings": len(new),
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
        },
        "cache": cache.stats.to_dict() if cache is not None else None,
    }
    out.write(json.dumps(payload, indent=2) + "\n")


def run_lint(
    args: argparse.Namespace,
    out: TextIO | None = None,
    err: TextIO | None = None,
) -> int:
    """Execute the lint command; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    try:
        if args.list_rules:
            _list_rules(out)
            return EXIT_CLEAN
        deep = getattr(args, "deep", False)
        protocol = getattr(args, "protocol", False)
        cost = getattr(args, "cost", False)
        if getattr(args, "all_passes", False):
            deep = protocol = cost = True
        emit_schema_dir = getattr(args, "emit_schema", None)
        emit_costs_dir = getattr(args, "emit_costs", None)
        write_cost_base = getattr(args, "write_cost_baseline", False)
        shallow_codes, deep_codes, protocol_codes, cost_codes = (
            _split_rule_codes(args.rule, deep, protocol, cost)
        )
        paths = args.paths or _default_paths()
        cache: LintCache | None = None
        if not getattr(args, "no_cache", False):
            cache = LintCache(Path(getattr(args, "cache_dir", DEFAULT_CACHE_DIR)))
        sources = _read_sources(paths)

        if shallow_codes == []:
            report = AnalysisReport()  # --rule selected deep/protocol only
        else:
            report = _analyze_shallow(sources, shallow_codes, cache)

        # the interprocedural passes (and the emitters) share one model
        project = None
        if (
            (deep and deep_codes != [])
            or (protocol and protocol_codes != [])
            or (cost and cost_codes != [])
            or emit_schema_dir is not None
            or emit_costs_dir is not None
            or write_cost_base
        ):
            project = load_project(paths)
        if deep and deep_codes != []:
            report = _merge_reports(
                report,
                _analyze_whole_project(
                    "deep", FLOW_ENGINE_VERSION, sources, deep_codes, cache,
                    lambda: analyze_deep(
                        paths, get_deep_rules(deep_codes), project=project
                    ),
                ),
            )
        if protocol and protocol_codes != []:
            report = _merge_reports(
                report,
                _analyze_whole_project(
                    "protocol", PROTOCOL_ENGINE_VERSION, sources,
                    protocol_codes, cache,
                    lambda: analyze_protocol(
                        paths, get_protocol_rules(protocol_codes),
                        project=project,
                    ),
                ),
            )
        if write_cost_base and project is not None:
            # pin first so the same invocation lints against the fresh pin
            target = write_cost_baseline(project, Path(COST_BASELINE_NAME))
            notice_out = err if args.format == "json" else out
            notice_out.write(
                f"wrote cost baseline {target.as_posix()}\n"
            )
        if cost and cost_codes != []:
            if getattr(args, "cost_baseline", None) is not None:
                cost_baseline_path = Path(args.cost_baseline)
                if not cost_baseline_path.is_file():
                    raise AnalysisError(
                        f"{cost_baseline_path}: cost baseline file not found"
                    )
            else:
                cost_baseline_path = _default_cost_baseline()
            baseline_digest = (
                source_digest(
                    cost_baseline_path.read_text(encoding="utf-8")
                )
                if cost_baseline_path is not None
                else "no-cost-baseline"
            )
            report = _merge_reports(
                report,
                _analyze_whole_project(
                    "cost", COST_ENGINE_VERSION, sources, cost_codes, cache,
                    lambda: analyze_cost(
                        paths,
                        get_cost_rules(cost_codes, cost_baseline_path),
                        project=project,
                    ),
                    extra_key=baseline_digest,
                ),
            )
        if emit_schema_dir is not None and project is not None:
            written = emit_schemas(project, emit_schema_dir)
            # keep stdout pure JSON for tooling; notices go to stderr
            notice_out = err if args.format == "json" else out
            for path in written:
                notice_out.write(f"wrote schema {path.as_posix()}\n")
        if emit_costs_dir is not None and project is not None:
            written = emit_costs(project, emit_costs_dir)
            notice_out = err if args.format == "json" else out
            for path in written:
                notice_out.write(f"wrote costs {path.as_posix()}\n")
        findings = report.findings

        baseline_path: Path | None
        if args.no_baseline:
            baseline_path = None
        elif args.baseline is not None:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = _default_baseline()

        if args.write_baseline:
            target = baseline_path if baseline_path is not None else Path(
                DEFAULT_BASELINE_NAME
            )
            Baseline.write(target, findings)
            out.write(
                f"wrote {len(findings)} finding(s) to baseline {target}\n"
            )
            return EXIT_CLEAN

        if baseline_path is not None:
            if not baseline_path.is_file():
                raise AnalysisError(f"{baseline_path}: baseline file not found")
            new, baselined = Baseline.load(baseline_path).split(findings)
        else:
            new, baselined = findings, []

        if args.format == "json":
            _render_json(
                out, new, baselined, report, deep, protocol, cost, cache
            )
        else:
            _render_text(out, new, baselined, report, args.show_suppressed)
        return EXIT_FINDINGS if new else EXIT_CLEAN
    except AnalysisError as exc:
        err.write(f"repro lint: internal error: {exc}\n")
        return EXIT_INTERNAL_ERROR
    except Exception as exc:  # CI contract: never report breakage as findings
        err.write(f"repro lint: internal error: {type(exc).__name__}: {exc}\n")
        return EXIT_INTERNAL_ERROR


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "simulation-invariant linter (REP001..REP008; "
            "--deep adds flow-aware REP101..REP105; "
            "--protocol adds communication rules REP201..REP206; "
            "--cost adds I/O-cost certification REP301..REP306; "
            "--all runs every pass)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
