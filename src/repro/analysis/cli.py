"""``python -m repro lint`` — the CI gate for simulation invariants.

Exit codes (CI contract, tested):

* ``0`` — clean, or every finding is suppressed/baselined;
* ``1`` — at least one *new* finding;
* ``2`` — internal error (unreadable path, unparsable file, bad rule
  code, malformed baseline), so infrastructure breakage can never be
  mistaken for a clean run.

``--format json`` output is stable for tooling: fixed keys, findings
sorted by (path, line, col, rule), no timestamps or absolute paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, fingerprint
from repro.analysis.engine import (
    AnalysisError,
    AnalysisReport,
    Finding,
    analyze_paths,
)
from repro.analysis.rules import ALL_RULES, get_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: the repro package)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="REPxxx",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is stable for tooling)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by # repro: noqa, with reasons",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _default_paths() -> list[str]:
    import repro

    return [str(Path(repro.__file__).parent)]


def _default_baseline() -> Path | None:
    cwd_candidate = Path(DEFAULT_BASELINE_NAME)
    if cwd_candidate.is_file():
        return cwd_candidate
    import repro

    repo_candidate = Path(repro.__file__).parent.parent.parent / DEFAULT_BASELINE_NAME
    if repo_candidate.is_file():
        return repo_candidate
    return None


def _list_rules(out: TextIO) -> None:
    for rule in ALL_RULES:
        scope = ", ".join(rule.scope) if rule.scope else "whole package"
        out.write(f"{rule.code} {rule.name}: {rule.summary}\n")
        out.write(f"    scope: {scope}\n")
        if rule.exempt:
            out.write(f"    exempt: {', '.join(rule.exempt)}\n")
        out.write(f"    fix: {rule.fix_hint}\n")


def _render_text(
    out: TextIO,
    new: list[Finding],
    baselined: list[Finding],
    report: AnalysisReport,
    show_suppressed: bool,
) -> None:
    for f in new:
        out.write(f.render() + "\n")
    if show_suppressed:
        for s in report.suppressed:
            reason = f" ({s.reason})" if s.reason else ""
            out.write(f"{s.finding.render()} [suppressed: noqa{reason}]\n")
    out.write(
        f"{len(new)} finding(s), {len(baselined)} baselined, "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.files)} file(s) analysed\n"
    )


def _render_json(
    out: TextIO,
    new: list[Finding],
    baselined: list[Finding],
    report: AnalysisReport,
) -> None:
    payload = {
        "version": 1,
        "findings": [
            {**f.to_dict(), "fingerprint": fingerprint(f)} for f in sorted(new)
        ],
        "baselined": [
            {**f.to_dict(), "fingerprint": fingerprint(f)}
            for f in sorted(baselined)
        ],
        "suppressed": [
            {**s.finding.to_dict(), "reason": s.reason}
            for s in sorted(report.suppressed, key=lambda s: s.finding)
        ],
        "summary": {
            "files": len(report.files),
            "findings": len(new),
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
        },
    }
    out.write(json.dumps(payload, indent=2) + "\n")


def run_lint(
    args: argparse.Namespace,
    out: TextIO | None = None,
    err: TextIO | None = None,
) -> int:
    """Execute the lint command; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    try:
        if args.list_rules:
            _list_rules(out)
            return EXIT_CLEAN
        rules = get_rules(args.rule)
        paths = args.paths or _default_paths()
        report = analyze_paths(paths, rules)
        findings = report.findings

        baseline_path: Path | None
        if args.no_baseline:
            baseline_path = None
        elif args.baseline is not None:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = _default_baseline()

        if args.write_baseline:
            target = baseline_path if baseline_path is not None else Path(
                DEFAULT_BASELINE_NAME
            )
            Baseline.write(target, findings)
            out.write(
                f"wrote {len(findings)} finding(s) to baseline {target}\n"
            )
            return EXIT_CLEAN

        if baseline_path is not None:
            if not baseline_path.is_file():
                raise AnalysisError(f"{baseline_path}: baseline file not found")
            new, baselined = Baseline.load(baseline_path).split(findings)
        else:
            new, baselined = findings, []

        if args.format == "json":
            _render_json(out, new, baselined, report)
        else:
            _render_text(out, new, baselined, report, args.show_suppressed)
        return EXIT_FINDINGS if new else EXIT_CLEAN
    except AnalysisError as exc:
        err.write(f"repro lint: internal error: {exc}\n")
        return EXIT_INTERNAL_ERROR
    except Exception as exc:  # CI contract: never report breakage as findings
        err.write(f"repro lint: internal error: {type(exc).__name__}: {exc}\n")
        return EXIT_INTERNAL_ERROR


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulation-invariant linter (REP001..REP008)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
