"""``python -m repro lint`` — the CI gate for simulation invariants.

Exit codes (CI contract, tested):

* ``0`` — clean, or every finding is suppressed/baselined;
* ``1`` — at least one *new* finding;
* ``2`` — internal error (unreadable path, unparsable file, bad rule
  code, malformed baseline), so infrastructure breakage can never be
  mistaken for a clean run.

``--deep`` additionally runs the flow-aware interprocedural rules
(REP101..REP105, :mod:`repro.analysis.flow`) on top of the syntactic
pass — same exit contract, same noqa/baseline machinery; deep findings
fingerprint identically, so one baseline file covers both passes.

``--format json`` output is stable for tooling: fixed keys, findings
sorted by (path, line, rule), engine version keys, no timestamps or
absolute paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, fingerprint
from repro.analysis.engine import (
    ENGINE_VERSION,
    AnalysisError,
    AnalysisReport,
    FileReport,
    Finding,
    analyze_paths,
)
from repro.analysis.flow import (
    DEEP_RULES_BY_CODE,
    FLOW_ENGINE_VERSION,
    analyze_deep,
    get_deep_rules,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, get_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: the repro package)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="REPxxx",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the flow-aware interprocedural rules (REP101..REP105)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is stable for tooling)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by # repro: noqa, with reasons",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _default_paths() -> list[str]:
    import repro

    return [str(Path(repro.__file__).parent)]


def _default_baseline() -> Path | None:
    cwd_candidate = Path(DEFAULT_BASELINE_NAME)
    if cwd_candidate.is_file():
        return cwd_candidate
    import repro

    repo_candidate = Path(repro.__file__).parent.parent.parent / DEFAULT_BASELINE_NAME
    if repo_candidate.is_file():
        return repo_candidate
    return None


def _list_rules(out: TextIO) -> None:
    deep_rules = tuple(DEEP_RULES_BY_CODE[c] for c in sorted(DEEP_RULES_BY_CODE))
    for rule in (*ALL_RULES, *deep_rules):
        scope = ", ".join(rule.scope) if rule.scope else "whole package"
        tag = " [deep]" if rule.code in DEEP_RULES_BY_CODE else ""
        out.write(f"{rule.code} {rule.name}{tag}: {rule.summary}\n")
        out.write(f"    scope: {scope}\n")
        if rule.exempt:
            out.write(f"    exempt: {', '.join(rule.exempt)}\n")
        out.write(f"    fix: {rule.fix_hint}\n")


def _split_rule_codes(
    codes: Sequence[str] | None, deep: bool
) -> tuple[Sequence[str] | None, Sequence[str] | None]:
    """Partition ``--rule`` selections into (shallow, deep) code lists.

    Returns ``None`` for a pass meaning "all its rules"; an empty list
    meaning "skip that pass entirely" (the user filtered it out).
    """
    if not codes:
        return None, (None if deep else [])
    shallow: list[str] = []
    deep_codes: list[str] = []
    for code in codes:
        upper = code.upper()
        if upper in RULES_BY_CODE:
            shallow.append(code)
        elif upper in DEEP_RULES_BY_CODE:
            deep_codes.append(code)
        else:
            known = sorted(RULES_BY_CODE) + sorted(DEEP_RULES_BY_CODE)
            raise AnalysisError(
                f"unknown rule {code!r}; have {', '.join(known)}"
            )
    if deep_codes and not deep:
        raise AnalysisError(
            f"rule(s) {', '.join(sorted(c.upper() for c in deep_codes))} "
            "are flow-aware deep rules; pass --deep to enable them"
        )
    return shallow, deep_codes


def _merge_reports(
    shallow: AnalysisReport, deep: AnalysisReport
) -> AnalysisReport:
    """Fold the deep pass into the shallow one, keyed by display path.

    Both passes walk the same files, so file counts must not double;
    findings for the same file are combined and re-sorted.
    """
    by_path: dict[str, FileReport] = {fr.path: fr for fr in shallow.files}
    for fr in deep.files:
        base = by_path.get(fr.path)
        if base is None:
            by_path[fr.path] = fr
            shallow.files.append(fr)
        else:
            base.findings.extend(fr.findings)
            base.findings.sort()
            base.suppressed.extend(fr.suppressed)
    return shallow


def _render_text(
    out: TextIO,
    new: list[Finding],
    baselined: list[Finding],
    report: AnalysisReport,
    show_suppressed: bool,
) -> None:
    for f in new:
        out.write(f.render() + "\n")
    if show_suppressed:
        for s in report.suppressed:
            reason = f" ({s.reason})" if s.reason else ""
            out.write(f"{s.finding.render()} [suppressed: noqa{reason}]\n")
    out.write(
        f"{len(new)} finding(s), {len(baselined)} baselined, "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.files)} file(s) analysed\n"
    )


def _finding_order(f: Finding) -> tuple[str, int, str, int]:
    """Stable JSON ordering contract: (path, line, rule), then column."""
    return (f.path, f.line, f.rule, f.col)


def _render_json(
    out: TextIO,
    new: list[Finding],
    baselined: list[Finding],
    report: AnalysisReport,
    deep: bool,
) -> None:
    payload = {
        "version": 1,
        "engine_version": ENGINE_VERSION,
        "flow_engine_version": FLOW_ENGINE_VERSION if deep else None,
        "findings": [
            {**f.to_dict(), "fingerprint": fingerprint(f)}
            for f in sorted(new, key=_finding_order)
        ],
        "baselined": [
            {**f.to_dict(), "fingerprint": fingerprint(f)}
            for f in sorted(baselined, key=_finding_order)
        ],
        "suppressed": [
            {**s.finding.to_dict(), "reason": s.reason}
            for s in sorted(report.suppressed, key=lambda s: _finding_order(s.finding))
        ],
        "summary": {
            "files": len(report.files),
            "findings": len(new),
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
        },
    }
    out.write(json.dumps(payload, indent=2) + "\n")


def run_lint(
    args: argparse.Namespace,
    out: TextIO | None = None,
    err: TextIO | None = None,
) -> int:
    """Execute the lint command; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    try:
        if args.list_rules:
            _list_rules(out)
            return EXIT_CLEAN
        deep = getattr(args, "deep", False)
        shallow_codes, deep_codes = _split_rule_codes(args.rule, deep)
        paths = args.paths or _default_paths()
        if shallow_codes == []:
            report = AnalysisReport()  # --rule selected deep codes only
        else:
            report = analyze_paths(paths, get_rules(shallow_codes))
        if deep and deep_codes != []:
            report = _merge_reports(
                report, analyze_deep(paths, get_deep_rules(deep_codes))
            )
        findings = report.findings

        baseline_path: Path | None
        if args.no_baseline:
            baseline_path = None
        elif args.baseline is not None:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = _default_baseline()

        if args.write_baseline:
            target = baseline_path if baseline_path is not None else Path(
                DEFAULT_BASELINE_NAME
            )
            Baseline.write(target, findings)
            out.write(
                f"wrote {len(findings)} finding(s) to baseline {target}\n"
            )
            return EXIT_CLEAN

        if baseline_path is not None:
            if not baseline_path.is_file():
                raise AnalysisError(f"{baseline_path}: baseline file not found")
            new, baselined = Baseline.load(baseline_path).split(findings)
        else:
            new, baselined = findings, []

        if args.format == "json":
            _render_json(out, new, baselined, report, deep)
        else:
            _render_text(out, new, baselined, report, args.show_suppressed)
        return EXIT_FINDINGS if new else EXIT_CLEAN
    except AnalysisError as exc:
        err.write(f"repro lint: internal error: {exc}\n")
        return EXIT_INTERNAL_ERROR
    except Exception as exc:  # CI contract: never report breakage as findings
        err.write(f"repro lint: internal error: {type(exc).__name__}: {exc}\n")
        return EXIT_INTERNAL_ERROR


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "simulation-invariant linter (REP001..REP008; "
            "--deep adds flow-aware REP101..REP105)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
